"""Tests for balancing-trigger policies."""

import pytest

from repro.core import BalancerConfig, LoadBalancer
from repro.core.trigger import (
    ImbalanceTriggeredPolicy,
    PeriodicPolicy,
    run_with_policy,
)
from repro.exceptions import ConfigError
from repro.sim import LoadDynamics
from repro.workloads import GaussianLoadModel, build_scenario


def make_balancer(rng=21):
    sc = build_scenario(
        GaussianLoadModel(mu=1e5, sigma=300.0), num_nodes=64, vs_per_node=4, rng=rng
    )
    return LoadBalancer(
        sc.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=3
    )


class TestPolicies:
    def test_periodic_always_balances(self):
        policy = PeriodicPolicy()
        assert policy.should_balance(0.0)
        assert policy.should_balance(1.0)

    def test_triggered_threshold(self):
        policy = ImbalanceTriggeredPolicy(threshold=0.2)
        assert not policy.should_balance(0.2)
        assert policy.should_balance(0.21)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigError):
            ImbalanceTriggeredPolicy(threshold=1.5)


class TestRunWithPolicy:
    def test_periodic_runs_every_epoch(self):
        balancer = make_balancer()
        dynamics = LoadDynamics(drift_sigma=0.1, rng=5)
        trace = run_with_policy(balancer, dynamics, PeriodicPolicy(), epochs=4)
        assert trace.rounds_run == 4
        assert len(trace.epochs) == 4

    def test_triggered_skips_calm_epochs(self):
        balancer = make_balancer()
        # First epoch is wildly imbalanced (cold start); later epochs with
        # zero drift stay calm, so a triggered policy skips them.
        dynamics = LoadDynamics(drift_sigma=0.0, rng=5)
        trace = run_with_policy(
            balancer, dynamics, ImbalanceTriggeredPolicy(threshold=0.1), epochs=4
        )
        assert trace.epochs[0].balanced  # cold start exceeds threshold
        assert not any(e.balanced for e in trace.epochs[1:])
        assert trace.rounds_run == 1

    def test_triggered_cheaper_than_periodic(self):
        periodic = run_with_policy(
            make_balancer(), LoadDynamics(drift_sigma=0.02, rng=6),
            PeriodicPolicy(), epochs=5,
        )
        triggered = run_with_policy(
            make_balancer(), LoadDynamics(drift_sigma=0.02, rng=6),
            ImbalanceTriggeredPolicy(threshold=0.15), epochs=5,
        )
        assert triggered.rounds_run < periodic.rounds_run
        assert triggered.total_control_messages < periodic.total_control_messages

    def test_triggered_still_bounds_imbalance(self):
        balancer = make_balancer()
        dynamics = LoadDynamics(drift_sigma=0.15, rng=7)
        trace = run_with_policy(
            balancer, dynamics, ImbalanceTriggeredPolicy(threshold=0.25), epochs=6
        )
        # Whenever the fraction exceeded the threshold, balancing ran.
        for e in trace.epochs:
            if e.heavy_fraction > 0.25:
                assert e.balanced

    def test_invalid_epochs(self):
        with pytest.raises(ConfigError):
            run_with_policy(
                make_balancer(), LoadDynamics(rng=0), PeriodicPolicy(), epochs=0
            )

    def test_measurement_cost_charged_every_epoch(self):
        balancer = make_balancer()
        dynamics = LoadDynamics(drift_sigma=0.0, rng=8)
        trace = run_with_policy(
            balancer, dynamics, ImbalanceTriggeredPolicy(threshold=0.99), epochs=3
        )
        assert all(e.control_messages > 0 for e in trace.epochs)
