"""Tests for load models, capacity profiles and the scenario builder."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.workloads import (
    GaussianLoadModel,
    GnutellaCapacityProfile,
    ParetoLoadModel,
    assign_loads,
    build_scenario,
    sample_capacities,
)
from repro.util.rng import ensure_rng
from tests.conftest import MINI_TS


class TestGaussianModel:
    def test_mean_scales_with_fraction(self):
        model = GaussianLoadModel(mu=1000.0, sigma=0.0)
        loads = model.sample(np.array([0.1, 0.4]), ensure_rng(0))
        assert loads == pytest.approx([100.0, 400.0])

    def test_non_negative(self):
        model = GaussianLoadModel(mu=10.0, sigma=100.0)
        loads = model.sample(np.full(1000, 0.001), ensure_rng(1))
        assert loads.min() >= 0.0

    def test_total_close_to_mu(self):
        model = GaussianLoadModel(mu=1e6, sigma=100.0)
        f = np.full(1000, 1 / 1000)
        loads = model.sample(f, ensure_rng(2))
        assert loads.sum() == pytest.approx(1e6, rel=0.01)

    def test_std_scales_with_sqrt_fraction(self):
        # Large mu keeps the zero-clipping inactive so the std is exact.
        model = GaussianLoadModel(mu=1e6, sigma=10.0)
        f = np.full(20000, 0.25)
        loads = model.sample(f, ensure_rng(3))
        assert loads.std() == pytest.approx(10.0 * 0.5, rel=0.05)

    @pytest.mark.parametrize("mu,sigma", [(0.0, 1.0), (-1.0, 1.0), (1.0, -1.0)])
    def test_invalid_params(self, mu, sigma):
        with pytest.raises(WorkloadError):
            GaussianLoadModel(mu=mu, sigma=sigma)

    def test_invalid_fractions(self):
        model = GaussianLoadModel(mu=1.0, sigma=0.0)
        with pytest.raises(WorkloadError):
            model.sample(np.array([1.5]), ensure_rng(0))
        with pytest.raises(WorkloadError):
            model.sample(np.array([]), ensure_rng(0))


class TestParetoModel:
    def test_mean_approximates_mu_f(self):
        model = ParetoLoadModel(mu=1000.0, alpha=2.5)  # finite variance for the test
        f = np.full(200_000, 0.001)
        loads = model.sample(f, ensure_rng(4))
        assert loads.mean() == pytest.approx(1.0, rel=0.05)

    def test_heavy_tail_present(self):
        model = ParetoLoadModel(mu=1000.0)  # alpha=1.5
        f = np.full(50_000, 0.001)
        loads = model.sample(f, ensure_rng(5))
        assert loads.max() > 20 * loads.mean()

    def test_all_positive(self):
        model = ParetoLoadModel(mu=10.0)
        loads = model.sample(np.full(100, 0.01), ensure_rng(6))
        assert loads.min() > 0

    def test_default_shape_is_paper_value(self):
        assert ParetoLoadModel(mu=1.0).alpha == 1.5

    def test_alpha_must_exceed_one(self):
        with pytest.raises(WorkloadError):
            ParetoLoadModel(mu=1.0, alpha=1.0)


class TestAssignLoads:
    def test_installs_on_ring(self, small_ring):
        loads = assign_loads(small_ring, GaussianLoadModel(mu=1e4, sigma=10.0), rng=0)
        ring_loads = np.array([vs.load for vs in small_ring.virtual_servers])
        assert np.allclose(ring_loads, loads)

    def test_deterministic(self, small_ring):
        a = assign_loads(small_ring, GaussianLoadModel(mu=1e4, sigma=10.0), rng=42)
        b = assign_loads(small_ring, GaussianLoadModel(mu=1e4, sigma=10.0), rng=42)
        assert np.array_equal(a, b)


class TestCapacityProfile:
    def test_paper_values(self):
        prof = GnutellaCapacityProfile()
        assert list(prof.values) == [1.0, 10.0, 100.0, 1000.0, 10000.0]
        assert prof.table[10.0] == 0.45

    def test_probabilities_sum_to_one(self):
        assert GnutellaCapacityProfile().probabilities.sum() == pytest.approx(1.0)

    def test_sampling_distribution(self):
        caps = sample_capacities(50_000, rng=7)
        frac_10 = float(np.mean(caps == 10.0))
        assert frac_10 == pytest.approx(0.45, abs=0.02)
        frac_10k = float(np.mean(caps == 10_000.0))
        assert frac_10k == pytest.approx(0.001, abs=0.002)

    def test_mean(self):
        prof = GnutellaCapacityProfile()
        expected = 1 * 0.2 + 10 * 0.45 + 100 * 0.3 + 1000 * 0.049 + 10000 * 0.001
        assert prof.mean == pytest.approx(expected)

    def test_category_of(self):
        prof = GnutellaCapacityProfile()
        assert prof.category_of(1.0) == 0
        assert prof.category_of(10_000.0) == 4
        with pytest.raises(WorkloadError):
            prof.category_of(55.0)

    def test_invalid_profiles(self):
        with pytest.raises(WorkloadError):
            GnutellaCapacityProfile(table={1.0: 0.5})  # doesn't sum to 1
        with pytest.raises(WorkloadError):
            GnutellaCapacityProfile(table={-1.0: 1.0})
        with pytest.raises(WorkloadError):
            GnutellaCapacityProfile(table={})

    def test_negative_sample_count(self):
        with pytest.raises(WorkloadError):
            sample_capacities(-1)


class TestScenario:
    def test_basic_build(self):
        sc = build_scenario(
            GaussianLoadModel(mu=1e4, sigma=10.0), num_nodes=10, vs_per_node=2, rng=1
        )
        assert sc.num_nodes == 10
        assert sc.ring.num_virtual_servers == 20
        assert sc.topology is None
        assert sc.loads.shape == (20,)

    def test_with_topology(self):
        sc = build_scenario(
            GaussianLoadModel(mu=1e4, sigma=10.0),
            num_nodes=12,
            vs_per_node=2,
            topology_params=MINI_TS,
            rng=2,
        )
        assert sc.topology is not None
        assert sc.oracle is not None
        sites = [n.site for n in sc.ring.nodes]
        assert len(set(sites)) == 12  # distinct stub vertices
        stub_set = set(sc.topology.stub_vertices.tolist())
        assert all(s in stub_set for s in sites)

    def test_deterministic(self):
        a = build_scenario(
            GaussianLoadModel(mu=1e4, sigma=10.0), num_nodes=8, vs_per_node=2, rng=3
        )
        b = build_scenario(
            GaussianLoadModel(mu=1e4, sigma=10.0), num_nodes=8, vs_per_node=2, rng=3
        )
        assert np.array_equal(a.loads, b.loads)
        assert np.array_equal(a.capacities, b.capacities)

    def test_both_topology_args_rejected(self, mini_topology):
        with pytest.raises(WorkloadError):
            build_scenario(
                GaussianLoadModel(mu=1.0, sigma=0.0),
                num_nodes=4,
                topology_params=MINI_TS,
                topology=mini_topology,
                rng=0,
            )

    def test_prebuilt_topology(self, mini_topology):
        sc = build_scenario(
            GaussianLoadModel(mu=1e4, sigma=1.0),
            num_nodes=10,
            vs_per_node=1,
            topology=mini_topology,
            rng=4,
        )
        assert sc.topology is mini_topology

    def test_too_few_stub_vertices(self, mini_topology):
        with pytest.raises(WorkloadError):
            build_scenario(
                GaussianLoadModel(mu=1.0, sigma=0.0),
                num_nodes=10_000,
                topology=mini_topology,
                rng=0,
            )
