"""Docstring-coverage gate for :mod:`repro.obs` — thin lint wrapper.

The actual check lives in the static-analysis subsystem as the
``docstring-coverage`` rule (:mod:`repro.lint.rules.docstrings`), which
covers every documented-API package (``repro.obs`` and ``repro.lint``)
via the ``python -m repro.lint`` gate in ``scripts/verify.sh``.  This
test keeps the historical entry point alive (``pytest tests/test_obs*.py``
runs it as part of the observability suite) by driving that same rule
over the obs sources and asserting the scan is non-trivial.
"""

from __future__ import annotations

from pathlib import Path

import repro.obs
from repro.lint.engine import LintEngine
from repro.lint.rules.docstrings import DocstringCoverageRule

OBS_DIR = Path(repro.obs.__file__).resolve().parent


def _lint_obs():
    engine = LintEngine(rules=[DocstringCoverageRule()])
    findings = engine.lint_paths([OBS_DIR], root=OBS_DIR.parents[2])
    files = engine.collect_files([OBS_DIR])
    return findings, files


def test_package_docstring():
    assert repro.obs.__doc__, "repro.obs package docstring missing"


def test_every_public_object_documented():
    findings, _ = _lint_obs()
    messages = [f.format_text() for f in findings]
    assert not messages, f"missing docstrings: {messages}"


def test_full_coverage_is_nontrivial():
    # The rule must actually be scanning the whole obs surface, not an
    # empty or misresolved directory.
    _, files = _lint_obs()
    assert len(files) >= 5, "lint should see the whole obs package"
    total_defs = sum(
        source.count("def ") + source.count("class ")
        for source in (p.read_text() for p in files)
    )
    assert total_defs > 40, "lint should see the whole obs surface"
