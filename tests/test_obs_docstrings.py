"""Docstring-coverage lint for :mod:`repro.obs`.

The observability package is operator-facing API; every public module,
class, method and function must carry a docstring.  This test is the
"docstring-coverage lint" step of the verify path (``scripts/verify.sh``
runs it via ``pytest tests/test_obs*.py``).
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import repro.obs


def iter_public_objects():
    """Yield (qualified name, object) for everything public in repro.obs."""
    for info in pkgutil.walk_packages(repro.obs.__path__, prefix="repro.obs."):
        module = importlib.import_module(info.name)
        yield info.name, module
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue
            if inspect.isclass(obj):
                yield f"{info.name}.{name}", obj
                for mname, member in vars(obj).items():
                    if mname.startswith("_"):
                        continue
                    if inspect.isfunction(member) or isinstance(member, property):
                        yield f"{info.name}.{name}.{mname}", member
            elif inspect.isfunction(obj):
                yield f"{info.name}.{name}", obj


def test_package_docstring():
    assert repro.obs.__doc__, "repro.obs package docstring missing"


def test_every_public_object_documented():
    undocumented = [
        qualname
        for qualname, obj in iter_public_objects()
        if not inspect.getdoc(obj)
    ]
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_full_coverage_is_nontrivial():
    names = [q for q, _ in iter_public_objects()]
    assert len(names) > 40, "lint should see the whole obs surface"
