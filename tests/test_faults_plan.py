"""Tests for the declarative fault model, injector and retry machinery."""

import numpy as np
import pytest

from repro.exceptions import FaultPlanError
from repro.faults import NULL_PLAN, FaultInjector, FaultPlan, RetryPolicy
from repro.faults.injector import FaultKind, ensure_injector
from repro.faults.retry import RetryBudget, deliver_with_retry
from repro.util.rng import ensure_rng


class TestFaultPlan:
    def test_default_plan_is_null(self):
        assert FaultPlan().is_null
        assert NULL_PLAN.is_null

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop": 0.1},
            {"delay": 0.1},
            {"duplicate": 0.1},
            {"crash_mid_round": 1},
            {"transfer_abort": 0.1},
        ],
    )
    def test_any_channel_makes_plan_non_null(self, kwargs):
        assert not FaultPlan(**kwargs).is_null

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop": 1.5},
            {"drop": -0.1},
            {"delay": 2.0},
            {"duplicate": -1.0},
            {"transfer_abort": 1.01},
            {"delay_max": -0.5},
            {"crash_mid_round": -1},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(FaultPlanError):
            FaultPlan(**kwargs)

    def test_plan_is_frozen(self):
        plan = FaultPlan(drop=0.1)
        with pytest.raises(AttributeError):
            plan.drop = 0.5


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -0.1},
            {"base_delay": 2.0, "max_delay": 1.0},
            {"jitter": 1.5},
            {"jitter": -0.1},
            {"phase_budget": -1.0},
            {"lbi_staleness_rounds": -1},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(FaultPlanError):
            RetryPolicy(**kwargs)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.1, max_delay=0.5, jitter=0.0
        )
        gen = ensure_rng(0)
        delays = [policy.backoff_delay(k, gen) for k in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_bounded_below_and_above(self):
        policy = RetryPolicy(base_delay=0.2, max_delay=0.2, jitter=0.5)
        gen = ensure_rng(1)
        for _ in range(100):
            d = policy.backoff_delay(1, gen)
            assert 0.1 <= d <= 0.2

    def test_backoff_is_seeded(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.backoff_delay(k, ensure_rng(9)) for k in range(1, 4)]
        b = [policy.backoff_delay(k, ensure_rng(9)) for k in range(1, 4)]
        assert a == b

    def test_backoff_rejects_bad_attempt(self):
        with pytest.raises(FaultPlanError):
            RetryPolicy().backoff_delay(0, ensure_rng(0))


class TestRetryBudget:
    def test_charge_within_limit(self):
        budget = RetryBudget(1.0)
        assert budget.charge(0.6)
        assert budget.remaining == pytest.approx(0.4)

    def test_charge_over_limit_refused(self):
        budget = RetryBudget(1.0)
        assert budget.charge(0.9)
        assert not budget.charge(0.2)
        assert budget.spent == pytest.approx(0.9)

    def test_remaining_never_negative(self):
        assert RetryBudget(0.0).remaining == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(FaultPlanError):
            RetryBudget(-1.0)
        with pytest.raises(FaultPlanError):
            RetryBudget(1.0).charge(-0.5)


class TestDeliverWithRetry:
    def test_clean_send_delivers_first_attempt(self):
        out = deliver_with_retry(
            RetryPolicy(), lambda attempt: False, ensure_rng(0), RetryBudget(10)
        )
        assert out.delivered and out.attempts == 1
        assert out.simulated_delay == 0.0

    def test_persistent_drop_exhausts_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        out = deliver_with_retry(
            policy, lambda attempt: True, ensure_rng(0), RetryBudget(10)
        )
        assert not out.delivered
        assert out.attempts == 3

    def test_transient_drop_recovers(self):
        out = deliver_with_retry(
            RetryPolicy(max_attempts=4),
            lambda attempt: attempt <= 2,
            ensure_rng(0),
            RetryBudget(10),
        )
        assert out.delivered and out.attempts == 3
        assert out.simulated_delay > 0  # paid two backoffs

    def test_exhausted_budget_stops_retries_early(self):
        policy = RetryPolicy(max_attempts=10, base_delay=1.0, max_delay=1.0)
        out = deliver_with_retry(
            policy, lambda attempt: True, ensure_rng(0), RetryBudget(0.0)
        )
        assert not out.delivered
        assert out.attempts == 1  # first retry's backoff did not fit

    def test_extra_delay_is_charged_but_never_blocks(self):
        budget = RetryBudget(10.0)
        out = deliver_with_retry(
            RetryPolicy(),
            lambda attempt: False,
            ensure_rng(0),
            budget,
            extra_delay=2.5,
        )
        assert out.delivered
        assert out.simulated_delay == pytest.approx(2.5)
        assert budget.spent == pytest.approx(2.5)


class TestFaultInjector:
    def test_same_plan_same_decisions_and_signature(self):
        plan = FaultPlan(seed=11, drop=0.5, transfer_abort=0.5)

        def drive(inj):
            return (
                [inj.drop("lbi", f"m{i}") for i in range(50)],
                [inj.abort_transfer(i) for i in range(50)],
                inj.signature(),
            )

        assert drive(FaultInjector(plan)) == drive(FaultInjector(plan))

    def test_different_seeds_differ(self):
        a = FaultInjector(FaultPlan(seed=1, drop=0.5))
        b = FaultInjector(FaultPlan(seed=2, drop=0.5))
        for i in range(100):
            a.drop("lbi", f"m{i}")
            b.drop("lbi", f"m{i}")
        assert a.signature() != b.signature()

    def test_channels_are_independent_streams(self):
        plan = FaultPlan(seed=5, drop=0.5, transfer_abort=0.5)
        noisy = FaultInjector(plan)
        quiet = FaultInjector(plan)
        for i in range(200):  # traffic on the drop channel only
            noisy.drop("vsa", f"m{i}")
        assert [noisy.abort_transfer(i) for i in range(50)] == [
            quiet.abort_transfer(i) for i in range(50)
        ]

    def test_zero_probability_channels_never_fire_or_log(self):
        inj = FaultInjector(FaultPlan(seed=0))
        assert not inj.drop("lbi", "m")
        assert inj.delay("lbi", "m") == 0.0
        assert not inj.duplicate("lbi", "m")
        assert not inj.abort_transfer(1)
        assert inj.injected == 0

    def test_log_records_fired_faults_in_order(self):
        inj = FaultInjector(FaultPlan(seed=3, drop=1.0))
        inj.drop("lbi", "a")
        inj.drop("vsa", "b")
        assert [f.seq for f in inj.log] == [0, 1]
        assert all(f.kind is FaultKind.DROP for f in inj.log)
        assert [f.phase for f in inj.log] == ["lbi", "vsa"]

    def test_signature_tracks_log_growth(self):
        inj = FaultInjector(FaultPlan(seed=3, drop=1.0))
        empty = inj.signature()
        inj.drop("lbi", "a")
        assert inj.signature() != empty

    def test_crash_budget_and_slots(self):
        inj = FaultInjector(FaultPlan(seed=7, crash_mid_round=2))
        slots = inj.plan_crash_slots(10)
        assert len(slots) == 2
        assert all(0 <= s <= 10 for s in slots)
        assert slots == sorted(slots)
        assert inj.crashes_remaining == 2  # planning does not consume
        assert inj.pick_victim([4, 5, 6]) in (4, 5, 6)
        assert inj.crashes_remaining == 1
        assert inj.pick_victim([]) is None  # wasted slot still consumes
        assert inj.crashes_remaining == 0
        assert inj.pick_victim([1]) is None  # budget exhausted
        inj.reset_round()
        assert inj.crashes_remaining == 2

    def test_delay_channel_bounded_by_delay_max(self):
        inj = FaultInjector(FaultPlan(seed=2, delay=1.0, delay_max=3.0))
        delays = [inj.delay("lbi", f"m{i}") for i in range(50)]
        assert all(0.0 <= d <= 3.0 for d in delays)
        assert inj.injected == 50


class TestEnsureInjector:
    def test_none_and_null_plan_coerce_to_none(self):
        assert ensure_injector(None) is None
        assert ensure_injector(NULL_PLAN) is None
        assert ensure_injector(FaultPlan()) is None

    def test_plan_coerces_to_injector(self):
        inj = ensure_injector(FaultPlan(seed=1, drop=0.2))
        assert isinstance(inj, FaultInjector)

    def test_injector_passes_through_identically(self):
        inj = FaultInjector(FaultPlan(seed=1, drop=0.2))
        assert ensure_injector(inj) is inj
