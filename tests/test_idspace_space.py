"""Unit tests for the modular identifier space."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import IdentifierSpaceError
from repro.idspace import IdentifierSpace


class TestConstruction:
    def test_default_is_32_bits(self):
        assert IdentifierSpace().bits == 32

    def test_size(self):
        assert IdentifierSpace(bits=4).size == 16

    def test_max_id(self):
        assert IdentifierSpace(bits=4).max_id == 15

    @pytest.mark.parametrize("bits", [0, -1, 257])
    def test_invalid_bits_rejected(self, bits):
        with pytest.raises(IdentifierSpaceError):
            IdentifierSpace(bits=bits)

    def test_non_integer_bits_rejected(self):
        with pytest.raises(IdentifierSpaceError):
            IdentifierSpace(bits=3.5)

    def test_equality_by_bits(self):
        assert IdentifierSpace(8) == IdentifierSpace(8)
        assert IdentifierSpace(8) != IdentifierSpace(9)


class TestContainsValidate:
    def test_contains_in_range(self, space8):
        assert space8.contains(0)
        assert space8.contains(255)

    def test_contains_out_of_range(self, space8):
        assert not space8.contains(256)
        assert not space8.contains(-1)

    def test_contains_non_integer(self, space8):
        assert not space8.contains(1.5)

    def test_validate_passes_through(self, space8):
        assert space8.validate(17) == 17

    def test_validate_raises(self, space8):
        with pytest.raises(IdentifierSpaceError):
            space8.validate(256)


class TestDistances:
    def test_cw_distance_simple(self, space8):
        assert space8.distance_cw(10, 20) == 10

    def test_cw_distance_wraps(self, space8):
        assert space8.distance_cw(250, 5) == 11

    def test_cw_distance_self_is_zero(self, space8):
        assert space8.distance_cw(42, 42) == 0

    def test_shortest_distance_picks_min(self, space8):
        assert space8.distance(0, 200) == 56

    def test_shortest_distance_symmetric(self, space8):
        assert space8.distance(3, 77) == space8.distance(77, 3)

    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_cw_distances_are_antisymmetric_mod_size(self, a, b):
        space = IdentifierSpace(bits=8)
        assert (space.distance_cw(a, b) + space.distance_cw(b, a)) % 256 == 0


class TestArcs:
    def test_in_arc_simple(self, space8):
        assert space8.in_arc(5, 3, 4)
        assert not space8.in_arc(7, 3, 4)

    def test_in_arc_wrapping(self, space8):
        assert space8.in_arc(1, 250, 10)
        assert not space8.in_arc(100, 250, 10)

    def test_empty_arc_contains_nothing(self, space8):
        assert not space8.in_arc(3, 3, 0)

    def test_full_arc_contains_everything(self, space8):
        assert space8.in_arc(123, 77, 256)

    def test_arc_length_out_of_range(self, space8):
        with pytest.raises(IdentifierSpaceError):
            space8.in_arc(0, 0, 257)

    def test_midpoint_simple(self, space8):
        assert space8.midpoint(10, 4) == 12

    def test_midpoint_paper_example(self):
        # Paper Section 3.1: region [3, 5] (length 3 inclusive) centers at 4.
        space = IdentifierSpace(bits=4)
        assert space.midpoint(3, 3) == 4

    def test_midpoint_wraps(self, space8):
        assert space8.midpoint(250, 12) == 0

    def test_midpoint_full_ring(self, space8):
        assert space8.midpoint(0, 256) == 128

    def test_wrap(self, space8):
        assert space8.wrap(256) == 0
        assert space8.wrap(-1) == 255

    @given(start=st.integers(0, 255), length=st.integers(1, 256))
    def test_midpoint_always_inside_arc(self, start, length):
        space = IdentifierSpace(bits=8)
        mid = space.midpoint(start, length)
        assert space.in_arc(mid, start, length)
