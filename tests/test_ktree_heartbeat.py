"""Tests for heartbeat-based failure detection and timed repair."""

import pytest

from repro.dht import ChordRing
from repro.exceptions import SimulationError
from repro.idspace import IdentifierSpace
from repro.ktree import KnaryTree
from repro.sim import HeartbeatMonitor


@pytest.fixture
def system():
    ring = ChordRing(IdentifierSpace(bits=12))
    ring.populate(10, 2, [1.0] * 10, rng=13)
    for vs in ring.virtual_servers:
        vs.load = 1.0
    tree = KnaryTree(ring, 2)
    tree.build_full()
    return ring, tree


class TestConfiguration:
    def test_invalid_interval(self, system):
        ring, tree = system
        with pytest.raises(SimulationError):
            HeartbeatMonitor(ring, tree, heartbeat_interval=0.0)

    def test_invalid_threshold(self, system):
        ring, tree = system
        with pytest.raises(SimulationError):
            HeartbeatMonitor(ring, tree, miss_threshold=0)


class TestQuietOperation:
    def test_heartbeats_flow_without_failures(self, system):
        ring, tree = system
        monitor = HeartbeatMonitor(ring, tree, heartbeat_interval=1.0)
        trace = monitor.run(until=5.0)
        assert trace.heartbeats_sent > 0
        assert trace.failures == []

    def test_heartbeat_count_scales_with_edges_and_rounds(self, system):
        ring, tree = system
        edges = sum(1 for n in tree.iter_nodes() for _ in n.materialized_children())
        monitor = HeartbeatMonitor(ring, tree, heartbeat_interval=1.0)
        trace = monitor.run(until=3.0)  # rounds at t=0,1,2,3
        assert trace.heartbeats_sent == 4 * edges


class TestFailureHandling:
    def test_crash_detected_within_bound(self, system):
        ring, tree = system
        monitor = HeartbeatMonitor(
            ring, tree, heartbeat_interval=1.0, miss_threshold=3
        )
        monitor.schedule_crash(0, at_time=2.5)
        trace = monitor.run(until=20.0)
        assert len(trace.failures) == 1
        event = trace.failures[0]
        assert event.crashed_node == 0
        assert event.detection_latency <= monitor.detection_bound
        assert event.detection_latency >= 3.0  # at least threshold x interval

    def test_tree_valid_after_timed_repair(self, system):
        ring, tree = system
        monitor = HeartbeatMonitor(ring, tree, heartbeat_interval=1.0)
        monitor.schedule_crash(3, at_time=1.0)
        monitor.run(until=15.0)
        tree.check_invariants()
        ring.check_invariants()

    def test_repair_passes_bounded_by_height(self, system):
        ring, tree = system
        monitor = HeartbeatMonitor(ring, tree, heartbeat_interval=1.0)
        monitor.schedule_crash(5, at_time=1.0)
        trace = monitor.run(until=15.0)
        assert trace.max_repair_passes <= tree.height() + 2

    def test_multiple_crashes(self, system):
        ring, tree = system
        monitor = HeartbeatMonitor(ring, tree, heartbeat_interval=1.0)
        monitor.schedule_crash(1, at_time=1.0)
        monitor.schedule_crash(7, at_time=6.0)
        trace = monitor.run(until=30.0)
        assert len(trace.failures) == 2
        assert {f.crashed_node for f in trace.failures} == {1, 7}
        tree.check_invariants()

    def test_repair_latency_recorded(self, system):
        ring, tree = system
        monitor = HeartbeatMonitor(ring, tree, heartbeat_interval=0.5)
        monitor.schedule_crash(2, at_time=1.0)
        trace = monitor.run(until=20.0)
        event = trace.failures[0]
        assert event.repair_latency > 0
        assert event.repair_time > event.detect_time > event.crash_time
