"""Meta-tests: documentation references must match the repository.

These keep DESIGN.md / EXPERIMENTS.md / README.md honest: every bench
file they name exists, every registered experiment has a bench or
driver, and every example the README advertises is a runnable file.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def referenced_files(text: str, pattern: str) -> set[str]:
    return set(re.findall(pattern, text))


class TestExperimentsDoc:
    @pytest.fixture(scope="class")
    def text(self):
        return (REPO / "EXPERIMENTS.md").read_text()

    def test_all_named_benches_exist(self, text):
        for name in referenced_files(text, r"bench_[a-z0-9_]+\.py"):
            assert (REPO / "benchmarks" / name).exists(), f"missing {name}"

    def test_all_named_test_files_exist(self, text):
        for name in referenced_files(text, r"tests/test_[a-z0-9_]+\.py"):
            assert (REPO / name).exists(), f"missing {name}"

    def test_every_figure_has_a_section(self, text):
        for fig in ("Figure 4", "Figure 5", "Figure 6", "Figure 7", "Figure 8"):
            assert fig in text


class TestDesignDoc:
    @pytest.fixture(scope="class")
    def text(self):
        return (REPO / "DESIGN.md").read_text()

    def test_all_named_benches_exist(self, text):
        for name in referenced_files(text, r"bench_[a-z0-9_]+\.py"):
            assert (REPO / "benchmarks" / name).exists(), f"missing {name}"

    def test_named_packages_exist(self, text):
        for pkg in referenced_files(text, r"`repro\.([a-z_.]+)`"):
            path = REPO / "src" / "repro" / Path(*pkg.split("."))
            assert (
                path.with_suffix(".py").exists() or (path / "__init__.py").exists()
            ), f"missing repro.{pkg}"

    def test_paper_identity_check_present(self, text):
        assert "Paper identity check" in text


class TestReadme:
    @pytest.fixture(scope="class")
    def text(self):
        return (REPO / "README.md").read_text()

    def test_advertised_examples_exist(self, text):
        for name in referenced_files(text, r"`([a-z_]+\.py)`"):
            assert any(
                (REPO / d / name).exists()
                for d in ("examples", "scripts", "benchmarks")
            ), f"missing {name}"

    def test_docs_links_exist(self, text):
        for name in referenced_files(text, r"docs/[a-z-]+\.md"):
            assert (REPO / name).exists(), f"missing {name}"


class TestRegistryCoverage:
    def test_every_figure_experiment_has_a_bench(self):
        from repro.experiments.registry import EXPERIMENTS

        bench_text = "\n".join(
            p.read_text() for p in (REPO / "benchmarks").glob("bench_*.py")
        )
        for name in EXPERIMENTS:
            assert (
                f"experiments import {name}" in bench_text
                or f"experiments.{name}" in bench_text
                or f"import {name}" in bench_text
                or name in bench_text
            ), f"experiment {name} has no benchmark"

    def test_all_benches_collected_by_pytest_config(self):
        import tomllib

        cfg = tomllib.loads((REPO / "pyproject.toml").read_text())
        patterns = cfg["tool"]["pytest"]["ini_options"]["python_files"]
        assert "bench_*.py" in patterns
