"""Golden regression tests: exact headline numbers for fixed seeds.

These pin the *behaviour* of the full pipeline: any change to RNG
consumption order, classification, selection, pairing or transfer logic
shifts these numbers and must be a conscious decision (update the
constants in the same commit that changes behaviour, with a rationale).

Scalars only — no large snapshot files.  Tolerances are tight relative
(1e-9) because every computation here is deterministic given the seed.
"""

import pytest

from repro.core import BalancerConfig, LoadBalancer
from repro.workloads import GaussianLoadModel, ParetoLoadModel, build_scenario


def run_gaussian():
    sc = build_scenario(
        GaussianLoadModel(mu=1e6, sigma=2e3), num_nodes=512, vs_per_node=5, rng=42
    )
    lb = LoadBalancer(
        sc.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=7
    )
    return lb.run_round()


class TestGoldenGaussian:
    @pytest.fixture(scope="class")
    def report(self):
        return run_gaussian()

    def test_heavy_before(self, report):
        assert report.heavy_before == 401

    def test_heavy_after(self, report):
        assert report.heavy_after == 0

    def test_transfer_count(self, report):
        assert len(report.transfers) == 1426

    def test_moved_load(self, report):
        assert report.moved_load == pytest.approx(666589.0128607354, rel=1e-9)

    def test_system_lbi(self, report):
        assert report.system_lbi.total_load == pytest.approx(
            995299.0012687388, rel=1e-9
        )
        assert report.system_lbi.total_capacity == pytest.approx(58472.0)

    def test_tree_height(self, report):
        assert report.tree_height == 20

    def test_repeatability(self, report):
        again = run_gaussian()
        assert again.moved_load == pytest.approx(report.moved_load, rel=1e-12)
        assert len(again.transfers) == len(report.transfers)


class TestGoldenPareto:
    @pytest.fixture(scope="class")
    def report(self):
        sc = build_scenario(
            ParetoLoadModel(mu=1e6), num_nodes=256, vs_per_node=5, rng=13
        )
        lb = LoadBalancer(
            sc.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=7
        )
        return lb.run_round()

    def test_counts_stable(self, report):
        # One Pareto giant exceeds every spare capacity and stays heavy.
        assert (report.heavy_before, report.heavy_after) == (180, 1)

    def test_transfer_count_stable(self, report):
        assert len(report.transfers) == 579

    def test_moved_load_stable(self, report):
        assert report.moved_load == pytest.approx(691331.5860312285, rel=1e-9)
