"""Tests for the Pastry-style prefix router."""

import math

import numpy as np
import pytest

from repro.core import BalancerConfig, LoadBalancer
from repro.dht import ChordRing
from repro.dht.pastry import PastryRouter
from repro.exceptions import DHTError
from repro.idspace import IdentifierSpace
from repro.workloads import GaussianLoadModel, build_scenario


@pytest.fixture(scope="module")
def ring():
    r = ChordRing(IdentifierSpace(bits=16))
    r.populate(64, 2, [1.0] * 64, rng=7)
    return r


@pytest.fixture(scope="module")
def router(ring):
    return PastryRouter(ring, digit_bits=4, leaf_set_size=8)


class TestConstruction:
    def test_digit_layout(self, router):
        assert router.num_digits == 4  # 16 bits / 4-bit digits

    def test_digit_bits_must_divide_width(self, ring):
        with pytest.raises(DHTError):
            PastryRouter(ring, digit_bits=5)

    def test_leaf_set_size_validated(self, ring):
        with pytest.raises(DHTError):
            PastryRouter(ring, leaf_set_size=3)

    def test_digits_of_roundtrip(self, router):
        ident = 0xA3F1
        assert router.digits_of(ident) == (0xA, 0x3, 0xF, 0x1)

    def test_shared_prefix(self, router):
        assert router.shared_prefix_len(0xA3F1, 0xA3C0) == 2
        assert router.shared_prefix_len(0xA3F1, 0xA3F1) == 4
        assert router.shared_prefix_len(0x0000, 0x8000) == 0


class TestOwnership:
    def test_owner_is_numerically_closest(self, ring, router):
        gen = np.random.default_rng(0)
        ids = [vs.vs_id for vs in ring.virtual_servers]
        for key in gen.integers(0, ring.space.size, size=60).tolist():
            owner = router.owner(int(key))
            best = min(ids, key=lambda v: router.numeric_distance(v, int(key)))
            assert router.numeric_distance(owner.vs_id, int(key)) == (
                router.numeric_distance(best, int(key))
            )

    def test_exact_id_owns_itself(self, ring, router):
        vs = ring.virtual_servers[3]
        assert router.owner(vs.vs_id) is vs


class TestLeafSet:
    def test_leaf_set_size(self, ring, router):
        vs = ring.virtual_servers[0]
        assert len(router.leaf_set(vs)) == 8

    def test_leaves_are_ring_adjacent(self, ring, router):
        vss = ring.virtual_servers
        vs = vss[10]
        expected = {vss[(10 + off) % len(vss)].vs_id for off in (-4, -3, -2, -1, 1, 2, 3, 4)}
        assert set(router.leaf_set(vs)) == expected

    def test_unknown_vs_rejected(self, router):
        with pytest.raises(DHTError):
            router.leaf_set(123456789 % (1 << 16) + 1)


class TestRoutingTable:
    def test_entry_shares_prefix_and_digit(self, ring, router):
        vs = ring.virtual_servers[0]
        for row in range(router.num_digits):
            for digit in range(4):
                entry = router.routing_table_entry(vs.vs_id, row, digit)
                if entry is None:
                    continue
                assert router.shared_prefix_len(entry, vs.vs_id) >= row
                assert router.digits_of(entry)[row] == digit

    def test_invalid_row_digit(self, router, ring):
        vs = ring.virtual_servers[0]
        with pytest.raises(DHTError):
            router.routing_table_entry(vs.vs_id, 99, 0)
        with pytest.raises(DHTError):
            router.routing_table_entry(vs.vs_id, 0, 999)


class TestRouting:
    def test_route_reaches_owner(self, ring, router):
        gen = np.random.default_rng(1)
        for _ in range(80):
            start = ring.virtual_servers[int(gen.integers(128))]
            key = int(gen.integers(0, ring.space.size))
            path = router.route(start, key)
            assert path[0] == start.vs_id
            assert path[-1] == router.owner(key).vs_id

    def test_route_to_self(self, ring, router):
        vs = ring.virtual_servers[5]
        assert router.route_hops(vs, vs.vs_id) == 0

    def test_logarithmic_hops(self, ring, router):
        """Pastry bound: O(log_2^b N) hops (+ leaf-set last hop)."""
        gen = np.random.default_rng(2)
        n = ring.num_virtual_servers
        bound = math.ceil(math.log(n, 16)) + 3
        hops = []
        for _ in range(60):
            start = ring.virtual_servers[int(gen.integers(n))]
            key = int(gen.integers(0, ring.space.size))
            hops.append(router.route_hops(start, key))
        assert max(hops) <= bound

    def test_paths_visit_valid_nodes(self, ring, router):
        path = router.route(ring.virtual_servers[0], 0x8F21)
        for vs_id in path:
            ring.vs(vs_id)


class TestBalancerOnPastry:
    def test_balancer_agnostic_to_routing_substrate(self):
        """The paper's claim: the scheme adapts to Pastry.

        The balancer consumes ownership, which Chord and Pastry both
        derive from the same ring; a Pastry router over the balanced ring
        must still resolve every key, and the balance outcome is
        unchanged because transfers never alter identifiers.
        """
        sc = build_scenario(
            GaussianLoadModel(mu=1e5, sigma=300.0), num_nodes=128, vs_per_node=3, rng=11
        )
        router_before = PastryRouter(sc.ring, digit_bits=4)
        lb = LoadBalancer(
            sc.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=3
        )
        report = lb.run_round()
        assert report.heavy_after <= report.heavy_before // 10
        # Identifiers unchanged by VST => the same router still routes.
        gen = np.random.default_rng(4)
        for _ in range(20):
            key = int(gen.integers(0, sc.ring.space.size))
            start = sc.ring.virtual_servers[int(gen.integers(128))]
            path = router_before.route(start, key)
            assert path[-1] == router_before.owner(key).vs_id
