"""Tests for CSV/JSON figure-data export."""

import csv
import json

import pytest

from repro.analysis import figure4_data, figure56_data, figure78_data
from repro.analysis.export import (
    export_figure4_csv,
    export_figure56_csv,
    export_figure78_csv,
    export_figure78_json,
)
from repro.core import BalancerConfig, LoadBalancer
from repro.workloads import GaussianLoadModel, build_scenario
from tests.conftest import MINI_TS


@pytest.fixture(scope="module")
def plain_report():
    sc = build_scenario(
        GaussianLoadModel(mu=1e5, sigma=300.0), num_nodes=40, vs_per_node=3, rng=101
    )
    lb = LoadBalancer(
        sc.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=1
    )
    return lb.run_round()


@pytest.fixture(scope="module")
def fig78():
    reports = {}
    for mode in ("aware", "ignorant"):
        sc = build_scenario(
            GaussianLoadModel(mu=1e5, sigma=300.0),
            num_nodes=30,
            vs_per_node=3,
            topology_params=MINI_TS,
            rng=103,
        )
        lb = LoadBalancer(
            sc.ring,
            BalancerConfig(proximity_mode=mode, epsilon=0.05, grid_bits=3),
            topology=sc.topology,
            oracle=sc.oracle,
            rng=2,
        )
        reports[mode] = lb.run_round()
    return figure78_data(reports["aware"], reports["ignorant"], "mini")


class TestCsvExports:
    def test_figure4_roundtrip(self, plain_report, tmp_path):
        data = figure4_data(plain_report)
        out = export_figure4_csv(data, tmp_path / "fig4.csv")
        rows = list(csv.DictReader(out.open()))
        assert len(rows) == plain_report.num_nodes
        assert float(rows[0]["unit_load_before"]) == pytest.approx(
            data.unit_before[0], rel=1e-5
        )

    def test_figure56_rows(self, plain_report, tmp_path):
        data = figure56_data(plain_report, "gaussian")
        out = export_figure56_csv(data, tmp_path / "fig5.csv")
        rows = list(csv.DictReader(out.open()))
        assert len(rows) == len(data.categories)
        shares = [float(r["share_after"]) for r in rows]
        assert sum(shares) == pytest.approx(1.0, abs=1e-4)

    def test_figure78_histogram(self, fig78, tmp_path):
        out = export_figure78_csv(fig78, tmp_path / "fig7.csv")
        rows = list(csv.DictReader(out.open()))
        assert len(rows) == len(fig78.bin_edges) - 1
        aware_total = sum(float(r["aware_fraction"]) for r in rows)
        assert aware_total == pytest.approx(1.0, abs=1e-4)

    def test_creates_parent_dirs(self, plain_report, tmp_path):
        data = figure4_data(plain_report)
        out = export_figure4_csv(data, tmp_path / "deep" / "dir" / "fig4.csv")
        assert out.exists()


class TestJsonExport:
    def test_figure78_json_payload(self, fig78, tmp_path):
        out = export_figure78_json(fig78, tmp_path / "fig7.json")
        payload = json.loads(out.read_text())
        assert payload["topology"] == "mini"
        assert len(payload["aware_hist"]) == len(payload["bin_edges"]) - 1
        assert payload["aware_cdf"]["p"][-1] == pytest.approx(1.0)
        assert set(payload["aware_within"]) == set(payload["ignorant_within"])
