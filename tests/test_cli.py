"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "fig4"])
        assert args.experiment == "fig4"
        assert args.scale == "quick"

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "fig4", "--nodes", "128", "--seed", "9", "--epsilon", "0.1"]
        )
        assert args.nodes == 128
        assert args.seed == 9
        assert args.epsilon == 0.1

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "timing" in out

    def test_run_fig4_small(self, capsys):
        rc = main(["run", "fig4", "--nodes", "96", "--seed", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "completed" in out

    def test_run_timing_small(self, capsys):
        rc = main(["run", "timing", "--nodes", "96"])
        assert rc == 0
        assert "Timing claim" in capsys.readouterr().out

    def test_run_unknown_experiment(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            main(["run", "nope"])


class TestPlotAndReport:
    def test_run_with_plot(self, capsys):
        rc = main(["run", "fig4", "--nodes", "96", "--plot"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "unit load percentiles" in out

    def test_run_with_export(self, capsys, tmp_path):
        rc = main(["run", "fig4", "--nodes", "96", "--export", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig4.csv").exists()

    def test_report_command(self, capsys, tmp_path):
        out_file = tmp_path / "R.md"
        rc = main(["report", "-o", str(out_file), "--only", "fig4"])
        assert rc == 0
        text = out_file.read_text()
        assert "# Reproduction report" in text
        assert "fig4" in text

    def test_plot_for_experiment_without_figure(self, capsys):
        rc = main(["run", "timing", "--nodes", "96", "--plot"])
        assert rc == 0  # silently no plot for table-only experiments


class TestObservabilityFlags:
    def test_trace_flag_writes_jsonl(self, capsys, tmp_path):
        import json

        trace = tmp_path / "fig4.jsonl"
        rc = main(["run", "fig4", "--nodes", "96", "--trace", str(trace)])
        assert rc == 0
        assert f"wrote {trace}" in capsys.readouterr().out
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(r["name"] == "round" and r["kind"] == "span_start" for r in records)
        assert any(r["name"] == "vst.transfer" for r in records)

    def test_metrics_out_flag_writes_snapshot(self, capsys, tmp_path):
        import json

        out = tmp_path / "metrics.json"
        rc = main(["run", "fig4", "--nodes", "96", "--metrics-out", str(out)])
        assert rc == 0
        snap = json.loads(out.read_text())
        assert snap["counters"]["balancer.rounds"] >= 1
        assert snap["histograms"]["lbi.seconds"]["count"] >= 1

    def test_flags_restore_process_defaults(self, capsys, tmp_path):
        from repro.obs import NULL_TRACER, current_metrics, current_tracer

        rc = main(
            ["run", "fig4", "--nodes", "96",
             "--trace", str(tmp_path / "t.jsonl"),
             "--metrics-out", str(tmp_path / "m.json")]
        )
        assert rc == 0
        assert current_tracer() is NULL_TRACER
        assert current_metrics() is None
