"""Unit + property tests for ring regions (arcs)."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import RegionError
from repro.idspace import IdentifierSpace, Region

SPACE = IdentifierSpace(bits=8)


def region(start, length, space=SPACE):
    return Region(space, start, length)


class TestConstruction:
    def test_full_ring(self):
        r = Region.full(SPACE)
        assert r.length == 256
        assert r.is_full_ring

    def test_from_endpoints(self):
        r = Region.from_endpoints(SPACE, 10, 20)
        assert (r.start, r.length) == (10, 10)

    def test_from_endpoints_wrapping(self):
        r = Region.from_endpoints(SPACE, 250, 6)
        assert (r.start, r.length) == (250, 12)

    def test_from_endpoints_equal_means_full(self):
        assert Region.from_endpoints(SPACE, 5, 5).is_full_ring

    @pytest.mark.parametrize("length", [0, -1, 257])
    def test_invalid_length(self, length):
        with pytest.raises(RegionError):
            region(0, length)

    def test_end_property(self):
        assert region(250, 12).end == 6

    def test_fraction(self):
        assert region(0, 64).fraction == 0.25


class TestContains:
    def test_contains_start(self):
        assert region(5, 10).contains(5)

    def test_excludes_end(self):
        assert not region(5, 10).contains(15)

    def test_wrap_contains(self):
        r = region(250, 12)
        assert r.contains(255)
        assert r.contains(0)
        assert not r.contains(100)

    def test_full_contains_all(self):
        assert Region.full(SPACE).contains(200)


class TestCovers:
    def test_covers_subregion(self):
        assert region(10, 20).covers(region(12, 5))

    def test_covers_itself(self):
        assert region(10, 20).covers(region(10, 20))

    def test_does_not_cover_overhang(self):
        assert not region(10, 20).covers(region(25, 10))

    def test_covers_wrapping(self):
        assert region(250, 20).covers(region(255, 5))

    def test_full_covers_anything(self):
        assert Region.full(SPACE).covers(region(77, 100))

    def test_partial_never_covers_full(self):
        assert not region(0, 255).covers(Region.full(SPACE))

    def test_paper_leaf_example(self):
        # Paper: KT node region [3,5] is covered by VS region [3,6]
        # (inclusive intervals -> half-open [3,6) in [3,7)).
        kt = Region(SPACE, 3, 3)
        vs = Region(SPACE, 3, 4)
        assert vs.covers(kt)

    def test_cross_space_raises(self):
        other = Region(IdentifierSpace(bits=4), 0, 4)
        with pytest.raises(RegionError):
            region(0, 10).covers(other)


class TestOverlaps:
    def test_disjoint(self):
        assert not region(0, 10).overlaps(region(20, 10))

    def test_touching_half_open(self):
        # [0,10) and [10,20) share no identifier.
        assert not region(0, 10).overlaps(region(10, 10))

    def test_overlapping(self):
        assert region(0, 15).overlaps(region(10, 10))

    def test_contained(self):
        assert region(0, 20).overlaps(region(5, 5))

    def test_full_overlaps_all(self):
        assert Region.full(SPACE).overlaps(region(7, 1))


class TestSplit:
    def test_split_even(self):
        parts = region(0, 12).split(3)
        assert [(p.start, p.length) for p in parts] == [(0, 4), (4, 4), (8, 4)]

    def test_split_remainder_goes_first(self):
        parts = region(0, 13).split(3)
        assert [p.length for p in parts] == [5, 4, 4]

    def test_split_wrapping(self):
        parts = region(250, 12).split(2)
        assert [(p.start, p.length) for p in parts] == [(250, 6), (0, 6)]

    def test_split_full_ring(self):
        parts = Region.full(SPACE).split(2)
        assert [(p.start, p.length) for p in parts] == [(0, 128), (128, 128)]

    def test_split_too_small(self):
        with pytest.raises(RegionError):
            region(0, 2).split(3)

    def test_split_degree_must_be_at_least_two(self):
        with pytest.raises(RegionError):
            region(0, 10).split(1)

    @given(
        start=st.integers(0, 255),
        length=st.integers(2, 256),
        k=st.integers(2, 8),
    )
    def test_split_tiles_region_exactly(self, start, length, k):
        if length < k:
            return
        r = Region(SPACE, start, length)
        parts = r.split(k)
        # Parts are contiguous, non-overlapping, and sum to the region.
        assert sum(p.length for p in parts) == length
        cursor = start
        for p in parts:
            assert p.start == cursor
            assert r.covers(p)
            cursor = SPACE.wrap(cursor + p.length)
        assert cursor == r.end

    @given(start=st.integers(0, 255), length=st.integers(1, 256))
    def test_center_inside(self, start, length):
        r = Region(SPACE, start, length)
        assert r.contains(r.center)


class TestSplitPartAndChildIndex:
    @given(
        start=st.integers(0, 255),
        length=st.integers(2, 256),
        k=st.integers(2, 8),
    )
    def test_split_part_matches_full_split(self, start, length, k):
        if length < k:
            return
        r = Region(SPACE, start, length)
        parts = r.split(k)
        for i in range(k):
            assert r.split_part(k, i) == parts[i]

    @given(
        start=st.integers(0, 255),
        length=st.integers(2, 256),
        k=st.integers(2, 8),
        offset=st.integers(0, 255),
    )
    def test_child_index_matches_containment_scan(self, start, length, k, offset):
        if length < k:
            return
        r = Region(SPACE, start, length)
        key = SPACE.wrap(start + offset % length)
        idx = r.child_index_for(k, key)
        parts = r.split(k)
        expected = next(i for i, p in enumerate(parts) if p.contains(key))
        assert idx == expected

    def test_child_index_outside_region_rejected(self):
        r = region(0, 10)
        with pytest.raises(RegionError):
            r.child_index_for(2, 20)

    def test_split_part_bad_index(self):
        with pytest.raises(RegionError):
            region(0, 10).split_part(2, 2)

    def test_split_part_too_small(self):
        with pytest.raises(RegionError):
            region(0, 2).split_part(3, 0)
