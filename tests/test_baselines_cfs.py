"""Tests for CFS-style shedding and its thrashing behaviour."""

import pytest

from repro.baselines import run_cfs_shedding
from repro.workloads import GaussianLoadModel, build_scenario


@pytest.fixture
def scenario():
    return build_scenario(
        GaussianLoadModel(mu=1e5, sigma=200.0), num_nodes=48, vs_per_node=4, rng=41
    )


class TestCFS:
    def test_sheds_load(self, scenario):
        result = run_cfs_shedding(scenario.ring, epsilon=0.05, max_rounds=3)
        assert result.removals > 0
        assert result.shed_load > 0

    def test_load_conserved(self, scenario):
        before = sum(n.load for n in scenario.ring.nodes)
        run_cfs_shedding(scenario.ring, epsilon=0.05, max_rounds=3)
        after = sum(vs.load for vs in scenario.ring.virtual_servers)
        assert after == pytest.approx(before)

    def test_thrashing_observed(self, scenario):
        """Removals push load onto successors: some previously non-heavy
        nodes must become heavy — the failure mode the paper cites."""
        result = run_cfs_shedding(scenario.ring, epsilon=0.05, max_rounds=5)
        assert result.total_thrash > 0

    def test_rounds_bounded(self, scenario):
        result = run_cfs_shedding(scenario.ring, epsilon=0.05, max_rounds=2)
        assert result.rounds <= 2

    def test_heavy_counts_recorded(self, scenario):
        result = run_cfs_shedding(scenario.ring, epsilon=0.05, max_rounds=3)
        assert result.heavy_before > 0
        assert result.heavy_after >= 0

    def test_ring_invariants_after_shedding(self, scenario):
        run_cfs_shedding(scenario.ring, epsilon=0.05, max_rounds=3)
        scenario.ring.check_invariants()

    def test_never_removes_last_vs(self):
        sc = build_scenario(
            GaussianLoadModel(mu=1e4, sigma=10.0), num_nodes=2, vs_per_node=1, rng=3
        )
        run_cfs_shedding(sc.ring, epsilon=0.0, max_rounds=5)
        assert sc.ring.num_virtual_servers >= 1
