"""Tests for the write-ahead transfer journal and the durable layer.

Covers the journal's durability contract in isolation: checksummed
round-trips, torn-tail truncation in every flavour a crash can leave
behind (partial line, corrupted line, out-of-sequence line, missing
final newline), replay validation (match, divergence, crash markers
bypassing the matcher) and the checkpoint-tail view the recovery
manager restores from.
"""

import json

import pytest

from repro.exceptions import RecoveryError
from repro.obs.sinks import JSONLSink
from repro.obs.trace import TraceRecord
from repro.recovery import JournalRecord, TransferJournal, resolve_state_dir
from repro.recovery.durable import STATE_DIR_ENV
from repro.recovery.journal import JOURNAL_KINDS, REPLAYABLE_KINDS


def _journal(tmp_path, name="journal.jsonl"):
    return TransferJournal(tmp_path / name)


class TestRecordFormat:
    def test_line_round_trip(self):
        record = JournalRecord(seq=0, kind="prepare", fields={"vs": 9, "load": "0x1.0p20"})
        parsed = JournalRecord.from_line(record.to_line(), expected_seq=0)
        assert parsed == record

    def test_checksum_covers_fields(self):
        line = JournalRecord(seq=0, kind="commit", fields={"vs": 1}).to_line()
        payload = json.loads(line)
        payload["vs"] = 2  # tamper without re-checksumming
        assert JournalRecord.from_line(json.dumps(payload), 0) is None

    def test_wrong_seq_rejected(self):
        line = JournalRecord(seq=3, kind="commit", fields={}).to_line()
        assert JournalRecord.from_line(line, expected_seq=0) is None

    def test_unknown_kind_rejected_at_parse_and_write(self, tmp_path):
        bogus = JournalRecord(seq=0, kind="frobnicate", fields={})
        assert JournalRecord.from_line(bogus.to_line(), 0) is None
        journal = _journal(tmp_path)
        with pytest.raises(RecoveryError):
            journal.record("frobnicate")
        journal.close()

    def test_replayable_kinds_subset(self):
        assert REPLAYABLE_KINDS < JOURNAL_KINDS
        assert "crash" not in REPLAYABLE_KINDS
        assert "checkpoint" not in REPLAYABLE_KINDS


class TestPersistence:
    def test_records_survive_reopen(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record("round_begin", round=0)
        journal.record("prepare", vs=7, source=1, target=2)
        journal.record("commit", vs=7)
        journal.record("round_end", round=0, digest="d" * 16)
        journal.close()

        reopened = _journal(tmp_path)
        assert [r.kind for r in reopened.entries] == [
            "round_begin",
            "prepare",
            "commit",
            "round_end",
        ]
        assert reopened.entries[1].fields == {"vs": 7, "source": 1, "target": 2}
        assert reopened.truncated_bytes == 0
        reopened.close()

    @pytest.mark.parametrize(
        "tail",
        [
            b'{"torn',  # partial JSON, no newline
            b'{"check":"0000000000000000","kind":"commit","seq":2}\n',  # bad checksum
            b"not json at all\n",
        ],
    )
    def test_torn_tail_truncated_on_open(self, tmp_path, tail):
        journal = _journal(tmp_path)
        journal.record("round_begin", round=0)
        journal.record("prepare", vs=1, source=0, target=1)
        journal.close()
        path = tmp_path / "journal.jsonl"
        good = path.read_bytes()
        path.write_bytes(good + tail)

        repaired = _journal(tmp_path)
        assert len(repaired.entries) == 2
        assert repaired.truncated_bytes == len(tail)
        assert path.read_bytes() == good  # durably truncated back
        repaired.record("commit", vs=1)  # appends resume at the right seq
        repaired.close()
        assert _journal(tmp_path).entries[-1].kind == "commit"

    def test_out_of_sequence_line_truncates_rest(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record("round_begin", round=0)
        journal.close()
        path = tmp_path / "journal.jsonl"
        # A valid record with the wrong seq, followed by a valid one:
        # everything from the first bad line onward must go.
        bad = JournalRecord(seq=5, kind="commit", fields={}).to_line()
        good_after = JournalRecord(seq=1, kind="commit", fields={}).to_line()
        path.write_bytes(
            path.read_bytes() + (bad + "\n" + good_after + "\n").encode()
        )
        repaired = _journal(tmp_path)
        assert [r.kind for r in repaired.entries] == ["round_begin"]
        repaired.close()

    def test_empty_file_is_valid(self, tmp_path):
        journal = _journal(tmp_path)
        assert len(journal) == 0
        assert journal.tail_after_last_checkpoint() == []
        journal.close()


class TestReplay:
    def _crashed_round(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record("checkpoint", round=1, digest="c" * 16)
        journal.record("round_begin", round=1)
        journal.record("prepare", vs=4, source=0, target=3)
        journal.record("commit", vs=4)
        return journal

    def test_tail_after_last_checkpoint(self, tmp_path):
        journal = self._crashed_round(tmp_path)
        tail = journal.tail_after_last_checkpoint()
        assert [r.kind for r in tail] == ["round_begin", "prepare", "commit"]
        journal.close()

    def test_replay_matches_without_rewriting(self, tmp_path):
        journal = self._crashed_round(tmp_path)
        before = len(journal)
        journal.begin_replay(journal.tail_after_last_checkpoint())
        assert journal.replaying
        journal.record("round_begin", round=1)
        journal.record("prepare", vs=4, source=0, target=3)
        journal.record("commit", vs=4)
        assert not journal.replaying
        assert len(journal) == before  # matched records are not re-written
        journal.record("round_end", round=1, digest="e" * 16)
        assert len(journal) == before + 1
        journal.close()

    def test_replay_divergence_raises(self, tmp_path):
        journal = self._crashed_round(tmp_path)
        journal.begin_replay(journal.tail_after_last_checkpoint())
        journal.record("round_begin", round=1)
        with pytest.raises(RecoveryError, match="replay divergence"):
            journal.record("prepare", vs=99, source=0, target=3)
        journal.close()

    def test_crash_markers_bypass_replay(self, tmp_path):
        journal = self._crashed_round(tmp_path)
        journal.begin_replay(journal.tail_after_last_checkpoint())
        # A double crash during recovery writes its marker while the
        # replay tail is still armed; the matcher must not see it.
        journal.record_crash(1, "mid-vst-batch")
        assert journal.replaying
        assert journal.entries[-1].kind == "crash"
        assert journal.crash_markers(journal.entries) == [(1, "mid-vst-batch")]
        journal.close()

    def test_begin_replay_filters_markers(self, tmp_path):
        journal = self._crashed_round(tmp_path)
        journal.record_crash(1, "post-lbi-fold")
        tail = journal.tail_after_last_checkpoint()
        journal.begin_replay(tail)
        journal.record("round_begin", round=1)
        journal.record("prepare", vs=4, source=0, target=3)
        journal.record("commit", vs=4)
        assert not journal.replaying  # the crash marker was never expected
        journal.close()


class TestStateDirAndSink:
    def test_resolve_state_dir_env_and_explicit(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STATE_DIR_ENV, str(tmp_path / "from-env"))
        assert resolve_state_dir(None) == tmp_path / "from-env"
        assert (tmp_path / "from-env").is_dir()
        explicit = resolve_state_dir(tmp_path / "explicit")
        assert explicit == tmp_path / "explicit"
        assert explicit.is_dir()

    @staticmethod
    def _record(name, seq):
        return TraceRecord(
            kind="event", name=name, span_id=0, parent_id=None, seq=seq, t=0.0
        )

    def test_jsonl_sink_append_mode(self, tmp_path):
        path = tmp_path / "events.jsonl"
        first = JSONLSink(path)
        first.emit(self._record("a", 0))
        first.close()
        second = JSONLSink(path, append=True, sync=True)
        second.emit(self._record("b", 1))
        # sync mode makes the line durable before close
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["name"] for e in events] == ["a", "b"]
        second.close()

    def test_jsonl_sink_truncate_default(self, tmp_path):
        path = tmp_path / "events.jsonl"
        first = JSONLSink(path)
        first.emit(self._record("a", 0))
        first.close()
        sink = JSONLSink(path)  # append=False truncates
        sink.emit(self._record("c", 1))
        sink.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["name"] for e in events] == ["c"]
