"""Tests for statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    cdf_points,
    gini_coefficient,
    histogram_by_bins,
    summary,
    weighted_fraction_within,
)


class TestSummary:
    def test_basic(self):
        s = summary([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.median == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summary([])

    def test_as_dict_keys(self):
        d = summary([1.0]).as_dict()
        assert set(d) == {
            "count", "mean", "std", "min", "p25", "median", "p75", "p95", "p99", "max"
        }


class TestGini:
    def test_equal_distribution_is_zero(self):
        assert gini_coefficient([5.0] * 10) == pytest.approx(0.0)

    def test_all_zero_is_zero(self):
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_single_holder_approaches_one(self):
        g = gini_coefficient([0.0] * 99 + [100.0])
        assert g > 0.95

    def test_known_value(self):
        # For [1, 3]: gini = (2*(1*1+2*3) - 3*4) / (2*4) = 2/8 = 0.25
        assert gini_coefficient([1.0, 3.0]) == pytest.approx(0.25)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([])

    @given(st.lists(st.floats(0.01, 1e4), min_size=2, max_size=50))
    def test_bounds(self, values):
        g = gini_coefficient(values)
        assert -1e-9 <= g < 1.0

    def test_scale_invariant(self):
        vals = [1.0, 2.0, 7.0]
        assert gini_coefficient(vals) == pytest.approx(
            gini_coefficient([10 * v for v in vals])
        )


class TestHistogram:
    def test_fractions_sum_to_one(self):
        h = histogram_by_bins([1, 2, 3, 9], None, [0, 5, 10])
        assert h.sum() == pytest.approx(1.0)
        assert h[0] == pytest.approx(0.75)

    def test_weighted(self):
        h = histogram_by_bins([1, 9], [3.0, 1.0], [0, 5, 10])
        assert h[0] == pytest.approx(0.75)

    def test_empty_weight_returns_zeros(self):
        h = histogram_by_bins([], None, [0, 1, 2])
        assert np.all(h == 0)


class TestCdf:
    def test_monotone_and_normalised(self):
        xs, ps = cdf_points([3, 1, 2, 2])
        assert list(xs) == [1, 2, 3]
        assert ps[-1] == pytest.approx(1.0)
        assert np.all(np.diff(ps) >= 0)

    def test_weighted(self):
        xs, ps = cdf_points([1, 2], [1.0, 3.0])
        assert ps[0] == pytest.approx(0.25)

    def test_empty(self):
        xs, ps = cdf_points([])
        assert xs.size == 0 and ps.size == 0

    def test_mismatched_weights(self):
        with pytest.raises(ValueError):
            cdf_points([1, 2], [1.0])

    def test_zero_weight_raises(self):
        with pytest.raises(ValueError):
            cdf_points([1.0], [0.0])


class TestFractionWithin:
    def test_basic(self):
        assert weighted_fraction_within([1, 5], [1.0, 1.0], 2) == pytest.approx(0.5)

    def test_inclusive(self):
        assert weighted_fraction_within([2.0], [1.0], 2) == 1.0

    def test_zero_total(self):
        assert weighted_fraction_within([1.0], [0.0], 5) == 0.0
