"""Tests for deterministic name hashing onto the ring."""

import numpy as np

from repro.idspace import IdentifierSpace, hash_bytes_to_id, hash_to_id


class TestHashing:
    def test_deterministic(self, space16):
        assert hash_to_id("x", space16) == hash_to_id("x", space16)

    def test_in_range(self, space16):
        for name in ["a", "b", "node-17", ""]:
            assert 0 <= hash_to_id(name, space16) < space16.size

    def test_int_and_str_agree(self, space16):
        assert hash_to_id(5, space16) == hash_to_id("5", space16)

    def test_different_names_differ(self, space16):
        # SHA-1 on a 16-bit ring: collisions possible but not for these.
        ids = {hash_to_id(f"name-{i}", space16) for i in range(50)}
        assert len(ids) > 40

    def test_bytes_hashing(self, space16):
        assert hash_bytes_to_id(b"abc", space16) == hash_bytes_to_id(b"abc", space16)
        assert 0 <= hash_bytes_to_id(b"abc", space16) < space16.size

    def test_roughly_uniform(self):
        space = IdentifierSpace(bits=8)
        ids = np.array([hash_to_id(f"k{i}", space) for i in range(2000)])
        # Mean of uniform [0,255] is 127.5; loose 10% tolerance.
        assert 110 < ids.mean() < 145

    def test_space_width_respected(self):
        small = IdentifierSpace(bits=4)
        assert all(hash_to_id(f"n{i}", small) < 16 for i in range(100))
