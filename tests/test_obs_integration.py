"""Integration: a traced rebalance emits the expected span tree and its
event stream reconciles exactly with the returned BalanceReport."""

from __future__ import annotations

import json
import math

import pytest

from repro.app import P2PSystem, SystemConfig
from repro.core import BalancerConfig, LoadBalancer
from repro.obs import MetricsRegistry, Tracer, observe
from repro.workloads import GaussianLoadModel, build_scenario

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


@pytest.fixture(scope="module")
def traced_round():
    """One traced rebalance of a P2PSystem with load skew."""
    tracer = Tracer.in_memory()
    metrics = MetricsRegistry()
    system = P2PSystem(
        SystemConfig(initial_nodes=32, seed=11), tracer=tracer, metrics=metrics
    )
    for i in range(200):
        system.put(f"obj-{i}", load=float(1 + (i % 17) * 40))
    report = system.rebalance()
    return system, tracer, metrics, report


class TestSpanTree:
    def test_round_span_has_the_four_phases_in_order(self, traced_round):
        _, tracer, _, _ = traced_round
        sink = tracer.sink
        starts = [r for r in sink.records if r.kind == "span_start"]
        assert [r.name for r in starts] == [
            "round", "lbi", "classification", "vsa", "vst",
        ]
        root = starts[0]
        assert root.parent_id is None
        for phase in starts[1:]:
            assert phase.parent_id == root.span_id

    def test_every_span_closes_with_a_duration(self, traced_round):
        _, tracer, _, _ = traced_round
        sink = tracer.sink
        started = {r.span_id for r in sink.records if r.kind == "span_start"}
        ended = {r.span_id for r in sink.records if r.kind == "span_end"}
        assert started == ended
        assert all(r.fields["seconds"] >= 0 for r in sink.spans())

    def test_round_span_fields(self, traced_round):
        system, tracer, _, report = traced_round
        (start,) = [r for r in tracer.sink.records if r.name == "round" and r.kind == "span_start"]
        assert start.fields["nodes"] == report.num_nodes
        assert start.fields["mode"] == "ignorant"
        (end,) = tracer.sink.spans("round")
        assert end.fields["transfers"] == len(report.transfers)
        assert end.fields["heavy_after"] == report.heavy_after


class TestReconciliation:
    def test_lbi_messages_match_report(self, traced_round):
        _, tracer, _, report = traced_round
        (agg,) = tracer.sink.events("lbi.aggregate")
        assert agg.fields["messages_up"] == report.aggregation.upward_messages
        assert agg.fields["messages_down"] == report.aggregation.downward_messages
        assert agg.fields["reports"] == report.aggregation.reports
        per_level = sum(
            e.fields["messages_up"] for e in tracer.sink.events("lbi.level")
        )
        assert per_level == report.aggregation.upward_messages

    def test_classification_events_match_report(self, traced_round):
        _, tracer, _, report = traced_round
        events = tracer.sink.events("classification.counts")
        by_stage = {e.fields["stage"]: e for e in events}
        assert by_stage["before"].fields["heavy"] == report.heavy_before
        assert by_stage["after"].fields["heavy"] == report.heavy_after

    def test_vsa_events_match_report(self, traced_round):
        _, tracer, _, report = traced_round
        assert len(tracer.sink.events("vsa.publish")) == report.vsa.entries_published
        (sweep,) = tracer.sink.events("vsa.sweep")
        assert sweep.fields["pairings"] == len(report.vsa.assignments)
        assert sweep.fields["messages_up"] == report.vsa.upward_messages
        paired = sum(
            e.fields["paired"] for e in tracer.sink.events("vsa.rendezvous")
        )
        assert paired == len(report.vsa.assignments)

    def test_vsa_rendezvous_levels_match_report(self, traced_round):
        _, tracer, _, report = traced_round
        by_level: dict[int, int] = {}
        for e in tracer.sink.events("vsa.rendezvous"):
            lvl = e.fields["level"]
            by_level[lvl] = by_level.get(lvl, 0) + e.fields["paired"]
        assert by_level == {
            lvl: n for lvl, n in report.vsa.pairings_by_level.items() if n
        }

    def test_transfer_events_match_report(self, traced_round):
        _, tracer, _, report = traced_round
        events = tracer.sink.events("vst.transfer")
        assert len(events) == len(report.transfers)
        assert sum(e.fields["load"] for e in events) == pytest.approx(
            report.moved_load
        )
        assert {e.fields["vs_id"] for e in events} == {
            t.vs_id for t in report.transfers
        }

    def test_profile_matches_trace(self, traced_round):
        _, tracer, _, report = traced_round
        profile = report.profile
        assert profile is not None
        (agg,) = tracer.sink.events("lbi.aggregate")
        assert profile.phase("lbi").messages == (
            agg.fields["messages_up"] + agg.fields["messages_down"]
        )
        assert profile.phase("vst").messages == len(
            tracer.sink.events("vst.transfer")
        )
        assert profile.phase("vst").detail["moved_load"] == pytest.approx(
            report.moved_load
        )


class TestMetrics:
    def test_registry_accumulated_the_round(self, traced_round):
        _, _, metrics, report = traced_round
        snap = metrics.snapshot()
        assert snap["counters"]["balancer.rounds"] == 1
        assert snap["counters"]["vst.transfers"] == len(report.transfers)
        assert snap["counters"]["vst.moved_load"] == pytest.approx(
            report.moved_load
        )
        assert snap["counters"]["store.puts"] == 200
        assert snap["histograms"]["lbi.seconds"]["count"] == 1

    def test_stats_carries_the_snapshot(self, traced_round):
        system, _, _, report = traced_round
        stats = system.stats()
        assert stats.metrics["counters"]["vst.transfers"] == len(report.transfers)


class TestJSONLTraceReconciles:
    """The acceptance-criterion path: JSONL on disk vs report totals."""

    def test_jsonl_roundtrip_reconciles(self, tmp_path):
        path = tmp_path / "round.jsonl"
        scenario = build_scenario(
            GaussianLoadModel(mu=1e6, sigma=2e3),
            num_nodes=48, vs_per_node=5, rng=5,
        )
        tracer = Tracer.to_file(path)
        balancer = LoadBalancer(
            scenario.ring,
            BalancerConfig(proximity_mode="ignorant", epsilon=0.05),
            rng=9,
            tracer=tracer,
        )
        report = balancer.run_round()
        tracer.close()

        records = [json.loads(line) for line in path.read_text().splitlines()]
        transfers = [r for r in records if r["name"] == "vst.transfer"]
        assert len(transfers) == len(report.transfers)
        assert sum(t["fields"]["load"] for t in transfers) == pytest.approx(
            report.moved_load
        )
        (agg,) = [r for r in records if r["name"] == "lbi.aggregate"]
        assert (
            agg["fields"]["messages_up"] + agg["fields"]["messages_down"]
            == report.aggregation.total_messages
        )
        paired = sum(
            r["fields"]["paired"] for r in records if r["name"] == "vsa.rendezvous"
        )
        assert paired == len(report.vsa.assignments)

    def test_observe_reaches_internally_built_balancers(self):
        with observe() as (tracer, metrics):
            system = P2PSystem(SystemConfig(initial_nodes=8, seed=3))
            system.put("a", load=100.0)
            system.rebalance()
        assert tracer.sink.spans("round")
        assert metrics.snapshot()["counters"]["balancer.rounds"] == 1


class TestZeroOverheadDefault:
    def test_untraced_round_emits_nothing_and_has_profile(self):
        system = P2PSystem(SystemConfig(initial_nodes=8, seed=3))
        report = system.rebalance()
        assert report.profile is not None
        assert math.isclose(
            report.profile.total_seconds, sum(report.phase_seconds.values())
        )
        assert system.tracer.enabled is False
        assert system.tracer._seq == 0

    def test_report_dict_carries_phase_profile(self):
        system = P2PSystem(SystemConfig(initial_nodes=8, seed=3))
        report = system.rebalance()
        d = report.to_dict()
        assert set(d["phases"]) == {"lbi", "classification", "vsa", "vst"}
        assert d["phases"]["vst"]["messages"] == len(report.transfers)
