"""Tests for virtual-server transfer execution."""

import math

import pytest

from repro.core import Assignment, ShedCandidate, execute_transfers
from repro.dht import ChordRing
from repro.exceptions import BalancerError
from repro.idspace import IdentifierSpace
from repro.topology import DistanceOracle


@pytest.fixture
def ring():
    r = ChordRing(IdentifierSpace(bits=12))
    r.populate(6, 2, [1.0] * 6, rng=8)
    for i, vs in enumerate(r.virtual_servers):
        vs.load = float(i + 1)
    return r


def assignment_for(ring, vs, target_node, level=3):
    return Assignment(
        candidate=ShedCandidate(load=vs.load, vs_id=vs.vs_id, node_index=vs.owner.index),
        target_node=target_node,
        level=level,
    )


class TestExecution:
    def test_ownership_moves(self, ring):
        vs = ring.virtual_servers[0]
        target = ring.nodes[(vs.owner.index + 1) % 6]
        records = execute_transfers(ring, [assignment_for(ring, vs, target.index)])
        assert vs.owner is target
        assert len(records) == 1
        assert records[0].load == vs.load

    def test_distance_nan_without_topology(self, ring):
        vs = ring.virtual_servers[0]
        target = ring.nodes[(vs.owner.index + 1) % 6]
        rec = execute_transfers(ring, [assignment_for(ring, vs, target.index)])[0]
        assert math.isnan(rec.distance)
        assert not rec.has_distance

    def test_level_propagates(self, ring):
        vs = ring.virtual_servers[0]
        target = ring.nodes[(vs.owner.index + 1) % 6]
        rec = execute_transfers(ring, [assignment_for(ring, vs, target.index, level=9)])[0]
        assert rec.level == 9

    def test_unknown_node_rejected(self, ring):
        vs = ring.virtual_servers[0]
        bad = Assignment(
            candidate=ShedCandidate(1.0, vs.vs_id, vs.owner.index),
            target_node=999,
            level=0,
        )
        with pytest.raises(BalancerError):
            execute_transfers(ring, [bad])

    def test_stale_owner_rejected(self, ring):
        vs = ring.virtual_servers[0]
        wrong_owner = (vs.owner.index + 2) % 6
        stale = Assignment(
            candidate=ShedCandidate(1.0, vs.vs_id, wrong_owner),
            target_node=(vs.owner.index + 1) % 6,
            level=0,
        )
        with pytest.raises(BalancerError):
            execute_transfers(ring, [stale])

    def test_load_conserved(self, ring):
        before = sum(n.load for n in ring.nodes)
        vs = ring.virtual_servers[2]
        target = ring.nodes[(vs.owner.index + 3) % 6]
        execute_transfers(ring, [assignment_for(ring, vs, target.index)])
        assert sum(n.load for n in ring.nodes) == pytest.approx(before)

    def test_empty_assignments(self, ring):
        assert execute_transfers(ring, []) == []


class TestWithTopology:
    def test_distances_resolved(self, mini_topology):
        oracle = DistanceOracle(mini_topology)
        ring = ChordRing(IdentifierSpace(bits=12))
        stubs = mini_topology.stub_vertices
        ring.populate(4, 1, [1.0] * 4, rng=1, sites=stubs[:4].tolist())
        vs = ring.virtual_servers[0]
        vs.load = 2.0
        src = vs.owner
        target = ring.nodes[(src.index + 1) % 4]
        rec = execute_transfers(
            ring, [assignment_for(ring, vs, target.index)], oracle
        )[0]
        assert rec.has_distance
        assert rec.distance == pytest.approx(
            oracle.distance(src.site, target.site)
        )

    def test_batched_distances_match_singletons(self, mini_topology):
        oracle = DistanceOracle(mini_topology)
        ring = ChordRing(IdentifierSpace(bits=14))
        stubs = mini_topology.stub_vertices
        ring.populate(8, 2, [1.0] * 8, rng=2, sites=stubs[:8].tolist())
        assignments = []
        expected = []
        for i, vs in enumerate(ring.virtual_servers[:6]):
            target = ring.nodes[(vs.owner.index + 1) % 8]
            if target is vs.owner:
                continue
            assignments.append(assignment_for(ring, vs, target.index))
            expected.append(oracle.distance(vs.owner.site, target.site))
        records = execute_transfers(ring, assignments, oracle)
        got = [r.distance for r in records]
        assert got == pytest.approx(expected)


class TestChurnTolerance:
    """VST against assignments that went stale between VSA and VST."""

    def _assignment(self, ring, vs, target_idx, source_idx=None):
        return Assignment(
            candidate=ShedCandidate(
                load=vs.load,
                vs_id=vs.vs_id,
                node_index=vs.owner.index if source_idx is None else source_idx,
            ),
            target_node=target_idx,
            level=0,
        )

    def test_stale_owner_skipped_when_requested(self, ring):
        vs = ring.virtual_servers[0]
        wrong_owner = (vs.owner.index + 2) % 6
        stale = self._assignment(ring, vs, (vs.owner.index + 1) % 6, source_idx=wrong_owner)
        skipped = []
        records = execute_transfers(ring, [stale], skipped=skipped)
        assert records == []
        assert skipped == [stale]

    def test_dead_target_skipped(self, ring):
        vs = ring.virtual_servers[0]
        target = ring.nodes[(vs.owner.index + 1) % 6]
        target.alive = False
        skipped = []
        records = execute_transfers(
            ring, [self._assignment(ring, vs, target.index)], skipped=skipped
        )
        assert records == []
        assert len(skipped) == 1
        assert vs.owner is not target

    def test_vanished_vs_skipped(self, ring):
        vs = ring.virtual_servers[0]
        target_idx = (vs.owner.index + 1) % 6
        assignment = self._assignment(ring, vs, target_idx)
        ring.remove_virtual_server(vs)
        skipped = []
        records = execute_transfers(ring, [assignment], skipped=skipped)
        assert records == []
        assert len(skipped) == 1

    def test_mixed_batch_executes_valid_part(self, ring):
        good_vs = ring.virtual_servers[1]
        bad_vs = ring.virtual_servers[2]
        good = self._assignment(ring, good_vs, (good_vs.owner.index + 1) % 6)
        bad = self._assignment(
            ring, bad_vs, (bad_vs.owner.index + 1) % 6,
            source_idx=(bad_vs.owner.index + 3) % 6,
        )
        skipped = []
        records = execute_transfers(ring, [good, bad], skipped=skipped)
        assert len(records) == 1
        assert len(skipped) == 1
        assert records[0].vs_id == good_vs.vs_id

    def test_without_skip_list_still_raises(self, ring):
        vs = ring.virtual_servers[0]
        target = ring.nodes[(vs.owner.index + 1) % 6]
        target.alive = False
        with pytest.raises(BalancerError):
            execute_transfers(ring, [self._assignment(ring, vs, target.index)])
