"""Integration tests for the orchestrating LoadBalancer."""

import numpy as np
import pytest

from repro.core import BalancerConfig, LoadBalancer, NodeClass
from repro.exceptions import ConfigError
from repro.workloads import GaussianLoadModel, ParetoLoadModel, build_scenario
from tests.conftest import MINI_TS


@pytest.fixture
def scenario():
    return build_scenario(
        GaussianLoadModel(mu=1e5, sigma=300.0), num_nodes=64, vs_per_node=4, rng=13
    )


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = BalancerConfig()
        assert cfg.tree_degree == 2
        assert cfg.rendezvous_threshold == 30
        assert cfg.num_landmarks == 15

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(epsilon=-0.1),
            dict(tree_degree=1),
            dict(rendezvous_threshold=-1),
            dict(proximity_mode="nope"),
            dict(selection_policy="nope"),
            dict(grid_bits=0),
            dict(num_landmarks=0),
            dict(landmark_strategy="nope"),
            dict(keep_at_least=-1),
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigError):
            BalancerConfig(**kwargs)

    def test_aware_without_topology_rejected(self, scenario):
        with pytest.raises(ConfigError):
            LoadBalancer(scenario.ring, BalancerConfig(proximity_mode="aware"))


class TestRound:
    def test_load_conserved(self, scenario):
        before = sum(n.load for n in scenario.ring.nodes)
        lb = LoadBalancer(
            scenario.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=1
        )
        report = lb.run_round()
        after = sum(n.load for n in scenario.ring.nodes)
        assert after == pytest.approx(before)
        assert report.loads_after.sum() == pytest.approx(report.loads_before.sum())

    def test_ring_invariants_after_round(self, scenario):
        lb = LoadBalancer(
            scenario.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=1
        )
        lb.run_round()
        scenario.ring.check_invariants()

    def test_heavy_nodes_resolved_with_slack(self, scenario):
        lb = LoadBalancer(
            scenario.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=1
        )
        report = lb.run_round()
        assert report.heavy_before > 0
        assert report.heavy_after <= report.heavy_before // 10

    def test_lights_never_overloaded(self, scenario):
        """Receiving nodes must end at or below their target."""
        lb = LoadBalancer(
            scenario.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=1
        )
        report = lb.run_round()
        before = report.classification_before
        node_by_index = {n.index: n for n in scenario.ring.nodes}
        for idx, cls in before.classes.items():
            if cls is NodeClass.LIGHT:
                assert node_by_index[idx].load <= before.targets[idx] + 1e-6

    def test_transfers_match_load_delta(self, scenario):
        lb = LoadBalancer(
            scenario.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=1
        )
        report = lb.run_round()
        deltas = report.loads_after - report.loads_before
        # Sum of positive deltas equals total moved load.
        assert deltas[deltas > 0].sum() == pytest.approx(report.moved_load)
        assert deltas.sum() == pytest.approx(0.0, abs=1e-6)

    def test_deterministic_given_seeds(self):
        reports = []
        for _ in range(2):
            sc = build_scenario(
                GaussianLoadModel(mu=1e5, sigma=300.0), num_nodes=64, vs_per_node=4, rng=13
            )
            lb = LoadBalancer(
                sc.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=2
            )
            reports.append(lb.run_round())
        assert reports[0].moved_load == pytest.approx(reports[1].moved_load)
        assert len(reports[0].transfers) == len(reports[1].transfers)

    def test_unit_loads_flatten(self, scenario):
        lb = LoadBalancer(
            scenario.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=1
        )
        report = lb.run_round()
        assert report.unit_loads_after.std() < report.unit_loads_before.std() / 5

    def test_summary_text_renders(self, scenario):
        lb = LoadBalancer(
            scenario.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=1
        )
        text = lb.run_round().summary_text()
        assert "heavy:" in text

    def test_to_dict_keys(self, scenario):
        lb = LoadBalancer(
            scenario.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=1
        )
        d = lb.run_round().to_dict()
        assert d["num_nodes"] == 64
        assert "moved_within_10" in d


class TestMultiRound:
    def test_run_stops_when_balanced(self, scenario):
        lb = LoadBalancer(
            scenario.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=1
        )
        reports = lb.run(max_rounds=5)
        assert len(reports) <= 5
        if reports[-1].heavy_after == 0:
            assert all(r.heavy_after > 0 for r in reports[:-1])

    def test_invalid_max_rounds(self, scenario):
        lb = LoadBalancer(
            scenario.ring, BalancerConfig(proximity_mode="ignorant"), rng=1
        )
        with pytest.raises(ConfigError):
            lb.run(max_rounds=0)

    def test_pareto_round_executes(self):
        sc = build_scenario(
            ParetoLoadModel(mu=1e5), num_nodes=64, vs_per_node=4, rng=17
        )
        lb = LoadBalancer(
            sc.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=3
        )
        report = lb.run_round()
        assert report.heavy_after < report.heavy_before
        sc.ring.check_invariants()


class TestAwareMode:
    @pytest.fixture
    def topo_scenario(self):
        return build_scenario(
            GaussianLoadModel(mu=1e5, sigma=300.0),
            num_nodes=32,
            vs_per_node=3,
            topology_params=MINI_TS,
            rng=23,
        )

    def test_aware_round_runs(self, topo_scenario):
        lb = LoadBalancer(
            topo_scenario.ring,
            BalancerConfig(proximity_mode="aware", epsilon=0.05, grid_bits=3),
            topology=topo_scenario.topology,
            oracle=topo_scenario.oracle,
            rng=4,
        )
        report = lb.run_round()
        assert report.heavy_after < report.heavy_before
        assert report.transfer_distances.size == len(report.transfers)

    def test_landmarks_selected(self, topo_scenario):
        lb = LoadBalancer(
            topo_scenario.ring,
            BalancerConfig(proximity_mode="aware", num_landmarks=6),
            topology=topo_scenario.topology,
            oracle=topo_scenario.oracle,
            rng=4,
        )
        assert len(lb.landmarks) == 6

    def test_explicit_landmarks_respected(self, topo_scenario):
        lm = topo_scenario.topology.stub_vertices[:5]
        lb = LoadBalancer(
            topo_scenario.ring,
            BalancerConfig(proximity_mode="aware", num_landmarks=5),
            topology=topo_scenario.topology,
            oracle=topo_scenario.oracle,
            landmarks=lm,
            rng=4,
        )
        assert np.array_equal(lb.landmarks, lm)

    def test_aware_requires_sites(self, topo_scenario):
        topo_scenario.ring.nodes[0].site = None
        with pytest.raises(ConfigError):
            LoadBalancer(
                topo_scenario.ring,
                BalancerConfig(proximity_mode="aware"),
                topology=topo_scenario.topology,
                oracle=topo_scenario.oracle,
                rng=4,
            )

    def test_ignorant_with_topology_reports_distances(self, topo_scenario):
        lb = LoadBalancer(
            topo_scenario.ring,
            BalancerConfig(proximity_mode="ignorant", epsilon=0.05),
            topology=topo_scenario.topology,
            oracle=topo_scenario.oracle,
            rng=4,
        )
        report = lb.run_round()
        assert report.transfer_distances.size == len(report.transfers)


class TestPhaseTiming:
    def test_phase_seconds_recorded(self, scenario):
        lb = LoadBalancer(
            scenario.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=1
        )
        report = lb.run_round()
        assert set(report.phase_seconds) == {"lbi", "classification", "vsa", "vst"}
        assert all(v >= 0 for v in report.phase_seconds.values())
