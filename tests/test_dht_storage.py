"""Tests for the object-level storage substrate."""

import numpy as np
import pytest

from repro.dht import ChordRing, ObjectStore, StoredObject, join_node
from repro.exceptions import DHTError
from repro.idspace import IdentifierSpace


@pytest.fixture
def ring():
    r = ChordRing(IdentifierSpace(bits=16))
    r.populate(8, 3, [1.0] * 8, rng=4)
    return r


@pytest.fixture
def store(ring):
    return ObjectStore(ring)


class TestPutGetDelete:
    def test_put_places_on_key_owner(self, ring, store):
        obj = store.put("alpha", load=3.0)
        owner = ring.successor(obj.key)
        assert obj in store.objects_on(owner)
        assert owner.load == pytest.approx(3.0)

    def test_get_roundtrip(self, store):
        store.put("alpha", load=3.0, size=7.0)
        got = store.get("alpha")
        assert got.load == 3.0
        assert got.size == 7.0

    def test_get_missing_raises(self, store):
        with pytest.raises(DHTError):
            store.get("ghost")

    def test_replace_adjusts_load(self, ring, store):
        store.put("alpha", load=3.0)
        store.put("alpha", load=5.0)
        owner = ring.successor(store.get("alpha").key)
        assert owner.load == pytest.approx(5.0)
        assert store.num_objects == 1

    def test_delete_restores_load(self, ring, store):
        obj = store.put("alpha", load=3.0)
        owner = ring.successor(obj.key)
        store.delete("alpha")
        assert owner.load == pytest.approx(0.0)
        assert store.num_objects == 0

    def test_colliding_keys_coexist(self):
        # On a tiny ring, different names hash to the same key; both live.
        tiny = ChordRing(IdentifierSpace(bits=4))
        tiny.populate(2, 2, [1.0, 1.0], rng=0)
        s = ObjectStore(tiny)
        for i in range(40):
            s.put(f"n{i}", load=1.0)
        assert s.num_objects == 40
        s.check_consistency()

    def test_negative_load_rejected(self):
        with pytest.raises(DHTError):
            StoredObject(key=0, name="x", load=-1.0, size=0.0)


class TestPopulate:
    def test_uniform_population(self, ring, store):
        store.populate(200, mean_load=2.0, rng=1)
        assert store.num_objects == 200
        assert store.total_load == pytest.approx(
            sum(vs.load for vs in ring.virtual_servers)
        )
        store.check_consistency()

    def test_zipf_population_skewed(self, ring, store):
        objs = store.populate(500, mean_load=1.0, rng=2, popularity="zipf")
        loads = np.array([o.load for o in objs])
        assert loads.max() > 20 * np.median(loads)
        assert loads.mean() == pytest.approx(1.0, rel=0.01)

    def test_unknown_popularity(self, store):
        with pytest.raises(DHTError):
            store.populate(5, mean_load=1.0, popularity="bogus")

    def test_negative_count(self, store):
        with pytest.raises(DHTError):
            store.populate(-1, mean_load=1.0)


class TestRehome:
    def test_rehome_after_join(self, ring, store):
        store.populate(300, mean_load=1.0, rng=3)
        join_node(ring, capacity=1.0, vs_count=3, rng=5)
        moved = store.rehome()
        assert moved > 0
        store.check_consistency()
        assert store.total_load == pytest.approx(
            sum(vs.load for vs in ring.virtual_servers)
        )

    def test_rehome_idempotent(self, ring, store):
        store.populate(100, mean_load=1.0, rng=6)
        store.rehome()
        assert store.rehome() == 0

    def test_consistency_detects_drift(self, ring, store):
        store.populate(50, mean_load=1.0, rng=7)
        ring.virtual_servers[0].load += 99.0
        with pytest.raises(DHTError):
            store.check_consistency()


class TestTransferBytes:
    def test_sum_of_sizes(self, ring, store):
        store.put("a", load=1.0, size=10.0)
        vs = ring.successor(store.get("a").key)
        assert store.transfer_bytes(vs) >= 10.0

    def test_empty_vs_zero_bytes(self, ring, store):
        empty = next(
            vs for vs in ring.virtual_servers if not store.objects_on(vs)
        )
        assert store.transfer_bytes(empty) == 0.0


class TestAddLoad:
    def test_accrues_on_object_and_host(self, ring, store):
        store.put("q", load=1.0)
        store.add_load("q", 4.0)
        assert store.get("q").load == 5.0
        owner = ring.successor(store.get("q").key)
        assert owner.load == pytest.approx(5.0)
        store.check_consistency()

    def test_survives_rehome(self, ring, store):
        from repro.dht import join_node

        store.put("q", load=1.0)
        store.add_load("q", 9.0)
        join_node(ring, capacity=1.0, vs_count=3, rng=44)
        store.rehome()
        assert store.get("q").load == 10.0
        store.check_consistency()

    def test_negative_result_rejected(self, store):
        store.put("q", load=1.0)
        with pytest.raises(DHTError):
            store.add_load("q", -2.0)

    def test_unknown_object_rejected(self, store):
        with pytest.raises(DHTError):
            store.add_load("ghost", 1.0)
