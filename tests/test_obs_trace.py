"""Unit tests for :mod:`repro.obs.trace` and :mod:`repro.obs.sinks`."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    NULL_TRACER,
    ConsoleSink,
    InMemorySink,
    JSONLSink,
    MetricsRegistry,
    NullSink,
    Sink,
    Tracer,
    current_metrics,
    current_tracer,
    observe,
    set_metrics,
    set_tracer,
)


class TestTracer:
    def test_null_tracer_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("round") as span:
            span.event("x", a=1)
        NULL_TRACER.event("y")
        assert NULL_TRACER._seq == 0

    def test_span_nesting_and_record_kinds(self):
        tracer = Tracer.in_memory()
        with tracer.span("round", nodes=4):
            with tracer.span("lbi") as lbi:
                lbi.event("lbi.level", level=3)
        records = tracer.sink.records
        assert [r.kind for r in records] == [
            "span_start", "span_start", "event", "span_end", "span_end",
        ]
        round_start, lbi_start, level_ev, lbi_end, round_end = records
        assert round_start.parent_id is None
        assert lbi_start.parent_id == round_start.span_id
        assert level_ev.span_id == lbi_start.span_id
        assert round_end.span_id == round_start.span_id
        assert lbi_end.fields["seconds"] >= 0.0

    def test_seq_is_total_order(self):
        tracer = Tracer.in_memory()
        with tracer.span("a"):
            tracer.event("e1")
            tracer.event("e2")
        seqs = [r.seq for r in tracer.sink.records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_event_outside_any_span(self):
        tracer = Tracer.in_memory()
        tracer.event("loose", a=1)
        (rec,) = tracer.sink.records
        assert rec.span_id == 0 and rec.parent_id is None

    def test_span_end_is_idempotent(self):
        tracer = Tracer.in_memory()
        span = tracer.span("a")
        span.end()
        span.end()
        assert len(tracer.sink.spans("a")) == 1

    def test_close_ends_dangling_spans_and_closes_sink(self):
        tracer = Tracer.in_memory()
        tracer.span("outer")
        tracer.span("inner")
        tracer.close()
        assert tracer.sink.closed
        assert [r.name for r in tracer.sink.spans()] == ["inner", "outer"]

    def test_tracer_with_null_sink_is_disabled(self):
        assert Tracer(NullSink()).enabled is False


class TestInMemorySink:
    def test_filters(self):
        tracer = Tracer.in_memory()
        with tracer.span("round"):
            tracer.event("vst.transfer", load=1.0)
            tracer.event("vst.skip", reason="stale")
        sink = tracer.sink
        assert len(sink.events()) == 2
        assert len(sink.events("vst.transfer")) == 1
        assert len(sink.spans("round")) == 1
        assert len(sink.by_name("round")) == 2  # start + end
        assert len(sink) == 4


class TestJSONLSink:
    def test_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer.to_file(path)
        with tracer.span("round", nodes=2):
            tracer.event("vst.transfer", load=3.5, distance=2.0)
        tracer.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["kind"] == "span_start"
        assert parsed[1]["fields"]["load"] == 3.5
        assert parsed[2]["fields"]["seconds"] >= 0.0

    def test_emit_after_close_raises(self, tmp_path):
        tracer = Tracer.to_file(tmp_path / "t.jsonl")
        tracer.event("e")
        tracer.close()
        with pytest.raises(ValueError):
            tracer.sink.emit(None)


class TestConsoleSink:
    def test_renders_indented_lines(self):
        buf = io.StringIO()
        tracer = Tracer(ConsoleSink(buf))
        with tracer.span("round"):
            tracer.event("vst.transfer", load=1.25)
        tracer.close()
        out = buf.getvalue().splitlines()
        assert "> round" in out[0]
        assert ". vst.transfer load=1.25" in out[1]
        assert "< round" in out[2]
        # events inside the span are indented deeper than the span itself
        assert out[1].index(". vst") > out[0].index("> round")


class TestSinkProtocol:
    def test_builtin_sinks_satisfy_protocol(self):
        for sink in (NullSink(), InMemorySink(), ConsoleSink(io.StringIO())):
            assert isinstance(sink, Sink)


class TestRuntime:
    def test_defaults_are_off(self):
        assert current_tracer() is NULL_TRACER
        assert current_metrics() is None

    def test_set_and_restore(self):
        tracer = Tracer.in_memory()
        prev = set_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            set_tracer(prev)
        assert current_tracer() is NULL_TRACER

    def test_set_metrics_returns_previous(self):
        reg = MetricsRegistry()
        assert set_metrics(reg) is None
        assert set_metrics(None) is reg
        assert current_metrics() is None

    def test_observe_scopes_defaults(self):
        with observe() as (tracer, metrics):
            assert current_tracer() is tracer
            assert current_metrics() is metrics
            assert tracer.enabled
        assert current_tracer() is NULL_TRACER
        assert current_metrics() is None

    def test_observe_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with observe():
                raise RuntimeError("boom")
        assert current_tracer() is NULL_TRACER
        assert current_metrics() is None

    def test_observe_accepts_explicit_instruments(self):
        tracer = Tracer.in_memory()
        reg = MetricsRegistry()
        with observe(tracer=tracer, metrics=reg) as (t, m):
            assert t is tracer and m is reg
