"""Tests for protocol cost accounting."""

import pytest

from repro.core import BalancerConfig, LoadBalancer, cost_sheet, estimate_publication_hops
from repro.dht import ObjectStore
from repro.workloads import GaussianLoadModel, build_scenario
from tests.conftest import MINI_TS


@pytest.fixture(scope="module")
def scenario_and_report():
    sc = build_scenario(
        GaussianLoadModel(mu=1e5, sigma=300.0),
        num_nodes=36,
        vs_per_node=3,
        topology_params=MINI_TS,
        rng=91,
    )
    lb = LoadBalancer(
        sc.ring,
        BalancerConfig(proximity_mode="aware", epsilon=0.05, grid_bits=3),
        topology=sc.topology,
        oracle=sc.oracle,
        rng=2,
    )
    return sc, lb.run_round()


class TestPublicationEstimate:
    def test_zero_publications_zero_hops(self, scenario_and_report):
        sc, _ = scenario_and_report
        assert estimate_publication_hops(sc.ring, 0, rng=0) == 0

    def test_scales_with_count(self, scenario_and_report):
        sc, _ = scenario_and_report
        h1 = estimate_publication_hops(sc.ring, 10, rng=0)
        h2 = estimate_publication_hops(sc.ring, 1000, rng=0)
        assert h2 > h1
        # roughly linear scaling
        assert h2 == pytest.approx(100 * h1, rel=0.6)

    def test_per_publication_hops_logarithmic(self, scenario_and_report):
        sc, _ = scenario_and_report
        import math

        per = estimate_publication_hops(sc.ring, 1000, rng=0) / 1000
        assert per <= 2 * math.log2(sc.ring.num_virtual_servers)


class TestCostSheet:
    def test_fields_consistent(self, scenario_and_report):
        sc, report = scenario_and_report
        sheet = cost_sheet(report, sc.ring, rng=0)
        assert sheet.transfers == len(report.transfers)
        assert sheet.moved_load == pytest.approx(report.moved_load)
        assert sheet.moved_bytes == pytest.approx(report.moved_load)  # no store
        assert sheet.lbi_rounds == report.aggregation.total_rounds
        assert sheet.control_messages >= sheet.lbi_messages

    def test_aware_mode_pays_publication(self, scenario_and_report):
        sc, report = scenario_and_report
        sheet = cost_sheet(report, sc.ring, rng=0)
        assert sheet.publication_messages > 0

    def test_ignorant_mode_publication_free(self):
        sc = build_scenario(
            GaussianLoadModel(mu=1e5, sigma=300.0), num_nodes=48, vs_per_node=3, rng=91
        )
        lb = LoadBalancer(
            sc.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=2
        )
        report = lb.run_round()
        sheet = cost_sheet(report, sc.ring, rng=0)
        assert sheet.publication_messages == 0

    def test_mean_distance(self, scenario_and_report):
        sc, report = scenario_and_report
        sheet = cost_sheet(report, sc.ring, rng=0)
        if report.moved_load > 0:
            assert sheet.mean_transfer_distance == pytest.approx(
                sum(t.load * t.distance for t in report.transfers if t.has_distance)
                / report.moved_load
            )

    def test_bytes_with_object_store(self):
        sc = build_scenario(
            GaussianLoadModel(mu=1e5, sigma=300.0), num_nodes=32, vs_per_node=3, rng=93
        )
        store = ObjectStore(sc.ring)
        # Replace the synthetic VS loads with object-backed loads.
        for vs in sc.ring.virtual_servers:
            vs.load = 0.0
        store.populate(600, mean_load=100.0, rng=5)
        lb = LoadBalancer(
            sc.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=2
        )
        report = lb.run_round()
        sheet = cost_sheet(report, sc.ring, store=store, rng=0)
        # Object sizes equal loads in populate(), so bytes == moved load.
        assert sheet.moved_bytes == pytest.approx(report.moved_load, rel=1e-6)
