"""Batched level-synchronous descents and delta-driven cache repair.

Three contracts from docs/performance.md are pinned here:

* :meth:`~repro.ktree.tree.KnaryTree.descend_batch` materialises exactly
  the nodes the per-key :meth:`~repro.ktree.tree.KnaryTree.ensure_leaf_for_key`
  walk would, and routes every key to the same leaf — the tree shape is
  a pure function of the ring, so the two descent orders must converge.
* The bulk ring probe (:meth:`~repro.dht.ChordRing.hosts_with_regions`)
  and the non-validating :meth:`~repro.idspace.Region.trusted`
  constructor agree with their scalar/validating counterparts.
* Delta-driven cache repair keeps every ``key -> leaf`` cache entry
  valid across churn without re-descending surviving reporter
  corridors: ``stale_cache_misses`` stays zero and the batched engine
  never descends more keys than the legacy per-key engine.
"""

import numpy as np
import pytest

from repro.core import BalancerConfig, IncrementalLoadBalancer, LoadBalancer
from repro.dht import RingEventLog, crash_node, join_node, leave_node
from repro.exceptions import BalancerError, RegionError, TreeError
from repro.idspace import IdentifierSpace, Region
from repro.ktree import KnaryTree, TreeIndex
from repro.workloads import ParetoLoadModel, apply_load_drift, build_scenario

MODEL = ParetoLoadModel(mu=1e4)


def _ring(seed, num_nodes=60, vs_per_node=3):
    return build_scenario(
        MODEL, num_nodes=num_nodes, vs_per_node=vs_per_node, rng=seed
    ).ring


def _config(tree_degree=2):
    return BalancerConfig(
        proximity_mode="ignorant", epsilon=0.05, tree_degree=tree_degree
    )


def _churn(ring, gen):
    for _ in range(int(gen.integers(1, 3))):
        join_node(
            ring,
            capacity=10.0,
            vs_count=int(gen.integers(1, 4)),
            rng=int(gen.integers(1 << 30)),
        )
    alive = [n for n in ring.alive_nodes if n.virtual_servers]
    if len(alive) > 8:
        victim = alive[int(gen.integers(len(alive)))]
        if int(gen.integers(2)):
            leave_node(ring, victim)
        else:
            crash_node(ring, victim)
    centers = [int(gen.integers(ring.space.size))]
    apply_load_drift(
        ring, MODEL, int(gen.integers(1 << 30)), centers, fraction=0.02
    )


class TestDescendBatch:
    @pytest.mark.parametrize("k", (2, 8))
    def test_matches_per_key_descent(self, k):
        ring = _ring(10)
        keys = np.random.default_rng(0).integers(
            0, ring.space.size, size=400, dtype=np.int64
        )
        per_key = KnaryTree(ring, k)
        batched = KnaryTree(ring, k)
        expected = [per_key.ensure_leaf_for_key(int(x)) for x in keys.tolist()]
        leaves, ordinals = batched.descend_batch(keys)
        assert ordinals.shape == keys.shape
        assert per_key.node_count == batched.node_count
        for i in range(keys.size):
            a, b = expected[i], leaves[ordinals[i]]
            assert (a.region.start, a.region.length) == (
                b.region.start,
                b.region.length,
            )
            assert a.host_vs.vs_id == b.host_vs.vs_id
            assert a.is_leaf and b.is_leaf

    def test_children_attach_to_correct_parents(self):
        # Every materialised child must sit in its parent's child list at
        # the rank whose split part is its region (guards the batched
        # frontier-to-parent indexing).
        ring = _ring(11)
        tree = KnaryTree(ring, 2)
        keys = np.random.default_rng(1).integers(
            0, ring.space.size, size=300, dtype=np.int64
        )
        tree.descend_batch(keys)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            for rank, child in enumerate(node.children):
                if child is None:
                    continue
                assert child.parent is node
                part = node.region.split_part(tree.k, rank)
                assert (child.region.start, child.region.length) == (
                    part.start,
                    part.length,
                )
                stack.append(child)
        tree.check_invariants()

    def test_repeated_keys_share_leaf_ordinals(self):
        ring = _ring(12)
        tree = KnaryTree(ring, 2)
        key = int(ring.space.size // 3)
        leaves, ordinals = tree.descend_batch(
            np.asarray([key, key, key], dtype=np.int64)
        )
        assert len(leaves) == 1
        assert ordinals.tolist() == [0, 0, 0]

    def test_empty_batch(self):
        ring = _ring(13)
        tree = KnaryTree(ring, 2)
        before = tree.node_count
        leaves, ordinals = tree.descend_batch(np.empty(0, dtype=np.int64))
        assert leaves == [] and ordinals.size == 0
        assert tree.node_count == before

    def test_out_of_range_key_rejected(self):
        ring = _ring(14)
        tree = KnaryTree(ring, 2)
        with pytest.raises(TreeError):
            tree.descend_batch(np.asarray([ring.space.size], dtype=np.int64))
        with pytest.raises(TreeError):
            tree.descend_batch(np.asarray([-1], dtype=np.int64))


class TestBulkRingProbe:
    def test_hosts_with_regions_matches_scalar_probe(self):
        ring = _ring(20)
        keys = np.random.default_rng(2).integers(
            0, ring.space.size, size=500, dtype=np.int64
        )
        hosts, starts, lengths = ring.hosts_with_regions(keys)
        for i, key in enumerate(keys.tolist()):
            vs, start, length = ring.host_with_region(key)
            assert hosts[i] is vs
            assert (int(starts[i]), int(lengths[i])) == (start, length)

    def test_out_of_range_key_rejected(self):
        ring = _ring(21)
        with pytest.raises(Exception):
            ring.hosts_with_regions(
                np.asarray([ring.space.size], dtype=np.int64)
            )


class TestRegionTrusted:
    def test_matches_validating_constructor(self):
        space = IdentifierSpace(bits=16)
        for start, length in ((0, 1), (100, 500), (65535, 65536)):
            assert Region.trusted(space, start, length) == Region(
                space, start, length
            )

    def test_validating_constructor_still_rejects(self):
        space = IdentifierSpace(bits=16)
        with pytest.raises(RegionError):
            Region(space, 0, 0)


class TestDirectoryPatch:
    @pytest.mark.parametrize("seed", (0, 3, 8))
    def test_patched_directory_matches_rebuild(self, seed):
        # Drive an indexed tree through churn; after every refresh the
        # incrementally patched leaf directory must answer exactly like
        # a directory rebuilt from scratch on a twin index.
        ring = _ring(seed, num_nodes=40)
        tree = KnaryTree(ring, 2)
        index = TreeIndex(tree)
        log = RingEventLog(ring)
        gen = np.random.default_rng(seed + 50)
        probes = gen.integers(0, ring.space.size, size=64, dtype=np.int64)
        for _ in range(8):
            for k in gen.integers(0, ring.space.size, size=24):
                index.slot(tree.ensure_leaf_for_key(int(k)))
            index.resolve_leaves(probes)  # builds / patches the directory
            _churn(ring, gen)
            delta = log.drain()
            assert delta.dirty is not None
            refresh = tree.refresh_dirty(delta.dirty)
            for node in refresh.pruned_nodes:
                index.drop(node)
            for node in refresh.became_leaf:
                index.set_leaf(node, True)
            for node in refresh.became_internal:
                index.set_leaf(node, False)
            patched = index.resolve_leaves(probes)
            twin = TreeIndex(tree)
            for slot in np.flatnonzero(index.alive).tolist():
                twin.slot(index.node_at(slot))
            rebuilt = twin.resolve_leaves(probes)
            hit = patched >= 0
            assert (hit == (rebuilt >= 0)).all()
            for a, b in zip(patched[hit].tolist(), rebuilt[hit].tolist()):
                assert index.node_at(a) is twin.node_at(b)


def _run_rounds(engine, seed, rounds=6):
    ring = _ring(seed, num_nodes=80, vs_per_node=4)
    bal = IncrementalLoadBalancer(
        ring, _config(), rng=seed + 1, descent_mode=engine
    )
    gen = np.random.default_rng(seed + 9)
    digests = []
    for rnd in range(rounds):
        digests.append(bal.run_round().canonical_digest())
        if rnd < rounds - 1:
            _churn(ring, gen)
    return bal, digests


class TestDescentEconomy:
    def test_invalid_mode_rejected(self):
        with pytest.raises(BalancerError):
            IncrementalLoadBalancer(
                _ring(1), _config(), rng=2, descent_mode="eager"
            )

    @pytest.mark.parametrize("seed", (2, 7))
    def test_repair_replaces_corridor_redescent(self, seed):
        batched, digests_b = _run_rounds("batched", seed)
        legacy, digests_l = _run_rounds("legacy", seed)
        assert digests_b == digests_l
        stats_b, stats_l = batched.descent_stats, legacy.descent_stats
        # Repair must keep every surviving cache entry valid: a cached
        # slot that stopped being a live leaf would surface as a stale
        # cache miss (a corridor re-descent), which the batched engine
        # must never pay.
        assert stats_b["stale_cache_misses"] == 0
        # Churn invalidated some corridors, so repairs must have fired
        # and the batched engine must descend no more keys than the
        # legacy engine re-descends.
        assert stats_b["cache_repairs"] > 0
        assert stats_b["miss_descents"] <= stats_l["miss_descents"]
        # The legacy engine pays a descent where the batched engine
        # repairs; economy means strictly fewer descents once any repair
        # happened.
        assert stats_b["miss_descents"] < stats_l["miss_descents"]

    @pytest.mark.parametrize("seed", (4, 11))
    def test_cached_entries_validate_against_fresh_descent(self, seed):
        # Property: after any churn history, every key -> slot entry in
        # the repair-maintained cache names the exact leaf a fresh
        # serial descent reaches for that key.
        bal, _ = _run_rounds("batched", seed)
        index = bal._index
        tree = bal._tree
        assert bal._key_leaf, "cache unexpectedly empty"
        for key, slot in bal._key_leaf.items():
            assert index.alive[slot] and index.is_leaf[slot]
            node = index.node_at(slot)
            assert node.region.contains(key)
            assert tree.ensure_leaf_for_key(key) is node

    def test_serial_identity_both_modes(self):
        seed = 33
        ring_s = _ring(seed, num_nodes=80, vs_per_node=4)
        serial = LoadBalancer(ring_s, _config(), rng=seed + 1)
        gen = np.random.default_rng(seed + 9)
        digests_s = []
        for rnd in range(6):
            digests_s.append(serial.run_round().canonical_digest())
            if rnd < 5:
                _churn(ring_s, gen)
        _, digests_b = _run_rounds("batched", seed)
        _, digests_l = _run_rounds("legacy", seed)
        assert digests_s == digests_b == digests_l
