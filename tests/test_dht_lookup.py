"""Tests for Chord finger-table routing."""

import math

import numpy as np
import pytest

from repro.dht import ChordRing, lookup_hops, lookup_path
from repro.dht.lookup import finger_targets
from repro.idspace import IdentifierSpace


@pytest.fixture
def ring64():
    ring = ChordRing(IdentifierSpace(bits=16))
    ring.populate(64, 1, [1.0] * 64, rng=123)
    return ring


class TestLookupPath:
    def test_starts_and_ends_correctly(self, ring64):
        start = ring64.virtual_servers[0]
        key = 40000
        path = lookup_path(ring64, start, key)
        assert path[0] == start.vs_id
        assert path[-1] == ring64.successor(key).vs_id

    def test_self_lookup_zero_hops(self, ring64):
        vs = ring64.virtual_servers[5]
        assert lookup_hops(ring64, vs, vs.vs_id) == 0

    def test_own_region_zero_hops(self, ring64):
        vs = ring64.virtual_servers[5]
        region = ring64.region_of(vs)
        assert lookup_hops(ring64, vs, region.start) == 0

    def test_path_vs_ids_valid(self, ring64):
        path = lookup_path(ring64, ring64.virtual_servers[3], 1234)
        for vs_id in path:
            ring64.vs(vs_id)  # raises if unknown

    def test_every_hop_progresses_clockwise(self, ring64):
        space = ring64.space
        key = 60000
        path = lookup_path(ring64, ring64.virtual_servers[0], key)
        dists = [space.distance_cw(v, key) for v in path[:-1]]
        assert all(d2 < d1 for d1, d2 in zip(dists, dists[1:]))

    def test_logarithmic_hops(self, ring64):
        """Chord bound: lookups take O(log #VS) hops."""
        gen = np.random.default_rng(0)
        bound = 2 * math.log2(ring64.num_virtual_servers) + 2
        for _ in range(50):
            start = ring64.virtual_servers[int(gen.integers(64))]
            key = int(gen.integers(0, ring64.space.size))
            assert lookup_hops(ring64, start, key) <= bound

    def test_all_owners_reachable_from_one_start(self, ring64):
        start = ring64.virtual_servers[0]
        gen = np.random.default_rng(1)
        for _ in range(30):
            key = int(gen.integers(0, ring64.space.size))
            path = lookup_path(ring64, start, key)
            assert path[-1] == ring64.successor(key).vs_id

    def test_single_vs_ring(self):
        ring = ChordRing(IdentifierSpace(bits=8))
        ring.populate(1, 1, [1.0], rng=0)
        vs = ring.virtual_servers[0]
        assert lookup_hops(ring, vs, 17) == 0


class TestFingers:
    def test_finger_count(self, ring64):
        fingers = finger_targets(ring64, ring64.virtual_servers[0])
        assert len(fingers) == ring64.space.bits

    def test_fingers_are_successors_of_spans(self, ring64):
        vs = ring64.virtual_servers[7]
        fingers = finger_targets(ring64, vs)
        space = ring64.space
        for i, f in enumerate(fingers):
            expected = ring64.successor(space.wrap(vs.vs_id + (1 << i))).vs_id
            assert f == expected

    def test_first_finger_is_ring_successor(self, ring64):
        vs = ring64.virtual_servers[0]
        ring_succ = ring64.virtual_servers[1]
        assert finger_targets(ring64, vs)[0] == ring_succ.vs_id
