"""Tests for the discrete-event engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import EventQueue, Simulator


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(2.0, lambda s: None, "b")
        q.push(1.0, lambda s: None, "a")
        assert q.pop().label == "a"
        assert q.pop().label == "b"

    def test_ties_break_by_insertion(self):
        q = EventQueue()
        q.push(1.0, lambda s: None, "first")
        q.push(1.0, lambda s: None, "second")
        assert q.pop().label == "first"

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda s: None)

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(0.0, lambda s: None)
        assert len(q) == 1 and q


class TestSimulator:
    def test_runs_in_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda s: order.append(3))
        sim.schedule(1.0, lambda s: order.append(1))
        sim.schedule(2.0, lambda s: order.append(2))
        sim.run()
        assert order == [1, 2, 3]
        assert sim.now == 3.0
        assert sim.events_processed == 3

    def test_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda s: fired.append(1))
        sim.schedule(5.0, lambda s: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()  # remaining event still fires
        assert fired == [1, 5]

    def test_event_at_horizon_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda s: fired.append(2))
        sim.run(until=2.0)
        assert fired == [2]

    def test_actions_can_schedule_more(self):
        sim = Simulator()
        ticks = []

        def tick(s):
            ticks.append(s.now)
            if len(ticks) < 5:
                s.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        assert ticks == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda s: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda s: None)

    def test_max_events_guard(self):
        sim = Simulator()

        def forever(s):
            s.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)
