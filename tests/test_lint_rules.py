"""Per-rule fixtures for repro.lint: one positive and one negative each.

Fixture files are written under ``tmp_path/repro/<pkg>/`` so that
``LintEngine.module_name`` anchors them into the package namespace the
package-scoped rules key on (``repro.core`` is protocol code,
``repro.obs`` is documented API, ``repro.analysis`` is neither).
"""

import textwrap
from pathlib import Path

from repro.lint.engine import LintEngine, Finding
from repro.lint.rules.base import Rule
from repro.lint.rules.conservation import ConservationGuardRule
from repro.lint.rules.defaults import MutableDefaultArgsRule
from repro.lint.rules.docstrings import DocstringCoverageRule
from repro.lint.rules.exceptions import ExceptionHygieneRule
from repro.lint.rules.floats import NoFloatEqualityRule
from repro.lint.rules.forks import NoForkInProtocolRule
from repro.lint.rules.iteration import NoUnorderedIterationRule
from repro.lint.rules.retry import BoundedRetryRule
from repro.lint.rules.rng import NoUnseededRngRule
from repro.lint.rules.spans import ObsSpanCoverageRule
from repro.lint.rules.wallclock import NoWallclockRule


def lint(
    tmp_path: Path, relpath: str, source: str, rule: Rule
) -> list[Finding]:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return LintEngine(rules=[rule]).lint_paths([path], root=tmp_path)


class TestNoUnseededRng:
    def test_flags_stdlib_random(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            import random

            def pick(xs):
                return random.choice(xs)
            """,
            NoUnseededRngRule(),
        )
        assert [f.rule for f in findings] == ["no-unseeded-rng"]
        assert "random.choice" in findings[0].message

    def test_flags_from_import_and_numpy_global(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/sim/x.py",
            """
            import numpy as np
            from random import shuffle

            def jitter(xs):
                shuffle(xs)
                return np.random.default_rng()
            """,
            NoUnseededRngRule(),
        )
        assert len(findings) == 2

    def test_allows_seeded_generator_and_types(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            import numpy as np

            def pick(xs, rng: np.random.Generator):
                assert isinstance(rng, np.random.Generator)
                return xs[rng.integers(len(xs))]
            """,
            NoUnseededRngRule(),
        )
        assert findings == []

    def test_exempts_util_rng_module(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/util/rng.py",
            """
            import numpy as np

            def ensure_rng(seed):
                return np.random.default_rng(seed)
            """,
            NoUnseededRngRule(),
        )
        assert findings == []


class TestNoWallclock:
    def test_flags_time_calls_in_protocol(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            import time
            from time import perf_counter

            def slow():
                start = perf_counter()
                return time.monotonic() - start
            """,
            NoWallclockRule(),
        )
        assert len(findings) == 2

    def test_flags_datetime_now(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/dht/x.py",
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """,
            NoWallclockRule(),
        )
        assert len(findings) == 1

    def test_allows_clock_outside_protocol(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/obs/x.py",
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            NoWallclockRule(),
        )
        assert findings == []


class TestNoUnorderedIteration:
    def test_flags_for_loop_over_set(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def total(loads: set[float]) -> float:
                acc = 0.0
                for x in loads:
                    acc += x
                return acc
            """,
            NoUnorderedIterationRule(),
        )
        assert len(findings) == 1
        assert "sorted" in findings[0].message

    def test_flags_sum_over_set_expression(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/dht/x.py",
            """
            def total(a: set[int], b: set[int]) -> int:
                return sum(a | b)
            """,
            NoUnorderedIterationRule(),
        )
        assert len(findings) == 1

    def test_allows_sorted_wrap_and_order_insensitive(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def total(loads: set[float]) -> float:
                acc = 0.0
                for x in sorted(loads):
                    acc += x
                return acc + len(loads) + max(loads)
            """,
            NoUnorderedIterationRule(),
        )
        assert findings == []

    def test_ignores_sets_outside_protocol(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/analysis/x.py",
            """
            def names(tags: set[str]) -> list[str]:
                return [t for t in tags]
            """,
            NoUnorderedIterationRule(),
        )
        assert findings == []


class TestNoFloatEquality:
    def test_flags_load_comparison(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def same(node_load, target_load):
                return node_load == target_load
            """,
            NoFloatEqualityRule(),
        )
        assert len(findings) == 1

    def test_flags_float_literal(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/analysis/x.py",
            """
            def check(x):
                return x != 0.5
            """,
            NoFloatEqualityRule(),
        )
        assert len(findings) == 1

    def test_allows_zero_sentinel_and_isclose(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            import math

            def safe(load, capacity):
                if capacity == 0.0:
                    return False
                return math.isclose(load, capacity)
            """,
            NoFloatEqualityRule(),
        )
        assert findings == []


class TestConservationGuard:
    def test_flags_unguarded_mutator(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def shed(ring, vs, target):
                ring.transfer_virtual_server(vs, target)
            """,
            ConservationGuardRule(),
        )
        assert len(findings) == 1
        assert "shed" in findings[0].message

    def test_flags_unguarded_rebalance(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/app/x.py",
            """
            class System:
                def rebalance(self):
                    return self.balancer.run_round(self.ring)
            """,
            ConservationGuardRule(),
        )
        assert len(findings) == 1

    def test_allows_guarded_mutator(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def shed(ring, vs, target):
                before = sum(n.load for n in ring.nodes)
                ring.transfer_virtual_server(vs, target)
                after = sum(n.load for n in ring.nodes)
                assert_loads_conserved(before, after, context="shed")
            """,
            ConservationGuardRule(),
        )
        assert findings == []

    def test_exempts_primitive_and_other_packages(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def transfer_virtual_server(vs, target):
                target.accept(vs)
            """,
            ConservationGuardRule(),
        )
        assert findings == []
        findings = lint(
            tmp_path,
            "repro/analysis/x.py",
            """
            def replay(ring, vs, target):
                ring.transfer_virtual_server(vs, target)
            """,
            ConservationGuardRule(),
        )
        assert findings == []


class TestObsSpanCoverage:
    def test_flags_uninstrumented_entry_point(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/classification.py",
            """
            def classify_all(reports):
                return [r.kind for r in reports]
            """,
            ObsSpanCoverageRule(),
        )
        assert len(findings) == 1
        assert "no tracer source" in findings[0].message

    def test_flags_dropped_tracer_parameter(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/helpers.py",
            """
            def walk(tree, tracer=None):
                return list(tree)
            """,
            ObsSpanCoverageRule(),
        )
        assert len(findings) == 1
        assert "never uses or forwards" in findings[0].message

    def test_flags_missing_entry_point(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/vst.py",
            """
            def plan_transfers(pairs):
                return pairs
            """,
            ObsSpanCoverageRule(),
        )
        assert len(findings) == 1
        assert "execute_transfers" in findings[0].message

    def test_allows_instrumented_entry_point(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/classification.py",
            """
            def classify_all(reports, tracer=None):
                with tracer.span("classification"):
                    return [r.kind for r in reports]
            """,
            ObsSpanCoverageRule(),
        )
        assert findings == []

    def test_allows_tracer_delegation(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/helpers.py",
            """
            def walk(tree, tracer=None):
                return visit(tree, tracer=tracer)
            """,
            ObsSpanCoverageRule(),
        )
        assert findings == []

    def test_ignores_non_core_packages(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/obs/helpers.py",
            """
            def walk(tree, tracer=None):
                return list(tree)
            """,
            ObsSpanCoverageRule(),
        )
        assert findings == []


class TestExceptionHygiene:
    def test_flags_bare_except(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def f():
                try:
                    risky()
                except:
                    pass
            """,
            ExceptionHygieneRule(),
        )
        assert len(findings) == 1

    def test_flags_swallowed_blind_exception(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/analysis/x.py",
            """
            def f():
                try:
                    risky()
                except Exception:
                    return None
            """,
            ExceptionHygieneRule(),
        )
        assert len(findings) == 1

    def test_allows_reraise_and_bound_use(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def f(log):
                try:
                    risky()
                except Exception:
                    raise
                try:
                    risky()
                except Exception as exc:
                    log(exc)
            """,
            ExceptionHygieneRule(),
        )
        assert findings == []

    def test_allows_specific_exception(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def f():
                try:
                    risky()
                except KeyError:
                    return None
            """,
            ExceptionHygieneRule(),
        )
        assert findings == []


class TestMutableDefaultArgs:
    def test_flags_literal_and_call_defaults(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def f(a, acc=[], *, seen=set()):
                return a
            """,
            MutableDefaultArgsRule(),
        )
        assert len(findings) == 2

    def test_allows_none_and_immutable_defaults(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def f(a, acc=None, label="x", pair=(1, 2)):
                return a
            """,
            MutableDefaultArgsRule(),
        )
        assert findings == []


class TestDocstringCoverage:
    def test_flags_undocumented_api(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/obs/x.py",
            """
            def emit(x):
                return x
            """,
            DocstringCoverageRule(),
        )
        messages = " ".join(f.message for f in findings)
        assert "module" in messages.lower()
        assert "emit" in messages

    def test_allows_documented_and_private(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/obs/x.py",
            '''
            """A documented module."""

            def emit(x):
                """Emit x."""
                return x

            def _internal(x):
                return x
            ''',
            DocstringCoverageRule(),
        )
        assert findings == []

    def test_not_enforced_outside_documented_api(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def emit(x):
                return x
            """,
            DocstringCoverageRule(),
        )
        assert findings == []


class TestBoundedRetry:
    def test_flags_while_true_in_protocol_code(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def resend(send):
                while True:
                    if send():
                        return True
            """,
            BoundedRetryRule(),
        )
        assert [f.rule for f in findings] == ["bounded-retry"]
        assert "while True" in findings[0].message

    def test_flags_while_one_in_faults_package(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/faults/x.py",
            """
            def poll(q):
                while 1:
                    if q.ready():
                        break
            """,
            BoundedRetryRule(),
        )
        assert len(findings) == 1

    def test_flags_jitterless_backoff_helper(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/sim/x.py",
            """
            def backoff_delay(attempt):
                return 0.05 * 2 ** attempt
            """,
            BoundedRetryRule(),
        )
        assert [f.rule for f in findings] == ["bounded-retry"]
        assert "backoff_delay" in findings[0].message

    def test_allows_bounded_loop_with_seeded_jitter(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def deliver_with_retry(policy, send, rng):
                for attempt in range(1, policy.max_attempts + 1):
                    if send(attempt):
                        return True
                    delay = policy.backoff_delay(attempt, rng)
                return False
            """,
            BoundedRetryRule(),
        )
        assert findings == []

    def test_allows_condition_loops_and_non_protocol_code(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def drain(queue):
                while queue:
                    queue.pop()
            """,
            BoundedRetryRule(),
        )
        assert findings == []
        findings = lint(
            tmp_path,
            "repro/analysis/x.py",
            """
            def spin():
                while True:
                    pass
            """,
            BoundedRetryRule(),
        )
        assert findings == []

    def test_flags_unbounded_heal_loop_in_membership_package(self, tmp_path):
        # The partition-heal protocol lives in repro.membership — protocol
        # code, so an unbounded reconciliation loop must be flagged...
        findings = lint(
            tmp_path,
            "repro/membership/x.py",
            """
            def heal(suspended):
                while True:
                    if not suspended:
                        return
                    suspended.pop().commit()
            """,
            BoundedRetryRule(),
        )
        assert [f.rule for f in findings] == ["bounded-retry"]

    def test_allows_bounded_heal_loop_in_membership_package(self, tmp_path):
        # ...while the shipped shape — reconcile each suspended transfer
        # exactly once, in suspension order — is bounded and clean.
        findings = lint(
            tmp_path,
            "repro/membership/x.py",
            """
            def heal(suspended):
                for txn in suspended:
                    if txn.source.alive and txn.target.alive:
                        txn.commit()
                    else:
                        txn.rollback()
            """,
            BoundedRetryRule(),
        )
        assert findings == []

    def test_pragma_silences_reviewed_loop(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/sim/x.py",
            """
            def event_loop(step):
                while True:  # lint: disable=bounded-retry
                    step()
            """,
            BoundedRetryRule(),
        )
        assert findings == []


class TestNoForkInProtocol:
    def test_flags_multiprocessing_import(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            import multiprocessing

            def go():
                return multiprocessing.cpu_count()
            """,
            NoForkInProtocolRule(),
        )
        assert [f.rule for f in findings] == ["no-fork-in-protocol"]
        assert "multiprocessing" in findings[0].message

    def test_flags_subprocess_and_futures_imports(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/parallel/x.py",
            """
            import subprocess
            from concurrent.futures import ProcessPoolExecutor
            """,
            NoForkInProtocolRule(),
        )
        assert len(findings) == 2

    def test_flags_os_fork_call(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/sim/x.py",
            """
            import os

            def go():
                return os.fork()
            """,
            NoForkInProtocolRule(),
        )
        assert len(findings) == 1
        assert "os.fork" in findings[0].message

    def test_flags_executor_construction_via_alias(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/parallel/x.py",
            """
            def go(futures):
                return futures.ProcessPoolExecutor(max_workers=2)
            """,
            NoForkInProtocolRule(),
        )
        assert len(findings) == 1
        assert "ProcessPoolExecutor" in findings[0].message

    def test_pool_module_is_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/parallel/pool.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def make():
                return ProcessPoolExecutor(max_workers=2)
            """,
            NoForkInProtocolRule(),
        )
        assert findings == []

    def test_non_protocol_package_is_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/analysis/x.py",
            """
            import subprocess
            """,
            NoForkInProtocolRule(),
        )
        assert findings == []

    def test_flags_worker_with_implicit_inputs(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/parallel/x.py",
            """
            def fold_worker(state):
                return state
            """,
            NoForkInProtocolRule(),
        )
        assert len(findings) == 1
        assert "fold_worker" in findings[0].message
        assert "'state'" in findings[0].message

    def test_flags_worker_with_no_args(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/parallel/x.py",
            """
            def idle_worker():
                return None
            """,
            NoForkInProtocolRule(),
        )
        assert len(findings) == 1

    def test_accepts_explicit_worker_signatures(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/parallel/x.py",
            """
            def fold_worker(task):
                return task

            def trial_worker(seed, scale=1):
                return seed * scale
            """,
            NoForkInProtocolRule(),
        )
        assert findings == []

    def test_worker_naming_only_applies_in_parallel(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/core/x.py",
            """
            def fold_worker(state):
                return state
            """,
            NoForkInProtocolRule(),
        )
        assert findings == []
