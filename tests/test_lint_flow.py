"""Interprocedural flow-analysis tests: call graph, effects, new rules.

Fixtures are written under ``tmp_path/repro/<pkg>/`` so the engine's
module-name anchoring classifies them exactly like shipped sources
(``repro/core/...`` is protocol, ``repro/analysis/...`` is not).
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, main
from repro.lint.engine import LintEngine
from repro.lint.flow import EFFECTS_SCHEMA_VERSION, FlowAnalysis
from repro.lint.rules.streams import (
    ParallelTaskPurityRule,
    RngStreamDisciplineRule,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def write(tmp_path: Path, relpath: str, source: str) -> Path:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def analyze(tmp_path: Path) -> FlowAnalysis:
    """Build a FlowAnalysis over every fixture file under ``tmp_path``."""
    engine = LintEngine(rules=(), flow=False)
    files = engine.collect_files([tmp_path])
    contexts = [engine.parse_file(f, root=tmp_path) for f in files]
    return FlowAnalysis(contexts)


def lint(tmp_path: Path) -> list:
    """Full-engine findings (per-file + interprocedural) for fixtures."""
    return LintEngine().lint_paths([tmp_path], root=tmp_path)


# ----------------------------------------------------------------------
# The acceptance fixture: a wall-clock read reachable only through a
# 3-deep helper chain outside the protocol packages.
# ----------------------------------------------------------------------
DEEP_HELPERS = """
    import time

    def helper_c():
        return time.time()

    def helper_b():
        return helper_c()

    def helper_a():
        return helper_b()

    def pure_helper(x):
        return x + 1
"""

DEEP_PROTOCOL = """
    from repro.analysis.helpers import helper_a, pure_helper

    def run_round():
        return helper_a()

    def quiet_round():
        return pure_helper(2)
"""


def deep_fixture(tmp_path: Path) -> None:
    write(tmp_path, "repro/analysis/helpers.py", DEEP_HELPERS)
    write(tmp_path, "repro/core/proto.py", DEEP_PROTOCOL)


def test_three_deep_wallclock_chain_is_flagged_with_full_chain(tmp_path):
    deep_fixture(tmp_path)
    findings = lint(tmp_path)
    hits = [f for f in findings if f.rule == "no-wallclock-in-protocol"]
    assert len(hits) == 1
    f = hits[0]
    assert f.path == "repro/core/proto.py"
    assert "transitively reaches" in f.message
    # The full chain, caller-first, down to the direct site.
    assert (
        "repro.core.proto.run_round -> repro.analysis.helpers.helper_a "
        "-> repro.analysis.helpers.helper_b -> repro.analysis.helpers.helper_c"
        in f.message
    )
    assert "repro/analysis/helpers.py" in f.message  # site location


def test_effects_propagate_through_the_chain(tmp_path):
    deep_fixture(tmp_path)
    analysis = analyze(tmp_path)
    for qname in (
        "repro.analysis.helpers.helper_c",
        "repro.analysis.helpers.helper_b",
        "repro.analysis.helpers.helper_a",
        "repro.core.proto.run_round",
    ):
        assert "wall-clock" in analysis.effects_of(qname), qname
    assert analysis.effects_of("repro.core.proto.quiet_round") == frozenset()
    assert analysis.effects_of("repro.analysis.helpers.pure_helper") == (
        frozenset()
    )


def test_direct_site_in_protocol_is_local_not_frontier(tmp_path):
    # A direct clock read in protocol code is the local rule's finding;
    # the frontier pass must not double-report it.
    write(
        tmp_path,
        "repro/core/direct.py",
        """
        import time

        def stamp():
            return time.time()
        """,
    )
    findings = lint(tmp_path)
    hits = [f for f in findings if f.rule == "no-wallclock-in-protocol"]
    assert len(hits) == 1
    assert "transitively" not in hits[0].message


def test_recursion_and_scc_cycles_converge(tmp_path):
    write(
        tmp_path,
        "repro/analysis/cyc.py",
        """
        import time

        def ping(n):
            if n:
                return pong(n - 1)
            return time.time()

        def pong(n):
            return ping(n)

        def selfloop(n):
            if n:
                return selfloop(n - 1)
            return 0
        """,
    )
    analysis = analyze(tmp_path)
    assert "wall-clock" in analysis.effects_of("repro.analysis.cyc.ping")
    assert "wall-clock" in analysis.effects_of("repro.analysis.cyc.pong")
    assert analysis.effects_of("repro.analysis.cyc.selfloop") == frozenset()


def test_decorator_effects_reach_the_decorated_function(tmp_path):
    write(
        tmp_path,
        "repro/analysis/deco.py",
        """
        def announcing(fn):
            print("registered", fn)
            return fn

        @announcing
        def task(x):
            return x * 2
        """,
    )
    analysis = analyze(tmp_path)
    assert "io" in analysis.effects_of("repro.analysis.deco.task")


def test_method_dispatch_through_self_and_typed_receiver(tmp_path):
    write(
        tmp_path,
        "repro/analysis/meth.py",
        """
        import time

        class Worker:
            def run(self):
                return self._stamp()

            def _stamp(self):
                return time.time()

        def drive():
            w = Worker()
            return w.run()
        """,
    )
    analysis = analyze(tmp_path)
    assert "wall-clock" in analysis.effects_of(
        "repro.analysis.meth.Worker.run"
    )
    assert "wall-clock" in analysis.effects_of("repro.analysis.meth.drive")


def test_unordered_iteration_propagates_interprocedurally(tmp_path):
    write(
        tmp_path,
        "repro/analysis/iter.py",
        """
        def fold(items: set):
            total = 0.0
            for item in items:
                total += item * 0.5
            return total
        """,
    )
    write(
        tmp_path,
        "repro/core/agg.py",
        """
        from repro.analysis.iter import fold

        def aggregate(items):
            return fold(set(items))
        """,
    )
    analysis = analyze(tmp_path)
    assert "unordered-iteration" in analysis.effects_of(
        "repro.core.agg.aggregate"
    )


# ----------------------------------------------------------------------
# rng-stream-discipline
# ----------------------------------------------------------------------
def test_module_level_generator_binding_is_flagged(tmp_path):
    write(
        tmp_path,
        "repro/core/globals_rng.py",
        """
        from repro.util.rng import ensure_rng

        GEN = ensure_rng(0)
        """,
    )
    findings = lint(tmp_path)
    hits = [f for f in findings if f.rule == "rng-stream-discipline"]
    assert len(hits) == 1
    assert "module-level Generator binding 'GEN'" in hits[0].message


POOL_FIXTURE = """
    from repro.util.rng import ensure_rng, spawn_rngs

    def work(task):
        idx, gen = task
        return idx + float(gen.normal())

    def run_shared(pool):
        gen = ensure_rng(7)
        tasks = [(i, gen) for i in range(4)]
        return pool.map_ordered(work, tasks)

    def run_spawned(pool):
        streams = spawn_rngs(7, 4)
        tasks = [(i, streams[i]) for i in range(4)]
        return pool.map_ordered(work, tasks)
"""


def test_shared_stream_crossing_pool_boundary_is_flagged(tmp_path):
    write(tmp_path, "repro/analysis/pooluse.py", POOL_FIXTURE)
    analysis = analyze(tmp_path)
    findings = list(RngStreamDisciplineRule().check_project(analysis))
    assert len(findings) == 1
    assert "Generator crosses the WorkerPool submission boundary" in (
        findings[0].message
    )
    assert "run_shared" in findings[0].message
    # The per-shard spawn pattern passes: only the shared submission
    # carries an origin.
    origins = {
        sub.caller: sub.shared_stream_origin
        for sub in analysis.submissions()
    }
    assert origins["repro.analysis.pooluse.run_shared"] is not None
    assert origins["repro.analysis.pooluse.run_spawned"] is None


# ----------------------------------------------------------------------
# parallel-task-purity
# ----------------------------------------------------------------------
def test_task_closing_over_shared_generator_is_rejected(tmp_path):
    write(
        tmp_path,
        "repro/analysis/impure.py",
        """
        from repro.util.rng import ensure_rng

        def run(pool):
            gen = ensure_rng(3)

            def task(item):
                return item + float(gen.normal())

            return pool.map_ordered(task, [1.0, 2.0])
        """,
    )
    analysis = analyze(tmp_path)
    findings = list(ParallelTaskPurityRule().check_project(analysis))
    assert len(findings) == 1
    assert "not effect-closed" in findings[0].message
    assert "ambient-rng" in findings[0].message


def test_payload_stream_task_is_accepted(tmp_path):
    write(tmp_path, "repro/analysis/pooluse.py", POOL_FIXTURE)
    analysis = analyze(tmp_path)
    # Both submissions pass purity: `work` draws only from the stream
    # shipped in its task payload (the sanctioned per-shard pattern).
    assert list(ParallelTaskPurityRule().check_project(analysis)) == []


def test_lambda_and_wallclock_tasks_are_rejected(tmp_path):
    write(
        tmp_path,
        "repro/analysis/badtasks.py",
        """
        import time

        def slow_task(item):
            return item + time.time()

        def run_lambda(pool):
            return pool.map_ordered(lambda item: item + 1, [1, 2])

        def run_slow(pool):
            return pool.map_ordered(slow_task, [1, 2])
        """,
    )
    analysis = analyze(tmp_path)
    findings = sorted(
        ParallelTaskPurityRule().check_project(analysis),
        key=lambda f: f.line,
    )
    assert len(findings) == 2
    assert "lambda submitted" in findings[0].message
    assert "wall-clock" in findings[1].message
    assert "slow_task" in findings[1].message


def test_shipped_shard_workers_are_effect_closed():
    """The real tree's submission sites prove the positive pattern."""
    engine = LintEngine(rules=(), flow=False)
    files = engine.collect_files([REPO_ROOT / "src" / "repro"])
    contexts = [engine.parse_file(f, root=REPO_ROOT) for f in files]
    analysis = FlowAnalysis(contexts)
    subs = analysis.submissions()
    assert len(subs) >= 3  # lbi/vsa shard workers + trial executor
    for sub in subs:
        assert sub.callee is not None, sub.callee_text
        assert sub.shared_stream_origin is None, sub.caller
        assert not analysis.kinds_of(sub.callee) & frozenset(
            {"wall-clock", "io", "ambient-rng", "global-rng", "fork"}
        ), sub.callee
    assert list(ParallelTaskPurityRule().check_project(analysis)) == []


# ----------------------------------------------------------------------
# CLI: flow flags, exit codes, artifact schemas
# ----------------------------------------------------------------------
IO_ONLY = """
    def report(x):
        print(x)
"""


def test_effects_out_schema(tmp_path, capsys):
    path = write(tmp_path, "repro/analysis/rep.py", IO_ONLY)
    out = tmp_path / "effects.json"
    assert main([str(path), "--effects-out", str(out)]) == EXIT_CLEAN
    data = json.loads(out.read_text())
    assert data["version"] == EFFECTS_SCHEMA_VERSION
    assert data["functions"] == {"repro.analysis.rep.report": ["io"]}
    assert data["totals"]["io"] == 1


def test_effects_check_clean_then_drift(tmp_path, capsys):
    path = write(tmp_path, "repro/analysis/rep.py", IO_ONLY)
    baseline = tmp_path / "effects-baseline.json"
    assert main([str(path), "--effects-out", str(baseline)]) == EXIT_CLEAN
    capsys.readouterr()

    # Unchanged tree: no drift.
    assert main([str(path), "--effects-check", str(baseline)]) == EXIT_CLEAN

    # Add a wall-clock effect: drift is reported and fails the run.
    write(
        tmp_path,
        "repro/analysis/rep.py",
        """
        import time

        def report(x):
            print(x, time.time())
        """,
    )
    capsys.readouterr()
    assert main([str(path), "--effects-check", str(baseline)]) == (
        EXIT_FINDINGS
    )
    out = capsys.readouterr().out
    assert "effects drift" in out
    assert "repro.analysis.rep.report" in out


def test_callgraph_dot_and_jsonl_dumps(tmp_path):
    deep_fixture(tmp_path)
    dot = tmp_path / "graph.dot"
    assert main([str(tmp_path), "--callgraph", str(dot)]) == EXIT_FINDINGS
    text = dot.read_text()
    assert text.startswith("digraph")
    assert "repro.analysis.helpers.helper_b" in text

    jsonl = tmp_path / "graph.jsonl"
    main([str(tmp_path), "--callgraph", str(jsonl)])
    records = [json.loads(line) for line in jsonl.read_text().splitlines()]
    nodes = [r for r in records if r.get("record") == "node"]
    edges = [r for r in records if r.get("record") == "edge"]
    assert any(
        n["qname"] == "repro.core.proto.run_round" and n["protocol"]
        for n in nodes
    )
    assert any(
        e["caller"].endswith("helper_a") and e["callee"].endswith("helper_b")
        for e in edges
    )


def test_no_flow_skips_interprocedural_findings(tmp_path):
    deep_fixture(tmp_path)
    assert main([str(tmp_path)]) == EXIT_FINDINGS
    assert main([str(tmp_path), "--no-flow"]) == EXIT_CLEAN


def test_no_flow_conflicts_with_flow_artifacts(tmp_path):
    path = write(tmp_path, "repro/analysis/rep.py", IO_ONLY)
    with pytest.raises(SystemExit):
        main([str(path), "--no-flow", "--effects-out", str(tmp_path / "e.json")])


def test_relaxed_profile_drops_doc_rules_keeps_determinism(tmp_path, capsys):
    # An undocumented function in a documented package plus a global
    # draw: relaxed drops the docstring finding, keeps the rng one.
    write(
        tmp_path,
        "repro/obs/script_like.py",
        """
        \"\"\"A documented module with an undocumented function.\"\"\"

        import numpy as np

        def run():
            return np.random.random()
        """,
    )
    assert main([str(tmp_path)]) == EXIT_FINDINGS
    default_out = capsys.readouterr().out
    assert "[docstring-coverage]" in default_out
    assert "[no-unseeded-rng]" in default_out

    assert main([str(tmp_path), "--profile", "relaxed"]) == EXIT_FINDINGS
    relaxed_out = capsys.readouterr().out
    assert "[docstring-coverage]" not in relaxed_out
    assert "[no-unseeded-rng]" in relaxed_out
