"""Tests for landmark selection and landmark-vector computation."""

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topology import DistanceOracle, landmark_vectors, select_landmarks


class TestSelection:
    def test_count_and_range(self, mini_oracle):
        lm = select_landmarks(mini_oracle, 5, rng=0)
        assert len(lm) == 5
        assert all(0 <= v < mini_oracle.topology.num_vertices for v in lm)

    def test_unique(self, mini_oracle):
        lm = select_landmarks(mini_oracle, 8, rng=1)
        assert len(set(lm.tolist())) == 8

    def test_random_strategy(self, mini_oracle):
        lm = select_landmarks(mini_oracle, 6, rng=2, strategy="random")
        assert len(set(lm.tolist())) == 6

    def test_unknown_strategy(self, mini_oracle):
        with pytest.raises(TopologyError):
            select_landmarks(mini_oracle, 3, rng=0, strategy="bogus")

    def test_too_many_landmarks(self, mini_oracle):
        with pytest.raises(TopologyError):
            select_landmarks(mini_oracle, mini_oracle.topology.num_vertices + 1)

    def test_spread_beats_random_on_min_separation(self, mini_oracle):
        def min_sep(landmarks):
            d = mini_oracle.distances_from_many(landmarks)
            sep = np.inf
            for i in range(len(landmarks)):
                for j in range(i + 1, len(landmarks)):
                    sep = min(sep, d[i][landmarks[j]])
            return sep

        spread = select_landmarks(mini_oracle, 4, rng=3, strategy="spread")
        random_sel = select_landmarks(mini_oracle, 4, rng=3, strategy="random")
        assert min_sep(spread) >= min_sep(random_sel)

    def test_deterministic(self, mini_oracle):
        a = select_landmarks(mini_oracle, 4, rng=7)
        b = select_landmarks(mini_oracle, 4, rng=7)
        assert np.array_equal(a, b)


class TestVectors:
    def test_shape(self, mini_oracle):
        lm = select_landmarks(mini_oracle, 5, rng=0)
        sites = mini_oracle.topology.stub_vertices[:10]
        vecs = landmark_vectors(mini_oracle, lm, sites)
        assert vecs.shape == (10, 5)

    def test_landmark_distance_to_itself_zero(self, mini_oracle):
        lm = select_landmarks(mini_oracle, 3, rng=0)
        vecs = landmark_vectors(mini_oracle, lm, lm)
        assert np.allclose(np.diag(vecs), 0.0)

    def test_values_match_oracle(self, mini_oracle):
        lm = select_landmarks(mini_oracle, 3, rng=1)
        sites = [0, 1]
        vecs = landmark_vectors(mini_oracle, lm, sites)
        for i, s in enumerate(sites):
            for j, l in enumerate(lm):
                assert vecs[i, j] == pytest.approx(mini_oracle.distance(int(l), s))

    def test_same_stub_domain_similar_vectors(self, mini_topology, mini_oracle):
        """The clustering premise: same-stub nodes have close vectors."""
        import collections
        lm = select_landmarks(mini_oracle, 5, rng=2)
        by_domain = collections.defaultdict(list)
        for v in mini_topology.stub_vertices:
            by_domain[mini_topology.info[v].stub_domain].append(int(v))
        # Compare intra-domain vs cross-domain vector distances.
        domains = [d for d, vs in by_domain.items() if len(vs) >= 2]
        d0, d1 = domains[0], domains[1]
        vecs0 = landmark_vectors(mini_oracle, lm, by_domain[d0][:2])
        vecs1 = landmark_vectors(mini_oracle, lm, by_domain[d1][:1])
        intra = np.linalg.norm(vecs0[0] - vecs0[1])
        cross = np.linalg.norm(vecs0[0] - vecs1[0])
        assert intra <= cross

    def test_empty_landmarks_rejected(self, mini_oracle):
        with pytest.raises(TopologyError):
            landmark_vectors(mini_oracle, [], [0])
