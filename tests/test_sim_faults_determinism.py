"""Seeded determinism of the failure simulations, with and without faults.

The reproducibility contract extends to the degraded paths: two runs of
the heartbeat monitor or the churn process from identical seeds — and
the identical :class:`~repro.faults.FaultPlan` — must report identical
failure latencies, drop counts and repair-round histories.
"""

import pytest

from repro.dht import ChordRing
from repro.faults import FaultPlan
from repro.idspace import IdentifierSpace
from repro.ktree import KnaryTree
from repro.exceptions import SimulationError
from repro.sim import HeartbeatMonitor
from repro.sim.churn import ChurnProcess


def build_system(seed=13, nodes=12):
    ring = ChordRing(IdentifierSpace(bits=12))
    ring.populate(nodes, 2, [1.0] * nodes, rng=seed)
    for vs in ring.virtual_servers:
        vs.load = 1.0
    tree = KnaryTree(ring, 2)
    tree.build_full()
    return ring, tree


def heartbeat_digest(trace):
    return (
        trace.heartbeats_sent,
        trace.heartbeats_dropped,
        trace.probes_sent,
        trace.false_suspicions,
        trace.heartbeats_blocked,
        trace.orphaned_subtrees,
        trace.regraft_passes,
        trace.partitions_healed,
        [
            (f.crashed_node, f.detection_latency, f.repair_latency, f.refresh_passes)
            for f in trace.failures
        ],
    )


def churn_digest(trace):
    return (
        trace.events,
        trace.dropped_refreshes,
        trace.refreshes_to_stable,
        trace.repairs,
    )


class TestHeartbeatDeterminism:
    def run_monitor(self, faults, crash_at=2.5):
        ring, tree = build_system()
        monitor = HeartbeatMonitor(
            ring, tree, heartbeat_interval=1.0, miss_threshold=3,
            faults=faults, rng=17,
        )
        monitor.schedule_crash(0, at_time=crash_at)
        return monitor.run(until=25.0)

    def test_identical_seeds_identical_trace_without_faults(self):
        a = self.run_monitor(None)
        b = self.run_monitor(None)
        assert heartbeat_digest(a) == heartbeat_digest(b)
        assert len(a.failures) == 1

    def test_identical_seeds_identical_trace_under_faults(self):
        plan = FaultPlan(seed=6, drop=0.25)
        a = self.run_monitor(plan)
        b = self.run_monitor(plan)
        assert heartbeat_digest(a) == heartbeat_digest(b)
        assert a.heartbeats_dropped > 0

    def test_different_fault_seed_changes_drop_pattern(self):
        a = self.run_monitor(FaultPlan(seed=6, drop=0.25))
        b = self.run_monitor(FaultPlan(seed=7, drop=0.25))
        assert a.heartbeats_dropped != b.heartbeats_dropped or (
            heartbeat_digest(a) != heartbeat_digest(b)
        )

    def test_crash_still_detected_within_bound_under_drops(self):
        trace = self.run_monitor(FaultPlan(seed=6, drop=0.25))
        assert len(trace.failures) == 1
        ring_free = self.run_monitor(None)
        event, clean = trace.failures[0], ring_free.failures[0]
        assert event.crashed_node == clean.crashed_node == 0
        # Drops never delay the declaration path (round-granular model).
        assert event.detection_latency == clean.detection_latency

    def test_drops_on_live_edges_cause_false_suspicions_not_repairs(self):
        ring, tree = build_system()
        monitor = HeartbeatMonitor(
            ring, tree, heartbeat_interval=1.0, miss_threshold=2,
            faults=FaultPlan(seed=1, drop=0.6), rng=3,
        )
        trace = monitor.run(until=40.0)  # nobody actually crashes
        assert trace.heartbeats_dropped > 0
        assert trace.probes_sent > 0
        assert trace.false_suspicions == trace.probes_sent
        assert trace.failures == []
        tree.check_invariants()


class TestHeartbeatPartition:
    """Partition awareness of the heartbeat monitor."""

    def run_partitioned(self, faults=None, at_time=2.0, heal_at=9.0):
        ring, tree = build_system()
        monitor = HeartbeatMonitor(
            ring, tree, heartbeat_interval=1.0, miss_threshold=3,
            faults=faults, rng=17,
        )
        half = len(ring.nodes) // 2
        monitor.schedule_partition(
            [list(range(half)), list(range(half, len(ring.nodes)))],
            at_time=at_time,
            heal_at=heal_at,
        )
        trace = monitor.run(until=20.0)
        tree.check_invariants()
        return trace

    def test_partition_blocks_cross_component_heartbeats(self):
        trace = self.run_partitioned()
        assert trace.heartbeats_blocked > 0
        assert trace.orphaned_subtrees > 0
        assert trace.partitions_healed == 1
        assert trace.regraft_passes >= 1
        # Blocked edges never masquerade as lossy ones.
        assert trace.heartbeats_dropped == 0
        assert trace.probes_sent == 0
        assert trace.failures == []

    def test_orphans_declared_once_per_edge(self):
        # Twice the window must not double the orphan count: each severed
        # edge is declared orphaned exactly once per partition.
        short = self.run_partitioned(at_time=2.0, heal_at=7.0)
        long = self.run_partitioned(at_time=2.0, heal_at=12.0)
        assert short.orphaned_subtrees == long.orphaned_subtrees
        assert long.heartbeats_blocked > short.heartbeats_blocked

    def test_partition_trace_is_deterministic(self):
        a = self.run_partitioned(faults=FaultPlan(seed=6, drop=0.2))
        b = self.run_partitioned(faults=FaultPlan(seed=6, drop=0.2))
        assert heartbeat_digest(a) == heartbeat_digest(b)
        assert a.heartbeats_blocked > 0
        assert a.heartbeats_dropped > 0

    def test_no_partition_means_zero_partition_counters(self):
        ring, tree = build_system()
        monitor = HeartbeatMonitor(ring, tree, heartbeat_interval=1.0)
        trace = monitor.run(until=10.0)
        assert trace.heartbeats_blocked == 0
        assert trace.orphaned_subtrees == 0
        assert trace.regraft_passes == 0
        assert trace.partitions_healed == 0

    def test_schedule_partition_validation(self):
        ring, tree = build_system()
        monitor = HeartbeatMonitor(ring, tree)
        with pytest.raises(SimulationError):
            monitor.schedule_partition([[0, 1]], at_time=1.0, heal_at=2.0)
        with pytest.raises(SimulationError):
            monitor.schedule_partition(
                [[0], [1]], at_time=2.0, heal_at=2.0
            )
        with pytest.raises(SimulationError):
            monitor.schedule_partition(
                [[0, 1], [1, 2]], at_time=1.0, heal_at=2.0
            )


class TestChurnDeterminism:
    def run_churn(self, faults, events=20):
        ring, tree = build_system(seed=21, nodes=16)
        process = ChurnProcess(ring, tree, rng=9, faults=faults)
        trace = process.run(num_events=events)
        tree.check_invariants()
        ring.check_invariants()
        return trace

    def test_identical_seeds_identical_trace_without_faults(self):
        assert churn_digest(self.run_churn(None)) == churn_digest(
            self.run_churn(None)
        )

    def test_identical_seeds_identical_trace_under_faults(self):
        plan = FaultPlan(seed=4, drop=0.3)
        a = self.run_churn(plan)
        b = self.run_churn(plan)
        assert churn_digest(a) == churn_digest(b)
        assert a.dropped_refreshes > 0

    def test_dropped_ticks_burn_rounds_but_stay_bounded(self):
        faulty = self.run_churn(FaultPlan(seed=4, drop=0.3))
        clean = self.run_churn(None)
        assert faulty.events == clean.events  # membership events unaffected
        assert faulty.dropped_refreshes > 0
        assert max(faulty.refreshes_to_stable) <= 64
        # A dropped tick costs a round: stabilisation is never faster.
        assert sum(faulty.refreshes_to_stable) >= sum(clean.refreshes_to_stable)

    def test_null_plan_behaves_exact_like_no_plan(self):
        assert churn_digest(self.run_churn(FaultPlan())) == churn_digest(
            self.run_churn(None)
        )
