"""Tests for :class:`repro.recovery.SystemSnapshot` capture/restore.

The contract: restoring a snapshot into a factory-fresh twin makes the
twin byte-identical to the captured stack for every future round — the
canonical digests of all subsequent reports must match.  Also covered:
save/load atomicity, the version gate, shape-compatibility errors and
presence mismatches (snapshot captured with/without injector, store,
membership vs a target that disagrees).
"""

import numpy as np
import pytest

from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.exceptions import RecoveryError
from repro.faults import FaultPlan, PartitionSpec
from repro.recovery import SystemSnapshot
from repro.recovery.snapshot import SNAPSHOT_VERSION
from repro.util.rng import ensure_rng
from repro.workloads import GaussianLoadModel, build_scenario

SEED = 11

FAULTS = FaultPlan(
    seed=5,
    drop=0.08,
    transfer_abort=0.1,
    partitions=(PartitionSpec(at_round=1, duration=1, num_components=2),),
)


def _build(faults=None, seed=SEED, num_nodes=24):
    scenario = build_scenario(
        GaussianLoadModel(mu=1e6, sigma=2e3),
        num_nodes=num_nodes,
        vs_per_node=4,
        rng=seed,
    )
    config = BalancerConfig(
        proximity_mode="ignorant", epsilon=0.05, tree_degree=2
    )
    return LoadBalancer(scenario.ring, config, rng=seed + 1, faults=faults)


class TestRoundTrip:
    @pytest.mark.parametrize("faults", [None, FAULTS], ids=["clean", "faulty"])
    def test_restore_into_twin_is_digest_identical(self, faults):
        original = _build(faults)
        for _ in range(2):
            original.run_round()
        snapshot = SystemSnapshot.capture(original)

        twin = _build(faults)  # fresh stack, same constructor args
        snapshot.restore(twin)

        for rnd in range(3):
            a = original.run_round().canonical_digest()
            b = twin.run_round().canonical_digest()
            assert a == b, f"diverged at round {rnd} after restore"

    def test_digest_stable_across_capture(self):
        balancer = _build(FAULTS)
        balancer.run_round()
        d1 = SystemSnapshot.capture(balancer).canonical_digest()
        d2 = SystemSnapshot.capture(balancer).canonical_digest()
        assert d1 == d2  # capture must not perturb the stack

    def test_restored_capture_has_same_digest(self):
        original = _build(FAULTS)
        original.run_round()
        snapshot = SystemSnapshot.capture(original)
        twin = _build(FAULTS)
        snapshot.restore(twin)
        assert SystemSnapshot.capture(twin).canonical_digest() == snapshot.canonical_digest()

    def test_extra_rngs_round_trip(self):
        balancer = _build()
        app_rng = ensure_rng(99)
        app_rng.random(10)  # advance the stream
        snapshot = SystemSnapshot.capture(
            balancer, extra_rngs={"app": app_rng}
        )
        expected = app_rng.random(5).tolist()

        twin = _build()
        twin_rng = ensure_rng(99)
        snapshot.restore(twin, extra_rngs={"app": twin_rng})
        assert twin_rng.random(5).tolist() == expected

    def test_missing_extra_rng_raises(self):
        balancer = _build()
        snapshot = SystemSnapshot.capture(
            balancer, extra_rngs={"app": ensure_rng(1)}
        )
        twin = _build()
        with pytest.raises(RecoveryError):
            snapshot.restore(twin, extra_rngs={})


class TestSaveLoad:
    def test_save_load_round_trip(self, tmp_path):
        balancer = _build(FAULTS)
        balancer.run_round()
        snapshot = SystemSnapshot.capture(balancer)
        path = tmp_path / "snap.json"
        snapshot.save(path)
        loaded = SystemSnapshot.load(path)
        assert loaded.canonical_digest() == snapshot.canonical_digest()
        assert loaded.round_index == snapshot.round_index

    def test_version_gate(self, tmp_path):
        balancer = _build()
        snapshot = SystemSnapshot.capture(balancer)
        snapshot.payload["version"] = SNAPSHOT_VERSION + 1
        path = tmp_path / "snap.json"
        snapshot.save(path)
        with pytest.raises(RecoveryError, match="version"):
            SystemSnapshot.load(path)

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(RecoveryError):
            SystemSnapshot.load(path)


class TestShapeMismatches:
    def test_space_bits_mismatch(self):
        snapshot = SystemSnapshot.capture(_build())
        small = _build(num_nodes=24)
        small_ring_bits = small.ring.space.bits
        snapshot.payload["space_bits"] = small_ring_bits + 1
        with pytest.raises(RecoveryError, match="space"):
            snapshot.restore(small)

    def test_injector_presence_mismatch(self):
        snapshot = SystemSnapshot.capture(_build(FAULTS))
        with pytest.raises(RecoveryError):
            snapshot.restore(_build(None))

    def test_injector_absence_mismatch(self):
        snapshot = SystemSnapshot.capture(_build(None))
        with pytest.raises(RecoveryError):
            snapshot.restore(_build(FAULTS))

    def test_store_presence_mismatch(self):
        balancer = _build()
        snapshot = SystemSnapshot.capture(balancer)  # no store captured
        from repro.dht.storage import ObjectStore

        twin = _build()
        with pytest.raises(RecoveryError):
            snapshot.restore(twin, store=ObjectStore(twin.ring))
