"""Tests for shed-subset selection (exact vs greedy vs brute force)."""

from itertools import combinations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import select_shed_subset
from repro.core.selection import _exact_enum, _exact_tabled, _exact_vec
from repro.exceptions import BalancerError


def brute_force_optimum(loads, excess, max_shed):
    """Reference: minimal (total, size) subset with total >= excess."""
    best = None
    for r in range(0, max_shed + 1):
        for combo in combinations(range(len(loads)), r):
            total = sum(loads[i] for i in combo)
            if total >= excess:
                key = (total, r)
                if best is None or key < best[0]:
                    best = (key, combo)
    return best


class TestBasics:
    def test_zero_excess_sheds_nothing(self):
        assert select_shed_subset([1.0, 2.0], 0.0) == []
        assert select_shed_subset([1.0, 2.0], -5.0) == []

    def test_empty_loads(self):
        assert select_shed_subset([], 5.0) == []

    def test_single_cover(self):
        assert select_shed_subset([1.0, 5.0, 10.0], 4.0) == [1]

    def test_exact_prefers_cheapest_combination(self):
        # excess 6: {5, 1.5} = 6.5 beats {10} = 10.
        assert select_shed_subset([1.5, 5.0, 10.0], 6.0) == [0, 1]

    def test_keep_at_least_blocks_full_shed(self):
        got = select_shed_subset([3.0, 4.0], 100.0, keep_at_least=1)
        assert got == [1]  # best effort: shed the largest, keep one

    def test_keep_at_least_all_blocked(self):
        assert select_shed_subset([3.0], 1.0, keep_at_least=1) == []

    def test_infeasible_best_effort_sheds_largest(self):
        got = select_shed_subset([1.0, 2.0, 3.0], 100.0, keep_at_least=0)
        assert got == [0, 1, 2]

    def test_unknown_policy(self):
        with pytest.raises(BalancerError):
            select_shed_subset([1.0], 1.0, policy="bogus")

    def test_negative_load_rejected(self):
        with pytest.raises(BalancerError):
            select_shed_subset([-1.0], 1.0)

    def test_negative_keep_rejected(self):
        with pytest.raises(BalancerError):
            select_shed_subset([1.0], 1.0, keep_at_least=-1)


class TestExactOptimality:
    @given(
        loads=st.lists(st.floats(0.1, 100.0), min_size=1, max_size=10),
        frac=st.floats(0.05, 0.95),
    )
    @settings(max_examples=150, deadline=None)
    def test_exact_matches_brute_force_total(self, loads, frac):
        excess = frac * sum(loads)
        got = select_shed_subset(loads, excess, policy="exact", keep_at_least=0)
        got_total = sum(loads[i] for i in got)
        ref = brute_force_optimum(loads, excess, len(loads))
        assert ref is not None
        assert got_total >= excess
        assert got_total == pytest.approx(ref[0][0])

    @given(
        loads=st.lists(st.floats(0.1, 50.0), min_size=2, max_size=8),
        frac=st.floats(0.05, 0.9),
        keep=st.integers(0, 2),
    )
    @settings(max_examples=100, deadline=None)
    def test_exact_respects_keep_floor(self, loads, frac, keep):
        excess = frac * sum(loads)
        got = select_shed_subset(loads, excess, policy="exact", keep_at_least=keep)
        assert len(got) <= len(loads) - keep

    def test_indices_sorted_and_unique(self):
        got = select_shed_subset([5.0, 1.0, 3.0, 2.0], 6.0)
        assert got == sorted(set(got))


class TestGreedy:
    @given(
        loads=st.lists(st.floats(0.1, 100.0), min_size=1, max_size=20),
        frac=st.floats(0.05, 0.95),
    )
    @settings(max_examples=100, deadline=None)
    def test_greedy_always_feasible_when_possible(self, loads, frac):
        excess = frac * sum(loads)
        got = select_shed_subset(loads, excess, policy="greedy", keep_at_least=0)
        assert sum(loads[i] for i in got) >= excess

    @given(
        loads=st.lists(st.floats(0.1, 100.0), min_size=1, max_size=10),
        frac=st.floats(0.05, 0.95),
    )
    @settings(max_examples=100, deadline=None)
    def test_exact_never_worse_than_greedy(self, loads, frac):
        excess = frac * sum(loads)
        exact = select_shed_subset(loads, excess, policy="exact", keep_at_least=0)
        greedy = select_shed_subset(loads, excess, policy="greedy", keep_at_least=0)
        assert sum(loads[i] for i in exact) <= sum(loads[i] for i in greedy) + 1e-9

    def test_large_vs_count_falls_back_to_greedy(self):
        loads = [1.0] * 40
        got = select_shed_subset(loads, 10.0, policy="exact", keep_at_least=0)
        assert sum(loads[i] for i in got) >= 10.0


class TestExactPathIdentity:
    """The fast _exact paths must match the reference enumeration *exactly*.

    Not approximately: the balancing digests are byte-identical across
    engines only because every implementation path of the exact policy
    picks the same indices, ties included.  Tie-heavy load vectors
    (repeated values, zeros) are therefore the interesting inputs.
    """

    @given(
        loads=st.lists(
            st.one_of(st.sampled_from([0.0, 1.0, 2.5, 5.0]), st.floats(0.0, 10.0)),
            min_size=1,
            max_size=14,
        ),
        frac=st.floats(0.0, 1.4),
        keep=st.integers(0, 2),
    )
    @settings(max_examples=200, deadline=None)
    def test_tabled_matches_enum(self, loads, frac, keep):
        excess = frac * sum(loads)
        max_shed = len(loads) - keep
        if excess <= 0 or max_shed <= 0:
            return
        assert _exact_tabled(loads, excess, max_shed) == _exact_enum(loads, excess, max_shed)

    @given(
        loads=st.lists(
            st.one_of(st.sampled_from([0.0, 1.0, 2.5, 5.0]), st.floats(0.0, 10.0)),
            min_size=21,
            max_size=23,
        ),
        frac=st.floats(0.0, 1.4),
        keep=st.integers(0, 2),
    )
    @settings(max_examples=25, deadline=None)
    def test_vec_matches_enum(self, loads, frac, keep):
        excess = frac * sum(loads)
        max_shed = len(loads) - keep
        if excess <= 0 or max_shed <= 0:
            return
        assert _exact_vec(loads, excess, max_shed) == _exact_enum(loads, excess, max_shed)


class TestPaperSemantics:
    def test_remaining_load_at_most_target(self):
        """The constraint: L_i - shed_total <= T_i  <=>  shed_total >= excess."""
        loads = [10.0, 20.0, 30.0, 40.0]
        total = sum(loads)
        target = 55.0
        excess = total - target
        got = select_shed_subset(loads, excess, keep_at_least=0)
        remaining = total - sum(loads[i] for i in got)
        assert remaining <= target + 1e-9
