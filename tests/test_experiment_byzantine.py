"""The ``byzantine`` experiment: sweep rows, damage metric, registry."""

from dataclasses import replace

import pytest

from repro.experiments import ExperimentSettings
from repro.experiments.byzantine import (
    ByzantineResult,
    byzantine_row,
    run,
    smoke,
)
from repro.experiments.registry import EXPERIMENTS

SETTINGS = ExperimentSettings(num_nodes=48, seed=7)

POINTS = ((0.10, False), (0.10, True), (0.0, True))


def _row(index):
    return byzantine_row(SETTINGS, POINTS, adversary_seed=7, point_index=index)


def test_registered_experiment():
    assert "byzantine" in EXPERIMENTS
    fn, description = EXPERIMENTS["byzantine"]
    assert fn is run
    assert "Byzantine" in description


def test_undefended_point_records_the_attack():
    row = _row(0)
    assert not row.defense
    assert row.attackers == round(0.10 * SETTINGS.num_nodes)
    assert row.lies > 0
    assert row.signature  # actions fired and were hashed
    assert row.final_digest
    assert row.quarantined_end == 0  # no defense, nobody excluded
    assert row.refuted == 0 and row.audits_failed == 0


def test_defended_point_fights_back():
    row = _row(1)
    assert row.defense
    assert row.audits_failed > 0 or row.quarantined_end > 0


def test_clean_point_is_quiet():
    row = _row(2)
    assert row.attackers == 0
    assert row.lies == 0
    assert row.signature == ""
    assert row.damage == pytest.approx(0.0, abs=1e-9)


def test_rows_are_pure_functions_of_their_inputs():
    assert _row(0) == _row(0)


def test_serial_and_parallel_sweeps_agree():
    fractions = (0.0, 0.10)
    serial = run(SETTINGS, fractions=fractions)
    parallel = run(replace(SETTINGS, workers=2), fractions=fractions)
    assert isinstance(serial, ByzantineResult)
    assert [replace(r) for r in serial.rows] == [
        replace(r) for r in parallel.rows
    ]
    assert len(serial.rows) == 2 * len(fractions)  # defense off/on per f


def test_format_rows_mentions_every_point():
    result = run(SETTINGS, fractions=(0.10,))
    text = result.format_rows()
    assert "off" in text and "on" in text
    assert "damage" in text


def test_smoke_passes_and_reports():
    # The same entry verify.sh gates on: defense strictly reduces honest
    # damage at f=0.10 and the clean world stays digest-identical.
    message = smoke(num_nodes=48, seed=11)
    assert "byzantine smoke OK" in message
