"""Tests for dynamic-load simulation."""

import numpy as np
import pytest

from repro.core import BalancerConfig, LoadBalancer
from repro.exceptions import SimulationError
from repro.sim import LoadDynamics, run_dynamic_simulation
from repro.workloads import GaussianLoadModel, build_scenario


@pytest.fixture
def balancer():
    sc = build_scenario(
        GaussianLoadModel(mu=1e5, sigma=300.0), num_nodes=64, vs_per_node=4, rng=95
    )
    return LoadBalancer(
        sc.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=3
    )


class TestLoadDynamics:
    def test_drift_changes_loads(self, balancer):
        ring = balancer.ring
        before = np.array([vs.load for vs in ring.virtual_servers])
        LoadDynamics(drift_sigma=0.3, rng=1).step(ring)
        after = np.array([vs.load for vs in ring.virtual_servers])
        assert not np.allclose(before, after)
        assert np.all(after >= 0)

    def test_zero_drift_is_identity(self, balancer):
        ring = balancer.ring
        before = np.array([vs.load for vs in ring.virtual_servers])
        LoadDynamics(drift_sigma=0.0, rng=1).step(ring)
        after = np.array([vs.load for vs in ring.virtual_servers])
        assert np.allclose(before, after)

    def test_flash_crowd(self, balancer):
        ring = balancer.ring
        total_before = sum(vs.load for vs in ring.virtual_servers)
        LoadDynamics(
            drift_sigma=0.0, flash_crowd_prob=1.0, flash_crowd_factor=10.0, rng=2
        ).step(ring)
        total_after = sum(vs.load for vs in ring.virtual_servers)
        assert total_after > total_before

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(drift_sigma=-0.1),
            dict(flash_crowd_prob=1.5),
            dict(flash_crowd_factor=0.0),
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(SimulationError):
            LoadDynamics(**kwargs)


class TestDynamicSimulation:
    def test_trace_shape(self, balancer):
        dynamics = LoadDynamics(drift_sigma=0.2, rng=4)
        trace = run_dynamic_simulation(balancer, dynamics, epochs=3)
        assert len(trace.epochs) == 3
        assert len(trace.reports) == 3
        assert trace.total_moved_load > 0

    def test_balancer_keeps_up_with_drift(self, balancer):
        """Each epoch's balancing must not make things worse and must keep
        the worst-node overload bounded (heavy count drops; note that the
        gini of unit load is *not* monotone under correct balancing — a
        node legitimately ends near zero unit load after shedding)."""
        dynamics = LoadDynamics(drift_sigma=0.2, rng=5)
        trace = run_dynamic_simulation(balancer, dynamics, epochs=4)
        for epoch, report in zip(trace.epochs, trace.reports):
            assert epoch.heavy_after <= epoch.heavy_before
            assert (
                report.unit_loads_after.max()
                <= report.unit_loads_before.max() + 1e-9
            )

    def test_flash_crowd_recovery(self, balancer):
        dynamics = LoadDynamics(
            drift_sigma=0.0, flash_crowd_prob=1.0, flash_crowd_factor=50.0, rng=6
        )
        trace = run_dynamic_simulation(balancer, dynamics, epochs=3)
        # Hotspots appear (heavy_before > 0) and are mostly resolved.
        assert any(e.heavy_before > 0 for e in trace.epochs)
        assert trace.mean_heavy_after < np.mean(
            [e.heavy_before for e in trace.epochs]
        )

    def test_invalid_epochs(self, balancer):
        with pytest.raises(SimulationError):
            run_dynamic_simulation(balancer, LoadDynamics(rng=0), epochs=0)


class TestConvergenceExperiment:
    def test_splitting_resolves_pareto_giant(self):
        from repro.experiments import convergence
        from repro.experiments.common import ExperimentSettings

        result = convergence.run(
            ExperimentSettings(num_nodes=128, seed=42), rounds=4
        )
        # Plain variant stays stuck; splitting converges to zero heavy.
        assert result.heavy_per_round_plain[-1] > 0
        assert result.heavy_per_round_split[-1] == 0
        assert result.splits_performed > 0
        assert "Convergence" in result.format_rows()
