"""Digest identity of the incremental engine against the serial balancer.

The contract under test (docs/performance.md): for any seed, churn/drift
history and tree degree, :class:`repro.core.IncrementalLoadBalancer`
produces a :class:`~repro.core.report.BalanceReport` whose canonical
digest — every float, assignment, transfer and counter, in order — is
byte-identical to the serial :class:`~repro.core.balancer.LoadBalancer`
run on a twin ring through the same history.  Under fault plans and
partitions the engine must fall back to the serial path wholesale, so
identity there is also asserted, as is three-way agreement with the
sharded engine for S in {1, 2, 4}.
"""

import numpy as np
import pytest

from repro.core import BalancerConfig, IncrementalLoadBalancer, LoadBalancer
from repro.dht import crash_node, join_node, leave_node
from repro.faults import FaultPlan, PartitionSpec
from repro.parallel import ShardedLoadBalancer, WorkerPool
from repro.workloads import (
    ParetoLoadModel,
    apply_load_drift,
    build_scenario,
)

SEEDS = (3, 21, 77)

FAULTS = FaultPlan(seed=5, drop=0.1, crash_mid_round=1, transfer_abort=0.2)

PARTITION_FAULTS = FaultPlan(
    seed=5,
    drop=0.05,
    corrupt=0.05,
    partitions=(
        PartitionSpec(at_round=1, duration=2, num_components=2, mid_round=True),
    ),
)

MODEL = ParetoLoadModel(mu=1e6)


def _ring(seed, num_nodes=160):
    return build_scenario(
        MODEL, num_nodes=num_nodes, vs_per_node=4, rng=seed
    ).ring


def _config(tree_degree=2):
    return BalancerConfig(
        proximity_mode="ignorant", epsilon=0.05, tree_degree=tree_degree
    )


def _perturb(ring, gen, heavy=False):
    """One seeded step of joins, leaves, crashes and localized drift.

    ``heavy`` floods the ring with enough events to trip the incremental
    engine's rebuild threshold.
    """
    joins = int(gen.integers(8, 24)) if heavy else int(gen.integers(0, 4))
    sites = []
    for _ in range(joins):
        node = join_node(
            ring,
            capacity=float(10 ** int(gen.integers(0, 4))),
            vs_count=int(gen.integers(1, 5)),
            rng=int(gen.integers(1 << 30)),
        )
        sites.extend(vs.vs_id for vs in node.virtual_servers)
    removals = int(gen.integers(0, 3))
    for _ in range(removals):
        alive = [n for n in ring.alive_nodes if n.virtual_servers]
        if len(alive) < 4:
            break
        victim = alive[int(gen.integers(len(alive)))]
        if len(victim.virtual_servers) == ring.num_virtual_servers:
            continue
        if int(gen.integers(2)):
            leave_node(ring, victim)
        else:
            crash_node(ring, victim)
        sites.append(victim.virtual_servers[0].vs_id if victim.virtual_servers else 0)
    centers = sites[:4] or [int(gen.integers(ring.space.size))]
    apply_load_drift(
        ring, MODEL, int(gen.integers(1 << 30)), centers, fraction=0.02
    )


def _run_paired(seed, rounds, tree_degree=2, heavy_round=None, faults=None):
    """Drive serial and incremental twins through one seeded history."""
    ring_a, ring_b = _ring(seed), _ring(seed)
    cfg = _config(tree_degree)
    serial = LoadBalancer(ring_a, cfg, rng=seed + 1, faults=faults)
    incremental = IncrementalLoadBalancer(
        ring_b, cfg, rng=seed + 1, faults=faults
    )
    gen_a = np.random.default_rng(seed + 500)
    gen_b = np.random.default_rng(seed + 500)
    for rnd in range(rounds):
        digest_a = serial.run_round().canonical_digest()
        digest_b = incremental.run_round().canonical_digest()
        assert digest_a == digest_b, f"round {rnd} diverged"
        heavy = rnd == heavy_round
        _perturb(ring_a, gen_a, heavy=heavy)
        _perturb(ring_b, gen_b, heavy=heavy)


class TestIncrementalByteIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_serial_under_churn_and_drift(self, seed):
        _run_paired(seed, rounds=8)

    @pytest.mark.parametrize("tree_degree", (2, 8))
    def test_matches_serial_across_tree_degrees(self, tree_degree):
        _run_paired(11, rounds=5, tree_degree=tree_degree)

    def test_event_burst_trips_rebuild_and_still_matches(self):
        _run_paired(29, rounds=5, heavy_round=1)

    def test_quiet_rounds_reuse_caches_exactly(self):
        ring_a, ring_b = _ring(13), _ring(13)
        cfg = _config()
        serial = LoadBalancer(ring_a, cfg, rng=2)
        incremental = IncrementalLoadBalancer(ring_b, cfg, rng=2)
        for rnd in range(4):
            assert (
                serial.run_round().canonical_digest()
                == incremental.run_round().canonical_digest()
            ), f"quiet round {rnd} diverged"


class TestIncrementalFallback:
    """Fault and partition regimes route through the serial path."""

    def test_fault_plan_rounds_identical(self):
        _run_paired(7, rounds=4, faults=FAULTS)

    def test_partition_rounds_identical(self):
        _run_paired(7, rounds=5, faults=PARTITION_FAULTS)

    def test_fallback_then_fast_path_resyncs(self):
        # Tracing forces the serial path; disabling it afterwards must
        # resume the fast path from the mutated ring without divergence.
        from repro.obs.trace import InMemorySink, Tracer

        ring_a, ring_b = _ring(17), _ring(17)
        cfg = _config()
        tracer = Tracer(InMemorySink())
        serial = LoadBalancer(ring_a, cfg, rng=9, tracer=tracer)
        incremental = IncrementalLoadBalancer(ring_b, cfg, rng=9, tracer=tracer)
        gen_a = np.random.default_rng(99)
        gen_b = np.random.default_rng(99)
        for rnd in range(4):
            if rnd == 2:
                tracer.enabled = False
            digest_a = serial.run_round().canonical_digest()
            digest_b = incremental.run_round().canonical_digest()
            assert digest_a == digest_b, f"round {rnd} diverged"
            _perturb(ring_a, gen_a)
            _perturb(ring_b, gen_b)


class TestThreeWayAgreement:
    @pytest.mark.parametrize("num_shards", (1, 2, 4))
    def test_incremental_matches_sharded(self, num_shards):
        seed = 31
        ring_a, ring_b = _ring(seed), _ring(seed)
        cfg = _config()
        incremental = IncrementalLoadBalancer(ring_a, cfg, rng=seed)
        sharded = ShardedLoadBalancer(
            ring_b,
            cfg,
            rng=seed,
            num_shards=num_shards,
            pool=WorkerPool(1, mode="inline"),
        )
        gen_a = np.random.default_rng(seed + 7)
        gen_b = np.random.default_rng(seed + 7)
        try:
            for rnd in range(4):
                digest_a = incremental.run_round().canonical_digest()
                digest_b = sharded.run_round().canonical_digest()
                assert digest_a == digest_b, f"round {rnd} diverged"
                _perturb(ring_a, gen_a)
                _perturb(ring_b, gen_b)
        finally:
            sharded.close()

    @pytest.mark.parametrize("num_shards", (1, 2, 4))
    def test_sharded_faults_and_partitions_unchanged(self, num_shards):
        # The classification/array refactors must leave the sharded
        # engine's serial byte-identity intact under active fault plans.
        seed = 23
        cfg = _config()
        serial = LoadBalancer(_ring(seed), cfg, rng=4, faults=PARTITION_FAULTS)
        sharded = ShardedLoadBalancer(
            _ring(seed),
            cfg,
            rng=4,
            faults=PARTITION_FAULTS,
            num_shards=num_shards,
            pool=WorkerPool(1, mode="inline"),
        )
        try:
            for rnd in range(4):
                assert (
                    serial.run_round().canonical_digest()
                    == sharded.run_round().canonical_digest()
                ), f"round {rnd} diverged"
        finally:
            sharded.close()
