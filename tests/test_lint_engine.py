"""Tests for the repro.lint engine: findings, pragmas, baseline, ordering."""

import textwrap
from pathlib import Path

import pytest

from repro.exceptions import LintError
from repro.lint.engine import Baseline, Finding, LintEngine, Severity
from repro.lint.rules import ALL_RULES
from repro.lint.rules.defaults import MutableDefaultArgsRule
from repro.lint.rules.wallclock import NoWallclockRule


def write(tmp_path: Path, relpath: str, source: str) -> Path:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


VIOLATION = """
    def f(x, acc=[]):
        return acc
"""


class TestFinding:
    def make(self, line=3, message="mutable default"):
        return Finding(
            rule="mutable-default-args",
            path="src/repro/core/x.py",
            line=line,
            column=0,
            severity=Severity.ERROR,
            message=message,
        )

    def test_fingerprint_ignores_line(self):
        assert self.make(line=3).fingerprint() == self.make(line=99).fingerprint()

    def test_fingerprint_distinguishes_message(self):
        assert self.make().fingerprint() != self.make(message="other").fingerprint()

    def test_to_dict_round_trips_fields(self):
        d = self.make().to_dict()
        assert d["rule"] == "mutable-default-args"
        assert d["severity"] == "error"
        assert d["fingerprint"] == self.make().fingerprint()

    def test_format_text_shape(self):
        text = self.make().format_text()
        assert text.startswith("src/repro/core/x.py:3:0: error")
        assert "[mutable-default-args]" in text


class TestModuleName:
    def test_anchored_at_repro(self):
        name = LintEngine.module_name(Path("/x/src/repro/core/vsa.py"))
        assert name == "repro.core.vsa"

    def test_init_maps_to_package(self):
        name = LintEngine.module_name(Path("/x/src/repro/obs/__init__.py"))
        assert name == "repro.obs"

    def test_non_repro_path_gets_basename(self):
        assert LintEngine.module_name(Path("/tmp/fixture.py")) == "fixture"


class TestEngine:
    def test_finding_reported(self, tmp_path):
        path = write(tmp_path, "repro/core/x.py", VIOLATION)
        engine = LintEngine(rules=[MutableDefaultArgsRule()])
        findings = engine.lint_paths([path], root=tmp_path)
        assert len(findings) == 1
        assert findings[0].rule == "mutable-default-args"
        assert findings[0].path == "repro/core/x.py"

    def test_inline_pragma_suppresses(self, tmp_path):
        path = write(
            tmp_path,
            "repro/core/x.py",
            "def f(x, acc=[]):  # lint: disable=mutable-default-args\n"
            "    return acc\n",
        )
        engine = LintEngine(rules=[MutableDefaultArgsRule()])
        assert engine.lint_paths([path], root=tmp_path) == []

    def test_pragma_only_disables_named_rules(self, tmp_path):
        path = write(
            tmp_path,
            "repro/core/x.py",
            "def f(x, acc=[]):  # lint: disable=no-float-equality\n"
            "    return acc\n",
        )
        engine = LintEngine(rules=[MutableDefaultArgsRule()])
        assert len(engine.lint_paths([path], root=tmp_path)) == 1

    def test_findings_sorted(self, tmp_path):
        write(tmp_path, "repro/core/b.py", VIOLATION)
        write(tmp_path, "repro/core/a.py", VIOLATION)
        engine = LintEngine(rules=[MutableDefaultArgsRule()])
        findings = engine.lint_paths([tmp_path], root=tmp_path)
        assert [f.path for f in findings] == ["repro/core/a.py", "repro/core/b.py"]

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(LintError):
            LintEngine(rules=[NoWallclockRule(), NoWallclockRule()])

    def test_missing_path_rejected(self, tmp_path):
        engine = LintEngine(rules=[MutableDefaultArgsRule()])
        with pytest.raises(LintError):
            engine.lint_paths([tmp_path / "nope"], root=tmp_path)

    def test_syntax_error_rejected(self, tmp_path):
        path = write(tmp_path, "repro/core/x.py", "def broken(:\n")
        engine = LintEngine(rules=[MutableDefaultArgsRule()])
        with pytest.raises(LintError):
            engine.lint_paths([path], root=tmp_path)

    def test_all_rules_have_unique_names_and_docs(self):
        names = [r.name for r in ALL_RULES]
        assert len(names) == len(set(names))
        for rule in ALL_RULES:
            assert rule.name and rule.description


class TestBaseline:
    def test_round_trip_suppresses(self, tmp_path):
        path = write(tmp_path, "repro/core/x.py", VIOLATION)
        engine = LintEngine(rules=[MutableDefaultArgsRule()])
        findings = engine.lint_paths([path], root=tmp_path)
        assert findings

        baseline_file = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(baseline_file)

        engine2 = LintEngine(
            rules=[MutableDefaultArgsRule()],
            baseline=Baseline.load(baseline_file),
        )
        assert engine2.lint_paths([path], root=tmp_path) == []
        assert len(engine2.suppressed) == len(findings)

    def test_baseline_survives_line_shift(self, tmp_path):
        path = write(tmp_path, "repro/core/x.py", VIOLATION)
        engine = LintEngine(rules=[MutableDefaultArgsRule()])
        baseline = Baseline.from_findings(engine.lint_paths([path], root=tmp_path))

        shifted = "# a new leading comment\n" + path.read_text()
        path.write_text(shifted)
        engine2 = LintEngine(rules=[MutableDefaultArgsRule()], baseline=baseline)
        assert engine2.lint_paths([path], root=tmp_path) == []

    def test_new_violations_not_suppressed(self, tmp_path):
        path = write(tmp_path, "repro/core/x.py", VIOLATION)
        engine = LintEngine(rules=[MutableDefaultArgsRule()])
        baseline = Baseline.from_findings(engine.lint_paths([path], root=tmp_path))

        path.write_text(path.read_text() + "\ndef g(y, out={}):\n    return out\n")
        engine2 = LintEngine(rules=[MutableDefaultArgsRule()], baseline=baseline)
        fresh = engine2.lint_paths([path], root=tmp_path)
        assert len(fresh) == 1
        assert "'out'" in fresh[0].message

    def test_load_rejects_bad_json(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        with pytest.raises(LintError):
            Baseline.load(bad)

    def test_load_rejects_wrong_version(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99, "fingerprints": {}}')
        with pytest.raises(LintError):
            Baseline.load(bad)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(LintError):
            Baseline.load(tmp_path / "absent.json")

    def test_saved_file_is_deterministic(self, tmp_path):
        path = write(tmp_path, "repro/core/x.py", VIOLATION)
        engine = LintEngine(rules=[MutableDefaultArgsRule()])
        findings = engine.lint_paths([path], root=tmp_path)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        Baseline.from_findings(findings).save(a)
        Baseline.from_findings(list(reversed(findings))).save(b)
        assert a.read_text() == b.read_text()
