"""Degraded balancing rounds under injected faults: the acceptance tests.

Covers the fault-injection tentpole end to end: a full round under a
fault plan completes without raising, conserves load, records the
recovery work in ``fault_stats`` and the metrics registry, and replays
byte-for-byte under the same seeds.  Also unit-tests the two-phase VST
commit (:class:`~repro.core.vst.TransferTransaction`) that makes the
mid-flight aborts safe.
"""

import numpy as np
import pytest

from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.core.report import check_conservation
from repro.core.records import Assignment, ShedCandidate
from repro.core.vst import TransferTransaction, execute_transfers
from repro.dht import ChordRing
from repro.dht.churn import crash_node
from repro.exceptions import BalancerError, DHTError
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.idspace import IdentifierSpace
from repro.obs.metrics import MetricsRegistry
from repro.workloads.loads import GaussianLoadModel
from repro.workloads.scenario import build_scenario

ACCEPTANCE_PLAN = FaultPlan(seed=3, drop=0.1, crash_mid_round=1, transfer_abort=0.2)


def make_balancer(plan=None, num_nodes=64, metrics=None, retry=None):
    scenario = build_scenario(
        GaussianLoadModel(mu=1e6, sigma=2e3),
        num_nodes=num_nodes,
        vs_per_node=5,
        rng=42,
    )
    balancer = LoadBalancer(
        scenario.ring,
        BalancerConfig(proximity_mode="ignorant"),
        rng=5,
        faults=plan,
        metrics=metrics,
        retry=retry,
    )
    return scenario, balancer


class TestDegradedRound:
    def test_acceptance_round_completes_and_conserves(self):
        _, balancer = make_balancer(ACCEPTANCE_PLAN)
        report = balancer.run_round()
        check_conservation(report)
        fs = report.fault_stats
        assert fs.injected_total > 0
        assert fs.signature != ""
        assert len(fs.crashed_nodes) == 1

    def test_degraded_round_still_converges(self):
        _, balancer = make_balancer(ACCEPTANCE_PLAN)
        report = balancer.run_round()
        assert report.heavy_after < report.heavy_before

    def test_reproducible_byte_for_byte(self):
        def one_run():
            _, balancer = make_balancer(ACCEPTANCE_PLAN)
            report = balancer.run_round()
            return report

        first, second = one_run(), one_run()
        assert first.fault_stats.signature == second.fault_stats.signature
        assert first.fault_stats.to_dict() == second.fault_stats.to_dict()
        assert first.loads_after.tobytes() == second.loads_after.tobytes()

    def test_metrics_record_retries_and_rollbacks(self):
        metrics = MetricsRegistry()
        _, balancer = make_balancer(ACCEPTANCE_PLAN, metrics=metrics)
        report = balancer.run_round()
        counters = metrics.snapshot()["counters"]
        fs = report.fault_stats
        assert counters["faults.injected"] == fs.injected_total
        assert counters["lbi.retries"] == fs.lbi_retries
        assert counters["vst.rollbacks"] == fs.vst_rollbacks
        assert counters["faults.crash_victims"] == len(fs.crashed_nodes)

    def test_fault_free_round_reports_empty_stats(self):
        metrics = MetricsRegistry()
        _, balancer = make_balancer(None, metrics=metrics)
        report = balancer.run_round()
        fs = report.fault_stats
        assert fs.injected_total == 0
        assert fs.signature == ""
        assert fs.to_dict()["vst_rollbacks"] == 0
        counters = metrics.snapshot()["counters"]
        # Recovery counters stay out of fault-free metric dumps.
        assert "faults.injected" not in counters
        assert "lbi.retries" not in counters

    def test_fault_seed_changes_fault_sequence_not_scenario(self):
        _, a = make_balancer(FaultPlan(seed=1, drop=0.3))
        _, b = make_balancer(FaultPlan(seed=2, drop=0.3))
        ra, rb = a.run_round(), b.run_round()
        assert ra.fault_stats.signature != rb.fault_stats.signature
        # Same scenario underneath: identical starting loads.
        assert ra.loads_before.tobytes() == rb.loads_before.tobytes()


class TestTransferAborts:
    def test_certain_abort_rolls_back_every_transfer(self):
        _, balancer = make_balancer(FaultPlan(seed=1, transfer_abort=1.0))
        report = balancer.run_round()
        check_conservation(report)
        assert report.transfers == []
        assert len(report.failed_assignments) > 0
        # Every rollback restored the pre-transfer hosting (re-hosting
        # changes the float summation order, hence allclose not equality).
        np.testing.assert_allclose(
            report.loads_after, report.loads_before, rtol=1e-12
        )
        assert report.heavy_after == report.heavy_before
        assert report.fault_stats.vst_rollbacks == len(report.failed_assignments)

    def test_failed_assignments_counted_in_report_dict(self):
        _, balancer = make_balancer(FaultPlan(seed=1, transfer_abort=1.0))
        report = balancer.run_round()
        d = report.to_dict()
        assert d["failed_transfers"] == len(report.failed_assignments)
        assert d["faults"]["vst_rollbacks"] == report.fault_stats.vst_rollbacks


class TestStaleLBIReuse:
    def test_reuse_within_bound_then_hard_failure(self):
        _, balancer = make_balancer(
            FaultPlan(seed=1, drop=0.01),
            retry=RetryPolicy(lbi_staleness_rounds=2),
        )
        first = balancer.run_round()
        assert not first.fault_stats.stale_lbi_reused

        # From now on every LBI report is lost: total blackout.
        balancer.faults = FaultInjector(FaultPlan(seed=9, drop=1.0))
        second = balancer.run_round()
        assert second.fault_stats.stale_lbi_reused
        assert second.fault_stats.lbi_reports_lost > 0
        assert second.system_lbi == first.system_lbi  # served from cache
        third = balancer.run_round()
        assert third.fault_stats.stale_lbi_reused
        with pytest.raises(BalancerError):  # staleness bound exhausted
            balancer.run_round()

    def test_zero_staleness_bound_disables_reuse(self):
        _, balancer = make_balancer(
            FaultPlan(seed=1, drop=0.01),
            retry=RetryPolicy(lbi_staleness_rounds=0),
        )
        balancer.run_round()
        balancer.faults = FaultInjector(FaultPlan(seed=9, drop=1.0))
        with pytest.raises(BalancerError):
            balancer.run_round()


@pytest.fixture
def small_ring():
    ring = ChordRing(IdentifierSpace(bits=16))
    ring.populate(6, 3, [10.0] * 6, rng=2)
    for i, vs in enumerate(ring.virtual_servers):
        vs.load = float(1 + i % 4)
    return ring


class TestTransferTransaction:
    def _pick(self, ring):
        source = ring.alive_nodes[0]
        vs = source.virtual_servers[0]
        target = next(n for n in ring.alive_nodes if n is not source)
        return vs, source, target

    def test_prepare_commit_moves_the_server(self, small_ring):
        vs, source, target = self._pick(small_ring)
        txn = TransferTransaction(small_ring, vs, source, target)
        txn.prepare()
        assert vs not in source.virtual_servers
        txn.commit()
        assert txn.state == "committed"
        assert vs.owner is target

    def test_rollback_restores_the_source(self, small_ring):
        vs, source, target = self._pick(small_ring)
        before = source.load
        txn = TransferTransaction(small_ring, vs, source, target)
        txn.prepare()
        txn.rollback()
        assert txn.state == "rolled_back"
        assert vs.owner is source
        assert source.load == pytest.approx(before)

    def test_rollback_rescues_orphan_when_source_died(self, small_ring):
        total = sum(n.load for n in small_ring.nodes)
        vs, source, target = self._pick(small_ring)
        txn = TransferTransaction(small_ring, vs, source, target)
        txn.prepare()
        crash_node(small_ring, source)  # source dies with vs in flight
        txn.rollback()
        assert txn.state == "rolled_back"
        assert vs.owner is not None and vs.owner.alive
        assert sum(n.load for n in small_ring.nodes) == pytest.approx(total)

    def test_commit_to_dead_target_raises_then_rolls_back(self, small_ring):
        vs, source, target = self._pick(small_ring)
        txn = TransferTransaction(small_ring, vs, source, target)
        txn.prepare()
        crash_node(small_ring, target)
        with pytest.raises(DHTError):
            txn.commit()
        txn.rollback()
        assert vs.owner is source

    def test_state_machine_rejects_out_of_order_calls(self, small_ring):
        vs, source, target = self._pick(small_ring)
        txn = TransferTransaction(small_ring, vs, source, target)
        with pytest.raises(BalancerError):
            txn.commit()  # not prepared
        with pytest.raises(BalancerError):
            txn.rollback()  # not prepared
        txn.prepare()
        with pytest.raises(BalancerError):
            txn.prepare()  # already prepared
        txn.commit()
        with pytest.raises(BalancerError):
            txn.rollback()  # already committed

    def test_prepare_rejects_wrong_owner(self, small_ring):
        vs, source, target = self._pick(small_ring)
        txn = TransferTransaction(small_ring, vs, target, source)
        with pytest.raises(DHTError):
            txn.prepare()


class TestExecuteTransfersUnderFaults:
    def _assignment(self, ring):
        source = ring.alive_nodes[0]
        vs = source.virtual_servers[0]
        target = next(n for n in ring.alive_nodes if n is not source)
        return Assignment(
            candidate=ShedCandidate(
                load=vs.load, vs_id=vs.vs_id, node_index=source.index
            ),
            target_node=target.index,
            level=0,
        )

    def test_abort_without_collector_raises(self, small_ring):
        a = self._assignment(small_ring)
        faults = FaultInjector(FaultPlan(seed=0, transfer_abort=1.0))
        with pytest.raises(BalancerError):
            execute_transfers(small_ring, [a], faults=faults)

    def test_abort_with_collector_continues_and_conserves(self, small_ring):
        total = sum(n.load for n in small_ring.nodes)
        a = self._assignment(small_ring)
        failed = []
        records = execute_transfers(
            small_ring,
            [a],
            faults=FaultInjector(FaultPlan(seed=0, transfer_abort=1.0)),
            failed=failed,
        )
        assert records == []
        assert failed == [a]
        assert sum(n.load for n in small_ring.nodes) == pytest.approx(total)

    def test_mid_batch_crash_conserves_ring_load(self, small_ring):
        total = sum(n.load for n in small_ring.nodes)
        a = self._assignment(small_ring)
        from repro.faults.stats import FaultRoundStats

        stats = FaultRoundStats()
        execute_transfers(
            small_ring,
            [a],
            faults=FaultInjector(FaultPlan(seed=4, crash_mid_round=1)),
            failed=[],
            skipped=[],
            fault_stats=stats,
        )
        assert len(stats.crashed_nodes) == 1
        assert sum(n.load for n in small_ring.nodes) == pytest.approx(total)
        small_ring.check_invariants()
