"""Tests for the jittered-backoff strategies on :class:`RetryPolicy`.

The ``scaled`` default must stay byte-identical to the pre-jitter-mode
formula (digest compatibility: backoff delays feed ``fault_stats``),
``full`` and ``decorrelated`` must respect their documented bounds, and
every mode must consume exactly one RNG draw per backoff so fault
schedules stay aligned across modes.
"""

import numpy as np
import pytest

from repro.exceptions import FaultPlanError
from repro.faults import JITTER_MODES, RetryPolicy
from repro.faults.retry import RetryBudget, deliver_with_retry
from repro.util.rng import ensure_rng


class TestJitterModes:
    def test_modes_registry(self):
        assert JITTER_MODES == ("scaled", "full", "decorrelated")

    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultPlanError, match="jitter_mode"):
            RetryPolicy(jitter_mode="thermal")

    def test_scaled_matches_legacy_formula(self):
        policy = RetryPolicy(base_delay=0.25, max_delay=4.0, jitter=0.3)
        rng_a, rng_b = ensure_rng(7), ensure_rng(7)
        for attempt in range(1, 8):
            raw = min(0.25 * 2.0 ** (attempt - 1), 4.0)
            legacy = raw * (1.0 - 0.3 + 0.3 * float(rng_b.random()))
            assert policy.backoff_delay(attempt, rng_a) == legacy

    def test_zero_jitter_is_deterministic_in_every_mode(self):
        for mode in JITTER_MODES:
            policy = RetryPolicy(
                base_delay=0.5, max_delay=8.0, jitter=0.0, jitter_mode=mode
            )
            rng = ensure_rng(1)
            state = rng.bit_generator.state
            assert policy.backoff_delay(3, rng) == 2.0
            assert rng.bit_generator.state == state  # no draw consumed

    def test_full_jitter_bounds(self):
        policy = RetryPolicy(
            base_delay=0.5, max_delay=8.0, jitter=0.4, jitter_mode="full"
        )
        rng = ensure_rng(3)
        for attempt in range(1, 10):
            raw = min(0.5 * 2.0 ** (attempt - 1), 8.0)
            delay = policy.backoff_delay(attempt, rng)
            assert 0.0 <= delay < raw

    def test_decorrelated_bounds_and_feedback(self):
        policy = RetryPolicy(
            base_delay=0.5, max_delay=8.0, jitter=0.4, jitter_mode="decorrelated"
        )
        rng = ensure_rng(5)
        previous = None
        for attempt in range(1, 12):
            delay = policy.backoff_delay(attempt, rng, previous=previous)
            anchor = 0.5 if previous is None else previous
            upper = min(0.5 + max(3.0 * anchor - 0.5, 0.0), 8.0)
            assert 0.5 <= delay <= upper
            assert delay <= 8.0
            previous = delay

    def test_one_draw_per_backoff_in_every_mode(self):
        for mode in JITTER_MODES:
            policy = RetryPolicy(
                base_delay=0.5, max_delay=8.0, jitter=0.4, jitter_mode=mode
            )
            rng = ensure_rng(11)
            shadow = ensure_rng(11)
            policy.backoff_delay(2, rng, previous=1.0)
            shadow.random()
            assert rng.bit_generator.state == shadow.bit_generator.state


class TestDeliveryFeedback:
    @pytest.mark.parametrize("mode", JITTER_MODES)
    def test_delivery_charges_jittered_delays(self, mode):
        policy = RetryPolicy(
            max_attempts=5,
            base_delay=0.5,
            max_delay=8.0,
            jitter=0.4,
            jitter_mode=mode,
        )
        rng = ensure_rng(13)
        shadow = ensure_rng(13)
        budget = RetryBudget(100.0)
        outcome = deliver_with_retry(
            policy, lambda attempt: attempt < 3, rng, budget
        )
        assert outcome.delivered
        assert outcome.attempts == 3
        # Recompute the two backoffs by hand: the feedback chain must
        # match what the loop actually slept.
        first = policy.backoff_delay(1, shadow, previous=None)
        second = policy.backoff_delay(2, shadow, previous=first)
        assert outcome.simulated_delay == pytest.approx(first + second)
        assert budget.spent == pytest.approx(first + second)

    def test_modes_only_change_delays_not_attempts(self):
        outcomes = []
        for mode in JITTER_MODES:
            policy = RetryPolicy(
                max_attempts=6,
                base_delay=0.5,
                jitter=0.4,
                jitter_mode=mode,
            )
            outcome = deliver_with_retry(
                policy,
                lambda attempt: attempt < 4,
                ensure_rng(17),
                RetryBudget(1000.0),
            )
            outcomes.append(outcome)
        assert {o.attempts for o in outcomes} == {4}
        assert len({o.simulated_delay for o in outcomes}) == len(JITTER_MODES)
