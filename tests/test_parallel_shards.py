"""Unit tests for the shard primitives behind the sharded balancer.

These pin the building blocks — path arithmetic, the worker-side LBI
fold, and the worker-side sweep — directly against the serial phase
implementations, independently of the full engine round covered by
``test_parallel_determinism.py``.  Also covers the shallow-leaf
alignment fallback, where the engine must fall back to the serial
phases (and count it) rather than produce a misaligned shard split.
"""

import pytest

from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.core.records import LBIRecord, ShedCandidate, SpareCapacity
from repro.exceptions import ConfigError
from repro.obs import MetricsRegistry
from repro.parallel import (
    LBIShardTask,
    ShardedLoadBalancer,
    VSAShardTask,
    WorkerPool,
    fold_lbi_paths,
    lbi_shard_worker,
    path_of,
    shard_index,
    sweep_paths,
    vsa_shard_worker,
)
from repro.workloads import GaussianLoadModel, build_scenario


class TestPathArithmetic:
    def test_path_of_walks_to_root(self):
        from repro.ktree.tree import KnaryTree

        scenario = build_scenario(
            GaussianLoadModel(mu=1e6, sigma=2e3),
            num_nodes=8,
            vs_per_node=1,
            rng=42,
        )
        tree = KnaryTree(scenario.ring, k=2)
        leaf = tree.ensure_leaf_for_key(0)
        path = path_of(leaf)
        assert len(path) == leaf.level
        assert all(part == 0 for part in path)  # key 0 = leftmost branch
        assert path_of(tree.root) == ()

    def test_shard_index_base_k(self):
        assert shard_index((0, 1, 1), 2, 2) == 1
        assert shard_index((1, 0, 1), 2, 2) == 2
        assert shard_index((1, 1, 0), 2, 2) == 3
        assert shard_index((2, 1), 1, 3) == 2

    def test_shard_index_requires_depth(self):
        with pytest.raises(ConfigError):
            shard_index((0,), 2, 2)


class TestFoldLbiPaths:
    def test_matches_sequential_merge_order(self):
        # Serial LBI merges own reports in arrival order, then children
        # ascending.  The fold must reproduce that structurally.
        r = lambda load: LBIRecord(load=load, capacity=load * 2, min_vs_load=load / 10)
        reports = (
            ((0, 0), (r(1.0), r(2.0))),
            ((0, 1), (r(3.0),)),
            ((1,), (r(4.0),)),
        )
        value, upward, at_level, count = fold_lbi_paths(reports, ())
        assert value is not None
        assert count == 4
        assert value.load == pytest.approx(10.0)
        assert value.capacity == pytest.approx(20.0)
        assert value.min_vs_load == pytest.approx(0.1)
        # Edges: (0,0)->(0), (0,1)->(0), (0)->(), (1)->() = 4 messages.
        assert upward == 4
        assert at_level == {1: 2, 0: 2}

    def test_empty_reports(self):
        value, upward, at_level, count = fold_lbi_paths((), ())
        assert value is None and upward == 0 and count == 0
        assert not at_level

    def test_subtree_rooted_fold(self):
        r = LBIRecord(load=5.0, capacity=10.0, min_vs_load=1.0)
        value, upward, at_level, count = fold_lbi_paths(
            (((1, 0, 1), (r,)),), (1,)
        )
        assert value is not None and value.load == 5.0
        assert upward == 2  # (1,0,1)->(1,0)->(1)
        assert at_level == {2: 1, 1: 1}

    def test_worker_wraps_fold(self):
        r = LBIRecord(load=5.0, capacity=10.0, min_vs_load=1.0)
        task = LBIShardTask(shard_path=(0,), reports=(((0, 1), (r,)),))
        result = lbi_shard_worker(task)
        assert result.shard_path == (0,)
        assert result.value.load == 5.0
        assert result.reports == 1
        assert result.upward_messages == 1


class TestSweepPaths:
    def _entries(self):
        heavy = (
            ShedCandidate(load=9.0, vs_id=1, node_index=1),
            ShedCandidate(load=5.0, vs_id=2, node_index=2),
        )
        light = (
            SpareCapacity(delta=10.0, node_index=3),
            SpareCapacity(delta=6.0, node_index=4),
        )
        return heavy, light

    def test_root_pairs_unconditionally(self):
        heavy, light = self._entries()
        result = sweep_paths(
            (((0, 0), heavy, light),),
            (),
            threshold=30,
            min_vs_load=0.1,
            strict_heaviest_first=False,
            root_is_global=True,
        )
        assert len(result.leftover_heavy) == 0
        total_paired = sum(n for _, n in result.pairings_by_level)
        assert total_paired == 2
        # Entries climbed (0,0)->(0)->(): two upward hops.
        assert result.upward_messages == 2

    def test_subtree_root_holds_leftovers_below_threshold(self):
        heavy, light = self._entries()
        result = sweep_paths(
            (((0, 0), heavy, light),),
            (0,),
            threshold=30,
            min_vs_load=0.1,
            strict_heaviest_first=False,
            root_is_global=False,
        )
        # Nothing reached the threshold: all four entries are leftovers
        # parked at the shard root for the top-level sweep.
        assert len(result.leftover_heavy) == 2
        assert len(result.leftover_light) == 2
        assert sum(n for _, n in result.pairings_by_level) == 0

    def test_threshold_triggers_interior_pairing(self):
        heavy, light = self._entries()
        result = sweep_paths(
            (((0, 0), heavy, light),),
            (0,),
            threshold=4,
            min_vs_load=0.1,
            strict_heaviest_first=False,
            root_is_global=False,
        )
        assert sum(n for _, n in result.pairings_by_level) == 2

    def test_worker_wraps_sweep(self):
        heavy, light = self._entries()
        task = VSAShardTask(
            shard_path=(1,),
            buckets=(((1, 0), heavy, light),),
            threshold=30,
            min_vs_load=0.1,
            strict_heaviest_first=False,
            root_is_global=False,
        )
        result = vsa_shard_worker(task)
        assert len(result.leftover_heavy) == 2


class TestAlignmentFallback:
    def test_shallow_tree_falls_back_and_counts(self):
        # A tiny ring yields leaves shallower than the shard depth for
        # a large shard count; the engine must fall back to the serial
        # phases (still byte-identical) and count the fallback.
        scenario = build_scenario(
            GaussianLoadModel(mu=1e6, sigma=2e3),
            num_nodes=4,
            vs_per_node=1,
            rng=42,
        )
        metrics = MetricsRegistry()
        sharded = ShardedLoadBalancer(
            scenario.ring,
            BalancerConfig(proximity_mode="ignorant", epsilon=0.05),
            rng=7,
            metrics=metrics,
            num_shards=64,
            pool=WorkerPool(1, mode="inline"),
        )
        report = sharded.run_round()
        sharded.close()

        serial_scenario = build_scenario(
            GaussianLoadModel(mu=1e6, sigma=2e3),
            num_nodes=4,
            vs_per_node=1,
            rng=42,
        )
        serial = LoadBalancer(
            serial_scenario.ring,
            BalancerConfig(proximity_mode="ignorant", epsilon=0.05),
            rng=7,
        ).run_round()

        assert report.canonical_digest() == serial.canonical_digest()
        assert metrics.snapshot()["counters"]["parallel.fallbacks"] >= 1.0
