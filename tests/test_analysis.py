"""Tests for the analysis layer (metrics + figure data products)."""

import numpy as np
import pytest

from repro.analysis import (
    capacity_category_breakdown,
    figure4_data,
    figure56_data,
    figure78_data,
    imbalance_metrics,
    moved_load_cdf,
    moved_load_histogram,
)
from repro.core import BalancerConfig, LoadBalancer
from repro.workloads import GaussianLoadModel, build_scenario
from tests.conftest import MINI_TS


@pytest.fixture(scope="module")
def report():
    sc = build_scenario(
        GaussianLoadModel(mu=1e5, sigma=300.0), num_nodes=64, vs_per_node=4, rng=51
    )
    lb = LoadBalancer(
        sc.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=1
    )
    return lb.run_round()


@pytest.fixture(scope="module")
def topo_reports():
    out = {}
    for mode in ("aware", "ignorant"):
        sc = build_scenario(
            GaussianLoadModel(mu=1e5, sigma=300.0),
            num_nodes=32,
            vs_per_node=3,
            topology_params=MINI_TS,
            rng=53,
        )
        lb = LoadBalancer(
            sc.ring,
            BalancerConfig(proximity_mode=mode, epsilon=0.05, grid_bits=3),
            topology=sc.topology,
            oracle=sc.oracle,
            rng=2,
        )
        out[mode] = lb.run_round()
    return out


class TestImbalanceMetrics:
    def test_keys(self, report):
        m = imbalance_metrics(report)
        assert set(m) >= {
            "gini_before",
            "gini_after",
            "heavy_frac_before",
            "heavy_frac_after",
            "moved_load_frac",
        }

    def test_balancing_reduces_gini(self, report):
        m = imbalance_metrics(report)
        assert m["gini_after"] < m["gini_before"]

    def test_fractions_in_unit_interval(self, report):
        m = imbalance_metrics(report)
        assert 0 <= m["heavy_frac_after"] <= m["heavy_frac_before"] <= 1
        assert 0 <= m["moved_load_frac"] <= 1


class TestCategoryBreakdown:
    def test_covers_all_categories(self, report):
        breakdown = capacity_category_breakdown(report)
        assert set(breakdown) == set(np.unique(report.capacities).tolist())

    def test_shares_sum_to_one(self, report):
        breakdown = capacity_category_breakdown(report)
        assert sum(v["share_after"] for v in breakdown.values()) == pytest.approx(1.0)
        assert sum(v["share_before"] for v in breakdown.values()) == pytest.approx(1.0)

    def test_alignment_after_balancing(self, report):
        """Figure 5 claim: mean load after is monotone in capacity."""
        breakdown = capacity_category_breakdown(report)
        caps = sorted(breakdown)
        means = [breakdown[c]["mean_load_after"] for c in caps]
        assert all(a <= b + 1e-9 for a, b in zip(means, means[1:]))


class TestFigureData:
    def test_fig4_data(self, report):
        d = figure4_data(report)
        assert d.unit_before.shape == d.unit_after.shape
        assert d.heavy_after <= d.heavy_before
        assert 0 < d.heavy_fraction_before < 1

    def test_fig56_data(self, report):
        d = figure56_data(report, "gaussian")
        assert d.distribution == "gaussian"
        total = sum(len(v) for v in d.loads_before_by_category.values())
        assert total == report.num_nodes
        after_means = d.mean_loads_after()
        assert np.all(np.diff(after_means) >= -1e-9)

    def test_fig78_data(self, topo_reports):
        d = figure78_data(topo_reports["aware"], topo_reports["ignorant"], "mini")
        assert d.aware_hist.sum() == pytest.approx(1.0)
        assert d.ignorant_hist.sum() == pytest.approx(1.0)
        xs, ps = d.aware_cdf
        assert np.all(np.diff(ps) >= 0)
        assert d.aware_within[10] >= d.aware_within[2]

    def test_moved_load_histogram_and_cdf(self, topo_reports):
        rep = topo_reports["aware"]
        hist = moved_load_histogram(rep, [0, 5, 10, 50])
        assert hist.sum() == pytest.approx(1.0)
        xs, ps = moved_load_cdf(rep)
        assert ps[-1] == pytest.approx(1.0)
