"""Tests for virtual-server splitting."""

import pytest

from repro.dht import ChordRing, ObjectStore, split_until_movable, split_virtual_server
from repro.exceptions import DHTError
from repro.idspace import IdentifierSpace


@pytest.fixture
def ring():
    r = ChordRing(IdentifierSpace(bits=16))
    r.populate(6, 2, [1.0] * 6, rng=9)
    for vs in r.virtual_servers:
        vs.load = 100.0
    return r


class TestSplit:
    def test_split_preserves_owner_and_coverage(self, ring):
        vs = max(ring.virtual_servers, key=lambda v: ring.region_of(v).length)
        owner = vs.owner
        old_region = ring.region_of(vs)
        new_vs = split_virtual_server(ring, vs)
        assert new_vs.owner is owner
        ring.check_invariants()
        # The two pieces tile the old region.
        assert (
            ring.region_of(new_vs).length + ring.region_of(vs).length
            == old_region.length
        )

    def test_split_preserves_load(self, ring):
        vs = ring.virtual_servers[0]
        before = vs.load
        new_vs = split_virtual_server(ring, vs)
        assert vs.load + new_vs.load == pytest.approx(before)

    def test_proportional_load_split(self, ring):
        vs = max(ring.virtual_servers, key=lambda v: ring.region_of(v).length)
        total_len = ring.region_of(vs).length
        new_vs = split_virtual_server(ring, vs)
        frac = ring.region_of(new_vs).length / total_len
        assert new_vs.load == pytest.approx(100.0 * frac)

    def test_split_with_object_store_exact(self):
        ring = ChordRing(IdentifierSpace(bits=16))
        ring.populate(4, 2, [1.0] * 4, rng=2)
        store = ObjectStore(ring)
        store.populate(200, mean_load=1.0, rng=3)
        vs = max(ring.virtual_servers, key=lambda v: v.load)
        total = vs.load
        new_vs = split_virtual_server(ring, vs, store=store)
        store.check_consistency()
        assert vs.load + new_vs.load == pytest.approx(total)

    def test_single_identifier_region_rejected(self):
        ring = ChordRing(IdentifierSpace(bits=4))
        node_ids = [0, 1]  # region of 1 is (0,1] -> single identifier
        from repro.dht import PhysicalNode

        n = PhysicalNode(0, 1.0)
        ring.nodes.append(n)
        for vid in node_ids:
            ring.add_virtual_server(n, vid)
        with pytest.raises(DHTError):
            split_virtual_server(ring, 1)

    def test_length_two_region_split(self):
        ring = ChordRing(IdentifierSpace(bits=4))
        from repro.dht import PhysicalNode

        n = PhysicalNode(0, 1.0)
        ring.nodes.append(n)
        ring.add_virtual_server(n, 0)
        ring.add_virtual_server(n, 2)  # region of 2 = (0, 2] = {1, 2}
        ring.vs(2).load = 10.0
        new_vs = split_virtual_server(ring, 2)
        assert new_vs.vs_id == 1
        ring.check_invariants()


class TestSplitUntilMovable:
    def test_all_pieces_under_cap(self, ring):
        vs = max(ring.virtual_servers, key=lambda v: ring.region_of(v).length)
        pieces = split_until_movable(ring, vs, max_piece_load=30.0)
        assert all(p.load <= 30.0 + 1e-9 for p in pieces)
        assert sum(p.load for p in pieces) == pytest.approx(100.0)
        ring.check_invariants()

    def test_no_split_needed(self, ring):
        vs = ring.virtual_servers[0]
        pieces = split_until_movable(ring, vs, max_piece_load=1000.0)
        assert pieces == [vs]

    def test_max_splits_respected(self, ring):
        vs = max(ring.virtual_servers, key=lambda v: ring.region_of(v).length)
        pieces = split_until_movable(ring, vs, max_piece_load=0.001, max_splits=3)
        assert len(pieces) <= 4

    def test_invalid_cap(self, ring):
        with pytest.raises(DHTError):
            split_until_movable(ring, ring.virtual_servers[0], max_piece_load=0.0)

    def test_pieces_all_same_owner(self, ring):
        vs = max(ring.virtual_servers, key=lambda v: ring.region_of(v).length)
        owner = vs.owner
        pieces = split_until_movable(ring, vs, max_piece_load=20.0)
        assert all(p.owner is owner for p in pieces)
