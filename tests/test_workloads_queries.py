"""Tests for the query workload model."""

import pytest

from repro.core import BalancerConfig, LoadBalancer
from repro.dht import ChordRing, ObjectStore
from repro.exceptions import WorkloadError
from repro.idspace import IdentifierSpace
from repro.workloads import QueryWorkload


@pytest.fixture
def store():
    ring = ChordRing(IdentifierSpace(bits=14))
    ring.populate(12, 3, [1.0] * 12, rng=6)
    s = ObjectStore(ring)
    for i in range(100):
        s.put(f"item-{i}", load=0.0)
    return s


class TestValidation:
    def test_empty_store_rejected(self):
        ring = ChordRing(IdentifierSpace(bits=10))
        ring.populate(2, 1, [1.0, 1.0], rng=0)
        with pytest.raises(WorkloadError):
            QueryWorkload(ObjectStore(ring))

    def test_invalid_params(self, store):
        with pytest.raises(WorkloadError):
            QueryWorkload(store, zipf_s=0.0)
        with pytest.raises(WorkloadError):
            QueryWorkload(store, service_cost=-1.0)

    def test_negative_queries(self, store):
        wl = QueryWorkload(store, rng=1)
        with pytest.raises(WorkloadError):
            wl.run(-1)


class TestServiceLoad:
    def test_load_conservation(self, store):
        wl = QueryWorkload(store, service_cost=2.0, rng=1)
        trace = wl.run(500)
        assert trace.total_service_load == pytest.approx(1000.0)
        total_on_ring = sum(vs.load for vs in store.ring.virtual_servers)
        assert total_on_ring == pytest.approx(1000.0)

    def test_dry_run_leaves_ring_untouched(self, store):
        wl = QueryWorkload(store, rng=2)
        wl.run(200, apply_loads=False)
        assert sum(vs.load for vs in store.ring.virtual_servers) == 0.0

    def test_zipf_concentrates_load(self, store):
        wl = QueryWorkload(store, zipf_s=1.4, rng=3)
        trace = wl.run(2000)
        # The hottest VS takes far more than a fair share.
        fair = trace.total_service_load / store.ring.num_virtual_servers
        assert trace.hottest_vs_load > 5 * fair

    def test_deterministic(self, store):
        t1 = QueryWorkload(store, rng=4).run(100, apply_loads=False)
        t2 = QueryWorkload(store, rng=4).run(100, apply_loads=False)
        assert t1.hottest_vs_load == t2.hottest_vs_load


class TestRoutingLoad:
    def test_routing_costs_accounted(self, store):
        wl = QueryWorkload(store, service_cost=1.0, routing_cost=0.1, rng=5)
        trace = wl.run(100)
        assert trace.routing_hops > 0
        assert trace.total_routing_load == pytest.approx(0.1 * trace.routing_hops)
        assert 0 < trace.mean_hops < 12

    def test_zero_routing_cost_skips_paths(self, store):
        wl = QueryWorkload(store, routing_cost=0.0, rng=6)
        trace = wl.run(100)
        assert trace.routing_hops == 0


class TestBalancingQueryLoad:
    def test_balancer_absorbs_query_hotspots(self, store):
        """End to end: query-induced load is balanceable like any other."""
        QueryWorkload(store, zipf_s=1.3, service_cost=5.0, rng=7).run(3000)
        ring = store.ring
        lb = LoadBalancer(
            ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=8
        )
        report = lb.run_round()
        assert report.heavy_after <= report.heavy_before
        assert (
            report.unit_loads_after.max() <= report.unit_loads_before.max()
        )
