"""Tests for VSA-information placement strategies."""

import numpy as np
import pytest

from repro.core.placement import ProximityPlacement, RandomVSPlacement
from repro.dht import ChordRing, PhysicalNode
from repro.exceptions import BalancerError
from repro.idspace import IdentifierSpace
from repro.proximity import ProximityMapper


@pytest.fixture
def ring():
    r = ChordRing(IdentifierSpace(bits=12))
    r.populate(5, 3, [1.0] * 5, rng=10)
    return r


class TestRandomVSPlacement:
    def test_key_is_center_of_owned_region(self, ring):
        placement = RandomVSPlacement(ring, rng=0)
        node = ring.nodes[0]
        key = placement.key_for(node)
        centers = {ring.region_of(vs).center for vs in node.virtual_servers}
        assert key in centers

    def test_key_in_space(self, ring):
        placement = RandomVSPlacement(ring, rng=1)
        for node in ring.nodes:
            assert 0 <= placement.key_for(node) < ring.space.size

    def test_zero_vs_node_uses_hashed_position(self, ring):
        node = PhysicalNode(index=77, capacity=1.0)
        ring.nodes.append(node)
        placement = RandomVSPlacement(ring, rng=2)
        key = placement.key_for(node)
        assert 0 <= key < ring.space.size
        # Deterministic: same node -> same fallback key.
        assert placement.key_for(node) == key

    def test_randomness_across_calls(self, ring):
        placement = RandomVSPlacement(ring, rng=3)
        node = ring.nodes[0]
        keys = {placement.key_for(node) for _ in range(30)}
        assert len(keys) > 1  # picks different VSs over repeated calls


class TestProximityPlacement:
    def make(self, ring):
        gen = np.random.default_rng(0)
        vectors = {n.index: gen.uniform(0, 10, size=4) for n in ring.nodes}
        matrix = np.vstack(list(vectors.values()))
        mapper = ProximityMapper.fit(matrix, grid_bits=3)
        return ProximityPlacement(mapper, vectors, ring.space), vectors

    def test_keys_precomputed_and_stable(self, ring):
        placement, _ = self.make(ring)
        node = ring.nodes[0]
        assert placement.key_for(node) == placement.key_for(node)

    def test_keys_in_space(self, ring):
        placement, _ = self.make(ring)
        for node in ring.nodes:
            assert 0 <= placement.key_for(node) < ring.space.size

    def test_missing_vector_raises(self, ring):
        placement, _ = self.make(ring)
        stranger = PhysicalNode(index=999, capacity=1.0)
        with pytest.raises(BalancerError):
            placement.key_for(stranger)

    def test_identical_vectors_share_keys(self, ring):
        vecs = {n.index: np.array([1.0, 2.0, 3.0, 4.0]) for n in ring.nodes}
        mapper = ProximityMapper.fit(np.vstack(list(vecs.values())), grid_bits=3)
        placement = ProximityPlacement(mapper, vecs, ring.space)
        keys = {placement.key_for(n) for n in ring.nodes}
        assert len(keys) == 1

    def test_empty_vectors_ok(self, ring):
        mapper = ProximityMapper.fit(np.zeros((2, 3)), grid_bits=2)
        placement = ProximityPlacement(mapper, {}, ring.space)
        with pytest.raises(BalancerError):
            placement.key_for(ring.nodes[0])


class TestKeysForBatch:
    def test_proximity_keys_for_matches_sequential(self, ring):
        gen = np.random.default_rng(0)
        vectors = {n.index: gen.uniform(0, 10, size=4) for n in ring.nodes}
        mapper = ProximityMapper.fit(np.vstack(list(vectors.values())), grid_bits=3)
        placement = ProximityPlacement(mapper, vectors, ring.space)
        nodes = list(ring.nodes)
        assert placement.keys_for(nodes) == [placement.key_for(n) for n in nodes]

    def test_random_keys_for_is_stream_identical(self, ring):
        # Batched draws must consume the generator exactly like
        # sequential key_for calls (the digest contract depends on it).
        nodes = list(ring.nodes)
        one_by_one = RandomVSPlacement(ring, rng=7)
        sequential = [one_by_one.key_for(n) for n in nodes]
        assert RandomVSPlacement(ring, rng=7).keys_for(nodes) == sequential
