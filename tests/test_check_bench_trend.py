"""Tests for the benchmark-trend regression gate (scripts/check_bench_trend.py).

The comparison logic is imported and unit-tested directly; the CLI exit
codes — including the acceptance requirement that an injected
regression exits non-zero — run through subprocesses like verify.sh
invokes them.  The ``gen`` smoke workload itself is exercised once
(it runs two balancing rounds, a couple of seconds) and its output is
checked against the committed baseline, which doubles as a determinism
test for the workload.
"""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_bench_trend.py"
BASELINE = REPO_ROOT / "benchmarks" / "BENCH_BASELINE.json"

_spec = importlib.util.spec_from_file_location("check_bench_trend", SCRIPT)
assert _spec is not None and _spec.loader is not None
check_bench_trend = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench_trend)

compare_snapshots = check_bench_trend.compare_snapshots


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *argv],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


class TestCompareSnapshots:
    BASE = {
        "counters": {"lbi.messages": 100.0, "vst.transfers": 10.0},
        "gauges": {"routing.dijkstra_runs": 20.0},
        "histograms": {
            "lbi.seconds": {"count": 2, "sum": 0.5},
            "vst.distance": {"count": 50, "sum": 1234.0},
        },
    }

    def test_identical_is_clean(self):
        assert compare_snapshots(self.BASE, self.BASE, 0.2) == []

    def test_within_tolerance_is_clean(self):
        cur = json.loads(json.dumps(self.BASE))
        cur["counters"]["lbi.messages"] = 115.0  # +15% < 20%
        assert compare_snapshots(cur, self.BASE, 0.2) == []

    def test_counter_regression_flagged(self):
        cur = json.loads(json.dumps(self.BASE))
        cur["counters"]["lbi.messages"] = 200.0
        problems = compare_snapshots(cur, self.BASE, 0.2)
        assert len(problems) == 1
        assert "lbi.messages" in problems[0]

    def test_gauge_regression_flagged(self):
        cur = json.loads(json.dumps(self.BASE))
        cur["gauges"]["routing.dijkstra_runs"] = 40.0
        problems = compare_snapshots(cur, self.BASE, 0.2)
        assert any("routing.dijkstra_runs" in p for p in problems)

    def test_missing_metric_flagged(self):
        cur = json.loads(json.dumps(self.BASE))
        del cur["counters"]["vst.transfers"]
        problems = compare_snapshots(cur, self.BASE, 0.2)
        assert any("missing" in p and "vst.transfers" in p for p in problems)

    def test_small_integer_grace(self):
        # One extra unit on a tiny count is not a regression (+1 grace).
        base = {"counters": {"vst.failed": 1.0}, "gauges": {}, "histograms": {}}
        cur = {"counters": {"vst.failed": 2.0}, "gauges": {}, "histograms": {}}
        assert compare_snapshots(cur, base, 0.2) == []

    def test_seconds_histogram_has_absolute_floor(self):
        cur = json.loads(json.dumps(self.BASE))
        cur["histograms"]["lbi.seconds"]["sum"] = 1.4  # < 0.5*1.2 + 1.0
        assert compare_snapshots(cur, self.BASE, 0.2) == []
        cur["histograms"]["lbi.seconds"]["sum"] = 2.0
        problems = compare_snapshots(cur, self.BASE, 0.2)
        assert any("lbi.seconds.sum" in p for p in problems)

    def test_non_seconds_histogram_sum_ignored(self):
        # Load-valued sums vary with the workload; only counts gate.
        cur = json.loads(json.dumps(self.BASE))
        cur["histograms"]["vst.distance"]["sum"] = 99999.0
        assert compare_snapshots(cur, self.BASE, 0.2) == []

    def test_improvement_is_clean(self):
        cur = json.loads(json.dumps(self.BASE))
        cur["counters"]["lbi.messages"] = 10.0
        assert compare_snapshots(cur, self.BASE, 0.2) == []


class TestCli:
    def test_baseline_checks_against_itself(self):
        proc = run_cli("check", str(BASELINE))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "bench trend OK" in proc.stdout

    def test_injected_regression_exits_nonzero(self, tmp_path):
        current = json.loads(BASELINE.read_text())
        name, value = next(iter(current["counters"].items()))
        current["counters"][name] = value * 2.0 + 10.0
        bad = tmp_path / "regressed.json"
        bad.write_text(json.dumps(current))
        proc = run_cli("check", str(bad))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "FAILED" in proc.stdout
        assert name in proc.stdout

    def test_missing_current_exits_two(self, tmp_path):
        proc = run_cli("check", str(tmp_path / "nope.json"))
        assert proc.returncode == 2
        assert "does not exist" in proc.stderr

    def test_missing_baseline_exits_two(self, tmp_path):
        proc = run_cli(
            "check", str(BASELINE), "--baseline", str(tmp_path / "nope.json")
        )
        assert proc.returncode == 2

    def test_malformed_current_exits_two(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        proc = run_cli("check", str(bad))
        assert proc.returncode == 2

    def test_gen_matches_committed_baseline(self, tmp_path):
        """The smoke workload is deterministic: regen == committed dump."""
        out = tmp_path / "fresh.json"
        proc = run_cli("gen", "--out", str(out))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        fresh = json.loads(out.read_text())
        committed = json.loads(BASELINE.read_text())
        assert fresh["counters"] == committed["counters"]
        assert fresh["gauges"] == committed["gauges"]
        # And the fresh dump passes the gate against the committed one.
        proc = run_cli("check", str(out))
        assert proc.returncode == 0, proc.stdout + proc.stderr
