"""Seeded decision-making of :class:`repro.adversary.AdversaryEngine`."""

import pytest

from repro.adversary import (
    ACCUSE,
    INFLATE_CAPACITY,
    NULL_ADVERSARY,
    OSCILLATE,
    OVER_REPORT,
    RENEGE,
    UNDER_REPORT,
    AdversaryEngine,
    AdversaryPlan,
    ensure_engine,
)

ALIVE = tuple(range(20))


def _engine(**kwargs):
    return AdversaryEngine(AdversaryPlan(**kwargs), metrics=None)


def test_ensure_engine_null_conventions():
    assert ensure_engine(None) is None
    assert ensure_engine(NULL_ADVERSARY) is None
    engine = _engine(seed=3, fraction=0.1)
    assert ensure_engine(engine) is engine
    built = ensure_engine(AdversaryPlan(seed=3, fraction=0.1), metrics=None)
    assert isinstance(built, AdversaryEngine)


def test_draft_size_and_stickiness():
    engine = _engine(seed=5, fraction=0.25)
    engine.begin_round(0, ALIVE)
    drafted = engine.attacker_indices
    assert len(drafted) == round(0.25 * len(ALIVE))
    assert all(i in ALIVE for i in drafted)
    # The set is drafted once; later rounds (even with a different alive
    # view) keep it.
    engine.begin_round(1, ALIVE[:10])
    assert engine.attacker_indices == drafted


def test_draft_is_a_pure_function_of_the_plan():
    first = _engine(seed=5, fraction=0.25)
    second = _engine(seed=5, fraction=0.25)
    first.begin_round(0, ALIVE)
    second.begin_round(0, ALIVE)
    assert first.attacker_indices == second.attacker_indices
    other_seed = _engine(seed=6, fraction=0.25)
    other_seed.begin_round(0, ALIVE)
    assert other_seed.attacker_indices != first.attacker_indices


def test_explicit_assignments_are_honored_on_top_of_the_draft():
    engine = _engine(seed=5, fraction=0.1, assignments=((2, RENEGE),))
    engine.begin_round(0, ALIVE)
    assert engine.behavior_of(2) == RENEGE
    assert 2 in engine.attacker_indices
    assert len(engine.attacker_indices) == 1 + round(0.1 * len(ALIVE))


def test_start_round_keeps_the_plan_dormant():
    engine = _engine(seed=5, fraction=0.5, start_round=2)
    engine.begin_round(0, ALIVE)
    assert not engine.active
    assert engine.behavior_of(engine.attacker_indices[0]) is None
    assert engine.active_attackers == 0
    assert engine.signature() == ""
    engine.begin_round(2, ALIVE)
    assert engine.active
    assert engine.active_attackers == len(engine.attacker_indices)


@pytest.mark.parametrize(
    "behavior,expect",
    [
        (UNDER_REPORT, lambda p: (25.0, 10.0, 5.0)),
        (OVER_REPORT, lambda p: (400.0, 10.0, 5.0)),
        (INFLATE_CAPACITY, lambda p: (100.0, 80.0, 5.0)),
    ],
)
def test_lie_families(behavior, expect):
    engine = _engine(seed=1, assignments=((0, behavior),))
    engine.begin_round(0, ALIVE)
    claimed = engine.lie(0, 100.0, 10.0, 5.0)
    assert claimed == expect(engine.plan)
    assert engine.acted == 1


def test_under_report_clamps_min_vs_to_claimed_load():
    engine = _engine(
        seed=1, assignments=((0, UNDER_REPORT),), under_factor=0.01
    )
    engine.begin_round(0, ALIVE)
    load, capacity, min_vs = engine.lie(0, 100.0, 10.0, 5.0)
    assert load == pytest.approx(1.0)
    assert min_vs == load  # internally consistent triple


def test_oscillate_alternates_by_round_parity():
    engine = _engine(seed=1, assignments=((0, OSCILLATE),))
    engine.begin_round(0, ALIVE)
    high = engine.lie(0, 100.0, 10.0, 5.0)[0]
    engine.begin_round(1, ALIVE)
    low = engine.lie(0, 100.0, 10.0, 5.0)[0]
    assert high == pytest.approx(100.0 * engine.plan.over_factor)
    assert low == pytest.approx(100.0 * engine.plan.under_factor)


def test_honest_renege_and_accuse_report_truthfully():
    engine = _engine(seed=1, assignments=((0, RENEGE), (1, ACCUSE)))
    engine.begin_round(0, ALIVE)
    before = engine.acted
    assert engine.lie(0, 100.0, 10.0, 5.0) == (100.0, 10.0, 5.0)
    assert engine.lie(1, 100.0, 10.0, 5.0) == (100.0, 10.0, 5.0)
    assert engine.lie(7, 100.0, 10.0, 5.0) == (100.0, 10.0, 5.0)
    assert engine.acted == before  # truthful reports are not actions


def test_renege_channel():
    engine = _engine(seed=1, assignments=((0, RENEGE),))
    engine.begin_round(0, ALIVE)
    assert engine.renege(0, 42)
    assert not engine.renege(3, 43)  # honest source delivers
    assert engine.reneged == ((0, 42),)
    engine.begin_round(1, ALIVE)
    assert engine.reneged == ()  # per-round memory


def test_accusations_target_honest_nodes():
    engine = _engine(seed=9, fraction=0.2, behaviors=(ACCUSE,))
    engine.begin_round(0, ALIVE)
    attackers = set(engine.attacker_indices)
    # Victim-keyed: two accusers drawing the same victim collapse into
    # one standing accusation, so the count is bounded, not exact.
    assert 1 <= engine.accusations <= len(attackers)
    victims = [i for i in ALIVE if engine.accuser_of(i) is not None]
    assert victims
    for victim in victims:
        assert victim not in attackers
        assert engine.accuser_of(victim) in attackers


def test_signature_reproduces_and_discriminates():
    def history(seed):
        engine = _engine(seed=seed, fraction=0.3)
        for rnd in range(3):
            engine.begin_round(rnd, ALIVE)
            for node in ALIVE:
                engine.lie(node, 50.0 + node, 10.0, 2.0)
                engine.renege(node, 100 + node)
        return engine.signature()

    assert history(13) == history(13)
    assert history(13) != history(14)
