"""Byte-identity of sharded balancing rounds against the serial balancer.

The contract under test (docs/parallelism.md): for any shard count that
is a power of the tree degree, :class:`repro.parallel.ShardedLoadBalancer`
produces a :class:`~repro.core.report.BalanceReport` whose canonical
digest — every assignment, transfer, float and counter, in order — is
byte-identical to the serial :class:`~repro.core.balancer.LoadBalancer`
on the same scenario and seeds.  This must hold across seeds, with and
without an active :class:`~repro.faults.FaultPlan`, and regardless of
whether the shard tasks run inline or in real worker processes.
"""

import pytest

from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.core.report import check_conservation
from repro.exceptions import ConfigError
from repro.faults import FaultPlan, PartitionSpec
from repro.parallel import ShardedLoadBalancer, WorkerPool, shard_depth
from repro.workloads import GaussianLoadModel, ParetoLoadModel, build_scenario

SEEDS = (42, 7, 123)

#: Mirrors the fault-injection acceptance plan: drops, a mid-round
#: crash and transfer aborts all active at once.
FAULTS = FaultPlan(seed=3, drop=0.1, crash_mid_round=1, transfer_abort=0.2)

#: The partition-tolerance acceptance plan: a mid-round 2-way split at
#: round 1 (catching transfers in flight), healed two rounds later,
#: with drops and report corruption active throughout.
PARTITION_FAULTS = FaultPlan(
    seed=3,
    drop=0.05,
    corrupt=0.05,
    partitions=(
        PartitionSpec(at_round=1, duration=2, num_components=2, mid_round=True),
    ),
)


def _scenario(seed, model=None, num_nodes=192):
    return build_scenario(
        model if model is not None else GaussianLoadModel(mu=1e6, sigma=2e3),
        num_nodes=num_nodes,
        vs_per_node=5,
        rng=seed,
    )


def _config(tree_degree=2):
    return BalancerConfig(
        proximity_mode="ignorant", epsilon=0.05, tree_degree=tree_degree
    )


def _serial_digest(seed, faults=None, model=None):
    balancer = LoadBalancer(
        _scenario(seed, model).ring, _config(), rng=7, faults=faults
    )
    return balancer.run_round().canonical_digest()


def _sharded_digest(seed, num_shards, faults=None, model=None, pool=None):
    balancer = ShardedLoadBalancer(
        _scenario(seed, model).ring,
        _config(),
        rng=7,
        faults=faults,
        num_shards=num_shards,
        pool=pool if pool is not None else WorkerPool(1, mode="inline"),
    )
    try:
        return balancer.run_round().canonical_digest()
    finally:
        balancer.close()


class TestShardedByteIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_sharded_matches_serial(self, seed, num_shards):
        assert _sharded_digest(seed, num_shards) == _serial_digest(seed)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_sharded_matches_serial_under_faults(self, seed, num_shards):
        assert _sharded_digest(seed, num_shards, faults=FAULTS) == _serial_digest(
            seed, faults=FAULTS
        )

    def test_fault_signatures_match(self):
        serial = LoadBalancer(
            _scenario(42).ring, _config(), rng=7, faults=FAULTS
        ).run_round()
        sharded_balancer = ShardedLoadBalancer(
            _scenario(42).ring,
            _config(),
            rng=7,
            faults=FAULTS,
            num_shards=4,
            pool=WorkerPool(1, mode="inline"),
        )
        sharded = sharded_balancer.run_round()
        sharded_balancer.close()
        assert serial.fault_stats is not None
        assert sharded.fault_stats is not None
        assert serial.fault_stats.signature == sharded.fault_stats.signature

    def test_pareto_loads_match(self):
        model = ParetoLoadModel(mu=1e6)
        assert _sharded_digest(42, 4, model=model) == _serial_digest(
            42, model=model
        )

    def test_process_pool_matches_serial(self):
        with WorkerPool(2, mode="process") as pool:
            assert _sharded_digest(42, 2, pool=pool) == _serial_digest(42)

    def test_repeated_rounds_stay_identical(self):
        # Multi-round: state evolves between rounds; digests must track.
        sc_serial = _scenario(7)
        sc_sharded = _scenario(7)
        serial = LoadBalancer(sc_serial.ring, _config(), rng=7)
        sharded = ShardedLoadBalancer(
            sc_sharded.ring,
            _config(),
            rng=7,
            num_shards=2,
            pool=WorkerPool(1, mode="inline"),
        )
        for _ in range(2):
            a = serial.run_round().canonical_digest()
            b = sharded.run_round().canonical_digest()
            assert a == b
        sharded.close()


class TestShardedPartitionIdentity:
    """Acceptance: sharded rounds stay byte-identical under partitions."""

    ROUNDS = 5  # pre-partition, partition window (2), heal, post-heal

    def _serial_digests(self):
        balancer = LoadBalancer(
            _scenario(42).ring, _config(), rng=7, faults=PARTITION_FAULTS
        )
        digests = []
        for _ in range(self.ROUNDS):
            report = balancer.run_round()
            check_conservation(report)
            digests.append(report.canonical_digest())
        return digests

    def _sharded_digests(self, num_shards, pool=None):
        balancer = ShardedLoadBalancer(
            _scenario(42).ring,
            _config(),
            rng=7,
            faults=PARTITION_FAULTS,
            num_shards=num_shards,
            pool=pool if pool is not None else WorkerPool(1, mode="inline"),
        )
        try:
            digests = []
            for _ in range(self.ROUNDS):
                report = balancer.run_round()
                check_conservation(report)
                digests.append(report.canonical_digest())
            return digests
        finally:
            balancer.close()

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_sharded_matches_serial_through_partition_lifecycle(
        self, num_shards
    ):
        assert self._sharded_digests(num_shards) == self._serial_digests()

    def test_signature_identical_serial_inline_process(self):
        """The injector's fault log is execution-strategy independent.

        Same ``(seed, plan)`` — partition events included — must yield
        the byte-identical signed fault sequence whether the rounds ran
        serially, through the inline pool or in real worker processes.
        """

        def serial_signature():
            balancer = LoadBalancer(
                _scenario(42).ring, _config(), rng=7, faults=PARTITION_FAULTS
            )
            for _ in range(self.ROUNDS):
                report = balancer.run_round()
            return report.fault_stats.signature

        def sharded_signature(pool):
            balancer = ShardedLoadBalancer(
                _scenario(42).ring,
                _config(),
                rng=7,
                faults=PARTITION_FAULTS,
                num_shards=2,
                pool=pool,
            )
            try:
                for _ in range(self.ROUNDS):
                    report = balancer.run_round()
                return report.fault_stats.signature
            finally:
                balancer.close()

        reference = serial_signature()
        assert reference  # the plan injects; an empty signature is a bug
        assert sharded_signature(WorkerPool(1, mode="inline")) == reference
        with WorkerPool(2, mode="process") as pool:
            assert sharded_signature(pool) == reference


class TestShardValidation:
    def test_shard_depth_powers(self):
        assert shard_depth(1, 2) == 0
        assert shard_depth(2, 2) == 1
        assert shard_depth(4, 2) == 2
        assert shard_depth(8, 2) == 3
        assert shard_depth(9, 3) == 2

    def test_shard_depth_rejects_non_powers(self):
        with pytest.raises(ConfigError):
            shard_depth(3, 2)
        with pytest.raises(ConfigError):
            shard_depth(0, 2)

    def test_engine_rejects_bad_shard_count(self):
        with pytest.raises(ConfigError):
            ShardedLoadBalancer(
                _scenario(42, num_nodes=32).ring,
                _config(),
                rng=7,
                num_shards=3,
                pool=WorkerPool(1, mode="inline"),
            )

    def test_higher_tree_degree(self):
        serial = LoadBalancer(
            _scenario(42).ring, _config(tree_degree=4), rng=7
        ).run_round()
        sharded_balancer = ShardedLoadBalancer(
            _scenario(42).ring,
            _config(tree_degree=4),
            rng=7,
            num_shards=4,
            pool=WorkerPool(1, mode="inline"),
        )
        sharded = sharded_balancer.run_round()
        sharded_balancer.close()
        assert serial.canonical_digest() == sharded.canonical_digest()
