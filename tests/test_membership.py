"""Unit tests for the membership subsystem (partition tolerance).

Covers the three layers independently of the balancer integration
(which ``test_core_balancer``/``test_parallel_determinism`` exercise):

* :class:`~repro.faults.PartitionSpec` / :class:`~repro.faults.FaultPlan`
  validation — malformed or overlapping partition windows are rejected
  at plan construction;
* :class:`~repro.membership.ComponentRingView` — the per-component ring
  facade re-tiles regions so each side of a split is internally
  consistent;
* :class:`~repro.membership.MembershipManager` — the epoch state
  machine: seeded/explicit activation, in-flight suspension, and the
  heal protocol's commit/rollback reconciliation plus its conservation
  gate (including the ``corrupt_heal`` negative control);
* :class:`~repro.core.lbi.AggregateSanity` — the aggregate defense:
  implausible or cross-epoch reports are quarantined with last-good
  fallback.
"""

import pytest

from repro.core.lbi import AggregateSanity
from repro.core.records import Assignment, ShedCandidate
from repro.dht import ChordRing
from repro.exceptions import (
    ConservationError,
    DHTError,
    FaultPlanError,
)
from repro.faults import FaultInjector, FaultPlan, PartitionSpec
from repro.faults.stats import FaultRoundStats
from repro.idspace import IdentifierSpace
from repro.ktree import KnaryTree
from repro.membership import (
    ComponentRingView,
    MembershipManager,
    MembershipView,
)


def build_ring(nodes=12, vs_per_node=3, seed=13, bits=12):
    ring = ChordRing(IdentifierSpace(bits=bits))
    ring.populate(nodes, vs_per_node, [1.0] * nodes, rng=seed)
    for i, vs in enumerate(ring.virtual_servers):
        vs.load = 1.0 + (i % 5)
    return ring


def split_indices(ring):
    indices = sorted(n.index for n in ring.alive_nodes)
    half = len(indices) // 2
    return tuple(indices[:half]), tuple(indices[half:])


class TestPartitionSpecValidation:
    def test_defaults_are_valid(self):
        spec = PartitionSpec()
        assert spec.heal_round == spec.at_round + spec.duration

    def test_rejects_negative_round_and_duration(self):
        with pytest.raises(FaultPlanError):
            PartitionSpec(at_round=-1)
        with pytest.raises(FaultPlanError):
            PartitionSpec(duration=0)

    def test_rejects_degenerate_component_shapes(self):
        with pytest.raises(FaultPlanError):
            PartitionSpec(num_components=1)
        with pytest.raises(FaultPlanError):
            PartitionSpec(components=((0, 1),))
        with pytest.raises(FaultPlanError):
            PartitionSpec(components=((0, 1), ()))
        with pytest.raises(FaultPlanError):
            PartitionSpec(components=((0, 1), (1, 2)))
        with pytest.raises(FaultPlanError):
            PartitionSpec(components=((0,), (-1,)))

    def test_plan_rejects_overlapping_windows(self):
        first = PartitionSpec(at_round=0, duration=3)
        second = PartitionSpec(at_round=2, duration=1)
        with pytest.raises(FaultPlanError):
            FaultPlan(seed=1, partitions=(first, second))
        # Back-to-back windows (heal round == next activation) are fine.
        FaultPlan(
            seed=1,
            partitions=(first, PartitionSpec(at_round=3, duration=1)),
        )

    def test_partitions_defeat_is_null(self):
        assert FaultPlan().is_null
        assert not FaultPlan(partitions=(PartitionSpec(),)).is_null
        assert not FaultPlan(corrupt=0.1).is_null


class TestMembershipView:
    def test_component_of_and_assignment(self):
        view = MembershipView(epoch=1, components=((0, 2), (1, 3)))
        assert view.component_of(0) == 0
        assert view.component_of(3) == 1
        assert view.component_of(99) == 0  # unlisted nodes join 0
        assert view.assignment() == {0: 0, 2: 0, 1: 1, 3: 1}


class TestComponentRingView:
    def test_nodes_filtered_and_regions_tile(self):
        ring = build_ring()
        left, right = split_indices(ring)
        for members in (left, right):
            view = ComponentRingView(ring, members)
            assert sorted(n.index for n in view.nodes) == sorted(members)
            total = sum(
                view.region_of(vs).length for vs in view.virtual_servers
            )
            assert total == ring.space.size

    def test_successor_only_returns_component_servers(self):
        ring = build_ring()
        left, _ = split_indices(ring)
        view = ComponentRingView(ring, left)
        members = set(left)
        for step in range(0, ring.space.size, ring.space.size // 64):
            assert view.successor(step).owner.index in members

    def test_foreign_vs_unreachable(self):
        ring = build_ring()
        left, right = split_indices(ring)
        view = ComponentRingView(ring, left)
        foreign = ring.nodes[right[0]].virtual_servers[0]
        with pytest.raises(DHTError):
            view.vs(foreign.vs_id)
        with pytest.raises(DHTError):
            view.region_of(foreign.vs_id)

    def test_single_vs_owns_full_ring(self):
        ring = build_ring(vs_per_node=1)
        solo = (sorted(n.index for n in ring.alive_nodes)[0],)
        view = ComponentRingView(ring, solo)
        only = view.virtual_servers[0]
        assert view.region_of(only).length == ring.space.size

    def test_tree_builds_per_component(self):
        ring = build_ring()
        for members in split_indices(ring):
            tree = KnaryTree(ComponentRingView(ring, members), 2, epoch=1)
            tree.build_full()
            tree.check_invariants()
            assert tree.epoch == 1


class TestMembershipManager:
    def make_manager(self, ring, plan=None):
        plan = plan if plan is not None else FaultPlan(
            seed=3, partitions=(PartitionSpec(at_round=1, duration=2),)
        )
        injector = FaultInjector(plan)
        return MembershipManager(ring, injector)

    def test_seeded_activation_is_deterministic(self):
        shapes = []
        for _ in range(2):
            ring = build_ring()
            manager = self.make_manager(ring)
            view = manager.activate(PartitionSpec(), FaultRoundStats())
            assert view is not None
            shapes.append(view.components)
        assert shapes[0] == shapes[1]
        assert len(shapes[0]) == 2
        listed = sorted(i for comp in shapes[0] for i in comp)
        assert listed == sorted(n.index for n in ring.alive_nodes)

    def test_explicit_components_respected(self):
        ring = build_ring()
        left, right = split_indices(ring)
        manager = self.make_manager(ring)
        view = manager.activate(
            PartitionSpec(components=(left, right)), FaultRoundStats()
        )
        assert view is not None
        assert view.components == (left, right)
        assert manager.injector.partition_active

    def test_begin_round_lifecycle_bumps_epochs(self):
        ring = build_ring()
        manager = self.make_manager(ring)
        stats = FaultRoundStats()
        assert manager.begin_round(0, stats) == (None, None)
        view, pending = manager.begin_round(1, stats)
        assert view is not None and pending is None
        assert manager.epoch == 1
        view2, _ = manager.begin_round(2, stats)
        assert view2 is view  # still inside the window
        healed_view, _ = manager.begin_round(3, FaultRoundStats())
        assert healed_view is None
        assert manager.epoch == 2
        assert not manager.injector.partition_active

    def test_mid_round_spec_returned_as_pending(self):
        ring = build_ring()
        plan = FaultPlan(
            seed=3,
            partitions=(PartitionSpec(at_round=0, mid_round=True),),
        )
        manager = self.make_manager(ring, plan)
        view, pending = manager.begin_round(0, FaultRoundStats())
        assert view is None
        assert pending is not None and pending.mid_round

    def _suspend_one(self, ring, manager):
        """Park the first hosted VS as an in-flight cross-cut transfer."""
        source = next(n for n in ring.alive_nodes if n.virtual_servers)
        target = next(
            n for n in ring.alive_nodes
            if n is not source and n.alive
        )
        vs = source.virtual_servers[0]
        assignment = Assignment(
            candidate=ShedCandidate(
                load=vs.load, vs_id=vs.vs_id, node_index=source.index
            ),
            target_node=target.index,
            level=0,
        )
        skipped = []
        stats = FaultRoundStats()
        assert manager.suspend_assignment(ring, assignment, skipped, stats)
        assert skipped == []
        return vs, source, target

    def test_heal_commits_suspended_transfer_and_conserves(self):
        ring = build_ring()
        manager = self.make_manager(ring)
        stats = FaultRoundStats()
        manager.activate(PartitionSpec(), stats)
        total_before = sum(n.load for n in ring.nodes)
        vs, source, target = self._suspend_one(ring, manager)
        # Detached in flight: the load left the node totals.
        assert manager.in_flight_load == pytest.approx(vs.load)
        assert sum(n.load for n in ring.nodes) == pytest.approx(
            total_before - vs.load
        )
        manager.heal(stats)
        assert stats.healed_commits == 1 and stats.healed_rollbacks == 0
        assert vs.owner is target
        assert sum(n.load for n in ring.nodes) == pytest.approx(total_before)
        assert manager.suspended_count == 0

    def test_heal_rolls_back_when_target_died(self):
        ring = build_ring()
        manager = self.make_manager(ring)
        stats = FaultRoundStats()
        manager.activate(PartitionSpec(), stats)
        total_before = sum(n.load for n in ring.nodes)
        vs, source, target = self._suspend_one(ring, manager)
        target.alive = False
        dead_load = target.load
        manager.heal(stats)
        assert stats.healed_commits == 0 and stats.healed_rollbacks == 1
        assert vs.owner is source
        alive_total = sum(n.load for n in ring.nodes)
        assert alive_total == pytest.approx(total_before)

    def test_corrupted_heal_trips_conservation_gate(self):
        ring = build_ring()
        manager = self.make_manager(ring)
        stats = FaultRoundStats()
        manager.activate(PartitionSpec(), stats)
        self._suspend_one(ring, manager)
        manager.corrupt_heal = True
        with pytest.raises(ConservationError):
            manager.heal(stats)

    def test_partition_and_heal_enter_the_signed_log(self):
        ring = build_ring()
        manager = self.make_manager(ring)
        stats = FaultRoundStats()
        manager.begin_round(1, stats)
        sig_partitioned = manager.injector.signature()
        manager.begin_round(3, stats)
        assert manager.injector.signature() != sig_partitioned


class TestAggregateSanity:
    def admit(self, sanity, load, capacity=1.0, min_vs=0.5, epoch=0, node=0):
        return sanity.admit(node, load, capacity, min_vs, epoch)

    def test_honest_report_admitted_verbatim(self):
        sanity = AggregateSanity(staleness=2)
        sanity.begin_round(0)
        assert self.admit(sanity, 3.0) == (3.0, 1.0, 0.5)

    def test_implausible_reports_quarantined(self):
        stats = FaultRoundStats()
        sanity = AggregateSanity(staleness=2)
        sanity.begin_round(0, stats)
        assert self.admit(sanity, -1.0) is None  # negative load
        assert self.admit(sanity, 1.0, capacity=0.0, node=1) is None
        assert self.admit(sanity, 1.0, min_vs=5.0, node=2) is None
        assert self.admit(sanity, float("nan"), node=3) is None
        assert stats.quarantined_nodes == [0, 1, 2, 3]

    def test_stale_epoch_rejected_with_last_good_fallback(self):
        sanity = AggregateSanity(staleness=1)
        sanity.begin_round(5)
        assert self.admit(sanity, 3.0, epoch=5) == (3.0, 1.0, 0.5)
        sanity.begin_round(6)
        # Within the staleness horizon: epoch 5 still admissible.
        assert self.admit(sanity, 4.0, epoch=5) == (4.0, 1.0, 0.5)
        sanity.begin_round(8)
        # Beyond the horizon: reject, but the node reported good values
        # at epoch 5... which are also too old to reuse by now.
        assert self.admit(sanity, 9.0, epoch=5) is None

    def test_quarantine_falls_back_to_recent_last_good(self):
        sanity = AggregateSanity(staleness=2)
        sanity.begin_round(3)
        assert self.admit(sanity, 3.0, epoch=3) == (3.0, 1.0, 0.5)
        sanity.begin_round(4)
        # Implausible report, but the epoch-3 values are fresh enough.
        assert self.admit(sanity, -99.0, epoch=4) == (3.0, 1.0, 0.5)

    def test_delta_rule_catches_wild_jumps(self):
        sanity = AggregateSanity(staleness=2)
        sanity.begin_round(0)
        assert self.admit(sanity, 3.0) is not None
        jump = 3.0 + 2 * AggregateSanity.DELTA_FACTOR * (1.0 + 3.0)
        assert self.admit(sanity, jump) == (3.0, 1.0, 0.5)
