"""Tests for terminal text plots."""

import numpy as np
import pytest

from repro.analysis.text_plots import ascii_cdf, ascii_histogram, side_by_side


class TestHistogram:
    def test_bars_scale_to_peak(self):
        out = ascii_histogram(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_labels_aligned(self):
        out = ascii_histogram(["x", "long-label"], [1.0, 1.0])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_empty(self):
        assert "empty" in ascii_histogram([], [])

    def test_zero_values_no_bars(self):
        out = ascii_histogram(["a"], [0.0])
        assert "#" not in out

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_histogram(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram(["a"], [-1.0])


class TestCdf:
    def test_monotone_render(self):
        xs = np.array([0.0, 1.0, 2.0, 3.0])
        ps = np.array([0.25, 0.5, 0.75, 1.0])
        out = ascii_cdf(xs, ps, width=20, height=5)
        assert "*" in out
        assert "1.00" in out and "0.00" in out

    def test_empty(self):
        assert "empty" in ascii_cdf([], [])

    def test_non_cdf_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf([0, 1], [0.9, 0.1])
        with pytest.raises(ValueError):
            ascii_cdf([0, 1], [0.5, 1.5])

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            ascii_cdf([0, 1, 2], [0.5, 1.0])

    def test_axis_labels_show_range(self):
        out = ascii_cdf([5.0, 10.0], [0.5, 1.0], width=30, height=4)
        assert "5" in out and "10" in out


class TestSideBySide:
    def test_joins_blocks(self):
        out = side_by_side("a\nb", "x\ny")
        lines = out.splitlines()
        assert lines[0].startswith("a") and lines[0].endswith("x")

    def test_uneven_heights(self):
        out = side_by_side("a", "x\ny")
        assert len(out.splitlines()) == 2
