"""Tests for the parallel trial engine and the worker pool.

Covers the determinism contract (parallel seed sweeps byte-identical to
serial loops), the metrics merge-back semantics, seed spawning, pool
fallback behaviour, and the parallel paths of the variance and chaos
experiments.
"""

from functools import partial

import pytest

from repro.exceptions import ConfigError, ReproError
from repro.obs import MetricsRegistry
from repro.obs.runtime import current_metrics, set_metrics
from repro.parallel import (
    TrialExecutor,
    TrialTask,
    WorkerPool,
    run_trial_worker,
    spawn_trial_seeds,
)


def square_seed(seed: int) -> int:
    """Module-level so process pools can pickle it."""
    return seed * seed


def record_and_return(seed: int) -> int:
    """Trial fn that logs into the ambient (worker-local) registry."""
    metrics = current_metrics()
    assert metrics is not None
    metrics.counter("trial.calls").inc()
    metrics.gauge("trial.last_seed").set(seed)
    metrics.histogram("trial.seed_hist").observe(float(seed))
    return seed + 1


class TestSpawnTrialSeeds:
    def test_deterministic(self):
        assert spawn_trial_seeds(42, 5) == spawn_trial_seeds(42, 5)

    def test_distinct_per_root(self):
        assert spawn_trial_seeds(42, 5) != spawn_trial_seeds(43, 5)

    def test_distinct_within_sweep(self):
        seeds = spawn_trial_seeds(42, 8)
        assert len(set(seeds)) == 8

    def test_count_validation(self):
        assert spawn_trial_seeds(42, 0) == ()
        with pytest.raises(ValueError):
            spawn_trial_seeds(42, -1)


class TestWorkerPool:
    def test_inline_map(self):
        with WorkerPool(4, mode="inline") as pool:
            assert pool.map_ordered(square_seed, [1, 2, 3]) == [1, 4, 9]

    def test_process_map_preserves_order(self):
        with WorkerPool(2, mode="process") as pool:
            assert pool.map_ordered(square_seed, range(6)) == [
                0, 1, 4, 9, 16, 25,
            ]

    def test_single_worker_runs_inline(self):
        pool = WorkerPool(1, mode="process")
        assert pool.map_ordered(square_seed, [3]) == [9]
        # No executor should have been created for a 1-worker pool.
        assert pool._executor is None
        pool.close()

    def test_empty_tasks(self):
        with WorkerPool(2, mode="inline") as pool:
            assert pool.map_ordered(square_seed, []) == []

    def test_invalid_workers(self):
        with pytest.raises(ConfigError):
            WorkerPool(0)

    def test_invalid_mode(self):
        with pytest.raises(ConfigError):
            WorkerPool(2, mode="threads")


class TestRunTrialWorker:
    def test_returns_value_and_registry(self):
        value, registry = run_trial_worker(
            TrialTask(fn=record_and_return, seed=5)
        )
        assert value == 6
        snap = registry.snapshot()
        assert snap["counters"]["trial.calls"] == 1.0
        assert snap["gauges"]["trial.last_seed"] == 5.0

    def test_restores_ambient_metrics(self):
        sentinel = MetricsRegistry()
        previous = set_metrics(sentinel)
        try:
            run_trial_worker(TrialTask(fn=record_and_return, seed=1))
            assert current_metrics() is sentinel
        finally:
            set_metrics(previous)


class TestTrialExecutor:
    def test_inline_matches_serial(self):
        seeds = spawn_trial_seeds(42, 4)
        with TrialExecutor(workers=1) as executor:
            parallel = executor.map(square_seed, seeds)
        assert parallel == [square_seed(s) for s in seeds]

    def test_process_matches_inline(self):
        seeds = spawn_trial_seeds(7, 4)
        with TrialExecutor(workers=2) as executor:
            via_processes = executor.map(square_seed, seeds)
        with TrialExecutor(workers=1) as executor:
            inline = executor.map(square_seed, seeds)
        assert via_processes == inline

    def test_merges_worker_metrics_in_seed_order(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            with TrialExecutor(workers=1) as executor:
                executor.map(record_and_return, [10, 20, 30])
        finally:
            set_metrics(previous)
        snap = registry.snapshot()
        assert snap["counters"]["trial.calls"] == 3.0
        # Gauges merge last-write-wins => the final seed's value sticks.
        assert snap["gauges"]["trial.last_seed"] == 30.0
        hist = snap["histograms"]["trial.seed_hist"]
        assert hist["count"] == 3
        assert hist["min"] == 10.0 and hist["max"] == 30.0
        assert snap["counters"]["parallel.trials"] == 3.0
        assert snap["gauges"]["parallel.workers"] == 1.0

    def test_no_ambient_registry_is_fine(self):
        previous = set_metrics(None)
        try:
            with TrialExecutor(workers=1) as executor:
                assert executor.map(square_seed, [2]) == [4]
        finally:
            set_metrics(previous)

    def test_partial_trial_fns(self):
        def add(offset: int, seed: int) -> int:
            return offset + seed

        with TrialExecutor(workers=1) as executor:
            assert executor.map(partial(add, 100), [1, 2]) == [101, 102]


class TestMetricsMerge:
    def test_counter_gauge_histogram_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(5.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["c"] == 5.0
        assert snap["gauges"]["g"] == 9.0
        assert snap["histograms"]["h"]["count"] == 2

    def test_kind_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        b.gauge("x").set(1.0)
        with pytest.raises(ReproError):
            a.merge(b)


class TestExperimentParallelPaths:
    def test_variance_parallel_matches_serial(self):
        from dataclasses import replace

        from repro.experiments import variance
        from repro.experiments.common import ExperimentSettings

        settings = ExperimentSettings(num_nodes=96, seed=11)
        serial = variance.run(settings, num_seeds=2)
        parallel = variance.run(replace(settings, workers=2), num_seeds=2)
        assert serial.seeds == parallel.seeds
        assert serial.metrics == parallel.metrics

    def test_chaos_parallel_matches_serial(self):
        from dataclasses import replace

        from repro.experiments import chaos
        from repro.experiments.common import ExperimentSettings

        settings = ExperimentSettings(num_nodes=64, seed=11)
        rates = (0.0, 0.2)
        serial = chaos.run(settings, drop_rates=rates)
        parallel = chaos.run(replace(settings, workers=2), drop_rates=rates)
        assert serial.rows == parallel.rows
        assert serial.baseline_moved == parallel.baseline_moved
