"""Sustained-churn soak of the incremental engine.

The contract under test (docs/performance.md): the persistent-tree fast
path survives an *open-ended* churn history — joins, leaves and
localized drift between every round, never a quiet rebuild-free stretch
— while (a) conserving load every round, (b) never re-descending a
repaired corridor (``stale_cache_misses`` stays exactly zero, the
delta-repair invariant) and (c) actually staying on the fast path (the
descent counters move; the serial fallback would leave them frozen).

The always-on smoke runs a few hundred nodes.  ``REPRO_SOAK=1``
additionally runs the same loop at 10^5 nodes — the scale the roadmap's
steady-state rounds target — which takes tens of seconds and is
therefore opt-in, like the partition seed sweep in ``verify.sh``.
"""

import os

import pytest

from repro.core import BalancerConfig, IncrementalLoadBalancer
from repro.core.report import check_conservation
from repro.dht import join_node, leave_node
from repro.util.rng import ensure_rng
from repro.workloads import GaussianLoadModel, apply_load_drift, build_scenario

MODEL = GaussianLoadModel(mu=1e6, sigma=2e3)

CONFIG = BalancerConfig(proximity_mode="ignorant", epsilon=0.05)


def _churn_step(ring, gen, joins, leaves, drift_fraction):
    """One seeded churn step: ``joins`` joins, ``leaves`` leaves, drift."""
    sites = []
    for _ in range(joins):
        joined = join_node(
            ring,
            capacity=10.0,
            vs_count=3,
            rng=int(gen.integers(1 << 30)),
        )
        sites.extend(vs.vs_id for vs in joined.virtual_servers)
    for _ in range(leaves):
        candidates = [n for n in ring.alive_nodes if n.virtual_servers]
        if len(candidates) <= 1:
            break
        leave_node(ring, candidates[int(gen.integers(len(candidates)))])
    apply_load_drift(
        ring,
        MODEL,
        int(gen.integers(1 << 30)),
        sites[:4],
        fraction=drift_fraction,
    )


def _soak(num_nodes, rounds, seed, churn_per_round):
    """Drive ``rounds`` incremental rounds under sustained churn.

    Returns the engine (for counter inspection) and the per-round
    canonical digests (for determinism checks at smoke scale).
    """
    scenario = build_scenario(
        MODEL, num_nodes=num_nodes, vs_per_node=4, rng=seed
    )
    engine = IncrementalLoadBalancer(scenario.ring, CONFIG, rng=7)
    gen = ensure_rng(seed + 1)
    digests = []
    for _ in range(rounds):
        report = engine.run_round()
        check_conservation(report)
        digests.append(report.canonical_digest())
        _churn_step(
            scenario.ring,
            gen,
            joins=churn_per_round,
            leaves=churn_per_round,
            drift_fraction=0.02,
        )
    return engine, digests


def test_churn_soak_smoke():
    """Always-on soak: ~512 nodes, six churned rounds, invariants hold."""
    engine, digests = _soak(num_nodes=512, rounds=6, seed=29, churn_per_round=4)
    stats = engine.descent_stats
    # The delta-repair invariant: a repaired corridor is never
    # re-descended.  Any nonzero value here is a repair bug, not noise.
    assert stats["stale_cache_misses"] == 0
    # The fast path actually ran: descents and/or repairs were counted.
    # The serial fallback never touches these counters, so zeros would
    # mean the soak silently tested the wrong engine.
    assert stats["miss_descents"] + stats["cache_repairs"] > 0
    # Sustained churn, not a single warm-up blip: every round digest is
    # distinct (the ring genuinely changed between rounds).
    assert len(set(digests)) == len(digests)


def test_churn_soak_smoke_reproduces():
    """The soaked history is a pure function of its seeds."""
    _, first = _soak(num_nodes=256, rounds=4, seed=31, churn_per_round=3)
    _, again = _soak(num_nodes=256, rounds=4, seed=31, churn_per_round=3)
    assert first == again


@pytest.mark.skipif(
    os.environ.get("REPRO_SOAK") != "1",
    reason="10^5-node churn soak is opt-in (REPRO_SOAK=1)",
)
def test_churn_soak_hundred_thousand_nodes():
    """Opt-in soak: 10^5 nodes, four churned rounds on the fast path."""
    engine, digests = _soak(
        num_nodes=100_000, rounds=4, seed=29, churn_per_round=64
    )
    stats = engine.descent_stats
    assert stats["stale_cache_misses"] == 0
    assert stats["miss_descents"] + stats["cache_repairs"] > 0
    assert len(set(digests)) == len(digests)
