"""Tests for the P2PSystem application facade."""

import pytest

from repro.app import P2PSystem, SystemConfig
from repro.exceptions import DHTError, ReproError
from repro.topology import generate_transit_stub
from tests.conftest import MINI_TS


@pytest.fixture
def system():
    sys_ = P2PSystem(SystemConfig(initial_nodes=12, vs_per_node=3, seed=5))
    for i in range(60):
        sys_.put(f"obj-{i}", load=float(i % 9 + 1))
    return sys_


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(initial_nodes=0),
            dict(vs_per_node=0),
            dict(replication_factor=-1),
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ReproError):
            SystemConfig(**kwargs)

    def test_capacities_length_checked(self):
        with pytest.raises(ReproError):
            P2PSystem(SystemConfig(initial_nodes=4, seed=0), capacities=[1.0])

    def test_deterministic_by_seed(self):
        a = P2PSystem(SystemConfig(initial_nodes=6, seed=9))
        b = P2PSystem(SystemConfig(initial_nodes=6, seed=9))
        assert [v.vs_id for v in a.ring.virtual_servers] == [
            v.vs_id for v in b.ring.virtual_servers
        ]


class TestStorage:
    def test_put_get_roundtrip(self, system):
        system.put("x", load=5.0)
        assert system.get("x").load == 5.0

    def test_delete(self, system):
        system.put("y", load=2.0)
        system.delete("y")
        with pytest.raises(DHTError):
            system.get("y")

    def test_loads_accounted(self, system):
        stats = system.stats()
        assert stats.objects == 60
        assert stats.total_load == pytest.approx(
            sum(float(i % 9 + 1) for i in range(60))
        )


class TestMembership:
    def test_add_node_rehomes(self, system):
        before = system.stats()
        node = system.add_node(capacity=100.0)
        system.verify()
        after = system.stats()
        assert after.nodes == before.nodes + 1
        assert after.total_load == pytest.approx(before.total_load)
        assert node.alive

    def test_remove_node(self, system):
        victim = system.ring.alive_nodes[0]
        before_load = system.stats().total_load
        system.remove_node(victim)
        system.verify()
        assert system.stats().total_load == pytest.approx(before_load)

    def test_fail_node_with_replication_survives(self, system):
        victim = system.ring.alive_nodes[3]
        assert system.fail_node(victim) is True  # r=2 tolerates 1 crash
        system.verify()

    def test_fail_node_without_replication_loses(self):
        sys_ = P2PSystem(
            SystemConfig(initial_nodes=8, vs_per_node=2, replication_factor=0, seed=3)
        )
        sys_.put("a", load=1.0)
        owner = sys_.get("a")
        victim = sys_.ring.successor(owner.key).owner
        assert sys_.fail_node(victim) is False

    def test_resolve_by_index(self, system):
        idx = system.ring.alive_nodes[2].index
        system.remove_node(idx)
        with pytest.raises(DHTError):
            system.remove_node(idx)  # already gone


class TestBalancing:
    def test_rebalance_reduces_heavy_fraction(self, system):
        before = system.stats()
        report = system.rebalance()
        after = system.stats()
        assert report.heavy_after <= report.heavy_before
        assert after.heavy_fraction <= before.heavy_fraction
        system.verify()

    def test_rebalance_until_stable(self, system):
        reports = system.rebalance_until_stable(max_rounds=4)
        assert reports
        assert system.reports == reports

    def test_object_loads_survive_rebalancing(self, system):
        before = system.stats().total_load
        system.rebalance()
        assert system.stats().total_load == pytest.approx(before)
        # objects still retrievable
        assert system.get("obj-0").load == 1.0

    def test_full_lifecycle(self, system):
        """put -> rebalance -> churn -> fail -> rebalance -> verify."""
        system.rebalance()
        system.add_node(capacity=1000.0)
        system.put("late-object", load=42.0)
        survived = system.fail_node(system.ring.alive_nodes[1])
        assert survived
        system.rebalance()
        system.verify()
        assert system.get("late-object").load == 42.0


class TestWithTopology:
    def test_proximity_mode_selected(self):
        topo = generate_transit_stub(MINI_TS, rng=2)
        sys_ = P2PSystem(
            SystemConfig(initial_nodes=10, vs_per_node=2, seed=4), topology=topo
        )
        assert sys_._balancer.config.proximity_mode == "aware"
        for i in range(30):
            sys_.put(f"o{i}", load=1.0)
        report = sys_.rebalance()
        # transfers carry real distances
        assert all(t.has_distance for t in report.transfers)


class TestDurableMode:
    """Crash recovery at the application facade (docs/recovery.md)."""

    @staticmethod
    def _system(tmp_path, faults=None, durable=True):
        from repro.faults import FaultPlan

        sys_ = P2PSystem(
            SystemConfig(initial_nodes=12, vs_per_node=3, seed=5),
            faults=faults if faults is not None else FaultPlan(),
            state_dir=tmp_path if durable else None,
            durable=durable,
        )
        for i in range(60):
            sys_.put(f"obj-{i}", load=float(i % 9 + 1))
        return sys_

    def test_crashed_rebalance_matches_plain(self, tmp_path):
        from repro.faults import CrashPoint, FaultPlan

        base = dict(seed=9, drop=0.05, transfer_abort=0.1)
        crash_plan = FaultPlan(
            **base,
            crash_points=(
                CrashPoint(at_round=1, site="mid-vst-batch"),
                CrashPoint(at_round=2, site="post-lbi-fold"),
            ),
        )
        plain = self._system(None, faults=FaultPlan(**base), durable=False)
        durable = self._system(tmp_path, faults=crash_plan)
        for _ in range(3):
            expected = plain.rebalance().canonical_digest()
            assert durable.rebalance().canonical_digest() == expected
        durable.verify()
        durable.close()
        counters = durable.stats().metrics["counters"]
        assert counters.get("recovery.restores") == 2

    def test_state_dir_populated(self, tmp_path):
        sys_ = self._system(tmp_path)
        sys_.rebalance()
        sys_.close()
        assert (tmp_path / "journal.jsonl").exists()
        assert (tmp_path / "snapshot-latest.json").exists()

    def test_non_durable_has_no_journal(self):
        sys_ = P2PSystem(SystemConfig(initial_nodes=8, vs_per_node=2, seed=3))
        assert sys_.journal is None
