"""Tests for successor-list replication."""

import itertools

import pytest

from repro.dht import ChordRing, ObjectStore, crash_node
from repro.dht.replication import ReplicationManager
from repro.exceptions import DHTError
from repro.idspace import IdentifierSpace


@pytest.fixture
def ring():
    r = ChordRing(IdentifierSpace(bits=14))
    r.populate(8, 3, [1.0] * 8, rng=17)
    return r


class TestPlacement:
    def test_replicas_on_distinct_other_nodes(self, ring):
        mgr = ReplicationManager(ring, replication_factor=2)
        for vs in ring.virtual_servers:
            rs = mgr.replica_set(vs)
            assert rs.primary_node == vs.owner.index
            assert rs.primary_node not in rs.replica_nodes
            assert len(set(rs.replica_nodes)) == len(rs.replica_nodes) == 2

    def test_replicas_follow_ring_order(self, ring):
        """The first replica is the owner of the next distinctly-owned VS."""
        mgr = ReplicationManager(ring, replication_factor=1)
        vss = ring.virtual_servers
        for i, vs in enumerate(vss):
            expected = None
            for j in range(1, len(vss)):
                cand = vss[(i + j) % len(vss)]
                if cand.owner.index != vs.owner.index:
                    expected = cand.owner.index
                    break
            assert mgr.replica_set(vs).replica_nodes == (expected,)

    def test_zero_replication(self, ring):
        mgr = ReplicationManager(ring, replication_factor=0)
        for vs in ring.virtual_servers:
            assert mgr.replica_set(vs).replica_nodes == ()

    def test_negative_factor_rejected(self, ring):
        with pytest.raises(DHTError):
            ReplicationManager(ring, replication_factor=-1)

    def test_unknown_vs_rejected(self, ring):
        mgr = ReplicationManager(ring)
        with pytest.raises(DHTError):
            mgr.replica_set(999_999_999)

    def test_factor_capped_by_population(self):
        r = ChordRing(IdentifierSpace(bits=10))
        r.populate(2, 2, [1.0, 1.0], rng=3)
        mgr = ReplicationManager(r, replication_factor=5)
        for vs in r.virtual_servers:
            # only one other node exists
            assert len(mgr.replica_set(vs).replica_nodes) == 1


class TestCrashTolerance:
    def test_single_crash_loses_nothing(self, ring):
        mgr = ReplicationManager(ring, replication_factor=2)
        for node in ring.nodes:
            availability = mgr.available_after_crash({node.index})
            assert all(availability.values())

    def test_double_crash_tolerated_with_r2(self, ring):
        mgr = ReplicationManager(ring, replication_factor=2)
        assert mgr.survives_any_crash_of(2)
        for pair in itertools.combinations([n.index for n in ring.nodes], 2):
            availability = mgr.available_after_crash(set(pair))
            assert all(availability.values())

    def test_r0_loses_on_primary_crash(self, ring):
        mgr = ReplicationManager(ring, replication_factor=0)
        victim = ring.nodes[0]
        availability = mgr.available_after_crash({victim.index})
        lost = [vs_id for vs_id, ok in availability.items() if not ok]
        assert set(lost) == {vs.vs_id for vs in victim.virtual_servers}

    def test_refresh_after_crash(self, ring):
        mgr = ReplicationManager(ring, replication_factor=2)
        crash_node(ring, ring.nodes[0])
        mgr.refresh()
        assert mgr.survives_any_crash_of(2)


class TestStorageBlowup:
    def test_blowup_equals_one_plus_r(self, ring):
        store = ObjectStore(ring)
        store.populate(200, mean_load=1.0, rng=5)
        mgr = ReplicationManager(ring, replication_factor=2)
        # every VS has 2 distinct replicas here, so blowup is exactly 3.
        assert mgr.storage_blowup(store) == pytest.approx(3.0)

    def test_blowup_empty_store(self, ring):
        store = ObjectStore(ring)
        mgr = ReplicationManager(ring, replication_factor=2)
        assert mgr.storage_blowup(store) == 1.0
