"""Cross-cutting property tests tying the layers together.

Hypothesis generates random rings, keys and loads, and checks the
contracts *between* subsystems: ownership vs routing vs tree planting vs
balancing — the places where unit tests of a single module cannot see a
disagreement.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BalancerConfig, LoadBalancer
from repro.dht import ChordRing, lookup_path
from repro.dht.pastry import PastryRouter
from repro.idspace import IdentifierSpace
from repro.ktree import KnaryTree
from repro.workloads import GaussianLoadModel, assign_loads


def make_ring(seed: int, n_nodes: int, bits: int = 16) -> ChordRing:
    ring = ChordRing(IdentifierSpace(bits=bits))
    ring.populate(n_nodes, 2, [1.0] * n_nodes, rng=seed)
    return ring


class TestOwnershipContracts:
    @given(seed=st.integers(0, 50), key=st.integers(0, 2**16 - 1))
    @settings(max_examples=80, deadline=None)
    def test_successor_region_contains_key(self, seed, key):
        ring = make_ring(seed, 8)
        owner = ring.successor(key)
        assert ring.region_of(owner).contains(key)

    @given(seed=st.integers(0, 30), key=st.integers(0, 2**16 - 1))
    @settings(max_examples=50, deadline=None)
    def test_chord_lookup_agrees_with_ownership(self, seed, key):
        ring = make_ring(seed, 8)
        start = ring.virtual_servers[0]
        assert lookup_path(ring, start, key)[-1] == ring.successor(key).vs_id

    @given(seed=st.integers(0, 30), key=st.integers(0, 2**16 - 1))
    @settings(max_examples=50, deadline=None)
    def test_pastry_owner_adjacent_to_chord_owner(self, seed, key):
        """Pastry (numerically closest) and Chord (clockwise successor)
        may disagree, but only ever between the two ring neighbours of
        the key."""
        ring = make_ring(seed, 8)
        router = PastryRouter(ring, digit_bits=4)
        chord_owner = ring.successor(key).vs_id
        pastry_owner = router.owner(key).vs_id
        pred = ring.predecessor_id(chord_owner)
        assert pastry_owner in (chord_owner, pred)

    @given(seed=st.integers(0, 30), key=st.integers(0, 2**16 - 1))
    @settings(max_examples=50, deadline=None)
    def test_tree_leaf_host_owns_leaf_center(self, seed, key):
        ring = make_ring(seed, 8)
        tree = KnaryTree(ring, 2)
        leaf = tree.ensure_leaf_for_key(key)
        assert leaf.region.contains(key)
        host_region = ring.region_of(leaf.host_vs)
        assert host_region.contains(leaf.region.center)


class TestBalancerContracts:
    @given(seed=st.integers(0, 20))
    @settings(max_examples=12, deadline=None)
    def test_round_conserves_load_and_respects_targets(self, seed):
        ring = make_ring(seed, 24)
        assign_loads(ring, GaussianLoadModel(mu=1e5, sigma=100.0), rng=seed)
        # heterogeneous capacities
        gen = np.random.default_rng(seed)
        for node in ring.nodes:
            node.capacity = float(gen.choice([1.0, 10.0, 100.0, 1000.0]))
        before = sum(n.load for n in ring.nodes)
        lb = LoadBalancer(
            ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=seed
        )
        report = lb.run_round()
        after = sum(n.load for n in ring.nodes)
        assert after == pytest.approx(before)
        # Nobody who was light ends above their target.
        targets = report.classification_before.targets
        node_by_index = {n.index: n for n in ring.nodes}
        for idx, cls in report.classification_before.classes.items():
            if cls.value == "light":
                assert node_by_index[idx].load <= targets[idx] + 1e-6
        # Worst overload never increases.
        assert (
            report.unit_loads_after.max()
            <= report.unit_loads_before.max() + 1e-9
        )
        ring.check_invariants()

    @given(seed=st.integers(0, 20), k=st.sampled_from([2, 4, 8]))
    @settings(max_examples=10, deadline=None)
    def test_outcome_quality_insensitive_to_tree_degree(self, seed, k):
        ring = make_ring(seed, 24)
        assign_loads(ring, GaussianLoadModel(mu=1e5, sigma=100.0), rng=seed)
        lb = LoadBalancer(
            ring,
            BalancerConfig(proximity_mode="ignorant", epsilon=0.05, tree_degree=k),
            rng=seed,
        )
        report = lb.run_round()
        assert report.heavy_after <= report.heavy_before
