"""Digest identity of Byzantine runs across every execution engine.

The acceptance contract of the adversary subsystem: with an active
:class:`~repro.adversary.AdversaryPlan` (defense on or off) the round
digests must be byte-identical across the serial, incremental and
sharded (S in {1, 2, 4}) engines, compose with fault plans and
partitions, survive a crash-and-recover cycle unchanged, and — when the
plan fields no active attacker (null plan, f=0 with defense armed, or
armed-but-dormant ``start_round``) — stay byte-identical to a run with
no plan at all (zero overhead when clean).
"""

import shutil
import tempfile

import pytest

from repro.adversary import AdversaryPlan
from repro.core import BalancerConfig, IncrementalLoadBalancer, LoadBalancer
from repro.core.report import check_conservation
from repro.faults import CrashPoint, FaultPlan, PartitionSpec
from repro.parallel import ShardedLoadBalancer, WorkerPool
from repro.recovery import RecoveryManager
from repro.workloads import GaussianLoadModel, build_scenario

MODEL = GaussianLoadModel(mu=1e6, sigma=2e3)

CONFIG = BalancerConfig(proximity_mode="ignorant", epsilon=0.05)

ATTACK = AdversaryPlan(seed=13, fraction=0.15, defense=False)
DEFENDED = AdversaryPlan(seed=13, fraction=0.15, defense=True)

FAULTS = FaultPlan(seed=5, drop=0.1, transfer_abort=0.2)

PARTITION_FAULTS = FaultPlan(
    seed=5,
    drop=0.05,
    partitions=(
        PartitionSpec(at_round=1, duration=2, num_components=2, mid_round=True),
    ),
)

ROUNDS = 4


def _ring(seed=21, num_nodes=96):
    return build_scenario(
        MODEL, num_nodes=num_nodes, vs_per_node=4, rng=seed
    ).ring


def _digests(balancer, rounds=ROUNDS):
    out = []
    for _ in range(rounds):
        report = balancer.run_round()
        check_conservation(report)
        out.append(report.canonical_digest())
    return out


def _serial_digests(adversary, faults=None, rounds=ROUNDS):
    return _digests(
        LoadBalancer(_ring(), CONFIG, rng=7, faults=faults, adversary=adversary),
        rounds,
    )


class TestEngineIdentity:
    @pytest.mark.parametrize("plan", [ATTACK, DEFENDED], ids=["off", "on"])
    def test_incremental_matches_serial(self, plan):
        serial = _serial_digests(plan)
        incremental = _digests(
            IncrementalLoadBalancer(_ring(), CONFIG, rng=7, adversary=plan)
        )
        assert serial == incremental

    @pytest.mark.parametrize("plan", [ATTACK, DEFENDED], ids=["off", "on"])
    @pytest.mark.parametrize("num_shards", (1, 2, 4))
    def test_sharded_matches_serial(self, plan, num_shards):
        serial = _serial_digests(plan)
        with WorkerPool(1, mode="inline") as pool:
            sharded = _digests(
                ShardedLoadBalancer(
                    _ring(), CONFIG, rng=7, adversary=plan,
                    num_shards=num_shards, pool=pool,
                )
            )
        assert serial == sharded

    def test_attack_history_reproduces_byte_for_byte(self):
        first = LoadBalancer(_ring(), CONFIG, rng=7, adversary=ATTACK)
        second = LoadBalancer(_ring(), CONFIG, rng=7, adversary=ATTACK)
        reports_a = [first.run_round() for _ in range(ROUNDS)]
        reports_b = [second.run_round() for _ in range(ROUNDS)]
        assert [r.canonical_digest() for r in reports_a] == [
            r.canonical_digest() for r in reports_b
        ]
        assert reports_a[-1].adversary_stats.signature
        assert (
            reports_a[-1].adversary_stats.signature
            == reports_b[-1].adversary_stats.signature
        )


class TestComposition:
    """Byzantine behavior composes with the crash/omission fault layer."""

    @pytest.mark.parametrize("plan", [ATTACK, DEFENDED], ids=["off", "on"])
    def test_with_fault_plan(self, plan):
        serial = _serial_digests(plan, faults=FAULTS)
        incremental = _digests(
            IncrementalLoadBalancer(
                _ring(), CONFIG, rng=7, faults=FAULTS, adversary=plan
            )
        )
        assert serial == incremental

    @pytest.mark.parametrize("plan", [ATTACK, DEFENDED], ids=["off", "on"])
    def test_with_partitions(self, plan):
        serial = _serial_digests(plan, faults=PARTITION_FAULTS, rounds=5)
        incremental = _digests(
            IncrementalLoadBalancer(
                _ring(), CONFIG, rng=7, faults=PARTITION_FAULTS, adversary=plan
            ),
            rounds=5,
        )
        assert serial == incremental


class TestCrashRecovery:
    """A crashed-and-recovered Byzantine run replays byte-identically."""

    @pytest.mark.parametrize("plan", [ATTACK, DEFENDED], ids=["off", "on"])
    def test_recovered_run_matches_uncrashed(self, plan):
        # The reference plan shares every non-crash knob (a bare plan
        # would be null: no injector, different code path entirely).
        base = dict(seed=5, drop=0.05, transfer_abort=0.1)
        crash_faults = FaultPlan(
            crash_points=(CrashPoint(at_round=1, site="mid-vst-batch"),),
            **base,
        )

        def factory():
            return LoadBalancer(
                _ring(), CONFIG, rng=7, faults=crash_faults, adversary=plan
            )

        plain = _serial_digests(plan, faults=FaultPlan(**base), rounds=3)
        state_dir = tempfile.mkdtemp(prefix="repro-adv-recovery-")
        try:
            manager = RecoveryManager(factory, state_dir=state_dir)
            recovered = [
                manager.run_round().canonical_digest() for _ in range(3)
            ]
            assert manager.restores >= 1  # the crash actually fired
            manager.close()
        finally:
            shutil.rmtree(state_dir, ignore_errors=True)
        assert plain == recovered


class TestSnapshotRoundTrip:
    """Adversary and trust state ride the checkpoint byte-faithfully."""

    @pytest.mark.parametrize("plan", [ATTACK, DEFENDED], ids=["off", "on"])
    def test_capture_restore_resumes_identically(self, plan):
        from repro.recovery.snapshot import SystemSnapshot

        source = LoadBalancer(_ring(), CONFIG, rng=7, adversary=plan)
        source.run_round()
        source.run_round()
        snap = SystemSnapshot.capture(source)
        tail_expected = _digests(source, rounds=2)

        twin = LoadBalancer(_ring(), CONFIG, rng=7, adversary=plan)
        snap.restore(twin)
        # Restored state recaptures to the identical payload...
        assert SystemSnapshot.capture(twin).canonical_digest() == (
            snap.canonical_digest()
        )
        # ...and the resumed run replays the uncrashed tail exactly.
        assert _digests(twin, rounds=2) == tail_expected

    def test_snapshot_payload_carries_the_byzantine_sections(self):
        from repro.recovery.snapshot import SystemSnapshot

        balancer = LoadBalancer(_ring(), CONFIG, rng=7, adversary=DEFENDED)
        balancer.run_round()
        payload = SystemSnapshot.capture(balancer).payload
        assert payload["adversary"] is not None
        assert payload["adversary"]["log"]  # actions fired and were kept
        assert payload["trust"] is not None
        clean = LoadBalancer(_ring(), CONFIG, rng=7)
        clean.run_round()
        clean_payload = SystemSnapshot.capture(clean).payload
        assert clean_payload["adversary"] is None
        assert clean_payload["trust"] is None


class TestZeroOverheadWhenClean:
    """No active attacker => digests identical to a plan-free run."""

    def test_null_plan_matches_no_plan(self):
        assert _serial_digests(None) == _serial_digests(
            AdversaryPlan(seed=13)
        )

    def test_zero_fraction_with_defense_matches_no_plan(self):
        armed = AdversaryPlan(seed=13, fraction=0.0, defense=True)
        assert _serial_digests(None) == _serial_digests(armed)

    def test_dormant_start_round_matches_no_plan(self):
        dormant = AdversaryPlan(
            seed=13, fraction=0.15, defense=True, start_round=ROUNDS + 10
        )
        assert _serial_digests(None) == _serial_digests(dormant)
