"""The trust-scored defense layer: audits, envelopes, quarantine.

Drives :class:`repro.adversary.TrustedAggregation` directly (no
balancer) so each evidence channel and the hysteresis machinery can be
pinned in isolation, plus the base-gate memory-bound regression
(``AggregateSanity._last_good`` eviction under churn).
"""

import numpy as np
import pytest

from repro.adversary import TrustedAggregation
from repro.core.lbi import AggregateSanity
from repro.util.rng import ensure_rng


def _trust_layer(seed=3):
    return TrustedAggregation(2, rng=ensure_rng(seed), metrics=None)


def _always_audit(layer):
    """Force every report to be audited (determinism shortcut for tests)."""
    layer.AUDIT_RATE = 1.1
    return layer


def _never_audit(layer):
    layer.AUDIT_RATE = -1.0
    return layer


# ----------------------------------------------------------------------
# Witness audits
# ----------------------------------------------------------------------
def test_failed_audit_substitutes_truth_and_charges_trust():
    layer = _always_audit(_trust_layer())
    layer.begin_round(0, alive_indices=[0])
    claimed = (25.0, 10.0, 2.0)  # truth is 100.0: a 4x under-report
    restored = layer.witness_check(0, claimed, (100.0, 10.0, 2.0))
    assert restored == (100.0, 10.0, 2.0)
    assert layer.trust_of(0) == pytest.approx(1.0 - layer.PENALTY_AUDIT)


def test_clean_audit_passes_claim_through_unchanged():
    layer = _always_audit(_trust_layer())
    layer.begin_round(0, alive_indices=[0])
    claimed = (100.0, 10.0, 2.0)
    assert layer.witness_check(0, claimed, claimed) == claimed
    assert layer.trust_of(0) == pytest.approx(1.0)


def test_audit_sampling_is_seeded():
    def audited_set(seed):
        layer = _trust_layer(seed)
        layer.begin_round(0, alive_indices=list(range(50)))
        hit = []
        for node in range(50):
            truth = (100.0, 10.0, 2.0)
            if layer.witness_check(node, (50.0, 10.0, 2.0), truth) == truth:
                hit.append(node)
        return hit

    assert audited_set(3) == audited_set(3)
    assert audited_set(3) != audited_set(4)


# ----------------------------------------------------------------------
# Quarantine / rejoin hysteresis
# ----------------------------------------------------------------------
def _charge_to_quarantine(layer, node):
    """Fail audits until the node's trust falls below the threshold."""
    rounds = 0
    while layer.trust_of(node) >= layer.QUARANTINE_THRESHOLD:
        layer.begin_round(rounds, alive_indices=[node])
        layer.witness_check(node, (25.0, 10.0, 2.0), (100.0, 10.0, 2.0))
        rounds += 1
    layer.begin_round(rounds, alive_indices=[node])
    return rounds


def test_quarantine_rejects_reports_at_the_gate():
    layer = _always_audit(_trust_layer())
    _charge_to_quarantine(layer, 0)
    assert 0 in layer.excluded
    assert layer.admit(0, 100.0, 10.0, 2.0, epoch=layer._epoch) is None


def test_recovery_credit_withheld_for_one_round_after_penalty():
    layer = _always_audit(_trust_layer())
    layer.begin_round(0, alive_indices=[0])
    layer.witness_check(0, (25.0, 10.0, 2.0), (100.0, 10.0, 2.0))
    after_penalty = layer.trust_of(0)
    layer.begin_round(1, alive_indices=[0])  # penalized last round: no credit
    assert layer.trust_of(0) == pytest.approx(after_penalty)
    layer.begin_round(2, alive_indices=[0])  # clean round: credit resumes
    assert layer.trust_of(0) == pytest.approx(
        after_penalty + layer.RECOVERY_CREDIT
    )


def test_rejoin_goes_through_probation_with_hysteresis():
    layer = _always_audit(_trust_layer())
    rounds = _charge_to_quarantine(layer, 0)
    assert 0 in layer.excluded
    # Trust must climb past the *higher* rejoin threshold, not merely
    # back over the quarantine threshold.
    while 0 in layer.excluded:
        rounds += 1
        layer.begin_round(rounds, alive_indices=[0])
        if 0 in layer.excluded:
            assert layer.trust_of(0) < layer.REJOIN_THRESHOLD
    assert layer.trust_of(0) >= layer.REJOIN_THRESHOLD
    # Released into probation: every report audited until the countdown
    # clears.
    _never_audit(layer)  # probation must force audits regardless of rate
    for _ in range(layer.PROBATION_ROUNDS):
        assert 0 in layer._probation
        truth = (100.0, 10.0, 2.0)
        assert layer.witness_check(0, truth, truth) == truth
    assert 0 not in layer._probation


def test_probation_resets_to_quarantine_on_a_new_breach():
    layer = _always_audit(_trust_layer())
    rounds = _charge_to_quarantine(layer, 0)
    while 0 in layer.excluded:
        rounds += 1
        layer.begin_round(rounds, alive_indices=[0])
    # One failed audit while on probation sends trust down again; the
    # next begin_round re-quarantines (probation does not shield).
    while layer.trust_of(0) >= layer.QUARANTINE_THRESHOLD:
        layer.witness_check(0, (25.0, 10.0, 2.0), (100.0, 10.0, 2.0))
    layer.begin_round(rounds + 1, alive_indices=[0])
    assert 0 in layer.excluded
    assert 0 not in layer._probation


# ----------------------------------------------------------------------
# Accusation and transfer-outcome channels
# ----------------------------------------------------------------------
def test_refuted_accusation_charges_the_accuser():
    layer = _trust_layer()
    layer.begin_round(0, alive_indices=[0, 1])
    layer.refute_accusation(1)
    assert layer.trust_of(1) == pytest.approx(1.0 - layer.PENALTY_ACCUSE)


def test_quarantined_accuser_is_ignored():
    layer = _always_audit(_trust_layer())
    _charge_to_quarantine(layer, 0)
    before = layer.trust_of(0)
    layer.refute_accusation(0)
    assert layer.trust_of(0) == pytest.approx(before)


def test_renege_charges_the_source():
    layer = _trust_layer()
    layer.begin_round(0, alive_indices=[0])
    layer.note_renege(0)
    assert layer.trust_of(0) == pytest.approx(1.0 - layer.PENALTY_RENEGE)


# ----------------------------------------------------------------------
# EWMA envelopes
# ----------------------------------------------------------------------
def test_envelope_breach_penalizes_but_admits():
    layer = _never_audit(_trust_layer())
    layer.begin_round(0, alive_indices=[0])
    assert layer.admit(0, 100.0, 10.0, 2.0, epoch=0) is not None
    # A wild swing far outside ENVELOPE_FACTOR deviations: admitted,
    # but the envelope charges a (small) suspicion penalty.
    admitted = layer.admit(0, 5000.0, 10.0, 2.0, epoch=0)
    assert admitted == (5000.0, 10.0, 2.0)
    assert layer.trust_of(0) == pytest.approx(1.0 - layer.PENALTY_ENVELOPE)


def test_note_transfer_keeps_honest_movement_inside_the_envelope():
    layer = _never_audit(_trust_layer())
    layer.begin_round(0, alive_indices=[0, 1])
    layer.admit(0, 1000.0, 10.0, 2.0, epoch=0)
    layer.admit(1, 10.0, 10.0, 2.0, epoch=0)
    # The balancer reports a delivered 900-unit transfer 0 -> 1; both
    # endpoints' expected next report follows the executed delta.
    layer.note_transfer(0, 1, 900.0)
    layer.begin_round(1, alive_indices=[0, 1])
    layer.admit(0, 100.0, 10.0, 2.0, epoch=1)
    layer.admit(1, 910.0, 10.0, 2.0, epoch=1)
    assert layer.trust_of(0) == pytest.approx(1.0)
    assert layer.trust_of(1) == pytest.approx(1.0)


def test_envelope_supersedes_the_blind_delta_heuristic():
    """A transfer-accounted swing passes where the base rule would reject.

    The base gate's rule 5 bounds swings at ``DELTA_FACTOR * (C +
    L_last)``; an honest node absorbing far more than that in one heavy
    rebalancing round must not be swapped for its stale last-good value
    once the defense tracks the executed deltas.
    """
    swing = AggregateSanity.DELTA_FACTOR * (10.0 + 10.0) * 10  # >> rule 5
    base = AggregateSanity(2)
    base.begin_round(0)
    base.admit(0, 10.0, 10.0, 2.0, epoch=0)
    assert base.admit(0, swing, 10.0, 2.0, epoch=0) == (10.0, 10.0, 2.0)

    layer = _never_audit(_trust_layer())
    layer.begin_round(0, alive_indices=[0])
    layer.admit(0, 10.0, 10.0, 2.0, epoch=0)
    layer.note_transfer(1, 0, swing - 10.0)
    assert layer.admit(0, swing, 10.0, 2.0, epoch=0) == (swing, 10.0, 2.0)


# ----------------------------------------------------------------------
# Memory bounds under churn (the base-gate regression) and state eviction
# ----------------------------------------------------------------------
def test_last_good_memory_is_bounded_under_churn():
    """``AggregateSanity._last_good`` evicts departed nodes (regression).

    Before the fix the map grew monotonically: every node that ever
    reported stayed in memory forever, an unbounded leak under
    sustained churn.
    """
    gate = AggregateSanity(2)
    for epoch in range(50):
        cohort = list(range(epoch * 10, epoch * 10 + 10))
        gate.begin_round(epoch, alive_indices=cohort)
        for node in cohort:
            gate.admit(node, 100.0, 10.0, 2.0, epoch=epoch)
        assert set(gate._last_good) == set(cohort)


def test_eviction_is_skipped_without_an_alive_view():
    gate = AggregateSanity(2)
    gate.begin_round(0, alive_indices=[0, 1])
    gate.admit(0, 100.0, 10.0, 2.0, epoch=0)
    gate.admit(1, 100.0, 10.0, 2.0, epoch=0)
    gate.begin_round(1)  # legacy call shape: no view, no eviction
    assert set(gate._last_good) == {0, 1}


def test_trust_state_evicts_departed_nodes():
    layer = _always_audit(_trust_layer())
    layer.begin_round(0, alive_indices=[0, 1])
    layer.admit(0, 100.0, 10.0, 2.0, epoch=0)
    layer.witness_check(1, (25.0, 10.0, 2.0), (100.0, 10.0, 2.0))
    assert 0 in layer._ewma and 1 in layer._trust
    layer.begin_round(1, alive_indices=[2])  # both departed
    assert not layer._ewma
    assert not layer._trust
    assert not layer._quarantined


def test_audit_stream_is_the_engines():
    """The layer consumes the generator it was handed (snapshot contract)."""
    gen = ensure_rng(7)
    layer = TrustedAggregation(2, rng=gen, metrics=None)
    state_before = gen.bit_generator.state["state"]["state"]
    layer.begin_round(0, alive_indices=[0])
    layer.witness_check(0, (1.0, 1.0, 1.0), (1.0, 1.0, 1.0))
    assert gen.bit_generator.state["state"]["state"] != state_before


def test_rng_type_is_numpy_generator():
    assert isinstance(_trust_layer()._audit_rng, np.random.Generator)
