"""Tests for the chaos-soak harness and the ddmin schedule shrinker.

The harness's value rests on two properties checked here: a schedule is
the *entire* input (same schedule in, byte-identical digests out, so
failures reproduce), and a failing schedule shrinks deterministically
to a 1-minimal reproduction that still trips the same monitor.
Shrinker tests drive a synthetic monitor so they exercise the ddmin
machinery without needing a real protocol bug.
"""

import dataclasses

import pytest

from repro.exceptions import ReproError
from repro.faults import CrashPoint, FaultPlan, PartitionSpec
from repro.recovery.soak import (
    CHURN_KINDS,
    SHRINKABLE_KNOBS,
    ChurnOp,
    Monitor,
    SoakSchedule,
    build_schedule,
    default_monitors,
    format_repro,
    main,
    run_schedule,
    shrink,
)

#: Small-but-real schedule dimensions that keep these tests quick.
SMALL = dict(rounds=4, num_nodes=16, vs_per_node=3)


class TestScheduleModel:
    def test_churn_op_validation(self):
        with pytest.raises(ValueError):
            ChurnOp(at_round=0, kind="explode")
        with pytest.raises(ValueError):
            ChurnOp(at_round=-1, kind="join")
        assert {op_kind for op_kind in CHURN_KINDS} == {"join", "leave", "drift"}

    @pytest.mark.parametrize(
        "kwargs",
        [dict(rounds=0), dict(num_nodes=3), dict(vs_per_node=0)],
    )
    def test_schedule_validation(self, kwargs):
        with pytest.raises(ValueError):
            SoakSchedule(**kwargs)

    def test_build_schedule_is_valid_and_deterministic(self):
        for seed in range(1, 8):
            a = build_schedule(seed, rounds=6, num_nodes=24)
            b = build_schedule(seed, rounds=6, num_nodes=24)
            assert a == b
            assert 1 <= len(a.plan.crash_points) <= 2
            for point in a.plan.crash_points:
                assert point.at_round < a.rounds
            for op in a.churn:
                assert op.at_round < a.rounds


class TestRunSchedule:
    def test_clean_schedule_passes_all_monitors(self):
        schedule = SoakSchedule(seed=3, **SMALL)
        result = run_schedule(schedule)
        assert result.ok
        assert len(result.digests) == schedule.rounds
        assert result.restores == 0

    def test_same_schedule_same_digests(self):
        schedule = SoakSchedule(
            seed=4,
            plan=FaultPlan(
                seed=4,
                drop=0.05,
                crash_points=(CrashPoint(at_round=1, site="mid-vst-batch"),),
            ),
            churn=(ChurnOp(at_round=1, kind="join"), ChurnOp(at_round=2, kind="drift")),
            **SMALL,
        )
        first = run_schedule(schedule)
        second = run_schedule(schedule)
        assert first.ok, first.failure
        assert first.digests == second.digests
        assert first.restores == second.restores == 1

    def test_full_chaos_composition_is_clean(self):
        """Churn x faults x partition x crash, all monitors green."""
        schedule = SoakSchedule(
            seed=6,
            rounds=6,
            num_nodes=20,
            vs_per_node=3,
            plan=FaultPlan(
                seed=6,
                drop=0.05,
                transfer_abort=0.05,
                crash_mid_round=1,
                partitions=(
                    PartitionSpec(
                        at_round=2, duration=1, num_components=2, mid_round=True
                    ),
                ),
                crash_points=(CrashPoint(at_round=3, site="pre-heal-commit"),),
            ),
            churn=(
                ChurnOp(at_round=1, kind="join"),
                ChurnOp(at_round=3, kind="leave"),
                ChurnOp(at_round=5, kind="drift"),
            ),
        )
        result = run_schedule(schedule)
        assert result.ok, result.failure
        assert result.restores == 1


class _NoPartitionMonitor(Monitor):
    """Synthetic invariant: trips whenever the plan carries a partition.

    Gives the shrinker a failure whose minimal cause is exactly one
    element (the PartitionSpec), so 1-minimality is checkable.
    """

    name = "no-partition"

    def check(self, probe):
        injector = probe.balancer.faults
        if injector is not None and injector.plan.partitions:
            return "plan carries a partition"
        return None


def _synthetic_monitors():
    return default_monitors() + [_NoPartitionMonitor()]


class TestShrink:
    #: A deliberately noisy failing schedule: the partition is the only
    #: real cause; crashes, churn and knobs are shrinkable noise.
    NOISY = SoakSchedule(
        seed=9,
        rounds=6,
        num_nodes=16,
        vs_per_node=3,
        plan=FaultPlan(
            seed=9,
            drop=0.05,
            transfer_abort=0.05,
            partitions=(
                PartitionSpec(at_round=0, duration=1, num_components=2),
            ),
            crash_points=(CrashPoint(at_round=1, site="mid-vst-batch"),),
        ),
        churn=(ChurnOp(at_round=1, kind="join"),),
    )

    def _failing(self):
        result = run_schedule(self.NOISY, monitor_factory=_synthetic_monitors)
        assert not result.ok
        assert result.failure.monitor == "no-partition"
        return result

    def test_shrinks_to_single_cause(self):
        result = self._failing()
        shrunk = shrink(
            self.NOISY, result.failure, monitor_factory=_synthetic_monitors
        )
        minimal = shrunk.schedule
        assert len(minimal.plan.partitions) == 1
        assert minimal.plan.crash_points == ()
        assert minimal.churn == ()
        for knob in SHRINKABLE_KNOBS:
            assert not getattr(minimal.plan, knob)
        assert minimal.rounds == 1  # partition at round 0: one round repros
        assert shrunk.failure.monitor == "no-partition"

    def test_shrink_is_deterministic(self):
        result = self._failing()
        a = shrink(self.NOISY, result.failure, monitor_factory=_synthetic_monitors)
        b = shrink(self.NOISY, result.failure, monitor_factory=_synthetic_monitors)
        assert a.schedule == b.schedule
        assert a.runs == b.runs

    def test_shrink_rejects_non_reproducing_failure(self):
        clean = dataclasses.replace(
            self.NOISY, plan=dataclasses.replace(self.NOISY.plan, partitions=())
        )
        result = run_schedule(clean, monitor_factory=_synthetic_monitors)
        assert result.ok
        bogus = dataclasses.replace(self._failing().failure)
        with pytest.raises(ReproError, match="no longer fails"):
            shrink(clean, bogus, monitor_factory=_synthetic_monitors)

    def test_format_repro_is_executable(self):
        result = self._failing()
        shrunk = shrink(
            self.NOISY, result.failure, monitor_factory=_synthetic_monitors
        )
        source = format_repro(shrunk)
        assert "def test_soak_regression():" in source
        # The rendered schedule must evaluate back to the minimal one.
        namespace = {}
        exec(  # noqa: S102 - the harness's own paste-ready output
            "from repro.faults import CrashPoint, FaultPlan, PartitionSpec\n"
            "from repro.recovery.soak import ChurnOp, SoakSchedule\n"
            f"schedule = {shrunk.schedule!r}\n",
            namespace,
        )
        assert namespace["schedule"] == shrunk.schedule


class TestDriver:
    def test_smoke_sweep_is_clean(self, capsys):
        assert main(["--smoke", "--rounds", "4", "--nodes", "16"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
