"""Property and unit tests for the m-dimensional Hilbert curve.

The two load-bearing properties:

* **bijectivity** — encode/decode are exact inverses over the whole grid;
* **unit-step adjacency** — consecutive curve indices map to grid points
  differing by exactly 1 in exactly one coordinate (the locality property
  the paper's key mapping relies on).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import HilbertError
from repro.proximity import HilbertCurve


class TestConstruction:
    def test_properties(self):
        hc = HilbertCurve(dims=3, bits=4)
        assert hc.index_bits == 12
        assert hc.max_index == 4095
        assert hc.side == 16

    @pytest.mark.parametrize("dims,bits", [(0, 4), (3, 0), (-1, 2)])
    def test_invalid_params(self, dims, bits):
        with pytest.raises(HilbertError):
            HilbertCurve(dims=dims, bits=bits)

    def test_too_large(self):
        with pytest.raises(HilbertError):
            HilbertCurve(dims=64, bits=32)


class TestBijectivity:
    @pytest.mark.parametrize("dims,bits", [(1, 4), (2, 3), (3, 2), (4, 2), (5, 1)])
    def test_exhaustive_roundtrip(self, dims, bits):
        hc = HilbertCurve(dims=dims, bits=bits)
        seen = set()
        for idx in range(hc.max_index + 1):
            point = hc.decode(idx)
            assert hc.encode(point) == idx
            assert point not in seen
            seen.add(point)
        assert len(seen) == hc.max_index + 1

    @given(
        dims=st.integers(2, 10),
        bits=st.integers(1, 6),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_roundtrip_high_dims(self, dims, bits, data):
        hc = HilbertCurve(dims=dims, bits=bits)
        point = tuple(
            data.draw(st.integers(0, hc.side - 1)) for _ in range(dims)
        )
        assert hc.decode(hc.encode(point)) == point

    def test_paper_scale_dimensions(self):
        """15 landmarks x 4 bits: 60-bit indices round-trip."""
        hc = HilbertCurve(dims=15, bits=4)
        gen = np.random.default_rng(0)
        for _ in range(50):
            point = tuple(int(x) for x in gen.integers(0, 16, size=15))
            idx = hc.encode(point)
            assert 0 <= idx <= hc.max_index
            assert hc.decode(idx) == point


class TestAdjacency:
    @pytest.mark.parametrize("dims,bits", [(2, 4), (3, 3), (4, 2), (6, 1)])
    def test_consecutive_indices_are_grid_neighbours(self, dims, bits):
        hc = HilbertCurve(dims=dims, bits=bits)
        prev = np.asarray(hc.decode(0))
        for idx in range(1, hc.max_index + 1):
            cur = np.asarray(hc.decode(idx))
            diff = np.abs(cur - prev)
            assert diff.sum() == 1, f"jump at index {idx}"
            prev = cur

    def test_curve_starts_at_origin(self):
        hc = HilbertCurve(dims=3, bits=3)
        assert hc.decode(0) == (0, 0, 0)


class TestValidation:
    def test_wrong_dimension_count(self):
        hc = HilbertCurve(dims=3, bits=2)
        with pytest.raises(HilbertError):
            hc.encode([1, 2])

    def test_coordinate_out_of_range(self):
        hc = HilbertCurve(dims=2, bits=2)
        with pytest.raises(HilbertError):
            hc.encode([4, 0])

    def test_index_out_of_range(self):
        hc = HilbertCurve(dims=2, bits=2)
        with pytest.raises(HilbertError):
            hc.decode(16)
        with pytest.raises(HilbertError):
            hc.decode(-1)

    def test_encode_many_shape_check(self):
        hc = HilbertCurve(dims=3, bits=2)
        with pytest.raises(HilbertError):
            hc.encode_many(np.zeros((4, 2), dtype=int))

    def test_encode_many_matches_scalar(self):
        hc = HilbertCurve(dims=3, bits=3)
        gen = np.random.default_rng(1)
        pts = gen.integers(0, 8, size=(20, 3))
        batch = hc.encode_many(pts)
        for row, idx in zip(pts, batch):
            assert hc.encode([int(v) for v in row]) == idx


class TestLocality:
    def test_nearby_points_have_nearby_indices_on_average(self):
        """Statistical locality: neighbours in space are closer on the curve
        than random pairs, on average (the converse of adjacency is not
        guaranteed pointwise, but must hold in aggregate)."""
        hc = HilbertCurve(dims=2, bits=5)
        gen = np.random.default_rng(3)
        side = hc.side
        neighbour_gaps, random_gaps = [], []
        for _ in range(300):
            x, y = int(gen.integers(side - 1)), int(gen.integers(side - 1))
            i0 = hc.encode([x, y])
            neighbour_gaps.append(abs(hc.encode([x + 1, y]) - i0))
            rx, ry = int(gen.integers(side)), int(gen.integers(side))
            random_gaps.append(abs(hc.encode([rx, ry]) - i0))
        assert np.mean(neighbour_gaps) < np.mean(random_gaps) / 4
