"""Tests for the power-law topology generator."""

import networkx as nx
import numpy as np
import pytest

from repro.core import BalancerConfig, LoadBalancer
from repro.exceptions import TopologyError
from repro.topology import DistanceOracle, generate_power_law
from repro.workloads import GaussianLoadModel, build_scenario


class TestGeneration:
    @pytest.fixture(scope="class")
    def topo(self):
        return generate_power_law(300, attach_edges=2, rng=3)

    def test_connected(self, topo):
        assert nx.is_connected(topo.graph)

    def test_vertex_count(self, topo):
        assert topo.num_vertices == 300

    def test_all_vertices_are_stub(self, topo):
        assert len(topo.stub_vertices) == 300

    def test_heavy_tailed_degrees(self, topo):
        degrees = np.asarray([d for _, d in topo.graph.degree()])
        # Hubs exist: max degree far above the median.
        assert degrees.max() >= 5 * np.median(degrees)

    def test_weights_in_range(self, topo):
        for _, _, w in topo.graph.edges(data="weight"):
            assert 1 <= w <= 4

    def test_deterministic(self):
        a = generate_power_law(100, rng=7)
        b = generate_power_law(100, rng=7)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_cluster_labels_assigned(self, topo):
        clusters = {topo.info[v].stub_domain for v in range(topo.num_vertices)}
        assert 1 < len(clusters) < topo.num_vertices

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_vertices=1),
            dict(num_vertices=10, attach_edges=0),
            dict(num_vertices=10, attach_edges=10),
            dict(num_vertices=10, weight_range=(3, 2)),
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(TopologyError):
            generate_power_law(**kwargs)


class TestBalancerOnPowerLaw:
    def test_aware_still_at_least_matches_ignorant(self):
        """Robustness beyond the paper: on a non-hierarchical topology the
        proximity win shrinks, but aware must never be *worse* on mean
        transfer distance."""
        topo = generate_power_law(600, attach_edges=2, rng=11)
        means = {}
        for mode in ("aware", "ignorant"):
            sc = build_scenario(
                GaussianLoadModel(mu=1e5, sigma=300.0),
                num_nodes=256,
                vs_per_node=4,
                topology=generate_power_law(600, attach_edges=2, rng=11),
                rng=13,
            )
            lb = LoadBalancer(
                sc.ring,
                BalancerConfig(proximity_mode=mode, epsilon=0.05, grid_bits=3),
                topology=sc.topology,
                oracle=sc.oracle,
                rng=5,
            )
            report = lb.run_round()
            assert report.heavy_after <= report.heavy_before // 10
            means[mode] = report.transfer_distances.mean()
        assert means["aware"] <= means["ignorant"] * 1.05
