"""Tests for seed replication and the variance experiment."""

import pytest

from repro.analysis.replicate import ReplicatedMetric, replicate


class TestReplicate:
    def test_summary_stats(self):
        out = replicate(lambda seed: {"x": float(seed)}, seeds=[1, 2, 3])
        m = out["x"]
        assert m.mean == pytest.approx(2.0)
        assert m.minimum == 1.0
        assert m.maximum == 3.0
        assert m.values == (1.0, 2.0, 3.0)

    def test_multiple_metrics(self):
        out = replicate(
            lambda seed: {"a": seed, "b": seed * 2}, seeds=[1, 2]
        )
        assert set(out) == {"a", "b"}
        assert out["b"].mean == pytest.approx(3.0)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: {"x": 0.0}, seeds=[])

    def test_inconsistent_keys_rejected(self):
        def fn(seed):
            return {"x": 1.0} if seed == 1 else {"y": 1.0}

        with pytest.raises(KeyError):
            replicate(fn, seeds=[1, 2])

    def test_str_format(self):
        m = ReplicatedMetric(name="x", values=(1.0, 2.0))
        assert "+/-" in str(m)


class TestVarianceExperiment:
    def test_small_variance_run(self):
        from repro.experiments import variance
        from repro.experiments.common import ExperimentSettings

        result = variance.run(
            ExperimentSettings(num_nodes=768, seed=42), num_seeds=2
        )
        assert len(result.seeds) == 2
        m = result.metrics
        # aware always beats ignorant on mean distance, in every seed.
        for a, b in zip(
            m["aware_mean_distance"].values, m["ignorant_mean_distance"].values
        ):
            assert a < b
        assert "Seed variance" in result.format_rows()
