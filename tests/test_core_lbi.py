"""Tests for LBI aggregation over the tree."""

import math

import pytest

from repro.core.lbi import (
    aggregate_lbi,
    collect_lbi_reports,
    direct_system_lbi,
)
from repro.dht import ChordRing
from repro.exceptions import BalancerError
from repro.idspace import IdentifierSpace
from repro.ktree import KnaryTree


@pytest.fixture
def ring():
    r = ChordRing(IdentifierSpace(bits=12))
    r.populate(10, 3, [float(i + 1) for i in range(10)], rng=2)
    for i, vs in enumerate(r.virtual_servers):
        vs.load = float(i + 1)
    return r


class TestCollect:
    def test_one_report_per_node(self, ring):
        tree = KnaryTree(ring, 2)
        reports = collect_lbi_reports(ring, tree, rng=0)
        total = sum(len(records) for _, records in reports.values())
        assert total == len(ring.nodes)

    def test_reports_via_hosted_leaf(self, ring):
        """A node's report must enter at a leaf hosted by one of its VSs."""
        tree = KnaryTree(ring, 2)
        reports = collect_lbi_reports(ring, tree, rng=1)
        for leaf, records in reports.values():
            owner = leaf.host_vs.owner
            for rec in records:
                # the record matches some node hosted by... at minimum the
                # leaf's host VS owner reports plausible values
                assert rec.capacity > 0

    def test_zero_vs_node_still_reports(self, ring):
        node = ring.nodes[0]
        for vs in list(node.virtual_servers):
            vs_load = vs.load
            ring.remove_virtual_server(vs)
            ring.successor(vs.vs_id).load += vs_load
        tree = KnaryTree(ring, 2)
        reports = collect_lbi_reports(ring, tree, rng=2)
        total = sum(len(records) for _, records in reports.values())
        assert total == len(ring.nodes)  # including the empty one


class TestAggregate:
    def test_matches_ground_truth(self, ring):
        tree = KnaryTree(ring, 2)
        reports = collect_lbi_reports(ring, tree, rng=0)
        system, trace = aggregate_lbi(tree, reports)
        truth = direct_system_lbi(ring.nodes)
        assert system.total_load == pytest.approx(truth.total_load)
        assert system.total_capacity == pytest.approx(truth.total_capacity)
        assert system.min_vs_load == pytest.approx(truth.min_vs_load)

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_aggregate_independent_of_degree(self, ring, k):
        tree = KnaryTree(ring, k)
        reports = collect_lbi_reports(ring, tree, rng=0)
        system, _ = aggregate_lbi(tree, reports)
        truth = direct_system_lbi(ring.nodes)
        assert system.total_load == pytest.approx(truth.total_load)

    def test_rounds_bounded_by_height(self, ring):
        tree = KnaryTree(ring, 2)
        reports = collect_lbi_reports(ring, tree, rng=0)
        _, trace = aggregate_lbi(tree, reports)
        assert trace.upward_rounds == trace.tree_height
        assert trace.downward_rounds == trace.tree_height
        assert trace.total_rounds == 2 * trace.tree_height

    def test_rounds_scale_logarithmically(self):
        r = ChordRing(IdentifierSpace(bits=20))
        r.populate(64, 2, [1.0] * 64, rng=3)
        for vs in r.virtual_servers:
            vs.load = 1.0
        tree = KnaryTree(r, 2)
        reports = collect_lbi_reports(r, tree, rng=0)
        _, trace = aggregate_lbi(tree, reports)
        assert trace.upward_rounds <= 4 * math.log2(r.num_virtual_servers)

    def test_message_symmetry(self, ring):
        tree = KnaryTree(ring, 2)
        reports = collect_lbi_reports(ring, tree, rng=0)
        _, trace = aggregate_lbi(tree, reports)
        assert trace.upward_messages == trace.downward_messages
        assert trace.upward_messages > 0

    def test_empty_reports_rejected(self, ring):
        tree = KnaryTree(ring, 2)
        with pytest.raises(BalancerError):
            aggregate_lbi(tree, {})

    def test_direct_lbi_counts_empty_nodes_capacity(self, ring):
        node = ring.nodes[5]
        for vs in list(node.virtual_servers):
            load = vs.load
            ring.remove_virtual_server(vs)
            ring.successor(vs.vs_id).load += load
        truth = direct_system_lbi(ring.nodes)
        assert truth.total_capacity == pytest.approx(
            sum(n.capacity for n in ring.nodes)
        )

    def test_direct_lbi_requires_some_vs(self):
        r = ChordRing(IdentifierSpace(bits=8))
        with pytest.raises(BalancerError):
            direct_system_lbi(r.nodes)
