"""Tests for the transit-stub topology generator."""

import networkx as nx
import numpy as np
import pytest

from repro.constants import INTRADOMAIN_HOP_COST
from repro.exceptions import TopologyError
from repro.topology import (
    TS5K_LARGE,
    TS5K_SMALL,
    Topology,
    TransitStubParams,
    generate_transit_stub,
)
from repro.topology.graph import VertexInfo
from tests.conftest import MINI_TS


class TestParams:
    def test_paper_large_parameters(self):
        assert TS5K_LARGE.transit_domains == 5
        assert TS5K_LARGE.transit_nodes_per_domain == 3
        assert TS5K_LARGE.stub_domains_per_transit == 5
        assert TS5K_LARGE.stub_nodes_mean == 60

    def test_paper_small_parameters(self):
        assert TS5K_SMALL.transit_domains == 120
        assert TS5K_SMALL.transit_nodes_per_domain == 5
        assert TS5K_SMALL.stub_domains_per_transit == 4
        assert TS5K_SMALL.stub_nodes_mean == 2

    def test_expected_vertices_near_5000(self):
        assert 4000 <= TS5K_LARGE.expected_vertices <= 6000
        assert 4000 <= TS5K_SMALL.expected_vertices <= 6000

    def test_invalid_counts(self):
        with pytest.raises(TopologyError):
            TransitStubParams(0, 1, 1, 1)

    def test_invalid_jitter(self):
        with pytest.raises(TopologyError):
            TransitStubParams(1, 1, 1, 1, stub_size_jitter=1.0)

    def test_invalid_weight_range(self):
        with pytest.raises(TopologyError):
            TransitStubParams(1, 1, 1, 1, interdomain_weight_range=(4, 2))


class TestGeneration:
    @pytest.fixture(scope="class")
    def topo(self):
        return generate_transit_stub(MINI_TS, rng=5)

    def test_connected(self, topo):
        assert nx.is_connected(topo.graph)

    def test_transit_count(self, topo):
        assert len(topo.transit_vertices) == 4  # 2 domains x 2 nodes

    def test_stub_domain_count(self, topo):
        domains = {
            topo.info[v].stub_domain
            for v in topo.stub_vertices
        }
        assert len(domains) == 8  # 4 transit nodes x 2 stub domains

    def test_vertex_roles_partition(self, topo):
        assert len(topo.stub_vertices) + len(topo.transit_vertices) == topo.num_vertices

    def test_stub_vertices_have_stub_domain(self, topo):
        for v in topo.stub_vertices:
            assert topo.info[v].stub_domain is not None
        for v in topo.transit_vertices:
            assert topo.info[v].stub_domain is None

    def test_deterministic_by_seed(self):
        a = generate_transit_stub(MINI_TS, rng=9)
        b = generate_transit_stub(MINI_TS, rng=9)
        assert a.num_vertices == b.num_vertices
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_different_seeds_differ(self):
        a = generate_transit_stub(MINI_TS, rng=1)
        b = generate_transit_stub(MINI_TS, rng=2)
        assert sorted(a.graph.edges) != sorted(b.graph.edges)

    def test_intradomain_edges_have_unit_weight(self, topo):
        for u, v, w in topo.graph.edges(data="weight"):
            iu, iv = topo.info[u], topo.info[v]
            same_stub = (
                iu.kind == "stub"
                and iv.kind == "stub"
                and iu.stub_domain == iv.stub_domain
            )
            same_transit_domain = (
                iu.kind == "transit"
                and iv.kind == "transit"
                and iu.transit_domain == iv.transit_domain
            )
            if same_stub or same_transit_domain:
                assert w == INTRADOMAIN_HOP_COST

    def test_interdomain_edges_weight_in_range(self, topo):
        lo, hi = MINI_TS.interdomain_weight_range
        for u, v, w in topo.graph.edges(data="weight"):
            iu, iv = topo.info[u], topo.info[v]
            crosses = (iu.kind != iv.kind) or (
                iu.kind == "stub" and iv.kind == "stub" and iu.stub_domain != iv.stub_domain
            ) or (
                iu.kind == "transit" and iv.kind == "transit"
                and iu.transit_domain != iv.transit_domain
            )
            if crosses:
                assert lo <= w <= hi

    def test_stub_domains_are_cliques_at_default_density(self, topo):
        """With extra_edge_prob_stub_domain=1.0, stub domains are cliques."""
        import collections
        members = collections.defaultdict(list)
        for v in topo.stub_vertices:
            members[topo.info[v].stub_domain].append(int(v))
        for domain, verts in members.items():
            for i, a in enumerate(verts):
                for b in verts[i + 1:]:
                    assert topo.graph.has_edge(a, b)

    def test_stub_sizes_near_mean(self):
        topo = generate_transit_stub(TS5K_LARGE, rng=0)
        import collections
        sizes = collections.Counter(
            topo.info[v].stub_domain for v in topo.stub_vertices
        )
        mean = np.mean(list(sizes.values()))
        assert 45 <= mean <= 75  # 60 +- jitter


class TestTopologyWrapper:
    def test_info_length_checked(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=1)
        with pytest.raises(TopologyError):
            Topology(graph=g, info=[VertexInfo("stub", 0, 0)])

    def test_dense_labels_checked(self):
        g = nx.Graph()
        g.add_edge(0, 2, weight=1)
        with pytest.raises(TopologyError):
            Topology(
                graph=g,
                info=[VertexInfo("stub", 0, 0), VertexInfo("stub", 0, 0)],
            )

    def test_disconnected_rejected(self):
        g = nx.Graph()
        g.add_node(0)
        g.add_node(1)
        with pytest.raises(TopologyError):
            Topology(
                graph=g,
                info=[VertexInfo("stub", 0, 0), VertexInfo("stub", 0, 1)],
            )

    def test_csr_shape_and_symmetry(self, mini_topology):
        csr = mini_topology.csr()
        n = mini_topology.num_vertices
        assert csr.shape == (n, n)
        assert (abs(csr - csr.T)).nnz == 0

    def test_degree_stats(self, mini_topology):
        stats = mini_topology.degree_stats()
        assert stats["min"] >= 1
        assert stats["mean"] >= 2
