"""Units for the incremental substrate: IntervalSet, TreeIndex, refresh_dirty.

``refresh_dirty`` must be behaviourally identical to the full
:meth:`~repro.ktree.tree.KnaryTree.refresh` whenever the dirty spans
cover every region whose ownership changed — asserted here by driving
twin trees through seeded churn and comparing them node by node.
"""

import numpy as np
import pytest

from repro.dht import ChordRing, RingEventLog, crash_node, join_node, leave_node
from repro.exceptions import TreeError, WorkloadError
from repro.idspace import IdentifierSpace, IntervalSet, Region
from repro.ktree import KnaryTree, TreeIndex
from repro.workloads import ParetoLoadModel, apply_load_drift, build_scenario

SPACE = IdentifierSpace(bits=8)


class TestIntervalSet:
    def test_merges_overlapping_pieces(self):
        spans = IntervalSet(SPACE, [(10, 20), (15, 30), (40, 50)])
        assert spans.contains(12)
        assert spans.contains(29)
        assert not spans.contains(30)
        assert not spans.contains(35)
        assert spans.contains(40)

    def test_from_regions_splits_wrapping(self):
        wrapping = Region(SPACE, start=250, length=10)  # 250..255, 0..3
        spans = IntervalSet.from_regions(SPACE, [wrapping])
        assert spans.contains(252)
        assert spans.contains(3)
        assert not spans.contains(4)
        assert not spans.contains(249)

    def test_overlaps_region_handles_wrap(self):
        spans = IntervalSet(SPACE, [(0, 5)])
        wrapping = Region(SPACE, start=250, length=10)
        assert spans.overlaps_region(wrapping)
        assert not spans.overlaps_region(Region(SPACE, start=100, length=10))

    def test_empty_is_falsy(self):
        assert not IntervalSet(SPACE, [])
        assert IntervalSet(SPACE, [(1, 2)])


def _small_ring(seed, num_nodes=40):
    return build_scenario(
        ParetoLoadModel(mu=1e4), num_nodes=num_nodes, vs_per_node=3, rng=seed
    ).ring


class TestTreeIndex:
    def test_slots_stable_and_ancestors_registered(self):
        ring = _small_ring(1)
        tree = KnaryTree(ring, 2)
        index = TreeIndex(tree)
        leaf = tree.ensure_leaf_for_key(123456)
        slot = index.slot(leaf)
        assert index.slot(leaf) == slot
        assert index.node_at(slot) is leaf
        # The whole ancestor chain registered root-down.
        current = leaf
        while current is not None:
            s = index.slot(current)
            assert index.level[s] == current.level
            current = current.parent
        assert index.parent[0] == -1

    def test_foreign_node_rejected(self):
        ring = _small_ring(1)
        index = TreeIndex(KnaryTree(ring, 2))
        other = KnaryTree(ring, 2)
        foreign = other.ensure_leaf_for_key(99)
        with pytest.raises(TreeError):
            index.slot(foreign)

    def test_stamp_paths_counts_fresh_union(self):
        ring = _small_ring(2)
        tree = KnaryTree(ring, 2)
        index = TreeIndex(tree)
        keys = [int(k) for k in np.random.default_rng(0).integers(
            0, ring.space.size, size=25
        )]
        slots = np.asarray(
            [index.slot(tree.ensure_leaf_for_key(k)) for k in keys],
            dtype=np.int64,
        )
        index.new_stamp()
        fresh, count, height = index.stamp_paths(slots)
        # The stamped union equals what a fresh lazy tree materialises
        # for the same keys.
        twin = KnaryTree(ring, 2)
        for k in keys:
            twin.ensure_leaf_for_key(k)
        assert count == twin.node_count
        assert height == twin.height()
        assert fresh.size == count
        # Re-stamping the same paths in the same generation adds nothing.
        again, count2, height2 = index.stamp_paths(slots)
        assert count2 == 0 and height2 == 0 and again.size == 0

    def test_heap_key_orders_like_serial_sweep(self):
        ring = _small_ring(3)
        tree = KnaryTree(ring, 2)
        index = TreeIndex(tree)
        for k in np.random.default_rng(1).integers(0, ring.space.size, size=30):
            index.slot(tree.ensure_leaf_for_key(int(k)))
        serial_order = [
            index.slot(n) for n in tree.nodes_by_level_desc()
        ]
        heap_order = sorted(
            serial_order,
            key=lambda s: (-int(index.level[s]), index.heap_key(s)),
        )
        assert heap_order == serial_order

    def test_drop_and_leaf_flip_invalidate(self):
        ring = _small_ring(4)
        tree = KnaryTree(ring, 2)
        index = TreeIndex(tree)
        leaf = tree.ensure_leaf_for_key(777)
        slot = index.slot(leaf)
        assert index.valid_leaf(slot)
        index.set_leaf(leaf, False)
        assert not index.valid_leaf(slot)
        index.set_leaf(leaf, True)
        index.drop(leaf)
        assert not index.valid_leaf(slot)
        with pytest.raises(TreeError):
            index.node_at(slot)


def _assert_same_tree(a, b):
    """Structural equality of two trees (regions, leafness, hosts)."""
    stack = [(a.root, b.root)]
    while stack:
        na, nb = stack.pop()
        assert na.region == nb.region
        assert na.is_leaf == nb.is_leaf
        assert na.host_vs.vs_id == nb.host_vs.vs_id
        kids_a = list(na.materialized_children())
        kids_b = list(nb.materialized_children())
        assert len(kids_a) == len(kids_b)
        stack.extend(zip(kids_a, kids_b))
    assert a.node_count == b.node_count


class TestRefreshDirty:
    @pytest.mark.parametrize("seed", (0, 5, 9))
    def test_equivalent_to_full_refresh_under_churn(self, seed):
        ring = _small_ring(seed)
        dirty_tree = KnaryTree(ring, 2)
        full_tree = KnaryTree(ring, 2)
        log = RingEventLog(ring)
        gen = np.random.default_rng(seed + 100)
        for _ in range(6):
            for k in gen.integers(0, ring.space.size, size=20):
                dirty_tree.ensure_leaf_for_key(int(k))
                full_tree.ensure_leaf_for_key(int(k))
            for _ in range(int(gen.integers(1, 4))):
                join_node(
                    ring,
                    capacity=10.0,
                    vs_count=int(gen.integers(1, 4)),
                    rng=int(gen.integers(1 << 30)),
                )
            alive = [n for n in ring.alive_nodes if n.virtual_servers]
            if len(alive) > 4:
                victim = alive[int(gen.integers(len(alive)))]
                if int(gen.integers(2)):
                    leave_node(ring, victim)
                else:
                    crash_node(ring, victim)
            delta = log.drain()
            assert not delta.full_reset and delta.dirty is not None
            dirty_tree.refresh_dirty(delta.dirty)
            full_tree.refresh()
            _assert_same_tree(dirty_tree, full_tree)
            dirty_tree.check_invariants()

    def test_empty_spans_do_nothing(self):
        ring = _small_ring(6)
        tree = KnaryTree(ring, 2)
        tree.ensure_leaf_for_key(5)
        before = tree.node_count
        delta = tree.refresh_dirty(IntervalSet(ring.space, []))
        assert not delta.changed
        assert tree.node_count == before

    def test_delta_names_pruned_and_flipped_nodes(self):
        ring = _small_ring(7)
        tree = KnaryTree(ring, 2)
        for k in range(0, ring.space.size, ring.space.size // 64):
            tree.ensure_leaf_for_key(k)
        log = RingEventLog(ring)
        gen = np.random.default_rng(11)
        # Enough departures to force pruning somewhere.
        for _ in range(8):
            alive = [n for n in ring.alive_nodes if n.virtual_servers]
            if len(alive) <= 4:
                break
            leave_node(ring, alive[int(gen.integers(len(alive)))])
        delta = log.drain()
        assert delta.dirty is not None
        refresh = tree.refresh_dirty(delta.dirty)
        assert refresh.changed
        for node in refresh.pruned_nodes:
            assert node is not tree.root
        tree.check_invariants()


class TestRingEventLog:
    def test_records_and_drains(self):
        ring = _small_ring(8)
        log = RingEventLog(ring)
        assert log.drain().empty
        node = join_node(ring, capacity=5.0, vs_count=2, rng=3)
        assert log.pending_events == 2
        delta = log.drain()
        assert len(delta.event_ids) == 2
        assert not delta.full_reset
        assert delta.affected_vs_ids
        assert delta.dirty is not None and bool(delta.dirty)
        # Transfers fire no structural events.
        target = next(n for n in ring.alive_nodes if n is not node)
        ring.transfer_virtual_server(node.virtual_servers[0], target)
        assert log.drain().empty

    def test_bulk_forces_full_reset(self):
        ring = ChordRing(IdentifierSpace(bits=16))
        log = RingEventLog(ring)
        ring.populate(8, 2, capacities=[1.0] * 8, rng=1)
        delta = log.drain()
        assert delta.full_reset

    def test_unresolved_drain_skips_span_derivation(self):
        ring = _small_ring(9)
        log = RingEventLog(ring)
        join_node(ring, capacity=5.0, vs_count=1, rng=4)
        delta = log.drain(resolve=False)
        assert delta.event_ids and delta.dirty is None


class TestDriftHelpers:
    def test_window_selects_wrapped_ids(self):
        ring = _small_ring(10)
        center = 0
        inside = {
            vs.vs_id
            for vs in __import__("repro.workloads.drift", fromlist=["w"]).window_virtual_servers(
                ring, center, 0.25
            )
        }
        size = ring.space.size
        length = size // 4
        start = (center - length // 2) % size
        expected = {
            vs.vs_id
            for vs in ring.virtual_servers
            if (vs.vs_id - start) % size < length
        }
        assert inside == expected

    def test_apply_load_drift_redraws_once(self):
        ring = _small_ring(11)
        before = {vs.vs_id: vs.load for vs in ring.virtual_servers}
        touched = apply_load_drift(
            ring, ParetoLoadModel(mu=1e4), 5, [0, 1], fraction=0.1
        )
        after = {vs.vs_id: vs.load for vs in ring.virtual_servers}
        changed = [k for k in before if before[k] != after[k]]
        assert 0 < len(changed) <= touched

    def test_bad_fraction_rejected(self):
        ring = _small_ring(12)
        with pytest.raises(WorkloadError):
            apply_load_drift(ring, ParetoLoadModel(mu=1.0), 1, [0], fraction=0.0)
