"""Tests for protocol record types."""

import pytest

from repro.core import (
    Assignment,
    LBIRecord,
    ShedCandidate,
    SpareCapacity,
    SystemLBI,
)


class TestLBIRecord:
    def test_merge_sums_and_mins(self):
        a = LBIRecord(load=10.0, capacity=2.0, min_vs_load=3.0)
        b = LBIRecord(load=5.0, capacity=1.0, min_vs_load=1.0)
        m = a.merge(b)
        assert (m.load, m.capacity, m.min_vs_load) == (15.0, 3.0, 1.0)

    def test_merge_commutative(self):
        a = LBIRecord(1.0, 1.0, 0.5)
        b = LBIRecord(2.0, 3.0, 0.2)
        assert a.merge(b) == b.merge(a)

    def test_merge_associative(self):
        a, b, c = LBIRecord(1, 1, 1), LBIRecord(2, 2, 2), LBIRecord(3, 3, 0.5)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(load=-1.0, capacity=1.0, min_vs_load=0.0),
            dict(load=1.0, capacity=0.0, min_vs_load=0.0),
            dict(load=1.0, capacity=1.0, min_vs_load=-0.1),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            LBIRecord(**kwargs)


class TestSystemLBI:
    def test_ratio(self):
        lbi = SystemLBI(total_load=10.0, total_capacity=4.0, min_vs_load=0.1)
        assert lbi.load_per_capacity == 2.5

    def test_from_record(self):
        rec = LBIRecord(load=6.0, capacity=3.0, min_vs_load=0.5)
        lbi = SystemLBI.from_record(rec)
        assert lbi.total_load == 6.0
        assert lbi.total_capacity == 3.0
        assert lbi.min_vs_load == 0.5

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            SystemLBI(total_load=1.0, total_capacity=0.0, min_vs_load=0.0)


class TestVSARecords:
    def test_shed_candidate_fields(self):
        c = ShedCandidate(load=5.0, vs_id=99, node_index=3)
        assert c.load == 5.0

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            ShedCandidate(load=-1.0, vs_id=1, node_index=0)

    def test_spare_capacity_reduction(self):
        s = SpareCapacity(delta=10.0, node_index=4)
        r = s.reduced_by(3.0)
        assert r.delta == 7.0
        assert r.node_index == 4
        assert s.delta == 10.0  # immutable original

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            SpareCapacity(delta=-0.1, node_index=0)

    def test_assignment_carries_level(self):
        a = Assignment(
            candidate=ShedCandidate(1.0, 2, 3), target_node=7, level=5
        )
        assert a.level == 5
        assert a.target_node == 7
