"""Tests for the bottom-up VSA sweep over the tree."""

import pytest

from repro.core import ShedCandidate, SpareCapacity, VSASweep
from repro.dht import ChordRing
from repro.exceptions import BalancerError
from repro.idspace import IdentifierSpace
from repro.ktree import KnaryTree


@pytest.fixture
def ring():
    r = ChordRing(IdentifierSpace(bits=12))
    r.populate(12, 2, [1.0] * 12, rng=6)
    return r


def sweep(ring, threshold=30, strict=False, lmin=0.0, k=2):
    return VSASweep(
        KnaryTree(ring, k),
        threshold=threshold,
        min_vs_load=lmin,
        strict_heaviest_first=strict,
    )


def cand(load, vs_id, node):
    return ShedCandidate(load=load, vs_id=vs_id, node_index=node)


def spare(delta, node):
    return SpareCapacity(delta=delta, node_index=node)


class TestSweepBasics:
    def test_empty_run(self, ring):
        result = sweep(ring).run([])
        assert result.assignments == []
        assert result.entries_published == 0

    def test_single_pair_matches_at_root(self, ring):
        # Far-apart keys, below threshold everywhere: both reach the root.
        result = sweep(ring, threshold=30).run(
            [(0, cand(5.0, 999, 1)), (2048, spare(6.0, 2))]
        )
        assert len(result.assignments) == 1
        assert result.assignments[0].level == 0  # paired at the root

    def test_nearby_keys_pair_below_root_with_low_threshold(self, ring):
        result = sweep(ring, threshold=2).run(
            [(100, cand(5.0, 999, 1)), (101, spare(6.0, 2))]
        )
        assert len(result.assignments) == 1
        assert result.assignments[0].level > 0

    def test_threshold_defers_pairing_upwards(self, ring):
        lo = sweep(ring, threshold=2).run(
            [(100, cand(5.0, 999, 1)), (101, spare(6.0, 2))]
        )
        hi = sweep(ring, threshold=30).run(
            [(100, cand(5.0, 999, 1)), (101, spare(6.0, 2))]
        )
        assert lo.assignments[0].level >= hi.assignments[0].level

    def test_unassigned_heavy_surface_at_root(self, ring):
        result = sweep(ring).run([(0, cand(50.0, 999, 1)), (1, spare(5.0, 2))])
        assert len(result.assignments) == 0
        assert len(result.unassigned_heavy) == 1
        assert len(result.unassigned_light) == 1

    def test_unknown_entry_type_rejected(self, ring):
        with pytest.raises(BalancerError):
            sweep(ring).run([(0, "bogus")])

    def test_negative_threshold_rejected(self, ring):
        with pytest.raises(BalancerError):
            VSASweep(KnaryTree(ring, 2), threshold=-1, min_vs_load=0.0)

    def test_rounds_equal_max_materialised_level(self, ring):
        result = sweep(ring).run([(5, cand(1.0, 999, 1)), (3000, spare(2.0, 2))])
        assert result.rounds >= 1

    def test_pairings_by_level_counter(self, ring):
        result = sweep(ring, threshold=2).run(
            [(100, cand(5.0, 999, 1)), (101, spare(6.0, 2))]
        )
        assert sum(result.pairings_by_level.values()) == 1


class TestConservation:
    def test_entries_partition(self, ring):
        entries = []
        for i in range(10):
            entries.append((i * 400, cand(float(i + 1), 1000 + i, i)))
        for j in range(5):
            entries.append((j * 800 + 7, spare(4.0, 100 + j)))
        result = sweep(ring, threshold=4).run(entries)
        assigned = {a.candidate.vs_id for a in result.assignments}
        unassigned = {c.vs_id for c in result.unassigned_heavy}
        assert assigned | unassigned == {1000 + i for i in range(10)}
        assert not assigned & unassigned

    def test_light_capacity_respected_globally(self, ring):
        entries = [
            (10, cand(3.0, 1000, 0)),
            (20, cand(3.0, 1001, 1)),
            (30, cand(3.0, 1002, 2)),
            (40, spare(7.0, 100)),
        ]
        result = sweep(ring, threshold=1).run(entries)
        total_to_100 = sum(
            a.candidate.load for a in result.assignments if a.target_node == 100
        )
        assert total_to_100 <= 7.0
        assert len(result.assignments) == 2  # 3+3 fits, third does not

    def test_proximal_entries_pair_deeper_than_scattered(self, ring):
        """The locality mechanism: same-key entries meet deep in the tree."""
        near = sweep(ring, threshold=2).run(
            [(500, cand(2.0, 1000, 0)), (500, spare(3.0, 100))]
        )
        far = sweep(ring, threshold=2).run(
            [(0, cand(2.0, 1000, 0)), (2048, spare(3.0, 100))]
        )
        assert near.assignments[0].level > far.assignments[0].level


class TestDegrees:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_all_degrees_pair_feasible_work(self, ring, k):
        entries = [
            (i * 300, cand(2.0, 1000 + i, i)) for i in range(8)
        ] + [
            (i * 300 + 5, spare(2.5, 100 + i)) for i in range(8)
        ]
        result = sweep(ring, threshold=4, k=k).run(entries)
        assert len(result.assignments) == 8
