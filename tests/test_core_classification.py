"""Tests for heavy/light/neutral classification."""

import pytest

from repro.core import NodeClass, SystemLBI, classify_all, classify_node, target_load
from repro.dht import PhysicalNode, VirtualServer
from repro.exceptions import ConfigError


def node_with_load(index, capacity, load):
    n = PhysicalNode(index, capacity)
    n.virtual_servers = [VirtualServer(index * 100, n, load)]
    return n


LBI = SystemLBI(total_load=100.0, total_capacity=50.0, min_vs_load=1.0)
# load_per_capacity = 2.0


class TestTarget:
    def test_target_proportional_to_capacity(self):
        assert target_load(5.0, LBI) == 10.0
        assert target_load(10.0, LBI) == 20.0

    def test_epsilon_relaxes_target(self):
        assert target_load(5.0, LBI, epsilon=0.1) == pytest.approx(11.0)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ConfigError):
            target_load(5.0, LBI, epsilon=-0.1)


class TestClassifyNode:
    def test_heavy(self):
        n = node_with_load(0, capacity=5.0, load=10.5)  # T=10
        assert classify_node(n, LBI) is NodeClass.HEAVY

    def test_light(self):
        n = node_with_load(0, capacity=5.0, load=8.0)  # T-L = 2 >= L_min=1
        assert classify_node(n, LBI) is NodeClass.LIGHT

    def test_neutral(self):
        n = node_with_load(0, capacity=5.0, load=9.5)  # 0 <= T-L=0.5 < 1
        assert classify_node(n, LBI) is NodeClass.NEUTRAL

    def test_exactly_at_target_not_heavy(self):
        n = node_with_load(0, capacity=5.0, load=10.0)
        assert classify_node(n, LBI) is not NodeClass.HEAVY

    def test_spare_exactly_lmin_is_light(self):
        n = node_with_load(0, capacity=5.0, load=9.0)  # T-L = 1 == L_min
        assert classify_node(n, LBI) is NodeClass.LIGHT

    def test_epsilon_moves_boundary(self):
        n = node_with_load(0, capacity=5.0, load=10.5)
        assert classify_node(n, LBI, epsilon=0.1) is NodeClass.NEUTRAL


class TestClassifyAll:
    def test_matches_scalar_classification(self):
        nodes = [
            node_with_load(0, 5.0, 10.5),
            node_with_load(1, 5.0, 8.0),
            node_with_load(2, 5.0, 9.5),
        ]
        result = classify_all(nodes, LBI)
        for n in nodes:
            assert result.classes[n.index] is classify_node(n, LBI)

    def test_lists_partition_population(self):
        nodes = [node_with_load(i, 5.0, float(i)) for i in range(20)]
        result = classify_all(nodes, LBI)
        assert sorted(result.heavy + result.light + result.neutral) == list(range(20))

    def test_counts(self):
        nodes = [
            node_with_load(0, 5.0, 11.0),
            node_with_load(1, 5.0, 1.0),
        ]
        counts = classify_all(nodes, LBI).counts()
        assert counts == {"heavy": 1, "light": 1, "neutral": 0}

    def test_targets_exposed(self):
        nodes = [node_with_load(0, 5.0, 1.0)]
        result = classify_all(nodes, LBI)
        assert result.targets[0] == pytest.approx(10.0)

    def test_dead_nodes_excluded(self):
        nodes = [node_with_load(0, 5.0, 1.0), node_with_load(1, 5.0, 99.0)]
        nodes[1].alive = False
        result = classify_all(nodes, LBI)
        assert 1 not in result.classes

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ConfigError):
            classify_all([node_with_load(0, 1.0, 1.0)], LBI, epsilon=-1)
