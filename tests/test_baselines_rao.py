"""Tests for the Rao et al. baseline schemes."""

import pytest

from repro.baselines import run_many_to_many, run_one_to_many, run_one_to_one
from repro.core.classification import classify_all
from repro.core.lbi import direct_system_lbi
from repro.core.records import NodeClass
from repro.workloads import GaussianLoadModel, build_scenario
from tests.conftest import MINI_TS


@pytest.fixture
def scenario():
    return build_scenario(
        GaussianLoadModel(mu=1e5, sigma=200.0), num_nodes=48, vs_per_node=4, rng=31
    )


class TestOneToOne:
    def test_reduces_heavy_count(self, scenario):
        result = run_one_to_one(scenario.ring, epsilon=0.05, rng=0)
        assert result.scheme == "one-to-one"
        assert result.heavy_after <= result.heavy_before
        assert result.transfers > 0

    def test_load_conserved(self, scenario):
        before = sum(n.load for n in scenario.ring.nodes)
        run_one_to_one(scenario.ring, epsilon=0.05, rng=0)
        assert sum(n.load for n in scenario.ring.nodes) == pytest.approx(before)

    def test_probes_counted(self, scenario):
        result = run_one_to_one(scenario.ring, epsilon=0.05, probes_per_light=2, rng=1)
        assert result.probes > 0

    def test_no_light_overloaded(self, scenario):
        lbi = direct_system_lbi(scenario.ring.nodes)
        cls = classify_all(scenario.ring.alive_nodes, lbi, 0.05)
        run_one_to_one(scenario.ring, epsilon=0.05, rng=2)
        node_by_index = {n.index: n for n in scenario.ring.nodes}
        for idx, c in cls.classes.items():
            if c is NodeClass.LIGHT:
                assert node_by_index[idx].load <= cls.targets[idx] + 1e-6

    def test_ring_invariants(self, scenario):
        run_one_to_one(scenario.ring, epsilon=0.05, rng=3)
        scenario.ring.check_invariants()


class TestOneToMany:
    def test_reduces_heavy_count(self, scenario):
        result = run_one_to_many(scenario.ring, epsilon=0.05, rng=0)
        assert result.heavy_after < result.heavy_before

    def test_load_conserved(self, scenario):
        before = sum(n.load for n in scenario.ring.nodes)
        run_one_to_many(scenario.ring, epsilon=0.05, rng=0)
        assert sum(n.load for n in scenario.ring.nodes) == pytest.approx(before)

    def test_directory_count_validated(self, scenario):
        from repro.exceptions import BalancerError

        with pytest.raises(BalancerError):
            run_one_to_many(scenario.ring, num_directories=0)

    def test_more_directories_less_effective_matching(self, scenario):
        """Splitting lights across many directories weakens matching."""
        few = run_one_to_many(scenario.ring, epsilon=0.05, num_directories=1, rng=5)
        assert few.heavy_after <= few.heavy_before


class TestManyToMany:
    def test_strongest_scheme_clears_heavies(self, scenario):
        result = run_many_to_many(scenario.ring, epsilon=0.05)
        assert result.heavy_after <= result.heavy_before // 5

    def test_load_conserved(self, scenario):
        before = sum(n.load for n in scenario.ring.nodes)
        run_many_to_many(scenario.ring, epsilon=0.05)
        assert sum(n.load for n in scenario.ring.nodes) == pytest.approx(before)

    def test_with_topology_records_distances(self):
        sc = build_scenario(
            GaussianLoadModel(mu=1e5, sigma=200.0),
            num_nodes=24,
            vs_per_node=3,
            topology_params=MINI_TS,
            rng=37,
        )
        result = run_many_to_many(sc.ring, epsilon=0.05, oracle=sc.oracle)
        assert len(result.distances) == result.transfers
        assert 0.0 <= result.moved_load_within(10) <= 1.0

    def test_moved_load_within_empty(self, scenario):
        result = run_many_to_many(scenario.ring, epsilon=0.05)
        # no topology -> no distances recorded
        assert result.moved_load_within(5) == 0.0

    def test_comparable_balance_to_tree_scheme(self):
        """Many-to-many should balance about as well as the paper's VSA
        (it is the same assignment policy executed at a single point)."""
        from repro.core import BalancerConfig, LoadBalancer

        sc1 = build_scenario(
            GaussianLoadModel(mu=1e5, sigma=200.0), num_nodes=48, vs_per_node=4, rng=31
        )
        sc2 = build_scenario(
            GaussianLoadModel(mu=1e5, sigma=200.0), num_nodes=48, vs_per_node=4, rng=31
        )
        mm = run_many_to_many(sc1.ring, epsilon=0.05)
        tree = LoadBalancer(
            sc2.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=1
        ).run_round()
        assert abs(mm.heavy_after - tree.heavy_after) <= max(
            3, tree.heavy_before // 10
        )
