"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_seed_determinism(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_independent(self):
        kids = spawn_rngs(1, 2)
        a = kids[0].integers(0, 10**9, size=10)
        b = kids[1].integers(0, 10**9, size=10)
        assert not np.array_equal(a, b)

    def test_deterministic_given_parent_seed(self):
        a = spawn_rngs(7, 3)[2].integers(0, 10**9, size=4)
        b = spawn_rngs(7, 3)[2].integers(0, 10**9, size=4)
        assert np.array_equal(a, b)

    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
