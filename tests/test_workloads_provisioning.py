"""Tests for capacity-proportional VS provisioning."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.workloads import (
    GaussianLoadModel,
    build_scenario,
    proportional_vs_counts,
)


class TestProportionalCounts:
    def test_mean_matches_request(self):
        caps = np.array([1.0, 10.0, 100.0, 1000.0] * 100)
        counts = proportional_vs_counts(caps, mean_vs_per_node=5)
        # Means agree loosely (floor/cap quantisation biases small draws).
        assert 1 <= np.mean(counts) <= 25

    def test_floor_of_one(self):
        caps = np.array([1.0, 1e6])
        counts = proportional_vs_counts(caps, mean_vs_per_node=5)
        assert counts[0] == 1

    def test_cap_respected(self):
        caps = np.array([1.0] * 99 + [1e6])
        counts = proportional_vs_counts(caps, mean_vs_per_node=5, max_vs_per_node=64)
        # raw count for the big node is ~5 * 1e6 / mean(caps) >> 64
        assert counts[-1] == 64

    def test_monotone_in_capacity(self):
        caps = np.array([1.0, 10.0, 100.0, 1000.0])
        counts = proportional_vs_counts(caps, mean_vs_per_node=4)
        assert counts == sorted(counts)

    def test_invalid_inputs(self):
        with pytest.raises(WorkloadError):
            proportional_vs_counts(np.array([]), 5)
        with pytest.raises(WorkloadError):
            proportional_vs_counts(np.array([0.0, 1.0]), 5)
        with pytest.raises(WorkloadError):
            proportional_vs_counts(np.array([1.0]), 0)


class TestScenarioIntegration:
    def test_proportional_scenario(self):
        sc = build_scenario(
            GaussianLoadModel(mu=1e4, sigma=10.0),
            num_nodes=64,
            vs_per_node=4,
            vs_allocation="proportional",
            rng=5,
        )
        counts = {n.index: len(n.virtual_servers) for n in sc.ring.nodes}
        caps = {n.index: n.capacity for n in sc.ring.nodes}
        # Higher-capacity nodes host at least as many virtual servers.
        top = max(caps, key=caps.get)
        bottom = min(caps, key=caps.get)
        assert counts[top] >= counts[bottom]
        sc.ring.check_invariants()

    def test_unknown_allocation_rejected(self):
        with pytest.raises(WorkloadError):
            build_scenario(
                GaussianLoadModel(mu=1.0, sigma=0.0),
                num_nodes=4,
                vs_allocation="bogus",
                rng=0,
            )

    def test_uniform_unchanged_default(self):
        sc = build_scenario(
            GaussianLoadModel(mu=1e4, sigma=10.0), num_nodes=16, vs_per_node=3, rng=6
        )
        assert all(len(n.virtual_servers) == 3 for n in sc.ring.nodes)


class TestPerNodeCountsOnRing:
    def test_populate_with_sequence(self):
        from repro.dht import ChordRing
        from repro.idspace import IdentifierSpace

        ring = ChordRing(IdentifierSpace(bits=14))
        ring.populate(3, [1, 2, 3], [1.0, 1.0, 1.0], rng=1)
        assert [len(n.virtual_servers) for n in ring.nodes] == [1, 2, 3]
        ring.check_invariants()

    def test_length_mismatch_rejected(self):
        from repro.dht import ChordRing
        from repro.exceptions import DHTError
        from repro.idspace import IdentifierSpace

        ring = ChordRing(IdentifierSpace(bits=14))
        with pytest.raises(DHTError):
            ring.populate(3, [1, 2], [1.0] * 3, rng=1)

    def test_zero_count_rejected(self):
        from repro.dht import ChordRing
        from repro.exceptions import DHTError
        from repro.idspace import IdentifierSpace

        ring = ChordRing(IdentifierSpace(bits=14))
        with pytest.raises(DHTError):
            ring.populate(2, [0, 2], [1.0, 1.0], rng=1)
