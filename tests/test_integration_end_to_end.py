"""End-to-end integration tests: the paper's pipeline at reduced scale.

These check the *shape* of the headline results:

* ~75% heavy before, zero heavy after (figure 4);
* capacity alignment after balancing (figures 5/6);
* proximity-aware concentrates moved load at small distances, ignorant
  does not (figures 7/8);
* rounds scale as O(log_K N) (timing claim);
* the system survives churn between balancing rounds.
"""

import numpy as np
import pytest

from repro.core import BalancerConfig, LoadBalancer
from repro.dht import join_node, leave_node
from repro.ktree import KnaryTree
from repro.topology import TransitStubParams
from repro.workloads import GaussianLoadModel, ParetoLoadModel, build_scenario

SMALL_TS = TransitStubParams(
    transit_domains=3,
    transit_nodes_per_domain=2,
    stub_domains_per_transit=3,
    stub_nodes_mean=14,
    name="small-ts",
)


@pytest.fixture(scope="module")
def proximity_pair():
    """Aware + ignorant reports on identical scenarios."""
    reports = {}
    for mode in ("aware", "ignorant"):
        sc = build_scenario(
            GaussianLoadModel(mu=1e6, sigma=2e3),
            num_nodes=192,
            vs_per_node=5,
            topology_params=SMALL_TS,
            rng=71,
        )
        lb = LoadBalancer(
            sc.ring,
            BalancerConfig(proximity_mode=mode, epsilon=0.05, grid_bits=4),
            topology=sc.topology,
            oracle=sc.oracle,
            rng=3,
        )
        reports[mode] = lb.run_round()
    return reports


class TestFigure4Shape:
    def test_heavy_resolution(self):
        sc = build_scenario(
            GaussianLoadModel(mu=1e6, sigma=2e3), num_nodes=256, vs_per_node=5, rng=61
        )
        lb = LoadBalancer(
            sc.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=2
        )
        report = lb.run_round()
        assert 0.65 <= report.heavy_fraction_before <= 0.85
        assert report.heavy_after == 0
        # After balancing no node exceeds its relaxed target.
        caps = report.capacities
        targets = 1.05 * report.system_lbi.load_per_capacity * caps
        assert np.all(report.loads_after <= targets + 1e-6)


class TestProximityShape:
    def test_aware_beats_ignorant_at_short_range(self, proximity_pair):
        aware = proximity_pair["aware"]
        ignorant = proximity_pair["ignorant"]
        assert aware.moved_load_within(4) > 2 * ignorant.moved_load_within(4)

    def test_aware_mean_distance_smaller(self, proximity_pair):
        aware = proximity_pair["aware"]
        ignorant = proximity_pair["ignorant"]
        assert aware.transfer_distances.mean() < ignorant.transfer_distances.mean()

    def test_both_resolve_heavy_nodes(self, proximity_pair):
        for report in proximity_pair.values():
            assert report.heavy_after <= report.heavy_before // 20

    def test_aware_pairs_deeper_in_tree(self, proximity_pair):
        def weighted_level(report):
            pairs = [(t.level, t.load) for t in report.transfers]
            return sum(l * w for l, w in pairs) / sum(w for _, w in pairs)

        assert weighted_level(proximity_pair["aware"]) > weighted_level(
            proximity_pair["ignorant"]
        )


class TestParetoShape:
    def test_alignment_despite_heavy_tail(self):
        sc = build_scenario(
            ParetoLoadModel(mu=1e6), num_nodes=256, vs_per_node=5, rng=67
        )
        lb = LoadBalancer(
            sc.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=2
        )
        report = lb.run_round()
        # Nearly all heavy nodes resolved (outliers may be unmovable).
        assert report.heavy_after <= max(3, report.heavy_before // 30)


class TestChurnIntegration:
    def test_balance_churn_balance(self):
        sc = build_scenario(
            GaussianLoadModel(mu=1e5, sigma=500.0), num_nodes=64, vs_per_node=4, rng=73
        )
        lb = LoadBalancer(
            sc.ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=4
        )
        first = lb.run_round()
        # At 64 nodes the capacity draw may lack the rare huge-capacity
        # absorbers, so a few outliers can stay heavy.
        assert first.heavy_after <= first.heavy_before // 4
        # Churn: 6 joins, 4 leaves.
        for i in range(6):
            join_node(sc.ring, capacity=10.0, vs_count=4, rng=100 + i)
        for node in sc.ring.alive_nodes[:4]:
            leave_node(sc.ring, node)
        sc.ring.check_invariants()
        # Rebalance the perturbed system: heavy count must drop again.
        second = lb.run_round()
        assert second.heavy_after <= second.heavy_before
        sc.ring.check_invariants()

    def test_tree_rebuild_after_heavy_churn(self):
        sc = build_scenario(
            GaussianLoadModel(mu=1e5, sigma=500.0), num_nodes=32, vs_per_node=3, rng=79
        )
        tree = KnaryTree(sc.ring, 2)
        tree.build_full()
        for i in range(8):
            join_node(sc.ring, capacity=1.0, vs_count=3, rng=200 + i)
        for _ in range(64):
            if sum(tree.refresh().values()) == 0:
                break
        tree.check_invariants()


class TestCrossDegreeConsistency:
    @pytest.mark.parametrize("k", [2, 8])
    def test_balance_quality_independent_of_degree(self, k):
        """Paper: 'we observed similar results on the degree of 8'."""
        sc = build_scenario(
            GaussianLoadModel(mu=1e6, sigma=2e3), num_nodes=256, vs_per_node=5, rng=81
        )
        lb = LoadBalancer(
            sc.ring,
            BalancerConfig(proximity_mode="ignorant", epsilon=0.05, tree_degree=k),
            rng=5,
        )
        report = lb.run_round()
        assert report.heavy_after == 0
