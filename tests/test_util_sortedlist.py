"""Tests for the sorted-list container behind rendezvous pairing."""

import pytest
from hypothesis import given, strategies as st

from repro.util.sortedlist import SortedKeyList, insort_unique


def skl(values):
    return SortedKeyList(values, key=lambda x: x)


class TestBasics:
    def test_empty(self):
        s = skl([])
        assert len(s) == 0
        assert not s

    def test_initial_sorting(self):
        assert skl([3, 1, 2]).to_list() == [1, 2, 3]

    def test_add_keeps_order(self):
        s = skl([1, 5])
        s.add(3)
        assert s.to_list() == [1, 3, 5]

    def test_getitem(self):
        assert skl([2, 1])[0] == 1

    def test_iter(self):
        assert list(skl([2, 1, 3])) == [1, 2, 3]

    def test_keys(self):
        assert skl([3, 1]).keys() == [1, 3]


class TestPops:
    def test_pop_max(self):
        s = skl([1, 9, 5])
        assert s.pop_max() == 9
        assert s.to_list() == [1, 5]

    def test_pop_min(self):
        s = skl([1, 9, 5])
        assert s.pop_min() == 1

    def test_pop_at(self):
        s = skl([1, 5, 9])
        assert s.pop_at(1) == 5
        assert s.to_list() == [1, 9]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            skl([]).pop_max()
        with pytest.raises(IndexError):
            skl([]).pop_min()

    def test_peeks(self):
        s = skl([4, 2])
        assert s.peek_min() == 2
        assert s.peek_max() == 4
        assert len(s) == 2  # peeks do not remove

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            skl([]).peek_max()


class TestBestFit:
    def test_first_at_least_exact(self):
        s = skl([1, 3, 7])
        assert s.index_first_at_least(3) == 1

    def test_first_at_least_between(self):
        s = skl([1, 3, 7])
        assert s.index_first_at_least(4) == 2

    def test_first_at_least_none(self):
        s = skl([1, 3])
        assert s.index_first_at_least(10) is None

    def test_first_at_least_smallest(self):
        s = skl([1, 3])
        assert s.index_first_at_least(0) == 0

    def test_ties_keep_insertion_order(self):
        s = SortedKeyList([("a", 1), ("b", 1)], key=lambda t: t[1])
        s.add(("c", 1))
        assert [x[0] for x in s] == ["a", "b", "c"]


class TestKeyedObjects:
    def test_key_function(self):
        items = [{"w": 5}, {"w": 1}]
        s = SortedKeyList(items, key=lambda d: d["w"])
        assert s.pop_min() == {"w": 1}


@given(st.lists(st.floats(0, 1e6, allow_nan=False), max_size=50))
def test_always_sorted_after_adds(values):
    s = skl([])
    for v in values:
        s.add(v)
    lst = s.to_list()
    assert lst == sorted(lst)


@given(
    st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=30),
    st.floats(0, 100, allow_nan=False),
)
def test_first_at_least_matches_linear_scan(values, threshold):
    s = skl(values)
    idx = s.index_first_at_least(threshold)
    feasible = [v for v in values if v >= threshold]
    if not feasible:
        assert idx is None
    else:
        assert s[idx] == min(feasible)


class TestInsortUnique:
    def test_inserts(self):
        vals = [1, 3]
        assert insort_unique(vals, 2)
        assert vals == [1, 2, 3]

    def test_skips_duplicate(self):
        vals = [1, 2, 3]
        assert not insort_unique(vals, 2)
        assert vals == [1, 2, 3]
