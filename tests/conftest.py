"""Shared fixtures: small deterministic rings, topologies, scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dht import ChordRing
from repro.idspace import IdentifierSpace
from repro.topology import (
    DistanceOracle,
    TransitStubParams,
    generate_transit_stub,
)
from repro.workloads import GaussianLoadModel, build_scenario


@pytest.fixture
def space16() -> IdentifierSpace:
    return IdentifierSpace(bits=16)


@pytest.fixture
def space8() -> IdentifierSpace:
    return IdentifierSpace(bits=8)


@pytest.fixture
def small_ring(space16) -> ChordRing:
    """20 nodes x 3 virtual servers on a 16-bit ring, equal capacities."""
    ring = ChordRing(space16)
    ring.populate(20, 3, [1.0] * 20, rng=7)
    return ring


@pytest.fixture
def loaded_ring(space16) -> ChordRing:
    """Ring with deterministic loads proportional to region fractions."""
    ring = ChordRing(space16)
    ring.populate(16, 4, [1.0, 2.0, 4.0, 8.0] * 4, rng=3)
    fractions = ring.fractions()
    for vs, f in zip(ring.virtual_servers, fractions):
        vs.load = 1000.0 * f
    return ring


MINI_TS = TransitStubParams(
    transit_domains=2,
    transit_nodes_per_domain=2,
    stub_domains_per_transit=2,
    stub_nodes_mean=6,
    name="mini-ts",
)


@pytest.fixture
def mini_topology():
    return generate_transit_stub(MINI_TS, rng=5)


@pytest.fixture
def mini_oracle(mini_topology):
    return DistanceOracle(mini_topology)


@pytest.fixture
def mini_scenario():
    """Small full scenario with topology, for integration tests."""
    return build_scenario(
        GaussianLoadModel(mu=1e5, sigma=500.0),
        num_nodes=24,
        vs_per_node=3,
        topology_params=MINI_TS,
        rng=11,
    )
