"""Tests for churn simulation and tree self-repair."""

import pytest

from repro.dht import ChordRing
from repro.exceptions import SimulationError
from repro.idspace import IdentifierSpace
from repro.ktree import KnaryTree
from repro.sim import ChurnProcess
from repro.sim.runner import measure_phase_rounds, sweep_phase_rounds


@pytest.fixture
def system():
    ring = ChordRing(IdentifierSpace(bits=14))
    ring.populate(12, 3, [1.0] * 12, rng=2)
    for vs in ring.virtual_servers:
        vs.load = 1.0
    tree = KnaryTree(ring, 2)
    tree.build_full()
    return ring, tree


class TestChurnProcess:
    def test_runs_and_repairs(self, system):
        ring, tree = system
        process = ChurnProcess(ring, tree, rng=3)
        trace = process.run(num_events=10)
        assert trace.events == 10
        tree.check_invariants()
        ring.check_invariants()

    def test_repair_rounds_bounded(self, system):
        """Self-repair claim: stabilisation within O(log N) refresh passes."""
        ring, tree = system
        process = ChurnProcess(ring, tree, rng=4)
        trace = process.run(num_events=15)
        assert trace.max_refreshes <= tree.height() + 3

    def test_tree_still_covers_all_vs_after_churn(self, system):
        ring, tree = system
        ChurnProcess(ring, tree, rng=5).run(num_events=12)
        fresh = KnaryTree(ring, 2)
        fresh.build_full()
        hosting = {leaf.host_vs.vs_id for leaf in fresh.leaves()}
        assert hosting == {vs.vs_id for vs in ring.virtual_servers}

    def test_join_only_churn(self, system):
        ring, tree = system
        n_before = len(ring.alive_nodes)
        process = ChurnProcess(ring, tree, join_rate=1, leave_rate=0, crash_rate=0, rng=6)
        trace = process.run(num_events=5)
        assert len(ring.alive_nodes) == n_before + 5
        assert trace.stats.joins == 5

    def test_crash_only_churn(self, system):
        ring, tree = system
        n_before = len(ring.alive_nodes)
        process = ChurnProcess(ring, tree, join_rate=0, leave_rate=0, crash_rate=1, rng=7)
        process.run(num_events=4)
        assert len(ring.alive_nodes) == n_before - 4

    def test_load_conserved_under_churn(self, system):
        ring, tree = system
        before = sum(vs.load for vs in ring.virtual_servers)
        ChurnProcess(ring, tree, join_rate=0, leave_rate=1, crash_rate=1, rng=8).run(5)
        assert sum(vs.load for vs in ring.virtual_servers) == pytest.approx(before)

    def test_invalid_rates(self, system):
        ring, tree = system
        with pytest.raises(SimulationError):
            ChurnProcess(ring, tree, join_rate=-1)
        with pytest.raises(SimulationError):
            ChurnProcess(ring, tree, join_rate=0, leave_rate=0, crash_rate=0)


class TestPhaseRounds:
    def test_measure_single(self):
        t = measure_phase_rounds(64, tree_degree=2, rng=0)
        assert t.num_nodes == 64
        assert t.num_virtual_servers == 320
        assert t.aggregation_rounds > 0
        assert t.vsa_rounds > 0
        assert 0.5 < t.height_per_log < 5.0

    def test_sweep_shapes(self):
        out = sweep_phase_rounds([32, 64], tree_degrees=[2, 8], rng=0)
        assert len(out) == 4

    def test_rounds_grow_slowly_with_size(self):
        """Doubling N must not double the rounds (logarithmic growth)."""
        small = measure_phase_rounds(64, rng=1)
        large = measure_phase_rounds(256, rng=1)
        assert large.vsa_rounds < 2 * small.vsa_rounds

    def test_k8_fewer_rounds_than_k2(self):
        k2 = measure_phase_rounds(128, tree_degree=2, rng=2)
        k8 = measure_phase_rounds(128, tree_degree=8, rng=2)
        assert k8.vsa_rounds < k2.vsa_rounds
