"""Tests for the runtime load-conservation guards.

Three layers, inside-out: the scalar check
(:func:`repro.core.records.assert_loads_conserved`), the ring-total
guard inside :func:`repro.core.vst.execute_transfers`, and the
round-level :func:`repro.core.report.check_conservation` wired into
:meth:`repro.app.system.P2PSystem.rebalance`.
"""

import numpy as np
import pytest

from repro.app import P2PSystem, SystemConfig
from repro.core import Assignment, ShedCandidate, execute_transfers
from repro.core.records import CONSERVATION_RTOL, assert_loads_conserved
from repro.core.report import check_conservation
from repro.dht import ChordRing
from repro.dht.node import PhysicalNode
from repro.exceptions import BalancerError, ConservationError
from repro.idspace import IdentifierSpace


@pytest.fixture
def ring():
    r = ChordRing(IdentifierSpace(bits=12))
    r.populate(6, 2, [1.0] * 6, rng=8)
    for i, vs in enumerate(r.virtual_servers):
        vs.load = float(i + 1)
    return r


@pytest.fixture
def system():
    sys_ = P2PSystem(SystemConfig(initial_nodes=12, vs_per_node=3, seed=5))
    for i in range(60):
        sys_.put(f"obj-{i}", load=float(i % 9 + 1))
    return sys_


def assignment_for(ring, vs, target_node):
    return Assignment(
        candidate=ShedCandidate(load=vs.load, vs_id=vs.vs_id, node_index=vs.owner.index),
        target_node=target_node,
        level=0,
    )


class TestScalarGuard:
    def test_passes_on_equal_totals(self):
        assert_loads_conserved(12.5, 12.5, context="test")

    def test_tolerates_rounding_drift(self):
        total = 1e6
        assert_loads_conserved(total, total * (1 + 1e-12), context="test")

    def test_zero_totals_compare_clean(self):
        assert_loads_conserved(0.0, 0.0, context="test")

    def test_raises_on_real_drift(self):
        with pytest.raises(ConservationError, match="load not conserved"):
            assert_loads_conserved(100.0, 101.0, context="test")

    def test_context_and_drift_in_message(self):
        with pytest.raises(ConservationError, match=r"vst\.phase.*\+1"):
            assert_loads_conserved(10.0, 11.0, context="vst.phase")

    def test_rtol_widens_the_window(self):
        with pytest.raises(ConservationError):
            assert_loads_conserved(100.0, 100.001, context="test")
        assert_loads_conserved(100.0, 100.001, context="test", rtol=1e-3)

    def test_conservation_error_is_balancer_error(self):
        assert issubclass(ConservationError, BalancerError)


class TestVstGuard:
    def test_clean_transfer_passes(self, ring):
        vs = ring.virtual_servers[0]
        target = ring.nodes[(vs.owner.index + 1) % 6]
        before = sum(n.load for n in ring.nodes)
        execute_transfers(ring, [assignment_for(ring, vs, target.index)])
        assert sum(n.load for n in ring.nodes) == pytest.approx(before)

    def test_leaking_transfer_primitive_is_caught(self, ring, monkeypatch):
        # Sabotage the commit-side hosting primitive so it inflates the
        # moved load; the guard at the end of execute_transfers must
        # notice.  (Transfers run through TransferTransaction, whose
        # commit step attaches the in-flight server via ``host``.)
        original = PhysicalNode.host

        def leaky(node, vs):
            original(node, vs)
            vs.load += 1.0

        monkeypatch.setattr(PhysicalNode, "host", leaky)
        vs = ring.virtual_servers[0]
        target = ring.nodes[(vs.owner.index + 1) % 6]
        with pytest.raises(ConservationError, match="vst.execute_transfers"):
            execute_transfers(ring, [assignment_for(ring, vs, target.index)])


class TestRoundGuard:
    def _report(self, system):
        report = system.rebalance()
        assert report is not None
        return report

    def test_real_round_conserves(self, system):
        report = self._report(system)
        check_conservation(report)  # must not raise

    def test_doctored_report_rejected(self, system):
        report = self._report(system)
        report.loads_after = report.loads_after + 1.0
        with pytest.raises(ConservationError, match="balance round"):
            check_conservation(report)

    def test_rtol_parameter_respected(self, system):
        report = self._report(system)
        total = float(np.sum(report.loads_before))
        drift = total * 1e-6
        report.loads_after = report.loads_after + drift / len(report.loads_after)
        with pytest.raises(ConservationError):
            check_conservation(report)
        check_conservation(report, rtol=1e-3)

    def test_default_rtol_is_tight(self):
        assert CONSERVATION_RTOL <= 1e-8
