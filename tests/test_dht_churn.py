"""Tests for join/leave/crash churn primitives."""

import pytest

from repro.dht import ChordRing, ChurnStats, crash_node, join_node, leave_node
from repro.exceptions import DHTError
from repro.idspace import IdentifierSpace


@pytest.fixture
def ring():
    r = ChordRing(IdentifierSpace(bits=16))
    r.populate(8, 3, [1.0] * 8, rng=5)
    for vs in r.virtual_servers:
        vs.load = 10.0
    return r


class TestJoin:
    def test_adds_node_and_vs(self, ring):
        before_vs = ring.num_virtual_servers
        node = join_node(ring, capacity=2.0, vs_count=3, rng=1)
        assert node in ring.nodes
        assert ring.num_virtual_servers == before_vs + 3
        assert len(node.virtual_servers) == 3

    def test_load_conserved(self, ring):
        total_before = sum(vs.load for vs in ring.virtual_servers)
        join_node(ring, capacity=1.0, vs_count=2, rng=2)
        total_after = sum(vs.load for vs in ring.virtual_servers)
        assert total_after == pytest.approx(total_before)

    def test_new_vs_takes_proportional_share(self, ring):
        node = join_node(ring, capacity=1.0, vs_count=1, rng=3)
        vs = node.virtual_servers[0]
        # The new VS owns part of what was the successor's region; it must
        # have received a proportional, positive share of a loaded region.
        assert vs.load > 0

    def test_stats_recorded(self, ring):
        stats = ChurnStats()
        join_node(ring, capacity=1.0, vs_count=2, rng=4, stats=stats)
        assert stats.joins == 1
        assert stats.vs_created == 2

    def test_invalid_vs_count(self, ring):
        with pytest.raises(DHTError):
            join_node(ring, capacity=1.0, vs_count=0, rng=0)

    def test_invariants_after_join(self, ring):
        join_node(ring, capacity=1.0, vs_count=4, rng=6)
        ring.check_invariants()


class TestLeaveCrash:
    def test_leave_removes_all_vs(self, ring):
        victim = ring.nodes[2]
        leave_node(ring, victim)
        assert not victim.alive
        assert not victim.virtual_servers
        assert all(vs.owner is not victim for vs in ring.virtual_servers)

    def test_leave_hands_load_to_successors(self, ring):
        total_before = sum(vs.load for vs in ring.virtual_servers)
        leave_node(ring, ring.nodes[0])
        total_after = sum(vs.load for vs in ring.virtual_servers)
        assert total_after == pytest.approx(total_before)

    def test_crash_also_conserves_load(self, ring):
        total_before = sum(vs.load for vs in ring.virtual_servers)
        stats = ChurnStats()
        crash_node(ring, ring.nodes[3], stats=stats)
        assert stats.crashes == 1
        assert sum(vs.load for vs in ring.virtual_servers) == pytest.approx(total_before)

    def test_double_departure_rejected(self, ring):
        leave_node(ring, ring.nodes[1])
        with pytest.raises(DHTError):
            leave_node(ring, ring.nodes[1])

    def test_cannot_remove_last_node(self):
        ring = ChordRing(IdentifierSpace(bits=8))
        ring.populate(1, 2, [1.0], rng=0)
        with pytest.raises(DHTError):
            leave_node(ring, ring.nodes[0])

    def test_alive_nodes_shrinks(self, ring):
        crash_node(ring, ring.nodes[4])
        assert len(ring.alive_nodes) == 7

    def test_invariants_after_churn_sequence(self, ring):
        join_node(ring, 1.0, 2, rng=8)
        leave_node(ring, ring.nodes[0])
        join_node(ring, 2.0, 3, rng=9)
        crash_node(ring, ring.nodes[5])
        ring.check_invariants()
