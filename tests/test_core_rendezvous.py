"""Tests for the rendezvous pairing loop (Section 3.4 semantics)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ShedCandidate, SpareCapacity, pair_rendezvous


def heavy(load, vs_id=0, node=0):
    return ShedCandidate(load=load, vs_id=vs_id, node_index=node)


def light(delta, node=100):
    return SpareCapacity(delta=delta, node_index=node)


class TestPairingRules:
    def test_heaviest_first(self):
        out = pair_rendezvous(
            [heavy(1.0, 1), heavy(9.0, 2)],
            [light(10.0, 50)],
            min_vs_load=0.5,
            level=0,
        )
        assert out.assignments[0].candidate.vs_id == 2

    def test_best_fit_light_choice(self):
        """Light node minimising delta subject to delta >= load."""
        out = pair_rendezvous(
            [heavy(5.0, 1)],
            [light(100.0, 1), light(6.0, 2), light(4.0, 3)],
            min_vs_load=1.0,
            level=0,
        )
        assert out.assignments[0].target_node == 2

    def test_remainder_reinserted_when_at_least_lmin(self):
        out = pair_rendezvous(
            [heavy(5.0, 1), heavy(3.0, 2)],
            [light(9.0, 50)],
            min_vs_load=2.0,
            level=0,
        )
        # After taking 5, remainder 4 >= L_min=2 -> takes the 3 as well.
        assert len(out.assignments) == 2
        assert all(a.target_node == 50 for a in out.assignments)

    def test_remainder_dropped_when_below_lmin(self):
        out = pair_rendezvous(
            [heavy(5.0, 1), heavy(3.0, 2)],
            [light(9.0, 50)],
            min_vs_load=5.0,
            level=0,
        )
        # Remainder 4 < L_min=5: the light node leaves the list.
        assert len(out.assignments) == 1
        assert len(out.leftover_heavy) == 1

    def test_zero_remainder_not_reinserted(self):
        out = pair_rendezvous(
            [heavy(5.0, 1), heavy(5.0, 2)],
            [light(5.0, 50)],
            min_vs_load=0.0,
            level=0,
        )
        assert len(out.assignments) == 1

    def test_unmatchable_heaviest_skipped_by_default(self):
        out = pair_rendezvous(
            [heavy(100.0, 1), heavy(2.0, 2)],
            [light(5.0, 50)],
            min_vs_load=1.0,
            level=0,
        )
        assert len(out.assignments) == 1
        assert out.assignments[0].candidate.vs_id == 2
        assert out.leftover_heavy[0].vs_id == 1

    def test_strict_mode_stops_at_first_unmatchable(self):
        out = pair_rendezvous(
            [heavy(100.0, 1), heavy(2.0, 2)],
            [light(5.0, 50)],
            min_vs_load=1.0,
            level=0,
            strict_heaviest_first=True,
        )
        assert len(out.assignments) == 0
        assert len(out.leftover_heavy) == 2
        assert len(out.leftover_light) == 1

    def test_level_recorded(self):
        out = pair_rendezvous([heavy(1.0)], [light(2.0)], 0.0, level=7)
        assert out.assignments[0].level == 7

    def test_empty_lists(self):
        out = pair_rendezvous([], [], 0.0, level=0)
        assert not out.assignments
        assert not out.leftover_heavy
        assert not out.leftover_light

    def test_only_heavy(self):
        out = pair_rendezvous([heavy(1.0)], [], 0.0, level=0)
        assert len(out.leftover_heavy) == 1

    def test_only_light(self):
        out = pair_rendezvous([], [light(1.0)], 0.0, level=0)
        assert len(out.leftover_light) == 1

    def test_paired_load_property(self):
        out = pair_rendezvous(
            [heavy(3.0, 1), heavy(2.0, 2)], [light(10.0)], 0.0, level=0
        )
        assert out.paired_load == pytest.approx(5.0)


class TestConservation:
    @given(
        heavy_loads=st.lists(st.floats(0.1, 50.0), max_size=15),
        light_deltas=st.lists(st.floats(0.1, 80.0), max_size=15),
        lmin=st.floats(0.0, 5.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_entries_conserved(self, heavy_loads, light_deltas, lmin):
        hs = [heavy(l, vs_id=i, node=i) for i, l in enumerate(heavy_loads)]
        ls = [light(d, node=100 + i) for i, d in enumerate(light_deltas)]
        out = pair_rendezvous(hs, ls, lmin, level=0)
        # Every heavy entry is either assigned or left over, exactly once.
        assigned_ids = [a.candidate.vs_id for a in out.assignments]
        leftover_ids = [c.vs_id for c in out.leftover_heavy]
        assert sorted(assigned_ids + leftover_ids) == list(range(len(hs)))

    @given(
        heavy_loads=st.lists(st.floats(0.1, 50.0), max_size=12),
        light_deltas=st.lists(st.floats(0.1, 80.0), max_size=12),
    )
    @settings(max_examples=120, deadline=None)
    def test_no_light_node_over_committed(self, heavy_loads, light_deltas):
        """Sum of loads assigned to a light node never exceeds its delta."""
        hs = [heavy(l, vs_id=i, node=i) for i, l in enumerate(heavy_loads)]
        ls = [light(d, node=100 + i) for i, d in enumerate(light_deltas)]
        out = pair_rendezvous(hs, ls, 0.0, level=0)
        committed = {}
        for a in out.assignments:
            committed[a.target_node] = committed.get(a.target_node, 0.0) + a.candidate.load
        deltas = {100 + i: d for i, d in enumerate(light_deltas)}
        for node, total in committed.items():
            assert total <= deltas[node] + 1e-9

    @given(
        heavy_loads=st.lists(st.floats(0.1, 20.0), min_size=1, max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_ample_capacity_pairs_everything(self, heavy_loads):
        hs = [heavy(l, vs_id=i, node=i) for i, l in enumerate(heavy_loads)]
        ls = [light(sum(heavy_loads) + 1.0, node=200)]
        out = pair_rendezvous(hs, ls, 0.0, level=0)
        assert len(out.assignments) == len(hs)
