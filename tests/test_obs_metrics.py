"""Unit tests for :mod:`repro.obs.metrics`."""

from __future__ import annotations

import json
import math

import pytest

from repro.exceptions import ReproError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ReproError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("height")
        g.set(17)
        g.inc(3)
        g.dec(2)
        assert g.value == 18.0


class TestHistogram:
    def test_incremental_stats(self):
        h = Histogram("d")
        for v in (1.0, 2.0, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 16.0
        assert h.mean == 4.0
        assert h.minimum == 1.0
        assert h.maximum == 10.0

    def test_quantiles(self):
        h = Histogram("d")
        for v in range(101):
            h.observe(float(v))
        assert h.quantile(0.5) == 50.0
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) == 100.0

    def test_quantile_bounds_checked(self):
        with pytest.raises(ReproError):
            Histogram("d").quantile(1.5)

    def test_empty_summary_is_finite(self):
        s = Histogram("d").summary()
        assert s["count"] == 0
        assert s["min"] == 0.0 and s["max"] == 0.0
        assert "p50" not in s

    def test_summary_has_quantile_keys(self):
        h = Histogram("d")
        for v in range(10):
            h.observe(float(v))
        s = h.summary()
        assert set(s) >= {"count", "sum", "mean", "min", "max", "p50", "p95"}
        assert s["p50"] == pytest.approx(4.5)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert len(reg) == 2

    def test_name_collision_across_kinds_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ReproError):
            reg.gauge("x")
        with pytest.raises(ReproError):
            reg.histogram("x")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("vst.transfers").inc(3)
        reg.gauge("ktree.height").set(12)
        reg.histogram("vst.distance").observe(2.0)
        snap = reg.snapshot()
        assert snap["counters"]["vst.transfers"] == 3.0
        assert snap["gauges"]["ktree.height"] == 12.0
        assert snap["histograms"]["vst.distance"]["count"] == 1

    def test_write_json_roundtrips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        out = reg.write_json(tmp_path / "metrics.json")
        data = json.loads(out.read_text())
        assert data["counters"]["c"] == 1.0

    def test_format_text_mentions_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(1.0)
        text = reg.format_text()
        for name in ("c", "g", "h"):
            assert name in text

    def test_snapshot_of_empty_registry(self):
        snap = MetricsRegistry().snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
