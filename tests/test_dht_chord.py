"""Tests for the Chord ring: ownership, regions, transfers, invariants."""

import numpy as np
import pytest

from repro.dht import ChordRing, PhysicalNode, VirtualServer
from repro.dht.chord import total_capacity, total_load
from repro.exceptions import DHTError, DuplicateIdError, EmptyRingError
from repro.idspace import IdentifierSpace, Region


def tiny_ring(ids, space_bits=8):
    """Ring with explicit VS ids, one node per VS."""
    ring = ChordRing(IdentifierSpace(bits=space_bits))
    for i, vs_id in enumerate(ids):
        node = PhysicalNode(index=i, capacity=1.0)
        ring.nodes.append(node)
        ring.add_virtual_server(node, vs_id)
    return ring


class TestPopulate:
    def test_counts(self, small_ring):
        assert len(small_ring.nodes) == 20
        assert small_ring.num_virtual_servers == 60

    def test_capacities_applied(self, space16):
        ring = ChordRing(space16)
        caps = [float(i + 1) for i in range(5)]
        ring.populate(5, 2, caps, rng=0)
        assert [n.capacity for n in ring.nodes] == caps

    def test_sites_applied(self, space16):
        ring = ChordRing(space16)
        ring.populate(3, 1, [1.0] * 3, rng=0, sites=[7, 8, 9])
        assert [n.site for n in ring.nodes] == [7, 8, 9]

    def test_ids_unique(self, small_ring):
        ids = [vs.vs_id for vs in small_ring.virtual_servers]
        assert len(set(ids)) == len(ids)

    def test_deterministic_by_seed(self, space16):
        r1, r2 = ChordRing(space16), ChordRing(space16)
        r1.populate(10, 2, [1.0] * 10, rng=9)
        r2.populate(10, 2, [1.0] * 10, rng=9)
        assert [v.vs_id for v in r1.virtual_servers] == [
            v.vs_id for v in r2.virtual_servers
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_nodes=0, vs_per_node=1, capacities=[]),
            dict(num_nodes=1, vs_per_node=0, capacities=[1.0]),
            dict(num_nodes=2, vs_per_node=1, capacities=[1.0]),
        ],
    )
    def test_invalid_populate(self, space16, kwargs):
        with pytest.raises(DHTError):
            ChordRing(space16).populate(rng=0, **kwargs)

    def test_too_many_vs_for_space(self):
        ring = ChordRing(IdentifierSpace(bits=3))
        with pytest.raises(DHTError):
            ring.populate(3, 3, [1.0] * 3, rng=0)

    def test_mismatched_sites(self, space16):
        with pytest.raises(DHTError):
            ChordRing(space16).populate(2, 1, [1.0, 1.0], rng=0, sites=[1])


class TestOwnership:
    def test_successor_exact_hit(self):
        ring = tiny_ring([10, 100, 200])
        assert ring.successor(100).vs_id == 100

    def test_successor_between(self):
        ring = tiny_ring([10, 100, 200])
        assert ring.successor(50).vs_id == 100

    def test_successor_wraps(self):
        ring = tiny_ring([10, 100, 200])
        assert ring.successor(201).vs_id == 10
        assert ring.successor(255).vs_id == 10

    def test_successors_vectorised(self):
        ring = tiny_ring([10, 100, 200])
        got = [vs.vs_id for vs in ring.successors(np.array([5, 150, 250]))]
        assert got == [10, 200, 10]

    def test_empty_ring_raises(self, space16):
        with pytest.raises(EmptyRingError):
            ChordRing(space16).successor(0)

    def test_vs_lookup(self):
        ring = tiny_ring([5])
        assert ring.vs(5).vs_id == 5
        with pytest.raises(DHTError):
            ring.vs(6)

    def test_predecessor(self):
        ring = tiny_ring([10, 100, 200])
        assert ring.predecessor_id(100) == 10
        assert ring.predecessor_id(10) == 200  # wraps


class TestRegions:
    def test_region_between(self):
        ring = tiny_ring([10, 100])
        r = ring.region_of(100)
        assert (r.start, r.length) == (11, 90)

    def test_region_wrapping(self):
        ring = tiny_ring([10, 100])
        r = ring.region_of(10)
        assert (r.start, r.length) == (101, 166)

    def test_region_single_vs_is_full_ring(self):
        ring = tiny_ring([42])
        assert ring.region_of(42).is_full_ring

    def test_region_contains_own_id(self):
        ring = tiny_ring([10, 100, 200])
        for vs in ring.virtual_servers:
            assert ring.region_of(vs).contains(vs.vs_id)

    def test_regions_tile_ring(self, small_ring):
        total = sum(small_ring.region_of(v).length for v in small_ring.virtual_servers)
        assert total == small_ring.space.size

    def test_fractions_sum_to_one(self, small_ring):
        assert small_ring.fractions().sum() == pytest.approx(1.0)

    def test_fractions_order_matches_virtual_servers(self):
        ring = tiny_ring([10, 100])
        # ring order: [10, 100]; region of 10 wraps (166 ids), of 100 is 90.
        fr = ring.fractions()
        assert fr[0] == pytest.approx(166 / 256)
        assert fr[1] == pytest.approx(90 / 256)


class TestMutation:
    def test_add_virtual_server(self):
        ring = tiny_ring([10])
        vs = ring.add_virtual_server(ring.nodes[0], 99, load=5.0)
        assert ring.successor(50).vs_id == 99
        assert vs.load == 5.0

    def test_duplicate_id_rejected(self):
        ring = tiny_ring([10])
        with pytest.raises(DuplicateIdError):
            ring.add_virtual_server(ring.nodes[0], 10)

    def test_remove_virtual_server(self):
        ring = tiny_ring([10, 100])
        ring.remove_virtual_server(100)
        assert ring.num_virtual_servers == 1
        assert ring.successor(50).vs_id == 10

    def test_remove_reassigns_region_to_successor(self):
        ring = tiny_ring([10, 100, 200])
        ring.remove_virtual_server(100)
        # 200 now owns (10, 200]
        assert ring.region_of(200).length == 190

    def test_transfer_keeps_ring_structure(self):
        ring = tiny_ring([10, 100])
        before = [(v.vs_id, ring.region_of(v).length) for v in ring.virtual_servers]
        ring.transfer_virtual_server(100, ring.nodes[0])
        after = [(v.vs_id, ring.region_of(v).length) for v in ring.virtual_servers]
        assert before == after
        assert ring.vs(100).owner is ring.nodes[0]
        assert len(ring.nodes[0].virtual_servers) == 2
        assert len(ring.nodes[1].virtual_servers) == 0

    def test_transfer_to_self_is_noop(self):
        ring = tiny_ring([10])
        ring.transfer_virtual_server(10, ring.nodes[0])
        assert len(ring.nodes[0].virtual_servers) == 1

    def test_transfer_to_dead_node_rejected(self):
        ring = tiny_ring([10, 100])
        ring.nodes[1].alive = False
        with pytest.raises(DHTError):
            ring.transfer_virtual_server(10, ring.nodes[1])

    def test_transfer_moves_load(self):
        ring = tiny_ring([10, 100])
        ring.vs(10).load = 7.0
        ring.transfer_virtual_server(10, ring.nodes[1])
        assert ring.nodes[1].load == 7.0
        assert ring.nodes[0].load == 0.0


class TestInvariants:
    def test_check_passes_on_fresh_ring(self, small_ring):
        small_ring.check_invariants()

    def test_check_after_transfers(self, small_ring):
        vss = small_ring.virtual_servers
        small_ring.transfer_virtual_server(vss[0], small_ring.nodes[5])
        small_ring.transfer_virtual_server(vss[1], small_ring.nodes[5])
        small_ring.check_invariants()

    def test_detects_corruption(self):
        ring = tiny_ring([10, 100])
        # Corrupt: steal the VS without updating owner.
        ring.nodes[0].virtual_servers.append(ring.vs(100))
        with pytest.raises(DHTError):
            ring.check_invariants()


class TestAggregates:
    def test_total_load_and_capacity(self):
        ring = tiny_ring([10, 100])
        ring.vs(10).load = 3.0
        ring.vs(100).load = 4.0
        assert total_load(ring.nodes) == pytest.approx(7.0)
        assert total_capacity(ring.nodes) == pytest.approx(2.0)


class TestVirtualServerAndNode:
    def test_negative_load_rejected(self):
        node = PhysicalNode(0, 1.0)
        with pytest.raises(ValueError):
            VirtualServer(1, node, load=-1.0)

    def test_node_requires_positive_capacity(self):
        with pytest.raises(DHTError):
            PhysicalNode(0, 0.0)

    def test_node_min_vs_load(self):
        node = PhysicalNode(0, 1.0)
        node.virtual_servers = [VirtualServer(1, node, 5.0), VirtualServer(2, node, 2.0)]
        assert node.min_vs_load == 2.0

    def test_min_vs_load_empty_raises(self):
        with pytest.raises(DHTError):
            PhysicalNode(0, 1.0).min_vs_load

    def test_unit_load(self):
        node = PhysicalNode(0, 4.0)
        node.virtual_servers = [VirtualServer(1, node, 8.0)]
        assert node.unit_load == 2.0

    def test_unhost_missing_raises(self):
        a, b = PhysicalNode(0, 1.0), PhysicalNode(1, 1.0)
        vs = VirtualServer(1, a, 0.0)
        with pytest.raises(DHTError):
            b.unhost(vs)
