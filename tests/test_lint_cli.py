"""CLI tests for ``python -m repro.lint``: exit codes, formats, baseline."""

import json
import textwrap
from pathlib import Path

from repro.lint.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main

REPO_ROOT = Path(__file__).resolve().parents[1]

CLEAN = '''
    """A documented module."""

    def double(x: int) -> int:
        """Return twice ``x``."""
        return 2 * x
'''

DIRTY = '''
    """A documented module."""

    def f(x, acc=[]):
        """Accumulate."""
        return acc
'''


def write(tmp_path: Path, relpath: str, source: str) -> Path:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def test_clean_tree_exits_zero(tmp_path, capsys):
    path = write(tmp_path, "repro/core/x.py", CLEAN)
    assert main([str(path)]) == EXIT_CLEAN
    assert "repro.lint: 0 findings" in capsys.readouterr().out


def test_findings_exit_one_with_text_report(tmp_path, capsys):
    path = write(tmp_path, "repro/core/x.py", DIRTY)
    assert main([str(path)]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "[mutable-default-args]" in out
    assert "repro.lint: 1 finding" in out


def test_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == EXIT_ERROR
    assert "error" in capsys.readouterr().err


def test_unreadable_baseline_exits_two(tmp_path, capsys):
    path = write(tmp_path, "repro/core/x.py", CLEAN)
    assert main([str(path), "--baseline", str(tmp_path / "nope.json")]) == EXIT_ERROR
    assert "error" in capsys.readouterr().err


def test_jsonl_output_parses(tmp_path, capsys):
    path = write(tmp_path, "repro/core/x.py", DIRTY)
    assert main([str(path), "--format", "jsonl"]) == EXIT_FINDINGS
    lines = capsys.readouterr().out.strip().splitlines()
    records = [json.loads(line) for line in lines]
    assert len(records) == 1
    assert records[0]["rule"] == "mutable-default-args"
    assert {"path", "line", "severity", "message", "fingerprint"} <= records[0].keys()


def test_jsonl_out_file_uses_obs_sink(tmp_path, capsys):
    path = write(tmp_path, "repro/core/x.py", DIRTY)
    out = tmp_path / "findings.jsonl"
    assert main([str(path), "--format", "jsonl", "--out", str(out)]) == EXIT_FINDINGS
    records = [json.loads(line) for line in out.read_text().splitlines()]
    assert [r["rule"] for r in records] == ["mutable-default-args"]


def test_write_baseline_then_rerun_is_clean(tmp_path, capsys):
    path = write(tmp_path, "repro/core/x.py", DIRTY)
    baseline = tmp_path / "baseline.json"

    assert main([str(path), "--write-baseline", str(baseline)]) == EXIT_CLEAN
    assert "wrote 1 fingerprints" in capsys.readouterr().out

    assert main([str(path), "--baseline", str(baseline)]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "repro.lint: 0 findings (1 baseline-suppressed)" in out


def test_show_suppressed_prints_baselined_findings(tmp_path, capsys):
    path = write(tmp_path, "repro/core/x.py", DIRTY)
    baseline = tmp_path / "baseline.json"
    main([str(path), "--write-baseline", str(baseline)])
    capsys.readouterr()

    assert (
        main([str(path), "--baseline", str(baseline), "--show-suppressed"])
        == EXIT_CLEAN
    )
    assert "(baseline-suppressed)" in capsys.readouterr().out


def test_list_rules_catalog(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for name in (
        "no-unseeded-rng",
        "no-wallclock-in-protocol",
        "no-unordered-iteration",
        "no-float-equality",
        "conservation-guard",
        "obs-span-coverage",
        "exception-hygiene",
        "mutable-default-args",
        "docstring-coverage",
    ):
        assert name in out


def test_repo_sources_are_lint_clean(capsys):
    # The shipped tree must pass its own gate (the verify.sh invocation).
    src = REPO_ROOT / "src" / "repro"
    baseline = REPO_ROOT / "lint-baseline.json"
    assert main([str(src), "--baseline", str(baseline)]) == EXIT_CLEAN
