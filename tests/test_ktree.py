"""Tests for the K-nary tree: construction, lazy paths, repair."""

import math

import numpy as np
import pytest

from repro.dht import ChordRing, crash_node, join_node
from repro.exceptions import TreeError
from repro.idspace import IdentifierSpace, Region
from repro.ktree import KnaryTree


@pytest.fixture
def ring():
    r = ChordRing(IdentifierSpace(bits=10))
    r.populate(8, 2, [1.0] * 8, rng=4)
    return r


class TestConstruction:
    def test_root_owns_full_ring(self, ring):
        tree = KnaryTree(ring, 2)
        assert tree.root.region.is_full_ring
        assert tree.root.level == 0

    def test_root_planted_at_ring_center_owner(self, ring):
        tree = KnaryTree(ring, 2)
        center = Region.full(ring.space).center
        assert tree.root.host_vs is ring.successor(center)

    def test_invalid_degree(self, ring):
        with pytest.raises(TreeError):
            KnaryTree(ring, 1)

    def test_single_vs_root_is_leaf(self):
        r = ChordRing(IdentifierSpace(bits=8))
        r.populate(1, 1, [1.0], rng=0)
        tree = KnaryTree(r, 2)
        assert tree.root.is_leaf


class TestFullBuild:
    @pytest.mark.parametrize("k", [2, 3, 8])
    def test_leaves_tile_ring(self, ring, k):
        tree = KnaryTree(ring, k)
        tree.build_full()
        total = sum(leaf.region.length for leaf in tree.leaves())
        assert total == ring.space.size

    def test_every_vs_hosts_a_leaf(self, ring):
        """Paper guarantee: a KT leaf node is planted in each virtual server."""
        tree = KnaryTree(ring, 2)
        tree.build_full()
        hosting = {leaf.host_vs.vs_id for leaf in tree.leaves()}
        assert hosting == {vs.vs_id for vs in ring.virtual_servers}

    def test_leaf_regions_covered_by_host(self, ring):
        tree = KnaryTree(ring, 2)
        tree.build_full()
        for leaf in tree.leaves():
            host_region = ring.region_of(leaf.host_vs)
            assert host_region.covers(leaf.region) or leaf.region.length < tree.k

    def test_invariants(self, ring):
        tree = KnaryTree(ring, 2)
        tree.build_full()
        tree.check_invariants()

    def test_max_nodes_guard(self, ring):
        tree = KnaryTree(ring, 2)
        with pytest.raises(TreeError):
            tree.build_full(max_nodes=3)

    def test_height_logarithmic(self):
        r = ChordRing(IdentifierSpace(bits=16))
        r.populate(32, 2, [1.0] * 32, rng=1)
        tree = KnaryTree(r, 2)
        tree.build_full()
        # Height is O(log2 #VS) with a modest constant (boundary leaves
        # descend further than the average).
        assert tree.height() <= 4 * math.log2(r.num_virtual_servers)

    def test_k8_shallower_than_k2(self, ring):
        t2, t8 = KnaryTree(ring, 2), KnaryTree(ring, 8)
        t2.build_full()
        t8.build_full()
        assert t8.height() < t2.height()


class TestLazyPaths:
    def test_leaf_for_key_contains_key(self, ring):
        tree = KnaryTree(ring, 2)
        for key in [0, 17, 512, 1023]:
            leaf = tree.ensure_leaf_for_key(key)
            assert leaf.is_leaf
            assert leaf.region.contains(key)

    def test_lazy_leaf_matches_full_tree(self, ring):
        lazy = KnaryTree(ring, 2)
        full = KnaryTree(ring, 2)
        full.build_full()
        full_leaves = {
            (l.region.start, l.region.length) for l in full.leaves()
        }
        gen = np.random.default_rng(0)
        for key in gen.integers(0, ring.space.size, size=40):
            leaf = lazy.ensure_leaf_for_key(int(key))
            assert (leaf.region.start, leaf.region.length) in full_leaves

    def test_repeated_key_returns_same_leaf(self, ring):
        tree = KnaryTree(ring, 2)
        a = tree.ensure_leaf_for_key(100)
        b = tree.ensure_leaf_for_key(100)
        assert a is b

    def test_lazy_much_smaller_than_full(self):
        r = ChordRing(IdentifierSpace(bits=20))
        r.populate(64, 4, [1.0] * 64, rng=2)
        lazy = KnaryTree(r, 2)
        for key in range(0, r.space.size, r.space.size // 16):
            lazy.ensure_leaf_for_key(key)
        full = KnaryTree(r, 2)
        full.build_full()
        assert lazy.node_count < full.node_count / 3

    def test_node_count_tracks_materialisation(self, ring):
        tree = KnaryTree(ring, 2)
        assert tree.node_count == 1
        tree.ensure_leaf_for_key(0)
        assert tree.node_count > 1

    def test_nodes_by_level_desc_ordering(self, ring):
        tree = KnaryTree(ring, 2)
        tree.ensure_leaf_for_key(5)
        tree.ensure_leaf_for_key(900)
        levels = [n.level for n in tree.nodes_by_level_desc()]
        assert levels == sorted(levels, reverse=True)

    def test_invariants_on_lazy_tree(self, ring):
        tree = KnaryTree(ring, 2)
        for key in [3, 700, 222]:
            tree.ensure_leaf_for_key(key)
        tree.check_invariants()


class TestRepair:
    def test_refresh_noop_on_stable_tree(self, ring):
        tree = KnaryTree(ring, 2)
        tree.build_full()
        counters = tree.refresh()
        assert counters == {"replanted": 0, "pruned": 0, "grown": 0}

    def test_refresh_after_join_replants(self, ring):
        tree = KnaryTree(ring, 2)
        tree.build_full()
        join_node(ring, capacity=1.0, vs_count=2, rng=9)
        counters = tree.refresh()
        assert counters["replanted"] + counters["grown"] > 0
        # After enough passes the tree stabilises and is again valid.
        for _ in range(32):
            if sum(tree.refresh().values()) == 0:
                break
        tree.check_invariants()

    def test_refresh_after_crash_prunes(self, ring):
        tree = KnaryTree(ring, 2)
        tree.build_full()
        crash_node(ring, ring.nodes[0])
        for _ in range(32):
            if sum(tree.refresh().values()) == 0:
                break
        tree.check_invariants()
        # every remaining VS still hosts a leaf after repair + growth
        full = KnaryTree(ring, 2)
        full.build_full()
        assert {l.host_vs.vs_id for l in full.leaves()} == {
            vs.vs_id for vs in ring.virtual_servers
        }

    def test_repair_converges_quickly(self, ring):
        """Repair should stabilise in O(height) refresh passes."""
        tree = KnaryTree(ring, 2)
        tree.build_full()
        crash_node(ring, ring.nodes[1])
        passes = 0
        while passes < 64:
            passes += 1
            if sum(tree.refresh().values()) == 0:
                break
        assert passes <= tree.height() + 2
