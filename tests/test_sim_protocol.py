"""Tests for the timed protocol simulation (VSA/VST overlap)."""

import pytest

from repro.core import BalancerConfig, LoadBalancer
from repro.exceptions import SimulationError
from repro.sim import simulate_timed_round
from repro.workloads import GaussianLoadModel, build_scenario
from tests.conftest import MINI_TS


def make_balancer(mode="ignorant", with_topology=False, rng=33):
    kwargs = {}
    if with_topology:
        sc = build_scenario(
            GaussianLoadModel(mu=1e5, sigma=300.0),
            num_nodes=36,
            vs_per_node=3,
            topology_params=MINI_TS,
            rng=rng,
        )
        kwargs = dict(topology=sc.topology, oracle=sc.oracle)
    else:
        sc = build_scenario(
            GaussianLoadModel(mu=1e5, sigma=300.0), num_nodes=64, vs_per_node=4, rng=rng
        )
    return LoadBalancer(
        sc.ring,
        BalancerConfig(proximity_mode=mode, epsilon=0.05, grid_bits=3),
        rng=3,
        **kwargs,
    )


class TestTimedRound:
    def test_same_outcome_as_plain_round(self):
        report, timing = simulate_timed_round(make_balancer())
        assert timing.transfers == len(report.transfers)
        assert report.heavy_after <= report.heavy_before

    def test_vsa_completion_is_height_times_latency(self):
        report, timing = simulate_timed_round(make_balancer(), level_latency=2.0)
        assert timing.vsa_completion_time == pytest.approx(2.0 * report.tree_height)

    def test_overlap_never_slower(self):
        _, timing = simulate_timed_round(make_balancer())
        assert timing.last_transfer_overlapped <= timing.last_transfer_sequential
        assert timing.overlap_speedup >= 1.0

    def test_overlap_strictly_faster_with_deep_pairings(self):
        """With proximity-aware placement, pairings happen deep in the tree
        (early in the sweep), so overlapping buys real time."""
        _, timing = simulate_timed_round(
            make_balancer(mode="aware", with_topology=True),
            transfer_cost_per_load=0.01,
        )
        if timing.transfers:
            assert timing.overlap_speedup > 1.0

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            simulate_timed_round(make_balancer(), level_latency=0.0)
        with pytest.raises(SimulationError):
            simulate_timed_round(make_balancer(), transfer_cost_per_load=-1.0)

    def test_zero_transfer_cost_collapses_to_pairing_times(self):
        report, timing = simulate_timed_round(
            make_balancer(), transfer_cost_per_load=0.0
        )
        if report.transfers:
            deepest = max(t.level for t in report.transfers)
            expected = report.tree_height - min(
                t.level for t in report.transfers
            )
            assert timing.last_transfer_overlapped == pytest.approx(expected)


class TestPlacementInjection:
    def test_custom_placement_used(self):
        """A constant-key placement sends every entry to one leaf."""

        class ConstantPlacement:
            def key_for(self, node):
                return 12345

        sc = build_scenario(
            GaussianLoadModel(mu=1e5, sigma=300.0), num_nodes=64, vs_per_node=4, rng=35
        )
        lb = LoadBalancer(
            sc.ring,
            BalancerConfig(proximity_mode="ignorant", epsilon=0.05),
            placement=ConstantPlacement(),
            rng=3,
        )
        report = lb.run_round()
        # everything met at one leaf: all pairings share a single level
        levels = {t.level for t in report.transfers}
        assert len(levels) == 1
        assert report.heavy_after <= report.heavy_before // 4
