"""Tests for grid quantisation and the landmark->DHT-key pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ProximityError
from repro.idspace import IdentifierSpace
from repro.proximity import GridQuantizer, ProximityMapper


class TestQuantizer:
    def test_basic_binning(self):
        q = GridQuantizer(bits=2, low=0.0, high=4.0)
        cells = q.quantize(np.array([[0.0, 1.0, 2.0, 3.999]]))
        assert list(cells[0]) == [0, 1, 2, 3]

    def test_clipping(self):
        q = GridQuantizer(bits=1, low=0.0, high=2.0)
        cells = q.quantize(np.array([[-5.0, 10.0]]))
        assert list(cells[0]) == [0, 1]

    def test_1d_input_promoted(self):
        q = GridQuantizer(bits=2, low=0.0, high=4.0)
        assert q.quantize(np.array([1.0, 3.0])).shape == (1, 2)

    def test_fit_covers_sample(self):
        data = np.array([[1.0, 5.0], [2.0, 9.0]])
        q = GridQuantizer.fit(data, bits=3)
        cells = q.quantize(data)
        assert cells.min() >= 0 and cells.max() < q.bins

    def test_fit_constant_data(self):
        q = GridQuantizer.fit(np.full((3, 2), 7.0), bits=2)
        cells = q.quantize(np.full((1, 2), 7.0))
        assert np.all((0 <= cells) & (cells < 4))

    def test_invalid_bounds(self):
        with pytest.raises(ProximityError):
            GridQuantizer(bits=2, low=1.0, high=1.0)

    def test_invalid_bits(self):
        with pytest.raises(ProximityError):
            GridQuantizer(bits=0, low=0.0, high=1.0)

    def test_fit_empty_rejected(self):
        with pytest.raises(ProximityError):
            GridQuantizer.fit(np.zeros((0, 3)), bits=2)

    def test_monotone_per_dimension(self):
        q = GridQuantizer(bits=4, low=0.0, high=100.0)
        vals = np.sort(np.random.default_rng(0).uniform(0, 100, 50))
        cells = q.quantize(vals[None, :] * np.ones((1, 50)))
        # quantization of a sorted sequence is sorted
        assert np.all(np.diff(cells[0]) >= 0)


class TestMapper:
    def make_mapper(self, dims=3, gb=3):
        gen = np.random.default_rng(0)
        vecs = gen.uniform(0, 10, size=(50, dims))
        return ProximityMapper.fit(vecs, grid_bits=gb), vecs

    def test_fit_dimensions(self):
        mapper, vecs = self.make_mapper()
        assert mapper.dims == 3

    def test_hilbert_numbers_in_range(self):
        mapper, vecs = self.make_mapper()
        nums = mapper.hilbert_numbers(vecs)
        assert all(0 <= n <= mapper.curve.max_index for n in nums)

    def test_identical_vectors_identical_keys(self):
        mapper, _ = self.make_mapper()
        space = IdentifierSpace(bits=16)
        v = np.array([[1.0, 2.0, 3.0], [1.0, 2.0, 3.0]])
        keys = mapper.dht_keys(v, space)
        assert keys[0] == keys[1]

    def test_keys_within_space(self):
        mapper, vecs = self.make_mapper()
        space = IdentifierSpace(bits=16)
        keys = mapper.dht_keys(vecs, space)
        assert keys.min() >= 0
        assert keys.max() < space.size

    def test_upscaling_small_index(self):
        """index_bits < space.bits: keys are shifted left, order kept."""
        gen = np.random.default_rng(1)
        vecs = gen.uniform(0, 1, size=(20, 2))
        mapper = ProximityMapper.fit(vecs, grid_bits=2)  # 4-bit index
        space = IdentifierSpace(bits=16)
        keys = mapper.dht_keys(vecs, space)
        assert keys.max() < space.size

    def test_close_vectors_closer_keys_than_far(self):
        space = IdentifierSpace(bits=32)
        vecs = np.array([[0.0, 0.0], [0.2, 0.1], [9.0, 8.5]])
        mapper = ProximityMapper.fit(vecs, grid_bits=4)
        keys = mapper.dht_keys(vecs, space)
        assert abs(keys[0] - keys[1]) <= abs(keys[0] - keys[2])

    def test_dht_key_single(self):
        mapper, vecs = self.make_mapper()
        space = IdentifierSpace(bits=16)
        single = mapper.dht_key(vecs[0], space)
        batch = mapper.dht_keys(vecs[:1], space)
        assert single == batch[0]

    def test_wrong_dims_rejected(self):
        mapper, _ = self.make_mapper(dims=3)
        with pytest.raises(ProximityError):
            mapper.hilbert_numbers(np.zeros((2, 4)))

    def test_quantizer_bits_mismatch_rejected(self):
        q = GridQuantizer(bits=2, low=0.0, high=1.0)
        with pytest.raises(ProximityError):
            ProximityMapper(dims=3, grid_bits=3, quantizer=q)

    def test_large_space_rejected(self):
        mapper, vecs = self.make_mapper()
        with pytest.raises(ProximityError):
            mapper.dht_keys(vecs, IdentifierSpace(bits=64))

    def test_1d_vectors_rejected_in_fit(self):
        with pytest.raises(ProximityError):
            ProximityMapper.fit(np.zeros(5), grid_bits=2)

    @given(st.integers(2, 6), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_keys_deterministic(self, dims, gb):
        gen = np.random.default_rng(42)
        vecs = gen.uniform(0, 5, size=(10, dims))
        space = IdentifierSpace(bits=20)
        m1 = ProximityMapper.fit(vecs, grid_bits=gb)
        m2 = ProximityMapper.fit(vecs, grid_bits=gb)
        assert np.array_equal(m1.dht_keys(vecs, space), m2.dht_keys(vecs, space))


class TestPaperPipeline:
    def test_stub_domain_key_clustering(self, mini_topology, mini_oracle):
        """End-to-end premise: same-stub sites share or nearly share keys."""
        from repro.topology import landmark_vectors, select_landmarks

        lm = select_landmarks(mini_oracle, 5, rng=0)
        sites = mini_topology.stub_vertices
        vecs = landmark_vectors(mini_oracle, lm, sites)
        mapper = ProximityMapper.fit(vecs, grid_bits=3)
        keys = mapper.dht_keys(vecs, IdentifierSpace(bits=32))
        domains = np.array([mini_topology.info[s].stub_domain for s in sites])
        # Mean intra-domain key distance must be well below global spread.
        spreads = []
        for d in np.unique(domains):
            k = keys[domains == d]
            if len(k) > 1:
                spreads.append(k.max() - k.min())
        assert np.median(spreads) <= (keys.max() - keys.min()) / 4
