"""Tests for the cached Dijkstra distance oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topology import DistanceOracle, Topology
from repro.topology.graph import VertexInfo


@pytest.fixture
def path_topology():
    """0 -1- 1 -2- 2 -3- 3 (weighted path graph)."""
    g = nx.Graph()
    g.add_edge(0, 1, weight=1)
    g.add_edge(1, 2, weight=2)
    g.add_edge(2, 3, weight=3)
    info = [VertexInfo("stub", 0, i) for i in range(4)]
    return Topology(graph=g, info=info)


class TestDistances:
    def test_known_distances(self, path_topology):
        oracle = DistanceOracle(path_topology)
        assert oracle.distance(0, 3) == 6.0
        assert oracle.distance(1, 3) == 5.0

    def test_symmetry(self, path_topology):
        oracle = DistanceOracle(path_topology)
        assert oracle.distance(0, 2) == oracle.distance(2, 0)

    def test_self_distance_zero(self, path_topology):
        oracle = DistanceOracle(path_topology)
        assert oracle.distance(2, 2) == 0.0

    def test_distances_from_row(self, path_topology):
        oracle = DistanceOracle(path_topology)
        row = oracle.distances_from(0)
        assert list(row) == [0.0, 1.0, 3.0, 6.0]

    def test_out_of_range_vertex(self, path_topology):
        oracle = DistanceOracle(path_topology)
        with pytest.raises(TopologyError):
            oracle.distance(0, 4)

    def test_matches_networkx(self, mini_topology):
        oracle = DistanceOracle(mini_topology)
        expected = nx.single_source_dijkstra_path_length(
            mini_topology.graph, 0, weight="weight"
        )
        row = oracle.distances_from(0)
        for v, d in expected.items():
            assert row[v] == pytest.approx(d)


class TestCaching:
    def test_row_cached(self, path_topology):
        oracle = DistanceOracle(path_topology)
        oracle.distances_from(0)
        runs = oracle.dijkstra_runs
        oracle.distances_from(0)
        assert oracle.dijkstra_runs == runs

    def test_distance_reuses_reverse_row(self, path_topology):
        oracle = DistanceOracle(path_topology)
        oracle.distances_from(3)
        runs = oracle.dijkstra_runs
        assert oracle.distance(0, 3) == 6.0  # uses row of 3 backwards
        assert oracle.dijkstra_runs == runs

    def test_lru_eviction(self, path_topology):
        oracle = DistanceOracle(path_topology, max_cached_rows=2)
        oracle.distances_from(0)
        oracle.distances_from(1)
        oracle.distances_from(2)
        assert oracle.cached_sources == 2

    def test_many_sources_single_call(self, path_topology):
        oracle = DistanceOracle(path_topology)
        rows = oracle.distances_from_many([0, 1, 2])
        assert rows.shape == (3, 4)
        assert oracle.dijkstra_runs == 3  # one per source, batched in one scipy call

    def test_distances_between_batches(self, path_topology):
        oracle = DistanceOracle(path_topology)
        pairs = [(0, 3), (1, 2), (0, 2)]
        out = oracle.distances_between(pairs)
        assert list(out) == [6.0, 2.0, 3.0]
        # 0 and 1 are the only sources needed (0 used twice).
        assert oracle.dijkstra_runs <= 2

    def test_distances_between_uses_cached_reverse(self, path_topology):
        oracle = DistanceOracle(path_topology)
        oracle.distances_from(3)
        out = oracle.distances_between([(0, 3)])
        assert out[0] == 6.0
        assert oracle.dijkstra_runs == 1

    def test_many_sources_tight_lru_no_thrash(self, path_topology):
        """A batch larger than the LRU bound costs one run per unique source.

        The old implementation evicted rows while still inserting the
        batch, then re-read the cache to stack the result — recomputing
        rows it had produced moments earlier, one extra Dijkstra per
        evicted source.
        """
        oracle = DistanceOracle(path_topology, max_cached_rows=2)
        rows = oracle.distances_from_many([0, 1, 2, 3])
        assert rows.shape == (4, 4)
        assert oracle.dijkstra_runs == 4
        assert oracle.cached_sources == 2  # trimmed after stacking

    def test_many_sources_duplicates_counted_once(self, path_topology):
        oracle = DistanceOracle(path_topology, max_cached_rows=1)
        rows = oracle.distances_from_many([2, 0, 2, 0, 2])
        assert rows.shape == (5, 4)
        assert oracle.dijkstra_runs == 2  # unique sources only
        assert list(rows[0]) == list(rows[2]) == list(rows[4])
        assert list(rows[1]) == [0.0, 1.0, 3.0, 6.0]

    def test_distances_between_survives_tight_lru(self, path_topology):
        """Pair batches larger than the LRU bound must not KeyError.

        ``distances_between`` used to re-read the cache after the batch
        call; with ``max_cached_rows`` below the batch size, the batch
        itself evicted the earlier rows it was about to read.
        """
        oracle = DistanceOracle(path_topology, max_cached_rows=1)
        out = oracle.distances_between([(0, 3), (1, 3), (2, 3)])
        assert list(out) == [6.0, 5.0, 3.0]

    def test_many_sources_mixed_cached_and_missing(self, path_topology):
        oracle = DistanceOracle(path_topology)
        oracle.distances_from(1)
        rows = oracle.distances_from_many([1, 3])
        assert oracle.dijkstra_runs == 2  # only 3 was recomputed
        assert list(rows[0]) == [1.0, 0.0, 2.0, 5.0]
