"""Crash-recovery acceptance: crashed runs are digest-identical.

The subsystem's contract (docs/recovery.md): a run that crashes at any
:data:`~repro.faults.plan.CRASH_SITES` site and recovers from durable
state (snapshot restore + journal replay) produces round reports whose
:meth:`~repro.core.report.BalanceReport.canonical_digest` values are
byte-identical to the same seeded run without the crash — across the
serial, incremental and sharded engines, through double crashes, and
through a *true* restart (a fresh :class:`~repro.recovery.RecoveryManager`
opened on the state directory a dead process left behind).
"""

import pytest

from repro.core import BalancerConfig, IncrementalLoadBalancer, LoadBalancer
from repro.exceptions import ProcessCrashError, RecoveryError
from repro.faults import CrashPoint, FaultPlan, PartitionSpec
from repro.faults.plan import CRASH_SITES
from repro.parallel import ShardedLoadBalancer, WorkerPool
from repro.recovery import RecoveryManager
from repro.recovery.soak import run_schedule
from repro.sim.dynamics import LoadDynamics, run_dynamic_simulation
from repro.workloads import GaussianLoadModel, build_scenario

SEED = 17
ROUNDS = 5

#: Ambient faults so recovery is exercised *under* degradation, not in
#: a clean room: drops, aborts, plus a mid-round partition that leaves
#: suspended transfers in flight when the pre-heal crash fires.
BASE = dict(
    seed=5,
    drop=0.05,
    transfer_abort=0.1,
    partitions=(
        PartitionSpec(at_round=3, duration=1, num_components=2, mid_round=True),
    ),
)

#: One crash per site, in rounds that make the site reachable (the
#: pre-heal-commit site only fires while a partition heals).
SITE_ROUNDS = {
    "post-lbi-fold": 0,
    "mid-vst-batch": 0,
    "pre-heal-commit": 4,
}


def _plan(*crash_points):
    return FaultPlan(**BASE, crash_points=tuple(crash_points))


def _factory(plan, engine="serial", shards=1, seed=SEED):
    config = BalancerConfig(
        proximity_mode="ignorant", epsilon=0.05, tree_degree=2
    )

    def build():
        ring = build_scenario(
            GaussianLoadModel(mu=1e6, sigma=2e3),
            num_nodes=32,
            vs_per_node=4,
            rng=seed,
        ).ring
        if engine == "serial":
            return LoadBalancer(ring, config, rng=seed + 1, faults=plan)
        if engine == "incremental":
            return IncrementalLoadBalancer(
                ring, config, rng=seed + 1, faults=plan
            )
        return ShardedLoadBalancer(
            ring,
            config,
            rng=seed + 1,
            faults=plan,
            num_shards=shards,
            pool=WorkerPool(1, mode="inline"),
        )

    return build


def _baseline_digests(engine="serial", shards=1):
    """The uncrashed reference run (same plan minus the crash points)."""
    balancer = _factory(_plan(), engine, shards)()
    return [balancer.run_round().canonical_digest() for _ in range(ROUNDS)]


def _recovered_digests(plan, tmp_path, engine="serial", shards=1):
    manager = RecoveryManager(_factory(plan, engine, shards), state_dir=tmp_path)
    try:
        digests = [r.canonical_digest() for r in manager.run_rounds(ROUNDS)]
    finally:
        manager.close()
    return digests, manager.restores


class TestSingleCrashDigestIdentity:
    @pytest.mark.parametrize("site", CRASH_SITES)
    def test_serial(self, tmp_path, site):
        plan = _plan(CrashPoint(at_round=SITE_ROUNDS[site], site=site))
        digests, restores = _recovered_digests(plan, tmp_path)
        assert restores == 1, f"crash at {site} never fired"
        assert digests == _baseline_digests()

    @pytest.mark.parametrize("site", CRASH_SITES)
    def test_incremental(self, tmp_path, site):
        plan = _plan(CrashPoint(at_round=SITE_ROUNDS[site], site=site))
        digests, restores = _recovered_digests(plan, tmp_path, "incremental")
        assert restores == 1
        assert digests == _baseline_digests("incremental")

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded(self, tmp_path, shards):
        plan = _plan(CrashPoint(at_round=0, site="mid-vst-batch"))
        digests, restores = _recovered_digests(plan, tmp_path, "sharded", shards)
        assert restores == 1
        assert digests == _baseline_digests("sharded", shards)


class TestHarderSchedules:
    def test_double_crash_same_round_plus_heal_crash(self, tmp_path):
        plan = _plan(
            CrashPoint(at_round=0, site="post-lbi-fold"),
            CrashPoint(at_round=0, site="mid-vst-batch"),
            CrashPoint(at_round=4, site="pre-heal-commit"),
        )
        digests, restores = _recovered_digests(plan, tmp_path)
        assert restores == 3
        assert digests == _baseline_digests()

    def test_true_restart_resumes_open_round(self, tmp_path):
        """A dead process leaves a checkpointed, unclosed round behind.

        Run the crashing round by hand so the ProcessCrashError escapes
        before any crash marker or recovery happens — exactly the state
        a SIGKILL leaves.  A fresh manager on the same state dir must
        detect the open round at construction, restore, and complete
        the full run digest-identically.
        """
        plan = _plan(CrashPoint(at_round=2, site="mid-vst-batch"))
        factory = _factory(plan)
        first = RecoveryManager(factory, state_dir=tmp_path)
        digests = [first.run_round().canonical_digest() for _ in range(2)]
        first._checkpoint()
        with pytest.raises(ProcessCrashError):
            first.balancer.run_round()  # bypass the manager: no marker
        first.close()  # the "process" dies here

        second = RecoveryManager(factory, state_dir=tmp_path)
        try:
            assert second.restores == 1  # resumed at construction
            digests += [
                second.run_round().canonical_digest()
                for _ in range(ROUNDS - 2)
            ]
        finally:
            second.close()
        assert digests == _baseline_digests()

    def test_clean_shutdown_does_not_resume(self, tmp_path):
        factory = _factory(_plan())
        first = RecoveryManager(factory, state_dir=tmp_path)
        first.run_round()
        first.close()
        second = RecoveryManager(factory, state_dir=tmp_path)
        try:
            assert second.restores == 0
        finally:
            second.close()

    def test_missing_snapshot_is_an_error(self, tmp_path):
        plan = _plan(CrashPoint(at_round=0, site="mid-vst-batch"))
        manager = RecoveryManager(_factory(plan), state_dir=tmp_path)
        try:
            assert not manager.snapshot_path.exists()
            with pytest.raises(RecoveryError, match="no snapshot"):
                manager._restart()
        finally:
            manager.close()


class TestEmbeddings:
    def test_dynamic_simulation_under_crashes(self, tmp_path):
        """run_dynamic_simulation drives a managed stack through drift."""
        plan = _plan(CrashPoint(at_round=1, site="mid-vst-batch"))
        manager = RecoveryManager(_factory(plan), state_dir=tmp_path)
        try:
            dynamics = LoadDynamics(
                drift_sigma=0.1, flash_crowd_prob=0.2, rng=7
            )
            trace = run_dynamic_simulation(manager, dynamics, epochs=4)
        finally:
            manager.close()
        assert len(trace.epochs) == 4
        assert len(trace.reports) == 4
        assert manager.restores == 1

    def test_soak_schedule_with_crashes_is_clean(self, tmp_path):
        from repro.recovery.soak import SoakSchedule

        schedule = SoakSchedule(
            seed=SEED,
            rounds=ROUNDS,
            num_nodes=24,
            vs_per_node=4,
            plan=_plan(
                CrashPoint(at_round=1, site="mid-vst-batch"),
                CrashPoint(at_round=4, site="pre-heal-commit"),
            ),
        )
        result = run_schedule(schedule, state_dir=tmp_path)
        assert result.ok, result.failure
        assert result.restores == 2
        assert len(result.digests) == ROUNDS
