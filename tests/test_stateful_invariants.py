"""Stateful property tests: random operation sequences vs invariants.

Hypothesis drives random interleavings of the system's mutating
operations — virtual-server add/remove/transfer, node join/leave/crash,
object put/delete, splitting, rehoming — and checks after every step
that the cross-referenced state stays coherent:

* ring invariants (ownership symmetry, regions tile the ring);
* object-store consistency (per-VS loads equal object sums, placement
  matches ownership);
* global load conservation across ownership-only operations.
"""

from __future__ import annotations

import math

from hypothesis import settings as h_settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.dht import ChordRing, ObjectStore, crash_node, join_node, leave_node
from repro.dht.split import split_virtual_server
from repro.exceptions import DHTError
from repro.idspace import IdentifierSpace


class RingStateMachine(RuleBasedStateMachine):
    """Random walks over the full DHT + storage state space."""

    @initialize(seed=st.integers(0, 2**16))
    def setup(self, seed):
        self.ring = ChordRing(IdentifierSpace(bits=12))
        self.ring.populate(4, 2, [1.0, 2.0, 4.0, 8.0], rng=seed)
        self.store = ObjectStore(self.ring)
        self.counter = 0
        for i in range(12):
            self.store.put(f"seed-{i}", load=float(i + 1))

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _alive(self):
        return [n for n in self.ring.nodes if n.alive]

    def _removable(self):
        return [
            n
            for n in self._alive()
            if n.virtual_servers
            and len(n.virtual_servers) < self.ring.num_virtual_servers
        ]

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    @rule(cap=st.sampled_from([1.0, 10.0, 100.0]), k=st.integers(1, 3))
    def join(self, cap, k):
        join_node(self.ring, capacity=cap, vs_count=k, rng=self.counter)
        self.counter += 1
        self.store.rehome()

    @precondition(lambda self: len(self._removable()) > 1)
    @rule(idx=st.integers(0, 10**6), graceful=st.booleans())
    def depart(self, idx, graceful):
        victims = self._removable()
        victim = victims[idx % len(victims)]
        if graceful:
            leave_node(self.ring, victim)
        else:
            crash_node(self.ring, victim)
        self.store.rehome()

    @rule(idx=st.integers(0, 10**6), dest=st.integers(0, 10**6))
    def transfer(self, idx, dest):
        vss = self.ring.virtual_servers
        vs = vss[idx % len(vss)]
        alive = self._alive()
        node = alive[dest % len(alive)]
        self.ring.transfer_virtual_server(vs, node)

    @rule(load=st.floats(0.1, 50.0))
    def put_object(self, load):
        self.store.put(f"obj-{self.counter}", load=load)
        self.counter += 1

    @precondition(lambda self: self.store.num_objects > 1)
    @rule(idx=st.integers(0, 10**6))
    def delete_object(self, idx):
        names = sorted(
            n for vs in self.ring.virtual_servers
            for n in (o.name for o in self.store.objects_on(vs))
        )
        if names:
            self.store.delete(names[idx % len(names)])

    @rule(idx=st.integers(0, 10**6))
    def split(self, idx):
        vss = self.ring.virtual_servers
        vs = vss[idx % len(vss)]
        try:
            split_virtual_server(self.ring, vs, store=self.store)
        except DHTError:
            pass  # single-identifier regions cannot split; fine

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant()
    def ring_is_coherent(self):
        self.ring.check_invariants()

    @invariant()
    def store_is_coherent(self):
        self.store.check_consistency()

    @invariant()
    def loads_match_objects(self):
        total_vs = sum(vs.load for vs in self.ring.virtual_servers)
        assert math.isclose(
            total_vs, self.store.total_load, rel_tol=1e-9, abs_tol=1e-6
        )

    @invariant()
    def regions_tile_ring(self):
        total = sum(
            self.ring.region_of(vs).length for vs in self.ring.virtual_servers
        )
        assert total == self.ring.space.size


RingStateMachine.TestCase.settings = h_settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestRingStateMachine = RingStateMachine.TestCase
