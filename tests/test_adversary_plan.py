"""Validation and value semantics of :class:`repro.adversary.AdversaryPlan`."""

import dataclasses

import pytest

from repro.adversary import (
    ACCUSE,
    BEHAVIORS,
    NULL_ADVERSARY,
    RENEGE,
    UNDER_REPORT,
    AdversaryPlan,
)
from repro.exceptions import AdversaryError, AdversaryPlanError


def test_default_plan_is_null_and_valid():
    plan = AdversaryPlan()
    assert plan.is_null
    assert plan.defense
    assert plan.behaviors == BEHAVIORS
    assert NULL_ADVERSARY.is_null


def test_fraction_or_assignments_make_plan_non_null():
    assert not AdversaryPlan(fraction=0.1).is_null
    assert not AdversaryPlan(assignments=((3, RENEGE),)).is_null


def test_plan_is_frozen():
    plan = AdversaryPlan(seed=1)
    with pytest.raises(dataclasses.FrozenInstanceError):
        plan.fraction = 0.5


def test_plan_error_is_an_adversary_error():
    assert issubclass(AdversaryPlanError, AdversaryError)


@pytest.mark.parametrize("fraction", [-0.01, 1.01, 2.0])
def test_fraction_out_of_range_rejected(fraction):
    with pytest.raises(AdversaryPlanError, match="fraction"):
        AdversaryPlan(fraction=fraction)


def test_empty_behavior_pool_rejected():
    with pytest.raises(AdversaryPlanError, match="non-empty"):
        AdversaryPlan(behaviors=())


def test_unknown_behavior_rejected():
    with pytest.raises(AdversaryPlanError, match="unknown behavior"):
        AdversaryPlan(behaviors=("gossip",))


def test_unknown_assignment_behavior_rejected():
    with pytest.raises(AdversaryPlanError, match="unknown behavior"):
        AdversaryPlan(assignments=((0, "gossip"),))


def test_negative_assignment_index_rejected():
    with pytest.raises(AdversaryPlanError, match="node index"):
        AdversaryPlan(assignments=((-1, ACCUSE),))


def test_duplicate_assignment_rejected():
    with pytest.raises(AdversaryPlanError, match="two behaviors"):
        AdversaryPlan(assignments=((4, ACCUSE), (4, RENEGE)))


def test_negative_start_round_rejected():
    with pytest.raises(AdversaryPlanError, match="start_round"):
        AdversaryPlan(start_round=-1)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"under_factor": 0.0},
        {"under_factor": 1.5},
        {"over_factor": 0.5},
        {"inflate_factor": 0.99},
    ],
)
def test_lie_factor_bounds_rejected(kwargs):
    with pytest.raises(AdversaryPlanError):
        AdversaryPlan(**kwargs)


def test_behavior_subset_accepted():
    plan = AdversaryPlan(fraction=0.2, behaviors=(UNDER_REPORT, RENEGE))
    assert plan.behaviors == (UNDER_REPORT, RENEGE)
