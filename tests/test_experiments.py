"""Smoke + shape tests for the experiment drivers (reduced scale)."""

import pytest

from repro.experiments import ExperimentSettings, get_experiment, list_experiments
from repro.experiments import fig4, fig5, fig6, fig7, timing
from repro.exceptions import ReproError

SMALL = ExperimentSettings(num_nodes=128, seed=42)


class TestRegistry:
    def test_all_experiments_listed(self):
        names = [n for n, _ in list_experiments()]
        assert names == [
            "byzantine", "chaos", "convergence", "fig4", "fig5", "fig6",
            "fig7", "fig8", "partition", "timing", "variance",
        ]

    def test_get_unknown_raises(self):
        with pytest.raises(ReproError):
            get_experiment("fig99")

    def test_get_returns_callable(self):
        assert callable(get_experiment("fig4"))


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run(SMALL)

    def test_heavy_fraction_near_paper(self, result):
        """Paper: ~75% of nodes heavy before balancing."""
        assert 0.6 <= result.data.heavy_fraction_before <= 0.9

    def test_all_heavy_resolved(self, result):
        """Paper: all heavy nodes become light after balancing."""
        assert result.data.heavy_after == 0

    def test_format_rows(self, result):
        text = result.format_rows()
        assert "Figure 4" in text and "paper" in text


class TestFig56:
    def test_fig5_alignment(self):
        result = fig5.run(SMALL)
        means = result.data.mean_loads_after()
        assert all(a <= b + 1e-9 for a, b in zip(means, means[1:]))
        assert "capacity" in result.format_rows()

    def test_fig6_pareto_alignment_mostly_holds(self):
        result = fig6.run(SMALL)
        d = result.data
        # Highest-capacity category must end with the largest mean load.
        means = d.mean_loads_after()
        assert means[-1] == max(means)
        assert result.report.heavy_after <= max(2, result.report.heavy_before // 20)


class TestTiming:
    def test_rounds_logarithmic(self):
        result = timing.run(ExperimentSettings(num_nodes=256), sizes=[64, 256])
        by_k = {}
        for t in result.timings:
            by_k.setdefault(t.tree_degree, []).append(t)
        for k, ts in by_k.items():
            small, large = ts[0], ts[-1]
            # 4x the nodes must not even double the rounds.
            assert large.vsa_rounds < 2 * small.vsa_rounds
        assert "Timing claim" in result.format_rows()

    def test_k8_shallower(self):
        result = timing.run(ExperimentSettings(num_nodes=128), sizes=[128])
        k2 = [t for t in result.timings if t.tree_degree == 2][0]
        k8 = [t for t in result.timings if t.tree_degree == 8][0]
        assert k8.tree_height < k2.tree_height


class TestChaos:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import chaos

        return chaos.run(SMALL, drop_rates=(0.0, 0.2), crash_mid_round=1)

    def test_every_row_completed(self, result):
        assert [r.drop for r in result.rows] == [0.0, 0.2]
        assert result.baseline_moved > 0

    def test_recovery_machinery_engaged(self, result):
        noisy = result.rows[-1]
        assert noisy.retries > 0
        assert noisy.crashed_nodes == 1
        assert noisy.signature != ""

    def test_degradation_is_graceful(self, result):
        # Faults cost movement but never the whole round.
        assert all(0 < r.movement_ratio <= 1.5 for r in result.rows)

    def test_format_rows(self, result):
        text = result.format_rows()
        assert "Chaos sweep" in text and "baseline" in text

    def test_smoke_mode_asserts_and_reports(self):
        from repro.experiments import chaos

        line = chaos.smoke(num_nodes=32, seed=11)
        assert "chaos smoke OK" in line and "reproduced" in line
