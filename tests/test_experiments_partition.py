"""Tests for the partition-tolerance experiment and its CLI contract.

The sweep and smoke modes run in-process; the acceptance requirement
that a corrupted heal aborts the smoke stage with a non-zero exit is
asserted through a real subprocess, exactly as ``scripts/verify.sh``
would observe it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import ExperimentSettings
from repro.experiments import partition

REPO_ROOT = Path(__file__).resolve().parent.parent
SMALL = ExperimentSettings(num_nodes=96, seed=42)


def run_module(*argv: str) -> subprocess.CompletedProcess:
    env_path = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.partition", *argv],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )


class TestPartitionSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return partition.run(SMALL, component_counts=(2, 3))

    def test_every_row_partitioned_and_healed(self, result):
        assert [r.num_components for r in result.rows] == [2, 3]
        for row in result.rows:
            assert row.partitioned_rounds >= 1
            assert row.final_epoch == 2  # activation + heal
            assert row.suspended == row.healed_commits + row.healed_rollbacks
            assert row.regrafts >= row.num_components - 1

    def test_rows_make_progress(self, result):
        for row in result.rows:
            assert row.transfers > 0
            assert row.moved_load > 0

    def test_format_rows(self, result):
        text = result.format_rows()
        assert "Partition sweep" in text and "conserved load" in text

    def test_parallel_sweep_matches_serial(self, result):
        from dataclasses import replace

        parallel = partition.run(
            replace(SMALL, workers=2), component_counts=(2, 3)
        )
        assert parallel.rows == result.rows

    def test_smoke_mode_asserts_and_reports(self):
        line = partition.smoke(num_nodes=48, seed=11)
        assert "partition smoke OK" in line and "reproduced" in line


class TestPartitionCLI:
    def test_smoke_exits_zero(self):
        proc = run_module("--smoke", "--nodes", "48", "--seed", "11")
        assert proc.returncode == 0, proc.stderr
        assert "partition smoke OK" in proc.stdout

    def test_corrupted_heal_fails_smoke_with_nonzero_exit(self):
        """The negative control: a heal that loses a transfer must abort.

        The ``--corrupt-heal`` hook drops one suspended transfer during
        reconciliation; the membership conservation gate must raise and
        the process must die non-zero with the violation named — proving
        a real corruption could never slip through a green smoke stage.
        """
        proc = run_module(
            "--smoke", "--corrupt-heal", "--nodes", "48", "--seed", "11"
        )
        assert proc.returncode != 0
        assert "ConservationError" in proc.stderr
        assert "membership.heal" in proc.stderr
        assert "partition smoke OK" not in proc.stdout

    def test_corrupt_heal_requires_smoke(self):
        proc = run_module("--corrupt-heal")
        assert proc.returncode != 0
