#!/usr/bin/env python
"""Aligning the two skews: load distribution vs node capacity.

Reproduces the story of figures 4-6: before balancing, load is placed by
consistent hashing and is blind to capacity — a dial-up peer carries as
much as a server-class peer.  After one balancing round, load share per
capacity category tracks capacity share ("have higher capacity nodes
carry more loads"), under both the Gaussian and the heavy-tailed Pareto
load models.

Run:  python examples/capacity_alignment.py
"""

from repro import (
    BalancerConfig,
    GaussianLoadModel,
    LoadBalancer,
    ParetoLoadModel,
    build_scenario,
)
from repro.analysis import capacity_category_breakdown, imbalance_metrics


def run_model(name, model):
    scenario = build_scenario(model, num_nodes=1024, vs_per_node=5, rng=42)
    balancer = LoadBalancer(
        scenario.ring,
        BalancerConfig(proximity_mode="ignorant", epsilon=0.05),
        rng=7,
    )
    report = balancer.run_round()

    print(f"=== {name} loads ===")
    print(
        f"heavy nodes: {report.heavy_before} "
        f"({100 * report.heavy_fraction_before:.1f}%) -> {report.heavy_after}"
    )
    breakdown = capacity_category_breakdown(report)
    print(f"{'capacity':>10} {'nodes':>6} {'mean load before':>17} "
          f"{'mean load after':>16} {'load share after':>17}")
    for cap in sorted(breakdown):
        row = breakdown[cap]
        print(
            f"{cap:>10g} {row['count']:>6d} {row['mean_load_before']:>17.1f} "
            f"{row['mean_load_after']:>16.1f} {100 * row['share_after']:>16.1f}%"
        )
    metrics = imbalance_metrics(report)
    print(
        f"gini(unit load): {metrics['gini_before']:.3f} -> "
        f"{metrics['gini_after']:.3f}; moved "
        f"{100 * metrics['moved_load_frac']:.1f}% of total load\n"
    )


if __name__ == "__main__":
    run_model("Gaussian", GaussianLoadModel(mu=1_000_000, sigma=2_000))
    run_model("Pareto (alpha=1.5)", ParetoLoadModel(mu=1_000_000))
