#!/usr/bin/env python
"""A day in the life of a self-balancing P2P storage service.

Uses the :class:`repro.app.P2PSystem` facade — the adoption-level API —
to run a realistic operational timeline: content ingestion, a Zipf
query storm that creates hotspots, capacity joins, a node failure
(survived via successor-list replication), and rebalancing after each
disturbance.

Run:  python examples/storage_service.py
"""

from repro.app import P2PSystem, SystemConfig
from repro.workloads import QueryWorkload


def show(system, label):
    s = system.stats()
    print(f"[{label:>22}] nodes={s.nodes:3d} vs={s.virtual_servers:4d} "
          f"objects={s.objects:5d} L/C={s.load_per_capacity:8.3g} "
          f"gini={s.unit_load_gini:.3f} heavy={100 * s.heavy_fraction:.0f}%")


def main():
    system = P2PSystem(
        SystemConfig(initial_nodes=64, vs_per_node=4, replication_factor=2, seed=11)
    )
    show(system, "bootstrap")

    # --- content ingestion --------------------------------------------
    for i in range(2000):
        system.put(f"content-{i:05d}", load=0.0)  # cold objects
    show(system, "2000 objects ingested")

    # --- query storm (Zipf popularity) --------------------------------
    storm = QueryWorkload(
        system.store, zipf_s=1.2, service_cost=3.0, routing_cost=0.05, rng=7
    )
    trace = storm.run(20_000)
    print(f"  query storm: {trace.queries} lookups, mean {trace.mean_hops:.1f} "
          f"overlay hops, hottest VS absorbed {trace.hottest_vs_load:.0f} load")
    show(system, "after query storm")

    report = system.rebalance()
    print(f"  rebalanced: heavy {report.heavy_before} -> {report.heavy_after}, "
          f"{len(report.transfers)} transfers moved {report.moved_load:.3g}")
    show(system, "after rebalance")

    # --- capacity expansion --------------------------------------------
    for _ in range(4):
        system.add_node(capacity=1000.0)
    show(system, "4 big nodes joined")

    # --- failure --------------------------------------------------------
    victim = system.ring.alive_nodes[10]
    survived = system.fail_node(victim)
    print(f"  node {victim.index} crashed; all data survived via replicas: "
          f"{survived}")
    show(system, "after crash")

    reports = system.rebalance_until_stable()
    print(f"  re-stabilised in {len(reports)} round(s)")
    show(system, "steady state")

    # Everything still consistent and retrievable.
    system.verify()
    sample = system.get("content-00042")
    print(f"\nspot check: content-00042 retrievable "
          f"(load {sample.load:g}); all invariants verified")


if __name__ == "__main__":
    main()
