#!/usr/bin/env python
"""A fully traced balancing round, with the paper's per-phase cost table.

Runs one proximity-aware round over a transit-stub topology with three
observers attached:

* a JSONL tracer (``out/traced_rebalance.jsonl``) — the structured
  record stream described in docs/observability.md;
* a metrics registry — cumulative counters/histograms, printed at the
  end;
* the round profile every ``BalanceReport`` carries — per-phase seconds
  and messages;

and finishes with the protocol cost sheet of ``repro.core.costs``
(control messages vs data moved over distance — the paper's two cost
axes), cross-checked against the trace on disk.

Run:  python examples/traced_rebalance.py
"""

import json
from pathlib import Path

from repro import BalancerConfig, GaussianLoadModel, LoadBalancer, build_scenario
from repro.core.costs import cost_sheet
from repro.obs import MetricsRegistry, Tracer
from repro.topology import TransitStubParams

# Run artifacts land in out/ (gitignored), never the repository root.
OUT_DIR = Path("out")
OUT_DIR.mkdir(exist_ok=True)
TRACE_PATH = OUT_DIR / "traced_rebalance.jsonl"

# 1. A proximity-aware scenario: 128 nodes on a small transit-stub
#    topology so transfers carry real latency-unit distances.
scenario = build_scenario(
    GaussianLoadModel(mu=1_000_000, sigma=2_000),
    num_nodes=128,
    vs_per_node=5,
    topology_params=TransitStubParams(
        transit_domains=2, transit_nodes_per_domain=4,
        stub_domains_per_transit=3, stub_nodes_mean=6,
    ),
    rng=42,
)

# 2. Attach the observers.  Tracing costs nothing until a tracer with a
#    real sink is passed, so this is where observability switches on.
tracer = Tracer.to_file(TRACE_PATH)
metrics = MetricsRegistry()
balancer = LoadBalancer(
    scenario.ring,
    BalancerConfig(proximity_mode="aware", epsilon=0.05, rendezvous_threshold=10),
    topology=scenario.topology,
    oracle=scenario.oracle,
    rng=7,
    tracer=tracer,
    metrics=metrics,
)

# 3. One round: LBI aggregation -> classification -> VSA -> VST.
report = balancer.run_round()
tracer.close()

print(report.summary_text())

# 4. The per-phase profile (carried by every report, traced or not).
print()
print("per-phase profile")
print(report.profile.table())

# 5. The paper's cost model over the same round: control messages
#    (tree + publication hops) vs data cost (bytes x distance).
sheet = cost_sheet(report, scenario.ring, rng=0)
print()
print("cost sheet (repro.core.costs)")
print(f"  control messages      : {sheet.control_messages}")
print(f"    lbi (both sweeps)   : {sheet.lbi_messages}")
print(f"    vsa upward          : {sheet.vsa_upward_messages}")
print(f"    publication (est.)  : {sheet.publication_messages}")
print(f"  transfers             : {sheet.transfers}")
print(f"  moved load            : {sheet.moved_load:.4g}")
print(f"  mean transfer distance: {sheet.mean_transfer_distance:.2f}")
print(f"  bytes x distance      : {sheet.bytes_distance_product:.4g}")

# 6. The cumulative metrics the registry accumulated.
print()
print("metrics registry")
print(metrics.format_text())

# 7. Reconcile the JSONL trace on disk with the report — the trace is
#    an exact, replayable account of the round.
records = [json.loads(line) for line in TRACE_PATH.read_text().splitlines()]
traced_load = sum(
    r["fields"]["load"] for r in records if r["name"] == "vst.transfer"
)
traced_pairs = sum(
    r["fields"]["paired"] for r in records if r["name"] == "vsa.rendezvous"
)
print()
print(f"wrote {TRACE_PATH} ({len(records)} records)")
print(f"  traced moved load {traced_load:.6g} == report {report.moved_load:.6g}: "
      f"{abs(traced_load - report.moved_load) < 1e-6}")
print(f"  traced pairings {traced_pairs} == report {len(report.vsa.assignments)}: "
      f"{traced_pairs == len(report.vsa.assignments)}")
