#!/usr/bin/env python
"""Proximity-aware vs proximity-ignorant transfer cost (figures 7/8).

Runs the identical load-balancing scenario twice on a transit-stub
topology — once publishing VSA information under landmark/Hilbert keys
(proximity-aware), once under random ring positions (ignorant) — and
prints the distribution of moved load over transfer distance.

The aware scheme's transfers concentrate at a few latency units
(intra-stub and intra-transit-domain); the ignorant scheme's spread
across the whole network.

Run:  python examples/proximity_transfer_cost.py           (reduced scale)
      REPRO_SCALE=paper python examples/proximity_transfer_cost.py
"""

import os

from repro import BalancerConfig, GaussianLoadModel, LoadBalancer, TS5K_LARGE, build_scenario
from repro.analysis import figure78_data

NUM_NODES = 4096 if os.environ.get("REPRO_SCALE") == "paper" else 2048


def run_mode(mode):
    # Same seed => identical ring, loads, topology and sites for both modes.
    scenario = build_scenario(
        GaussianLoadModel(mu=1_000_000, sigma=2_000),
        num_nodes=NUM_NODES,
        vs_per_node=5,
        topology_params=TS5K_LARGE,
        rng=42,
    )
    balancer = LoadBalancer(
        scenario.ring,
        BalancerConfig(proximity_mode=mode, epsilon=0.05, grid_bits=4),
        topology=scenario.topology,
        oracle=scenario.oracle,
        rng=7,
    )
    return balancer.run_round()


if __name__ == "__main__":
    print(f"running both modes on ts5k-large with {NUM_NODES} nodes ...")
    aware = run_mode("aware")
    ignorant = run_mode("ignorant")
    data = figure78_data(aware, ignorant, "ts5k-large")

    print(f"\n{'moved load within':>18} {'aware':>8} {'ignorant':>9}")
    for mark, frac in sorted(data.aware_within.items()):
        print(f"{mark:>14} hops {100 * frac:>7.1f}% "
              f"{100 * data.ignorant_within[mark]:>8.1f}%")

    print(f"\nmean transfer distance: aware {aware.transfer_distances.mean():.1f} "
          f"vs ignorant {ignorant.transfer_distances.mean():.1f} latency units")
    print(f"both fully balance: heavy after = "
          f"{aware.heavy_after} (aware), {ignorant.heavy_after} (ignorant)")
    print("\n[paper, ts5k-large: aware ~67% within 2 / ~86% within 10; "
          "ignorant ~13% within 10]")
