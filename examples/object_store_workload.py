#!/usr/bin/env python
"""Object-level workload: hotspots, splitting, and the full cost sheet.

Everything above the virtual-server abstraction made concrete: a DHT
storing half a million synthetic objects with Zipf popularity, a flash-
hot virtual server that no light node can absorb whole, virtual-server
splitting to tame it, and the protocol cost sheet (control messages vs
bytes-moved-over-distance) for the balancing round.

Run:  python examples/object_store_workload.py
"""

from repro import BalancerConfig, LoadBalancer, build_scenario, GaussianLoadModel
from repro.core import cost_sheet
from repro.dht import ObjectStore, split_until_movable


def main():
    # Ring + capacities from the standard scenario; loads come from the
    # object store instead of the synthetic load model.
    scenario = build_scenario(
        GaussianLoadModel(mu=1.0, sigma=0.0),  # placeholder, overwritten below
        num_nodes=256,
        vs_per_node=4,
        rng=42,
    )
    ring = scenario.ring
    for vs in ring.virtual_servers:
        vs.load = 0.0

    store = ObjectStore(ring)
    store.populate(50_000, mean_load=20.0, rng=7, popularity="zipf", zipf_s=1.1)
    store.check_consistency()
    print(f"{store.num_objects} objects, total load {store.total_load:.4g}")

    hottest = max(ring.virtual_servers, key=lambda v: v.load)
    print(f"hottest virtual server: load {hottest.load:.4g} "
          f"({store.transfer_bytes(hottest):.4g} bytes, "
          f"{len(store.objects_on(hottest))} objects) on node "
          f"{hottest.owner.index} (capacity {hottest.owner.capacity:g})")

    # Balance.  Giant virtual servers that no light node can take whole are
    # split first (sized to a tenth of the hottest, comfortably placeable).
    pieces = split_until_movable(
        ring, hottest, max_piece_load=hottest.load / 10, store=store
    )
    print(f"split the hottest VS into {len(pieces)} pieces")

    balancer = LoadBalancer(
        ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=9
    )
    report = balancer.run_round()
    print()
    print(report.summary_text())

    sheet = cost_sheet(report, ring, store=store, rng=0)
    print()
    print(f"control messages : {sheet.control_messages} "
          f"(LBI {sheet.lbi_messages}, VSA {sheet.vsa_upward_messages})")
    print(f"data moved       : {sheet.moved_bytes:.4g} bytes "
          f"in {sheet.transfers} transfers")

    store.check_consistency()
    ring.check_invariants()
    print("\nobject placement and ring invariants verified after balancing")


if __name__ == "__main__":
    main()
