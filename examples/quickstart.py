#!/usr/bin/env python
"""Quickstart: balance a heterogeneous Chord ring in ~20 lines.

Builds a 512-node Chord ring (5 virtual servers per node, Gnutella-like
capacities, Gaussian loads), runs one round of the paper's load
balancer, and prints the before/after summary.

Run:  python examples/quickstart.py
"""

from repro import BalancerConfig, GaussianLoadModel, LoadBalancer, build_scenario

# 1. Build a scenario: ring + capacities + virtual-server loads, from one seed.
scenario = build_scenario(
    GaussianLoadModel(mu=1_000_000, sigma=2_000),
    num_nodes=512,
    vs_per_node=5,
    rng=42,
)

# 2. Configure the balancer.  Figures 4-6 run in identifier space only, so
#    proximity mode is "ignorant"; epsilon=0.05 gives the slack that lets
#    every heavy node fully shed (see the epsilon ablation benchmark).
balancer = LoadBalancer(
    scenario.ring,
    BalancerConfig(proximity_mode="ignorant", epsilon=0.05),
    rng=7,
)

# 3. One round: LBI aggregation -> classification -> VSA -> VST.
report = balancer.run_round()

print(report.summary_text())
print()
print(f"worst unit load before : {report.unit_loads_before.max():12.1f}")
print(f"worst unit load after  : {report.unit_loads_after.max():12.2f}")
print(f"fair ratio (L/C)       : {report.system_lbi.load_per_capacity:12.2f}")
print(f"fraction of load moved : {report.moved_load / report.system_lbi.total_load:12.1%}")
