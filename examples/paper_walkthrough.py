#!/usr/bin/env python
"""A guided tour through every phase of the paper, with internals exposed.

Where the other examples call ``LoadBalancer.run_round()``, this one
performs the four phases by hand on a small system and prints what each
phase produces — the LBI records entering the tree, the aggregated
``<L, C, L_min>``, the classification table, the published VSA entries
and their keys, the rendezvous pairings per tree level, and the final
transfers.  Useful as executable documentation of Sections 3 and 4.

Run:  python examples/paper_walkthrough.py
"""

import collections

from repro import BalancerConfig, GaussianLoadModel, KnaryTree, build_scenario
from repro.core import NodeClass, ShedCandidate, SpareCapacity, VSASweep
from repro.core.classification import classify_all
from repro.core.lbi import aggregate_lbi, collect_lbi_reports
from repro.core.placement import RandomVSPlacement
from repro.core.selection import select_shed_subset
from repro.core.vst import execute_transfers

EPSILON = 0.05


def main():
    scenario = build_scenario(
        GaussianLoadModel(mu=10_000, sigma=50.0), num_nodes=16, vs_per_node=3, rng=4
    )
    ring = scenario.ring
    print("== the system ==")
    for node in ring.nodes:
        vs_loads = ", ".join(f"{vs.load:.0f}" for vs in node.virtual_servers)
        print(f"  node {node.index:2d}  capacity {node.capacity:>6g}  "
              f"load {node.load:8.1f}  virtual servers [{vs_loads}]")

    # ------------------------------------------------------------------
    print("\n== phase 1: LBI aggregation over the K-nary tree ==")
    tree = KnaryTree(ring, k=2)
    reports = collect_lbi_reports(ring, tree, rng=1)
    print(f"  {sum(len(r) for _, r in reports.values())} LBI reports entered "
          f"{len(reports)} distinct KT leaves")
    system, trace = aggregate_lbi(tree, reports)
    print(f"  aggregated <L, C, L_min> = <{system.total_load:.1f}, "
          f"{system.total_capacity:g}, {system.min_vs_load:.2f}>")
    print(f"  tree height {trace.tree_height}; {trace.upward_messages} upward "
          f"messages over {trace.upward_rounds} rounds; dissemination mirrors it")

    # ------------------------------------------------------------------
    print("\n== phase 2: classification (T_i = (1+eps)(L/C)C_i) ==")
    cls = classify_all(ring.alive_nodes, system, EPSILON)
    for kind in (NodeClass.HEAVY, NodeClass.LIGHT, NodeClass.NEUTRAL):
        members = [i for i, c in cls.classes.items() if c is kind]
        print(f"  {kind.value:>7}: {members}")

    # ------------------------------------------------------------------
    print("\n== phase 3: virtual server assignment ==")
    placement = RandomVSPlacement(ring, rng=2)
    published = []
    for node in ring.alive_nodes:
        kind = cls.classes[node.index]
        if kind is NodeClass.HEAVY:
            loads = [vs.load for vs in node.virtual_servers]
            excess = node.load - cls.targets[node.index]
            shed = select_shed_subset(loads, excess)
            key = placement.key_for(node)
            for i in shed:
                published.append((key, ShedCandidate(
                    load=loads[i],
                    vs_id=node.virtual_servers[i].vs_id,
                    node_index=node.index,
                )))
            print(f"  heavy node {node.index:2d} sheds {len(shed)} of "
                  f"{len(loads)} virtual servers (excess {excess:.1f}) "
                  f"publishing at key {key}")
        elif kind is NodeClass.LIGHT:
            delta = cls.targets[node.index] - node.load
            if delta > 0:
                published.append(
                    (placement.key_for(node),
                     SpareCapacity(delta=delta, node_index=node.index))
                )
                print(f"  light node {node.index:2d} advertises spare "
                      f"{delta:.1f}")

    sweep = VSASweep(tree, threshold=4, min_vs_load=system.min_vs_load)
    result = sweep.run(published)
    print(f"\n  bottom-up sweep over {result.rounds} levels:")
    for level in sorted(result.pairings_by_level, reverse=True):
        count = result.pairings_by_level[level]
        if count:
            print(f"    level {level:2d}: {count} pairings")
    print(f"  {len(result.assignments)} assignments, "
          f"{len(result.unassigned_heavy)} candidates left unassigned")

    # ------------------------------------------------------------------
    print("\n== phase 4: virtual server transfers ==")
    transfers = execute_transfers(ring, result.assignments)
    moves = collections.Counter(
        (t.source_node, t.target_node) for t in transfers
    )
    for (src, dst), n in sorted(moves.items()):
        total = sum(t.load for t in transfers
                    if (t.source_node, t.target_node) == (src, dst))
        print(f"  node {src:2d} -> node {dst:2d}: {n} virtual servers, "
              f"load {total:.1f}")

    cls_after = classify_all(ring.alive_nodes, system, EPSILON)
    heavy_after = [i for i, c in cls_after.classes.items() if c is NodeClass.HEAVY]
    print(f"\nheavy nodes after balancing: {heavy_after or 'none'}")
    ring.check_invariants()
    print("ring invariants verified")


if __name__ == "__main__":
    main()
