#!/usr/bin/env python
"""Churn, K-nary tree self-repair, and periodic rebalancing.

Exercises the operational story of Section 3.1.1: peers join, leave and
crash; the K-nary tree repairs itself with a bounded number of periodic
maintenance passes; and the balancer keeps the system fair across
churn epochs.

Run:  python examples/churn_and_repair.py
"""

from repro import BalancerConfig, GaussianLoadModel, KnaryTree, LoadBalancer, build_scenario
from repro.sim import ChurnProcess
from repro.workloads import GnutellaCapacityProfile


def main():
    scenario = build_scenario(
        GaussianLoadModel(mu=100_000, sigma=500),
        num_nodes=128,
        vs_per_node=4,
        rng=42,
    )
    ring = scenario.ring
    tree = KnaryTree(ring, k=2)
    tree.build_full()
    print(f"initial system: {len(ring.alive_nodes)} nodes, "
          f"{ring.num_virtual_servers} virtual servers, "
          f"tree height {tree.height()}, {tree.node_count} KT nodes")

    profile = GnutellaCapacityProfile()
    balancer = LoadBalancer(
        ring, BalancerConfig(proximity_mode="ignorant", epsilon=0.05), rng=7
    )

    for epoch in range(3):
        # --- churn phase -------------------------------------------------
        process = ChurnProcess(
            ring,
            tree,
            join_rate=1.0,
            leave_rate=0.5,
            crash_rate=0.5,
            vs_per_join=4,
            capacity_sampler=lambda gen: float(profile.sample(1, gen)[0]),
            rng=100 + epoch,
        )
        trace = process.run(num_events=20)
        print(f"\nepoch {epoch}: {trace.stats.joins} joins, "
              f"{trace.stats.leaves} leaves, {trace.stats.crashes} crashes; "
              f"tree repaired within {trace.max_refreshes} maintenance passes "
              f"per event (height {tree.height()})")
        tree.check_invariants()
        ring.check_invariants()

        # --- rebalance phase ----------------------------------------------
        report = balancer.run_round()
        print(f"         rebalance: heavy {report.heavy_before} -> "
              f"{report.heavy_after}, moved {report.moved_load:.3g} load in "
              f"{len(report.transfers)} transfers "
              f"({report.vsa.rounds} VSA rounds)")

    print(f"\nfinal system: {len(ring.alive_nodes)} nodes, "
          f"{ring.num_virtual_servers} virtual servers")


if __name__ == "__main__":
    main()
