"""Benchmark: periodic balancing against dynamic loads.

Stress of the paper's stability assumption ("the load on a virtual
server is stable over the timescale it takes for the load balancing
algorithm to perform"): loads drift log-normally between rounds and
occasional flash crowds multiply one virtual server's load 20x.  The
balancer must re-absorb the perturbation each epoch.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core import BalancerConfig, LoadBalancer
from repro.sim import LoadDynamics, run_dynamic_simulation
from repro.workloads import GaussianLoadModel, build_scenario


def test_dynamic_load_tracking(benchmark, settings, report_lines):
    def run():
        scenario = build_scenario(
            GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
            num_nodes=settings.num_nodes,
            vs_per_node=settings.vs_per_node,
            rng=settings.seed,
        )
        balancer = LoadBalancer(
            scenario.ring,
            BalancerConfig(proximity_mode="ignorant", epsilon=settings.epsilon),
            rng=settings.balancer_seed,
        )
        dynamics = LoadDynamics(
            drift_sigma=0.15,
            flash_crowd_prob=0.5,
            flash_crowd_factor=20.0,
            rng=settings.seed + 1,
        )
        return run_dynamic_simulation(balancer, dynamics, epochs=6)

    trace = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"  {'epoch':>6} {'heavy before':>13} {'heavy after':>12} "
             f"{'moved load':>12} {'gini before':>12} {'gini after':>11}"]
    for e in trace.epochs:
        lines.append(
            f"  {e.epoch:>6} {e.heavy_before:>13} {e.heavy_after:>12} "
            f"{e.moved_load:>12.4g} {e.gini_before:>12.3f} {e.gini_after:>11.3f}"
        )
    emit(report_lines, "Extension: periodic balancing under load dynamics", "\n".join(lines))

    # Every epoch resolves the bulk of its heavy population; perturbations
    # do not accumulate (last epoch no worse than the first's aftermath).
    for e in trace.epochs:
        assert e.heavy_after <= max(3, e.heavy_before // 4)
    first_moved = trace.epochs[0].moved_load
    for e in trace.epochs[1:]:
        assert e.moved_load <= first_moved  # steady-state cheaper than cold start
