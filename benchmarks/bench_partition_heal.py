"""Benchmark: partition sweep — split shape vs heal outcome.

Robustness experiment: several consecutive balancing rounds per
component count against the same scenario, with the ring cut mid-round
into that many pieces and healed two rounds later.  Degraded rounds
balance per component, in-flight transfers ride the books, and the heal
reconciles every suspended transfer under the global conservation gate
— the bench asserts the lifecycle completed, conserved and reproduced
for every split shape.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import partition


def test_partition_heal_sweep(benchmark, settings, report_lines):
    result = benchmark.pedantic(
        lambda: partition.run(settings, component_counts=(2, 4)),
        rounds=1,
        iterations=1,
    )
    emit(report_lines, "Robustness: partition heal sweep", result.format_rows())

    for row in result.rows:
        # Every point activated, degraded and healed back to one ring.
        assert row.partitioned_rounds >= 1
        assert row.final_epoch == 2
        # The heal accounted for every suspended transfer.
        assert row.suspended == row.healed_commits + row.healed_rollbacks
        assert row.regrafts >= row.num_components - 1
        # Degraded rounds still moved load, and the history replays.
        assert row.moved_load > 0
        assert row.signature != ""
