"""Benchmark: Byzantine defense cost and damage claw-back.

Companion bench of the :mod:`repro.experiments.byzantine` sweep.  Three
paired workloads over one seeded scenario:

* **clean** — no adversary plan at all (the cost floor);
* **undefended** — a 10% attacker draft with the defense off (what the
  lies cost the honest population);
* **defended** — the same attack with :class:`~repro.adversary.trust.
  TrustedAggregation` armed (what the defense costs, and how much
  damage it claws back).

Reported: wall-clock per configuration, the defense's overhead factor
over clean rounds, and the honest-damage ratio defended/undefended.
The digest assertions mirror the acceptance tests — clean rounds must
be byte-identical to an armed-but-empty plan, and the defended run must
strictly reduce honest excess load.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit
from repro.adversary import AdversaryPlan
from repro.experiments import byzantine
from repro.experiments.common import ExperimentSettings


def _run(settings: ExperimentSettings, plan: AdversaryPlan | None):
    balancer = byzantine._build_balancer(settings, plan)
    start = time.perf_counter()
    reports = byzantine._run_rounds(balancer, byzantine.ROUNDS_PER_POINT)
    seconds = time.perf_counter() - start
    attackers = (
        frozenset(balancer.adversary.attacker_indices)
        if balancer.adversary is not None
        else frozenset()
    )
    _, damage = byzantine._honest_damage(
        balancer, settings.epsilon, attackers
    )
    return seconds, damage, [r.canonical_digest() for r in reports]


def run_defense_bench(num_nodes: int = 256, seed: int = 42):
    """Run the three paired workloads; return the per-config rows."""
    settings = ExperimentSettings(num_nodes=num_nodes, seed=seed)
    clean = _run(settings, None)
    dormant = _run(settings, AdversaryPlan(seed=13, fraction=0.0))
    undefended = _run(
        settings, AdversaryPlan(seed=13, fraction=0.10, defense=False)
    )
    defended = _run(
        settings, AdversaryPlan(seed=13, fraction=0.10, defense=True)
    )
    return clean, dormant, undefended, defended


def _format(clean, dormant, undefended, defended) -> str:
    overhead = defended[0] / clean[0] if clean[0] > 0 else float("inf")
    claw = (
        defended[1] / undefended[1] if undefended[1] > 0 else float("nan")
    )
    return (
        f"clean      : {clean[0]:7.3f}s  damage {clean[1]:12.1f}\n"
        f"undefended : {undefended[0]:7.3f}s  damage {undefended[1]:12.1f}"
        "  (f=0.10, lies unchecked)\n"
        f"defended   : {defended[0]:7.3f}s  damage {defended[1]:12.1f}"
        f"  ({overhead:4.2f}x clean wall-clock)\n"
        f"residual damage defended/undefended: {claw:6.3f} "
        "(dormant-plan digests identical to clean: "
        f"{dormant[2] == clean[2]})"
    )


def test_byzantine_defense(benchmark, report_lines):
    result = benchmark.pedantic(
        lambda: run_defense_bench(num_nodes=256),
        rounds=1,
        iterations=1,
    )
    clean, dormant, undefended, defended = result
    emit(
        report_lines,
        "Robustness: Byzantine defense cost vs damage claw-back",
        _format(clean, dormant, undefended, defended),
    )
    assert dormant[2] == clean[2], "dormant plan changed clean digests"
    assert defended[1] < undefended[1], "defense did not reduce damage"


def main(argv: list[str] | None = None) -> int:
    """CI smoke: reduced scale, same identities and damage reduction."""
    import argparse

    parser = argparse.ArgumentParser(prog="bench_byzantine_defense")
    parser.add_argument("--smoke", action="store_true", help="reduced scale")
    args = parser.parse_args(argv)
    num_nodes = 64 if args.smoke else 256
    clean, dormant, undefended, defended = run_defense_bench(
        num_nodes=num_nodes
    )
    print(_format(clean, dormant, undefended, defended))
    if dormant[2] != clean[2]:
        print("FAIL: dormant plan changed clean digests")
        return 1
    if defended[1] >= undefended[1]:
        print("FAIL: defense did not reduce honest damage")
        return 1
    print("byzantine defense bench OK: dormant identical, damage reduced")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
