"""Benchmark suite (pytest-benchmark): one bench per paper figure plus ablations."""
