"""Ablation: K-nary tree degree (paper checked K=2 against K=8).

Measures tree height, phase rounds and balance quality for K in
{2, 4, 8}.  Expected: higher K shortens every phase without changing
balance quality ("we observed similar results on the degree of 8").
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import emit
from repro.core import BalancerConfig, LoadBalancer
from repro.workloads import GaussianLoadModel, build_scenario


def run_for_degree(settings, k):
    scenario = build_scenario(
        GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
        num_nodes=settings.num_nodes,
        vs_per_node=settings.vs_per_node,
        rng=settings.seed,
    )
    lb = LoadBalancer(
        scenario.ring,
        BalancerConfig(
            proximity_mode="ignorant", epsilon=settings.epsilon, tree_degree=k
        ),
        rng=settings.balancer_seed,
    )
    return lb.run_round()


def test_ablation_tree_degree(benchmark, settings, report_lines):
    degrees = (2, 4, 8)

    def run_all():
        return {k: run_for_degree(settings, k) for k in degrees}

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"  {'K':>3} {'height':>7} {'agg rounds':>11} {'vsa rounds':>11} "
             f"{'heavy before':>13} {'heavy after':>12} {'moved load':>12}"]
    for k, r in reports.items():
        lines.append(
            f"  {k:>3} {r.tree_height:>7} {r.aggregation.total_rounds:>11} "
            f"{r.vsa.rounds:>11} {r.heavy_before:>13} {r.heavy_after:>12} "
            f"{r.moved_load:>12.4g}"
        )
    emit(report_lines, "Ablation: tree degree K", "\n".join(lines))

    # Higher degree => shallower tree and fewer rounds.
    assert reports[8].tree_height < reports[4].tree_height < reports[2].tree_height
    assert reports[8].vsa.rounds < reports[2].vsa.rounds
    # Balance quality unchanged (paper's observation).
    for r in reports.values():
        assert r.heavy_after == 0
    moved = [r.moved_load for r in reports.values()]
    assert max(moved) < 1.2 * min(moved)
