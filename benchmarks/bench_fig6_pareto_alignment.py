"""Benchmark regenerating Figure 6: capacity alignment under Pareto loads.

Same alignment claim as figure 5 but with the heavy-tailed (infinite
variance) Pareto load model — the stress case.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import fig6


def test_fig6_pareto_alignment(benchmark, settings, report_lines):
    result = benchmark.pedantic(
        lambda: fig6.run(settings), rounds=1, iterations=1
    )
    emit(report_lines, "Figure 6 (Pareto capacity alignment)", result.format_rows())

    means = result.data.mean_loads_after()
    # Top capacity category ends up with the most load; overall heavy
    # population nearly eliminated (rare unmovable tail VSs may remain).
    assert means[-1] == max(means)
    assert result.report.heavy_after <= max(2, result.report.heavy_before // 20)
