"""Benchmark: balancing query-induced (bandwidth/CPU) hotspots.

The paper's load abstraction covers "storage, bandwidth or CPU"; the
figures use synthetic per-VS loads.  This bench drives the third kind:
a Zipf lookup storm whose service load concentrates on popular objects'
owners, then measures how one balancing round flattens the worst node's
overload — the tail-latency proxy an operator cares about.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.app import P2PSystem, SystemConfig
from repro.workloads import QueryWorkload


def test_query_hotspot_balancing(benchmark, settings, report_lines):
    def run():
        system = P2PSystem(
            SystemConfig(
                initial_nodes=min(settings.num_nodes, 256),
                vs_per_node=settings.vs_per_node,
                epsilon=settings.epsilon,
                seed=settings.seed,
            )
        )
        for i in range(8000):
            system.put(f"content-{i:05d}", load=0.0)
        storm = QueryWorkload(
            system.store, zipf_s=0.9, service_cost=2.0, rng=settings.balancer_seed
        )
        storm.run(40_000)
        before = system.stats()
        report = system.rebalance()
        after = system.stats()
        system.verify()
        return before, report, after

    before, report, after = benchmark.pedantic(run, rounds=1, iterations=1)

    import numpy as np

    ratio = report.system_lbi.load_per_capacity
    p99_before = np.percentile(report.unit_loads_before, 99) / ratio
    p99_after = np.percentile(report.unit_loads_after, 99) / ratio
    lines = [
        f"  heavy fraction: {100 * before.heavy_fraction:.1f}% -> "
        f"{100 * after.heavy_fraction:.1f}%",
        f"  p99 node overload (x fair share): {p99_before:.1f}x -> "
        f"{p99_after:.2f}x",
        f"  transfers: {len(report.transfers)}, moved load {report.moved_load:.4g}",
        "  [note: a single ultra-hot *object* is atomic — below virtual-server",
        "   granularity — and needs replication/caching, which is out of the",
        "   paper's scope; the p99 captures what VS movement can fix]",
    ]
    emit(report_lines, "Extension: balancing Zipf query hotspots", "\n".join(lines))

    assert before.heavy_fraction > 0.3  # the storm really skews the system
    assert after.heavy_fraction < before.heavy_fraction / 5
    assert p99_after < p99_before / 5
