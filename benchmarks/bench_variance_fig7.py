"""Benchmark: seed variance (error bars) of the figure-7 numbers.

The paper ran 10 GT-ITM graph instances per topology; this bench
replicates the ts5k-large experiment across fresh seeds and reports
mean +/- std for the headline within-distance fractions, confirming the
aware-vs-ignorant gap is not a single-draw artifact.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import emit
from repro.experiments import variance


def test_variance_fig7(benchmark, settings, report_lines):
    s = replace(settings, num_nodes=max(settings.num_nodes, 1024))
    result = benchmark.pedantic(
        lambda: variance.run(s, num_seeds=3), rounds=1, iterations=1
    )
    emit(report_lines, "Seed variance of figure 7", result.format_rows())

    m = result.metrics
    # In every replication, aware dominates ignorant.
    for a, b in zip(
        m["aware_within_10"].values, m["ignorant_within_10"].values
    ):
        assert a > b
    # And the gap is far larger than the seed noise.
    gap = m["aware_within_10"].mean - m["ignorant_within_10"].mean
    noise = m["aware_within_10"].std + m["ignorant_within_10"].std
    assert gap > 2 * noise
