"""Benchmark: full protocol cost sheet, aware vs ignorant.

The paper's efficiency argument in one table: proximity-aware balancing
pays a *control-plane* premium (publishing VSA records into the DHT
costs O(log #VS) overlay hops each) and wins it back many times over on
the *data plane* (bytes x distance of actual virtual-server transfers,
the bandwidth consumption of figure 7's discussion).
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import emit
from repro.core import BalancerConfig, LoadBalancer, cost_sheet
from repro.topology import TS5K_LARGE
from repro.workloads import GaussianLoadModel, build_scenario


def run_mode(settings, mode):
    scenario = build_scenario(
        GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
        num_nodes=settings.num_nodes,
        vs_per_node=settings.vs_per_node,
        topology_params=TS5K_LARGE,
        rng=settings.seed,
    )
    balancer = LoadBalancer(
        scenario.ring,
        BalancerConfig(
            proximity_mode=mode, epsilon=settings.epsilon, grid_bits=settings.grid_bits
        ),
        topology=scenario.topology,
        oracle=scenario.oracle,
        rng=settings.balancer_seed,
    )
    report = balancer.run_round()
    return cost_sheet(report, scenario.ring, rng=0)


def test_cost_sheet_aware_vs_ignorant(benchmark, settings, report_lines):
    s = replace(settings, num_nodes=max(settings.num_nodes, 2048))

    def run_all():
        return {mode: run_mode(s, mode) for mode in ("aware", "ignorant")}

    sheets = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"  {'':>22} {'aware':>14} {'ignorant':>14}"]
    rows = [
        ("LBI messages", "lbi_messages", "d"),
        ("VSA upward messages", "vsa_upward_messages", "d"),
        ("publication messages", "publication_messages", "d"),
        ("control total", "control_messages", "d"),
        ("transfers", "transfers", "d"),
        ("moved load", "moved_load", "g"),
        ("load x distance", "load_weighted_distance", "g"),
        ("mean transfer dist", "mean_transfer_distance", "f"),
    ]
    for label, attr, kind in rows:
        a = getattr(sheets["aware"], attr)
        b = getattr(sheets["ignorant"], attr)
        if kind == "d":
            lines.append(f"  {label:>22} {a:>14d} {b:>14d}")
        elif kind == "f":
            lines.append(f"  {label:>22} {a:>14.2f} {b:>14.2f}")
        else:
            lines.append(f"  {label:>22} {a:>14.4g} {b:>14.4g}")
    ratio = (
        sheets["ignorant"].load_weighted_distance
        / sheets["aware"].load_weighted_distance
    )
    lines.append(f"  data-plane saving (load x distance): {ratio:.1f}x")
    emit(report_lines, "Extension: protocol cost sheet (ts5k-large)", "\n".join(lines))

    aware, ignorant = sheets["aware"], sheets["ignorant"]
    # Aware pays for publication on the control plane ...
    assert aware.publication_messages > 0
    assert ignorant.publication_messages == 0
    # ... and wins on the data plane by a wide margin.
    assert aware.load_weighted_distance < ignorant.load_weighted_distance / 1.5
