"""Ablation: periodic vs imbalance-triggered balancing under dynamics.

The paper runs its protocol "periodically at an interval T".  With an
explicit trigger policy the system can skip the heavyweight VSA/VST
phases when the cheap LBI measurement shows the system is still
balanced — fewer control messages and transfers for the same worst-case
imbalance bound.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core import BalancerConfig, LoadBalancer
from repro.core.trigger import (
    ImbalanceTriggeredPolicy,
    PeriodicPolicy,
    run_with_policy,
)
from repro.sim import LoadDynamics
from repro.workloads import GaussianLoadModel, build_scenario


def make_balancer(settings):
    sc = build_scenario(
        GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
        num_nodes=settings.num_nodes,
        vs_per_node=settings.vs_per_node,
        rng=settings.seed,
    )
    return LoadBalancer(
        sc.ring,
        BalancerConfig(proximity_mode="ignorant", epsilon=settings.epsilon),
        rng=settings.balancer_seed,
    )


def test_ablation_trigger_policy(benchmark, settings, report_lines):
    def run_all():
        out = {}
        for name, policy in [
            ("periodic", PeriodicPolicy()),
            ("trigger-10%", ImbalanceTriggeredPolicy(0.10)),
            ("trigger-25%", ImbalanceTriggeredPolicy(0.25)),
        ]:
            trace = run_with_policy(
                make_balancer(settings),
                LoadDynamics(drift_sigma=0.05, rng=settings.seed + 1),
                policy,
                epochs=8,
            )
            out[name] = trace
        return out

    traces = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"  {'policy':>12} {'rounds run':>11} {'moved load':>12} "
             f"{'ctrl messages':>14} {'max heavy frac':>15}"]
    for name, t in traces.items():
        lines.append(
            f"  {name:>12} {t.rounds_run:>11} {t.total_moved:>12.4g} "
            f"{t.total_control_messages:>14} {100 * t.max_heavy_fraction:>14.1f}%"
        )
    emit(report_lines, "Ablation: balancing trigger policy", "\n".join(lines))

    periodic = traces["periodic"]
    loose = traces["trigger-25%"]
    assert loose.rounds_run < periodic.rounds_run
    assert loose.total_control_messages < periodic.total_control_messages
    # Triggered policies still bound the imbalance they tolerate.
    assert loose.max_heavy_fraction <= 0.95
