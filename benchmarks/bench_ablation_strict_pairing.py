"""Ablation: strict heaviest-first pairing vs skip-and-continue.

Section 3.4 says pairing repeats "until the two lists become empty or no
more appropriate VSA can be achieved".  Read literally, an unmatchable
heaviest candidate stops the whole rendezvous (strict mode); our default
sets it aside and keeps pairing lighter candidates at the same (deeper,
closer) rendezvous.  This bench shows the default pairs at least as much
load and at least as deep.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core import BalancerConfig, LoadBalancer
from repro.workloads import ParetoLoadModel, build_scenario


def run_mode(settings, strict):
    scenario = build_scenario(
        ParetoLoadModel(mu=settings.mu),  # heavy tail => unmatchable giants
        num_nodes=settings.num_nodes,
        vs_per_node=settings.vs_per_node,
        rng=settings.seed,
    )
    lb = LoadBalancer(
        scenario.ring,
        BalancerConfig(
            proximity_mode="ignorant",
            epsilon=settings.epsilon,
            strict_heaviest_first=strict,
        ),
        rng=settings.balancer_seed,
    )
    return lb.run_round()


def test_ablation_strict_pairing(benchmark, settings, report_lines):
    def run_all():
        return {strict: run_mode(settings, strict) for strict in (False, True)}

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"  {'strict':>7} {'assignments':>12} {'moved load':>12} "
             f"{'unassigned':>11} {'heavy after':>12}"]
    for strict, r in reports.items():
        lines.append(
            f"  {str(strict):>7} {len(r.transfers):>12} {r.moved_load:>12.4g} "
            f"{len(r.vsa.unassigned_heavy):>11} {r.heavy_after:>12}"
        )
    emit(report_lines, "Ablation: strict heaviest-first pairing", "\n".join(lines))

    default, strict = reports[False], reports[True]
    # Skip-and-continue never assigns less than the literal reading.
    assert len(default.transfers) >= len(strict.transfers)
    assert default.heavy_after <= strict.heavy_after
