"""Micro-benchmarks of the hot components (true pytest-benchmark timing).

These are throughput benchmarks, not figure regenerations: ring
ownership queries, Hilbert encoding, tree construction, Dijkstra rows
and the rendezvous pairing loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ShedCandidate, SpareCapacity, pair_rendezvous
from repro.dht import ChordRing, lookup_hops
from repro.idspace import IdentifierSpace
from repro.ktree import KnaryTree
from repro.proximity import HilbertCurve
from repro.util.rng import ensure_rng
from repro.topology import DistanceOracle, TransitStubParams, generate_transit_stub


@pytest.fixture(scope="module")
def ring():
    r = ChordRing(IdentifierSpace(bits=32))
    r.populate(1024, 5, [1.0] * 1024, rng=0)
    return r


def test_ring_successor_queries(benchmark, ring):
    gen = ensure_rng(1)
    keys = gen.integers(0, ring.space.size, size=1000)

    def run():
        for k in keys.tolist():
            ring.successor(int(k))

    benchmark(run)


def test_ring_bulk_successors(benchmark, ring):
    gen = ensure_rng(2)
    keys = gen.integers(0, ring.space.size, size=10_000)
    benchmark(lambda: ring.successors(keys))


def test_chord_lookup_routing(benchmark, ring):
    gen = ensure_rng(3)
    starts = [ring.virtual_servers[int(i)] for i in gen.integers(0, 5120, size=50)]
    keys = gen.integers(0, ring.space.size, size=50)

    def run():
        for s, k in zip(starts, keys.tolist()):
            lookup_hops(ring, s, int(k))

    benchmark(run)


def test_hilbert_encode_15d(benchmark):
    hc = HilbertCurve(dims=15, bits=4)
    gen = ensure_rng(4)
    points = gen.integers(0, 16, size=(500, 15))
    benchmark(lambda: hc.encode_many(points))


def test_lazy_tree_materialisation(benchmark, ring):
    gen = ensure_rng(5)
    keys = gen.integers(0, ring.space.size, size=500).tolist()

    def run():
        tree = KnaryTree(ring, 2)
        for k in keys:
            tree.ensure_leaf_for_key(int(k))
        return tree.node_count

    benchmark(run)


def test_dijkstra_row(benchmark):
    topo = generate_transit_stub(
        TransitStubParams(3, 2, 3, 20, name="micro-ts"), rng=6
    )

    def run():
        oracle = DistanceOracle(topo)  # fresh cache each round
        oracle.distances_from(0)

    benchmark(run)


def test_rendezvous_pairing_loop(benchmark):
    gen = ensure_rng(7)
    heavy = [
        ShedCandidate(load=float(l), vs_id=i, node_index=i)
        for i, l in enumerate(gen.uniform(1, 100, size=500))
    ]
    light = [
        SpareCapacity(delta=float(d), node_index=1000 + i)
        for i, d in enumerate(gen.uniform(1, 200, size=500))
    ]
    benchmark(lambda: pair_rendezvous(list(heavy), list(light), 1.0, level=3))
