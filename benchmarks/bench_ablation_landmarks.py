"""Ablation: landmark count and placement strategy.

The paper uses 15 landmarks and warns that too few cause false
clustering (physically distant nodes with similar vectors).  This bench
sweeps the landmark count and compares random vs spread placement by
the resulting transfer-distance concentration.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import emit
from repro.core import BalancerConfig, LoadBalancer
from repro.topology import TransitStubParams
from repro.workloads import GaussianLoadModel, build_scenario

LANDMARK_COUNTS = (2, 5, 15)

ABLATION_TS = TransitStubParams(
    transit_domains=4,
    transit_nodes_per_domain=2,
    stub_domains_per_transit=3,
    stub_nodes_mean=18,
    name="landmark-ablation-ts",
)


def run_config(settings, m, strategy):
    scenario = build_scenario(
        GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
        num_nodes=min(settings.num_nodes, 384),
        vs_per_node=settings.vs_per_node,
        topology_params=ABLATION_TS,
        rng=settings.seed,
    )
    lb = LoadBalancer(
        scenario.ring,
        BalancerConfig(
            proximity_mode="aware",
            epsilon=settings.epsilon,
            num_landmarks=m,
            landmark_strategy=strategy,
            grid_bits=settings.grid_bits,
        ),
        topology=scenario.topology,
        oracle=scenario.oracle,
        rng=settings.balancer_seed,
    )
    return lb.run_round()


def test_ablation_landmarks(benchmark, settings, report_lines):
    def run_all():
        out = {}
        for m in LANDMARK_COUNTS:
            out[(m, "spread")] = run_config(settings, m, "spread")
        out[(15, "random")] = run_config(settings, 15, "random")
        return out

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"  {'landmarks':>10} {'strategy':>9} {'mean distance':>14} "
             f"{'within 6':>9} {'heavy after':>12}"]
    for (m, strat), r in reports.items():
        lines.append(
            f"  {m:>10} {strat:>9} {r.transfer_distances.mean():>14.2f} "
            f"{100 * r.moved_load_within(6):>8.1f}% {r.heavy_after:>12}"
        )
    emit(report_lines, "Ablation: landmark count/strategy", "\n".join(lines))

    # All configurations balance; 15 landmarks should not do worse than 2
    # on distance concentration (false-clustering argument).
    for r in reports.values():
        assert r.heavy_after <= r.heavy_before // 20
    assert (
        reports[(15, "spread")].moved_load_within(6)
        >= reports[(2, "spread")].moved_load_within(6) * 0.8
    )
