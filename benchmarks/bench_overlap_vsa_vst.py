"""Benchmark: the VSA/VST overlap claim (paper Section 1.2).

"Our approach allows VSA and VST to partly overlap for fast load
balancing."  Transfers paired at deep rendezvous points start while the
sweep is still climbing; this bench measures the completion-time
speedup of overlapping over the strawman that waits for the root —
and shows the speedup is larger in proximity-aware mode, where more
load pairs deep.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import emit
from repro.core import BalancerConfig, LoadBalancer
from repro.sim import simulate_timed_round
from repro.topology import TS5K_LARGE
from repro.workloads import GaussianLoadModel, build_scenario


def timed_for_mode(settings, mode):
    scenario = build_scenario(
        GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
        num_nodes=settings.num_nodes,
        vs_per_node=settings.vs_per_node,
        topology_params=TS5K_LARGE,
        rng=settings.seed,
    )
    balancer = LoadBalancer(
        scenario.ring,
        BalancerConfig(
            proximity_mode=mode, epsilon=settings.epsilon, grid_bits=settings.grid_bits
        ),
        topology=scenario.topology,
        oracle=scenario.oracle,
        rng=settings.balancer_seed,
    )
    return simulate_timed_round(balancer, transfer_cost_per_load=0.01)


def test_overlap_vsa_vst(benchmark, settings, report_lines):
    s = replace(settings, num_nodes=max(settings.num_nodes, 1024))

    def run_all():
        return {mode: timed_for_mode(s, mode) for mode in ("aware", "ignorant")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"  {'mode':>9} {'vsa done':>9} {'last VST (overlap)':>19} "
             f"{'last VST (seq.)':>16} {'speedup':>8}"]
    for mode, (report, timing) in results.items():
        lines.append(
            f"  {mode:>9} {timing.vsa_completion_time:>9.1f} "
            f"{timing.last_transfer_overlapped:>19.1f} "
            f"{timing.last_transfer_sequential:>16.1f} "
            f"{timing.overlap_speedup:>8.2f}x"
        )
    emit(report_lines, "Claim: VSA/VST overlap speeds up balancing", "\n".join(lines))

    for report, timing in results.values():
        assert timing.overlap_speedup >= 1.0
    # Aware mode pairs deeper => overlapping buys at least as much.
    aware_speedup = results["aware"][1].overlap_speedup
    ignorant_speedup = results["ignorant"][1].overlap_speedup
    assert aware_speedup >= ignorant_speedup * 0.95
    assert aware_speedup > 1.01
