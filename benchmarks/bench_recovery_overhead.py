"""Benchmark: crash-recovery durability overhead vs plain rounds.

The durable path adds a snapshot checkpoint per round plus a fsynced
write-ahead journal record per transfer intent.  This bench measures
that tax directly: the same seeded scenario run (a) plain and (b)
through a :class:`~repro.recovery.RecoveryManager`, asserting the
digests stay byte-identical (durability must be a pure tax, never a
behavior change) and reporting the per-round overhead factor.

``main(['--smoke'])`` runs a reduced configuration and asserts the
same identity plus a generous overhead ceiling — the CI smoke wired
into ``scripts/verify.sh``.
"""

from __future__ import annotations

import shutil
import tempfile
import time

from benchmarks.conftest import emit
from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.recovery import RecoveryManager
from repro.workloads import GaussianLoadModel, build_scenario


def _factory(num_nodes: int, seed: int):
    config = BalancerConfig(
        proximity_mode="ignorant", epsilon=0.05, tree_degree=2
    )

    def build() -> LoadBalancer:
        ring = build_scenario(
            GaussianLoadModel(mu=1e6, sigma=2e3),
            num_nodes=num_nodes,
            vs_per_node=4,
            rng=seed,
        ).ring
        return LoadBalancer(ring, config, rng=seed + 1)

    return build


def run_overhead(num_nodes: int = 256, rounds: int = 5, seed: int = 42):
    """Run the paired workloads; return (plain_s, durable_s, identical)."""
    factory = _factory(num_nodes, seed)

    plain = factory()
    start = time.perf_counter()
    plain_digests = [
        plain.run_round().canonical_digest() for _ in range(rounds)
    ]
    plain_seconds = time.perf_counter() - start

    state_dir = tempfile.mkdtemp(prefix="repro-bench-recovery-")
    try:
        manager = RecoveryManager(factory, state_dir=state_dir)
        start = time.perf_counter()
        durable_digests = [
            manager.run_round().canonical_digest() for _ in range(rounds)
        ]
        durable_seconds = time.perf_counter() - start
        manager.close()
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)

    return plain_seconds, durable_seconds, plain_digests == durable_digests


def _format(plain_s: float, durable_s: float, rounds: int) -> str:
    factor = durable_s / plain_s if plain_s > 0 else float("inf")
    return (
        f"plain   : {plain_s:8.3f}s total, {plain_s / rounds * 1e3:7.1f} ms/round\n"
        f"durable : {durable_s:8.3f}s total, {durable_s / rounds * 1e3:7.1f} ms/round\n"
        f"overhead: {factor:5.2f}x (checkpoint + write-ahead journal)"
    )


def test_recovery_overhead(benchmark, report_lines):
    rounds = 5
    result = benchmark.pedantic(
        lambda: run_overhead(num_nodes=256, rounds=rounds),
        rounds=1,
        iterations=1,
    )
    plain_s, durable_s, identical = result
    emit(
        report_lines,
        "Robustness: crash-recovery durability overhead",
        _format(plain_s, durable_s, rounds),
    )
    assert identical, "durable digests diverged from plain digests"
    assert durable_s > 0


def main(argv: list[str] | None = None) -> int:
    """CI smoke: small scenario, digest identity, bounded overhead."""
    import argparse

    parser = argparse.ArgumentParser(prog="bench_recovery_overhead")
    parser.add_argument("--smoke", action="store_true", help="reduced scale")
    args = parser.parse_args(argv)
    num_nodes, rounds = (64, 3) if args.smoke else (256, 5)
    plain_s, durable_s, identical = run_overhead(
        num_nodes=num_nodes, rounds=rounds
    )
    print(_format(plain_s, durable_s, rounds))
    if not identical:
        print("FAIL: durable digests diverged from plain digests")
        return 1
    # Durability is a tax, not a rewrite: checkpoint + journal must stay
    # within an order of magnitude of the plain round even at smoke
    # scale (where fixed fsync costs weigh heaviest).
    if durable_s > max(10.0 * plain_s, plain_s + 2.0):
        print(f"FAIL: overhead {durable_s / plain_s:.1f}x exceeds ceiling")
        return 1
    print("recovery overhead smoke OK: digests identical, overhead bounded")
    return 0
