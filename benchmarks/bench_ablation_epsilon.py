"""Ablation: the epsilon slack in the target load.

The paper describes epsilon as "a trade-off between the amount of load
moved and the quality of balance achieved; ideally 0".  This bench
quantifies the trade-off: with epsilon = 0, supply exactly equals
demand and the indivisibility of virtual servers strands some excess
(residual heavy nodes); a small positive epsilon buys headroom that
lets every heavy node empty out.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core import BalancerConfig, LoadBalancer
from repro.workloads import GaussianLoadModel, build_scenario

EPSILONS = (0.0, 0.01, 0.02, 0.05, 0.10)


def run_for_epsilon(settings, eps):
    scenario = build_scenario(
        GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
        num_nodes=settings.num_nodes,
        vs_per_node=settings.vs_per_node,
        rng=settings.seed,
    )
    lb = LoadBalancer(
        scenario.ring,
        BalancerConfig(proximity_mode="ignorant", epsilon=eps),
        rng=settings.balancer_seed,
    )
    return lb.run_round()


def test_ablation_epsilon(benchmark, settings, report_lines):
    def run_all():
        return {eps: run_for_epsilon(settings, eps) for eps in EPSILONS}

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"  {'epsilon':>8} {'heavy before':>13} {'heavy after':>12} "
             f"{'unassigned':>11} {'moved load':>12}"]
    for eps, r in reports.items():
        lines.append(
            f"  {eps:>8.2f} {r.heavy_before:>13} {r.heavy_after:>12} "
            f"{len(r.vsa.unassigned_heavy):>11} {r.moved_load:>12.4g}"
        )
    emit(report_lines, "Ablation: epsilon slack", "\n".join(lines))

    # Residual heavy count decreases monotonically-ish with epsilon and
    # vanishes with modest slack.
    assert reports[0.0].heavy_after >= reports[0.05].heavy_after
    assert reports[0.05].heavy_after == 0
    assert reports[0.10].heavy_after == 0
    # Epsilon shrinks the heavy set before balancing too (looser targets).
    assert reports[0.10].heavy_before <= reports[0.0].heavy_before
