"""Ablation: the rendezvous list-length threshold (paper example: 30).

A lower threshold lets KT nodes pair earlier (deeper in the tree, among
entries published under closer keys); a higher threshold defers pairing
upwards where lists are longer and best-fit matching has more choice.
This bench measures the effect on pairing depth and (with a topology)
transfer distance.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import emit
from repro.core import BalancerConfig, LoadBalancer
from repro.workloads import GaussianLoadModel, build_scenario
from tests.conftest import MINI_TS
from repro.topology import TransitStubParams

THRESHOLDS = (2, 10, 30, 100)

ABLATION_TS = TransitStubParams(
    transit_domains=3,
    transit_nodes_per_domain=2,
    stub_domains_per_transit=4,
    stub_nodes_mean=20,
    name="ablation-ts",
)


def run_for_threshold(settings, threshold):
    scenario = build_scenario(
        GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
        num_nodes=min(settings.num_nodes, 400),
        vs_per_node=settings.vs_per_node,
        topology_params=ABLATION_TS,
        rng=settings.seed,
    )
    lb = LoadBalancer(
        scenario.ring,
        BalancerConfig(
            proximity_mode="aware",
            epsilon=settings.epsilon,
            rendezvous_threshold=threshold,
            grid_bits=settings.grid_bits,
        ),
        topology=scenario.topology,
        oracle=scenario.oracle,
        rng=settings.balancer_seed,
    )
    return lb.run_round()


def mean_pairing_level(report):
    pairs = [(t.level, t.load) for t in report.transfers]
    total = sum(w for _, w in pairs)
    return sum(l * w for l, w in pairs) / total if total else 0.0


def test_ablation_threshold(benchmark, settings, report_lines):
    def run_all():
        return {t: run_for_threshold(settings, t) for t in THRESHOLDS}

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"  {'threshold':>10} {'mean pair level':>16} {'mean distance':>14} "
             f"{'within 10':>10} {'heavy after':>12}"]
    for t, r in reports.items():
        lines.append(
            f"  {t:>10} {mean_pairing_level(r):>16.2f} "
            f"{r.transfer_distances.mean():>14.2f} "
            f"{100 * r.moved_load_within(10):>9.1f}% {r.heavy_after:>12}"
        )
    emit(report_lines, "Ablation: rendezvous threshold", "\n".join(lines))

    # Lower thresholds pair deeper in the tree.
    assert mean_pairing_level(reports[2]) >= mean_pairing_level(reports[100])
    # All settings fully balance.
    for r in reports.values():
        assert r.heavy_after <= r.heavy_before // 20
