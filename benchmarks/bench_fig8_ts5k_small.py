"""Benchmark regenerating Figure 8: transfer distances on ts5k-small.

Paper row reproduced: with peers scattered across the entire Internet
(tiny stub domains), the proximity-aware scheme still clearly beats the
ignorant one, though the absolute concentration drops.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import emit
from repro.experiments import fig8


def test_fig8_ts5k_small(benchmark, settings, report_lines):
    # Same density floor as figure 7: the ~5000-vertex topology needs a
    # well-populated overlay for distance distributions to be meaningful.
    s = replace(settings, num_nodes=max(settings.num_nodes, 2048))
    result = benchmark.pedantic(lambda: fig8.run(s), rounds=1, iterations=1)
    emit(report_lines, "Figure 8 (ts5k-small moved-load distances)", result.format_rows())

    d = result.data
    # Aware stays ahead through the body of the distribution; the two
    # curves meet in the far tail (everything is remote for somebody).
    for mark in (4, 6, 10):
        assert d.aware_within[mark] >= d.ignorant_within[mark]
    assert d.aware_within[10] > 1.5 * d.ignorant_within[10]
    mean_aware = result.aware_report.transfer_distances.mean()
    mean_ignorant = result.ignorant_report.transfer_distances.mean()
    assert mean_aware < mean_ignorant
