"""Benchmark: parallel trial engine scaling on the variance seed sweep.

Runs the figure-7 variance sweep serially and through
:class:`repro.parallel.TrialExecutor` with 4 worker processes, asserts
the results are byte-identical (the engine's core contract), and
measures the wall-clock speedup.  The acceptance target — >= 1.8x at 4
workers — is only asserted when the machine actually exposes >= 4 CPUs
to this process; on smaller machines the bench still verifies identity
and reports the measured ratio honestly (forking on a 1-CPU box can
only slow things down).

The measured timings and speedup are recorded into the ambient
:class:`repro.obs.MetricsRegistry` when one is installed (the
``REPRO_OBS_OUT`` session fixture in ``conftest.py``), so the numbers
land in the benchmark metrics dump.

Also runnable standalone (from the repository root, so that the
``benchmarks`` package resolves)::

    PYTHONPATH=src python -m benchmarks.bench_parallel_scaling
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

from benchmarks.conftest import emit
from repro.experiments import variance
from repro.experiments.common import ExperimentSettings
from repro.obs.runtime import current_metrics

#: Worker-process count the acceptance target is stated against.
WORKERS = 4

#: Required speedup at :data:`WORKERS` workers — asserted only when the
#: process can actually schedule on that many CPUs.
TARGET_SPEEDUP = 1.8

#: Seeds in the sweep; a multiple of WORKERS so the fan-out is even.
NUM_SEEDS = 4


def available_cpus() -> int:
    """CPUs this process may schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_scaling(settings: ExperimentSettings) -> dict[str, float]:
    """Serial vs parallel variance sweep; returns the timing summary.

    Raises ``AssertionError`` if the parallel sweep's output differs
    from the serial sweep's in any way.
    """
    serial_settings = replace(settings, workers=1)
    parallel_settings = replace(settings, workers=WORKERS)

    t0 = time.perf_counter()
    serial = variance.run(serial_settings, num_seeds=NUM_SEEDS)
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = variance.run(parallel_settings, num_seeds=NUM_SEEDS)
    parallel_seconds = time.perf_counter() - t0

    # The determinism contract: identical seeds, identical metrics.
    assert serial.seeds == parallel.seeds
    assert serial.metrics == parallel.metrics

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    summary = {
        "cpus": float(available_cpus()),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
    }
    metrics = current_metrics()
    if metrics is not None:
        metrics.gauge("parallel.bench.cpus").set(summary["cpus"])
        metrics.gauge("parallel.bench.serial_seconds").set(serial_seconds)
        metrics.gauge("parallel.bench.workers4_seconds").set(parallel_seconds)
        metrics.gauge("parallel.bench.speedup").set(speedup)
    return summary


def format_summary(summary: dict[str, float]) -> str:
    """Human-readable timing table plus the gating verdict."""
    cpus = int(summary["cpus"])
    gated = cpus >= WORKERS
    lines = [
        f"Parallel trial engine scaling - variance sweep, {NUM_SEEDS} seeds",
        f"  serial:            {summary['serial_seconds']:>8.2f}s",
        f"  {WORKERS} workers:  {summary['parallel_seconds']:>12.2f}s",
        f"  speedup:           {summary['speedup']:>8.2f}x "
        f"(target {TARGET_SPEEDUP}x at >= {WORKERS} CPUs)",
        f"  cpus available:    {cpus:>8}",
    ]
    if not gated:
        lines.append(
            f"  [only {cpus} CPU(s) visible: speedup target not assertable "
            "on this machine; byte-identity still verified]"
        )
    return "\n".join(lines)


def test_parallel_scaling(settings, report_lines):
    summary = run_scaling(settings)
    emit(report_lines, "Parallel scaling (variance sweep)",
         format_summary(summary))
    if summary["cpus"] >= WORKERS:
        assert summary["speedup"] >= TARGET_SPEEDUP, (
            f"speedup {summary['speedup']:.2f}x below target "
            f"{TARGET_SPEEDUP}x with {int(summary['cpus'])} CPUs"
        )


def main() -> int:
    """Standalone entry point: print the table, return 0."""
    summary = run_scaling(ExperimentSettings.from_env())
    print(format_summary(summary))
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
