"""Benchmark: incremental engine scaling under churn-localized drift.

Drives the serial :class:`repro.core.LoadBalancer` and the persistent
:class:`repro.core.IncrementalLoadBalancer` through the same schedule —
balancing rounds separated by 1% membership churn (half joins, half
leaves) with load drift localized at the join sites — and measures the
steady-state LBI+VSA speedup.  Digest identity is asserted on **every**
round before any timing is believed: the engines must agree byte for
byte or the numbers are meaningless.

Two protocol rules, learned the hard way (see ``docs/performance.md``):

* The engines never interleave inside one timing loop.  The serial
  engine's per-round object churn triggers gen-2 GC passes that would
  traverse the incremental engine's persistent tree, inflating its
  numbers with pure GC cross-talk.  Each engine runs the whole schedule
  back to back on its own ring replica (identical seeds make the churn
  schedules — and hence the digests — comparable round for round), with
  a collection in between.
* Warm-up rounds are excluded from the speedup.  Round 0 is a rebuild
  and the first rounds still pay delivery-cache misses; the reported
  ratio is over the tail, which is what a long-running churn study
  actually sees.

Three engines run the schedule: the serial baseline, the incremental
engine with batched level-synchronous descents + delta cache repair
(the default), and the same engine in ``descent_mode="legacy"`` — the
PR 6 per-key descents, kept as an honest A/B for the miss-descent
phase.  All three must agree byte for byte; the gates are the serial
vs batched LBI+VSA speedup and the legacy vs batched ``miss_descent``
phase ratio.

The ``--million`` configuration drives the batched engine alone
through a 10^6-node steady-state schedule (no serial twin — the twin
run would dominate the bench by an hour) and gates the post-warm-up
wall-clock per round instead; digest identity at that scale is covered
by the property suites at smaller rings plus the smoke run here.

Under ``pytest`` the bench runs at a reduced scale (suite-budget
friendly) with a conservative speedup floor; ``REPRO_SCALE=paper``
raises the ring to 10^5 nodes and the floor to the acceptance target.
Standalone::

    PYTHONPATH=src python -m benchmarks.bench_incremental_scaling
    PYTHONPATH=src python -m benchmarks.bench_incremental_scaling --million
    PYTHONPATH=src python -m benchmarks.bench_incremental_scaling --smoke
"""

from __future__ import annotations

import argparse
import gc
import time

import numpy as np

from repro.core import BalancerConfig, IncrementalLoadBalancer, LoadBalancer
from repro.dht import join_node, leave_node
from repro.experiments.common import ExperimentSettings
from repro.obs.runtime import current_metrics
from repro.util.rng import ensure_rng
from repro.workloads import ParetoLoadModel, apply_load_drift, build_scenario

#: Fraction of alive nodes churned (joined + left) between rounds.
CHURN_FRACTION = 0.01

#: Rounds excluded from the steady-state speedup (rebuild + cache warm-up).
WARMUP_ROUNDS = 2

#: Reduced scale for the default pytest run.
QUICK_NODES = 4096
QUICK_ROUNDS = 5

#: Paper-scale run (``REPRO_SCALE=paper``): the ISSUE acceptance regime.
PAPER_NODES = 100_000
PAPER_ROUNDS = 10

#: Steady-state LBI+VSA speedup floors (serial seconds / incremental
#: seconds over the post-warm-up rounds).  Calibrated from measured
#: runs with ~2x headroom below the observed ratio so machine variance
#: does not flake the gate; the bench-trend baseline ratchets the
#: incremental engine's absolute costs separately.  At paper scale the
#: measured ratio is ~4-5x over the ten-round schedule (the first
#: post-warm-up rounds still pay delivery-cache misses) and >6x on the
#: fully warm tail rounds; both engines share the descent and
#: shed-selection primitives, so optimizing those speeds the serial
#: baseline up too and the honest ratio moves less than the absolute
#: incremental round time does.
QUICK_TARGET_SPEEDUP = 1.9
PAPER_TARGET_SPEEDUP = 2.5

#: Floors for the legacy-vs-batched ``miss_descent`` phase ratio (the
#: ISSUE 9 acceptance gate: >= 2x at 10^5).  The smoke/quick floors are
#: deliberately looser — at tiny rings the batched path's fixed NumPy
#: overhead eats into the win and the gate exists to catch the batching
#: being disabled or regressed to per-key work, not to measure it.
QUICK_TARGET_DESCENT_SPEEDUP = 1.3
PAPER_TARGET_DESCENT_SPEEDUP = 2.0

#: The 10^6 steady-state configuration (``--million``): batched engine
#: only, wall-clock ceiling on the post-warm-up rounds.  The ceiling is
#: calibrated from measured runs with generous headroom (CI machines
#: vary); the bench-trend baseline ratchets the deterministic counter
#: economy separately.
MILLION_NODES = 1_000_000
MILLION_ROUNDS = 5
MILLION_ROUND_CEILING_SECONDS = 60.0

VS_PER_NODE = 5
MU = 1e6
SCENARIO_SEED = 1
BALANCER_SEED = 2
CHURN_SEED = 7


def apply_churn(ring, model: ParetoLoadModel, gen: np.random.Generator) -> None:
    """One churn step: 1% membership turnover + drift at the join sites.

    Everything is drawn from ``gen``, so two structurally identical
    rings fed generators with the same seed receive identical event
    sequences — the property that keeps the two engines' digests
    comparable round for round.
    """
    alive = [n for n in ring.alive_nodes if n.virtual_servers]
    events = max(2, int(CHURN_FRACTION * len(alive)))
    joins = events // 2
    sites: list[int] = []
    for _ in range(joins):
        node = join_node(
            ring, capacity=10.0, vs_count=3, rng=int(gen.integers(1 << 30))
        )
        sites.extend(vs.vs_id for vs in node.virtual_servers)
    alive = [n for n in ring.alive_nodes if n.virtual_servers]
    picks = gen.choice(len(alive), size=events - joins, replace=False)
    for i in picks:
        leave_node(ring, alive[int(i)])
    apply_load_drift(
        ring,
        model,
        int(gen.integers(1 << 30)),
        sites[: max(3, len(sites) // 10)],
        fraction=0.01,
    )


def _make_balancer(engine: str, ring) -> LoadBalancer:
    config = BalancerConfig(proximity_mode="ignorant", epsilon=0.05)
    if engine == "serial":
        return LoadBalancer(ring, config, rng=BALANCER_SEED)
    if engine == "incremental":
        return IncrementalLoadBalancer(ring, config, rng=BALANCER_SEED)
    if engine == "legacy":
        return IncrementalLoadBalancer(
            ring, config, rng=BALANCER_SEED, descent_mode="legacy"
        )
    raise ValueError(f"unknown engine {engine!r}")


def run_engine(
    engine: str, num_nodes: int, rounds: int
) -> tuple[list[str], list[dict[str, float]], dict[str, int]]:
    """Run one engine over the deterministic schedule, from scratch.

    ``engine`` is ``"serial"``, ``"incremental"`` (batched descents) or
    ``"legacy"`` (PR 6 per-key descents).  Returns per-round digests,
    phase timings, and the engine's cumulative descent-economy stats
    (empty for serial).  Building the ring inside this function (rather
    than sharing replicas) keeps each engine's heap private — see the
    GC note in the module docstring.
    """
    model = ParetoLoadModel(mu=MU)
    ring = build_scenario(
        model, num_nodes=num_nodes, vs_per_node=VS_PER_NODE, rng=SCENARIO_SEED
    ).ring
    balancer = _make_balancer(engine, ring)
    gen = ensure_rng(CHURN_SEED)
    digests: list[str] = []
    timings: list[dict[str, float]] = []
    for rnd in range(rounds):
        report = balancer.run_round()
        digests.append(report.canonical_digest())
        timings.append(dict(report.phase_seconds))
        if rnd < rounds - 1:
            apply_churn(ring, model, gen)
    stats = dict(getattr(balancer, "descent_stats", {}))
    return digests, timings, stats


def _steady(times: list[dict[str, float]], phase: str) -> float:
    return sum(t.get(phase, 0.0) for t in times[WARMUP_ROUNDS:])


def run_incremental_scaling(
    num_nodes: int, rounds: int
) -> dict[str, float]:
    """All three engines over the same schedule; digest check + speedups.

    The serial-vs-batched LBI+VSA ratio is the scaling headline; the
    legacy-vs-batched ``miss_descent`` ratio isolates exactly the work
    this PR batches (cache-miss key resolution), with the legacy run
    paying the same schedule through per-key descents and no repair.
    """
    assert rounds > WARMUP_ROUNDS, "need post-warm-up rounds to measure"
    t0 = time.perf_counter()
    serial_digests, serial_times, _ = run_engine("serial", num_nodes, rounds)
    serial_wall = time.perf_counter() - t0
    gc.collect()

    t0 = time.perf_counter()
    inc_digests, inc_times, inc_stats = run_engine(
        "incremental", num_nodes, rounds
    )
    inc_wall = time.perf_counter() - t0
    gc.collect()

    legacy_digests, legacy_times, legacy_stats = run_engine(
        "legacy", num_nodes, rounds
    )

    for name, digests in (("incremental", inc_digests), ("legacy", legacy_digests)):
        assert serial_digests == digests, (
            f"serial/{name} divergence: first differing round "
            f"{next(i for i, (a, b) in enumerate(zip(serial_digests, digests)) if a != b)}"
        )

    serial_lbi = _steady(serial_times, "lbi")
    serial_vsa = _steady(serial_times, "vsa")
    inc_lbi = _steady(inc_times, "lbi")
    inc_vsa = _steady(inc_times, "vsa")
    denom = inc_lbi + inc_vsa
    # The descent ratio is measured over *all* rounds: the rebuild round
    # is where the full miss set descends, and it must batch too.
    inc_descent = sum(t.get("miss_descent", 0.0) for t in inc_times)
    legacy_descent = sum(t.get("miss_descent", 0.0) for t in legacy_times)
    summary = {
        "nodes": float(num_nodes),
        "rounds": float(rounds),
        "serial_lbi_seconds": serial_lbi,
        "serial_vsa_seconds": serial_vsa,
        "incremental_lbi_seconds": inc_lbi,
        "incremental_vsa_seconds": inc_vsa,
        "serial_wall_seconds": serial_wall,
        "incremental_wall_seconds": inc_wall,
        "lbi_speedup": serial_lbi / inc_lbi if inc_lbi > 0 else 0.0,
        "speedup": (serial_lbi + serial_vsa) / denom if denom > 0 else 0.0,
        "incremental_descent_seconds": inc_descent,
        "legacy_descent_seconds": legacy_descent,
        "descent_speedup": (
            legacy_descent / inc_descent if inc_descent > 0 else 0.0
        ),
        "miss_descents": float(inc_stats.get("miss_descents", 0)),
        "cache_repairs": float(inc_stats.get("cache_repairs", 0)),
        "stale_cache_misses": float(inc_stats.get("stale_cache_misses", 0)),
        "legacy_miss_descents": float(legacy_stats.get("miss_descents", 0)),
    }
    metrics = current_metrics()
    if metrics is not None:
        for name, value in summary.items():
            metrics.gauge(f"incremental.bench.{name}").set(value)
    return summary


def run_million_steady(
    num_nodes: int = MILLION_NODES, rounds: int = MILLION_ROUNDS
) -> dict[str, float]:
    """Batched engine alone through a steady-state churn schedule.

    Measures the post-warm-up wall-clock per round at ``num_nodes`` —
    the regime the serial twin cannot reach in bench time.  Correctness
    at this scale rides on the invariants the property suites pin at
    smaller rings (digest identity, zero stale cache misses); the
    stale-miss count is re-asserted here since it is free to check.
    """
    assert rounds > WARMUP_ROUNDS, "need post-warm-up rounds to measure"
    model = ParetoLoadModel(mu=MU)
    ring = build_scenario(
        model, num_nodes=num_nodes, vs_per_node=VS_PER_NODE, rng=SCENARIO_SEED
    ).ring
    balancer = _make_balancer("incremental", ring)
    gen = ensure_rng(CHURN_SEED)
    round_walls: list[float] = []
    descent_seconds: list[float] = []
    for rnd in range(rounds):
        t0 = time.perf_counter()
        report = balancer.run_round()
        round_walls.append(time.perf_counter() - t0)
        descent_seconds.append(report.phase_seconds.get("miss_descent", 0.0))
        if rnd < rounds - 1:
            apply_churn(ring, model, gen)
    stats = dict(getattr(balancer, "descent_stats", {}))
    assert stats.get("stale_cache_misses", 0) == 0, (
        f"delta repair missed cache entries: {stats}"
    )
    steady_walls = round_walls[WARMUP_ROUNDS:]
    summary = {
        "nodes": float(num_nodes),
        "rounds": float(rounds),
        "build_round_seconds": round_walls[0],
        "steady_round_seconds": max(steady_walls),
        "mean_steady_round_seconds": sum(steady_walls) / len(steady_walls),
        "steady_descent_seconds": sum(descent_seconds[WARMUP_ROUNDS:]),
        "miss_descents": float(stats.get("miss_descents", 0)),
        "cache_repairs": float(stats.get("cache_repairs", 0)),
    }
    metrics = current_metrics()
    if metrics is not None:
        for name, value in summary.items():
            metrics.gauge(f"incremental.million.{name}").set(value)
    return summary


def format_summary(
    summary: dict[str, float], target: float, descent_target: float
) -> str:
    """Human-readable timing table plus the gating verdicts."""
    rounds = int(summary["rounds"])
    measured = rounds - WARMUP_ROUNDS
    return "\n".join(
        [
            (
                "Incremental engine scaling - "
                f"{int(summary['nodes'])} nodes, {rounds} rounds "
                f"({CHURN_FRACTION:.0%} churn/round, digests verified 3-way)"
            ),
            (
                f"  serial      lbi+vsa: {summary['serial_lbi_seconds']:>8.2f}s"
                f" + {summary['serial_vsa_seconds']:.2f}s over last {measured} rounds"
            ),
            (
                f"  incremental lbi+vsa: {summary['incremental_lbi_seconds']:>8.2f}s"
                f" + {summary['incremental_vsa_seconds']:.2f}s"
            ),
            f"  lbi speedup:         {summary['lbi_speedup']:>8.2f}x",
            f"  lbi+vsa speedup:     {summary['speedup']:>8.2f}x (floor {target}x)",
            (
                f"  miss descent:        {summary['legacy_descent_seconds']:>8.2f}s"
                f" legacy -> {summary['incremental_descent_seconds']:.2f}s batched"
                f" = {summary['descent_speedup']:.2f}x (floor {descent_target}x)"
            ),
            (
                f"  descent economy:     {int(summary['miss_descents'])} descents,"
                f" {int(summary['cache_repairs'])} repairs,"
                f" {int(summary['stale_cache_misses'])} stale"
                f" (legacy: {int(summary['legacy_miss_descents'])} descents)"
            ),
        ]
    )


def format_million_summary(summary: dict[str, float], ceiling: float) -> str:
    """Human-readable table for the 10^6 steady-state configuration."""
    return "\n".join(
        [
            (
                "Million-node steady state - "
                f"{int(summary['nodes'])} nodes, {int(summary['rounds'])} rounds "
                f"({CHURN_FRACTION:.0%} churn/round, batched engine)"
            ),
            f"  build round:         {summary['build_round_seconds']:>8.2f}s",
            (
                f"  steady round (max):  {summary['steady_round_seconds']:>8.2f}s"
                f" (ceiling {ceiling}s)"
            ),
            f"  steady round (mean): {summary['mean_steady_round_seconds']:>8.2f}s",
            (
                f"  descent economy:     {int(summary['miss_descents'])} descents,"
                f" {int(summary['cache_repairs'])} repairs,"
                f" {summary['steady_descent_seconds']:.2f}s steady descent"
            ),
        ]
    )


def _scale_params(settings: ExperimentSettings) -> tuple[int, int, float, float]:
    """(nodes, rounds, speedup floor, descent floor) for REPRO_SCALE."""
    if settings.num_nodes >= ExperimentSettings.paper().num_nodes:
        return (
            PAPER_NODES,
            PAPER_ROUNDS,
            PAPER_TARGET_SPEEDUP,
            PAPER_TARGET_DESCENT_SPEEDUP,
        )
    return (
        QUICK_NODES,
        QUICK_ROUNDS,
        QUICK_TARGET_SPEEDUP,
        QUICK_TARGET_DESCENT_SPEEDUP,
    )


def test_incremental_scaling(settings, report_lines):
    from benchmarks.conftest import emit

    nodes, rounds, target, descent_target = _scale_params(settings)
    summary = run_incremental_scaling(nodes, rounds)
    emit(
        report_lines,
        "Incremental scaling (churn-localized drift)",
        format_summary(summary, target, descent_target),
    )
    assert summary["speedup"] >= target, (
        f"steady-state lbi+vsa speedup {summary['speedup']:.2f}x below "
        f"floor {target}x at {nodes} nodes"
    )
    assert summary["descent_speedup"] >= descent_target, (
        f"miss-descent speedup {summary['descent_speedup']:.2f}x below "
        f"floor {descent_target}x at {nodes} nodes"
    )
    assert summary["stale_cache_misses"] == 0, (
        "delta repair let corridor re-descents through: "
        f"{int(summary['stale_cache_misses'])} stale cache misses"
    )


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point: print the table, return 0 on pass."""
    parser = argparse.ArgumentParser(
        description="incremental vs serial engine scaling benchmark"
    )
    parser.add_argument(
        "--nodes", type=int, default=None,
        help="ring size (default: from REPRO_SCALE)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help=f"balancing rounds (> {WARMUP_ROUNDS}; default: from REPRO_SCALE)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny deterministic run (digest identity + plumbing only)",
    )
    parser.add_argument(
        "--million", action="store_true",
        help=(
            "10^6-node steady-state configuration (batched engine only, "
            "wall-clock ceiling gate); with --smoke or --nodes runs the "
            "same code path at reduced scale"
        ),
    )
    args = parser.parse_args(argv)
    if args.million:
        if args.smoke:
            nodes, rounds, ceiling = 2048, 4, 0.0
        else:
            nodes, rounds = MILLION_NODES, MILLION_ROUNDS
            ceiling = MILLION_ROUND_CEILING_SECONDS
        if args.nodes is not None:
            nodes, ceiling = args.nodes, 0.0
        if args.rounds is not None:
            rounds = args.rounds
        summary = run_million_steady(nodes, rounds)
        print(format_million_summary(summary, ceiling))
        if args.smoke:
            print("smoke OK: steady-state plumbing + zero stale misses")
        if ceiling and summary["steady_round_seconds"] > ceiling:
            return 1
        return 0
    if args.smoke:
        nodes, rounds, target, descent_target = 512, 4, 0.0, 0.0
    else:
        nodes, rounds, target, descent_target = _scale_params(
            ExperimentSettings.from_env()
        )
    if args.nodes is not None:
        nodes, target, descent_target = args.nodes, 0.0, 0.0
    if args.rounds is not None:
        rounds = args.rounds
    summary = run_incremental_scaling(nodes, rounds)
    print(format_summary(summary, target, descent_target))
    if args.smoke:
        # Smoke still gates the *invariants* (identity is asserted in
        # run_incremental_scaling; the economy must show zero corridor
        # re-descents and a strictly cheaper batched descent bill).
        assert summary["stale_cache_misses"] == 0, summary
        assert (
            summary["miss_descents"] <= summary["legacy_miss_descents"]
        ), summary
        print("smoke OK: digests identical on all rounds, zero stale misses")
        return 0
    if summary["speedup"] < target:
        return 1
    if summary["descent_speedup"] < descent_target:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
