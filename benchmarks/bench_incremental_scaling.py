"""Benchmark: incremental engine scaling under churn-localized drift.

Drives the serial :class:`repro.core.LoadBalancer` and the persistent
:class:`repro.core.IncrementalLoadBalancer` through the same schedule —
balancing rounds separated by 1% membership churn (half joins, half
leaves) with load drift localized at the join sites — and measures the
steady-state LBI+VSA speedup.  Digest identity is asserted on **every**
round before any timing is believed: the engines must agree byte for
byte or the numbers are meaningless.

Two protocol rules, learned the hard way (see ``docs/performance.md``):

* The engines never interleave inside one timing loop.  The serial
  engine's per-round object churn triggers gen-2 GC passes that would
  traverse the incremental engine's persistent tree, inflating its
  numbers with pure GC cross-talk.  Each engine runs the whole schedule
  back to back on its own ring replica (identical seeds make the churn
  schedules — and hence the digests — comparable round for round), with
  a collection in between.
* Warm-up rounds are excluded from the speedup.  Round 0 is a rebuild
  and the first rounds still pay delivery-cache misses; the reported
  ratio is over the tail, which is what a long-running churn study
  actually sees.

Under ``pytest`` the bench runs at a reduced scale (suite-budget
friendly) with a conservative speedup floor; ``REPRO_SCALE=paper``
raises the ring to 10^5 nodes and the floor to the acceptance target.
Standalone::

    PYTHONPATH=src python -m benchmarks.bench_incremental_scaling
    PYTHONPATH=src python -m benchmarks.bench_incremental_scaling --nodes 1000000 --rounds 4
    PYTHONPATH=src python -m benchmarks.bench_incremental_scaling --smoke
"""

from __future__ import annotations

import argparse
import gc
import time

import numpy as np

from repro.core import BalancerConfig, IncrementalLoadBalancer, LoadBalancer
from repro.dht import join_node, leave_node
from repro.experiments.common import ExperimentSettings
from repro.obs.runtime import current_metrics
from repro.util.rng import ensure_rng
from repro.workloads import ParetoLoadModel, apply_load_drift, build_scenario

#: Fraction of alive nodes churned (joined + left) between rounds.
CHURN_FRACTION = 0.01

#: Rounds excluded from the steady-state speedup (rebuild + cache warm-up).
WARMUP_ROUNDS = 2

#: Reduced scale for the default pytest run.
QUICK_NODES = 4096
QUICK_ROUNDS = 5

#: Paper-scale run (``REPRO_SCALE=paper``): the ISSUE acceptance regime.
PAPER_NODES = 100_000
PAPER_ROUNDS = 10

#: Steady-state LBI+VSA speedup floors (serial seconds / incremental
#: seconds over the post-warm-up rounds).  Calibrated from measured
#: runs with ~2x headroom below the observed ratio so machine variance
#: does not flake the gate; the bench-trend baseline ratchets the
#: incremental engine's absolute costs separately.  At paper scale the
#: measured ratio is ~4-5x over the ten-round schedule (the first
#: post-warm-up rounds still pay delivery-cache misses) and >6x on the
#: fully warm tail rounds; both engines share the descent and
#: shed-selection primitives, so optimizing those speeds the serial
#: baseline up too and the honest ratio moves less than the absolute
#: incremental round time does.
QUICK_TARGET_SPEEDUP = 1.9
PAPER_TARGET_SPEEDUP = 2.5

VS_PER_NODE = 5
MU = 1e6
SCENARIO_SEED = 1
BALANCER_SEED = 2
CHURN_SEED = 7


def apply_churn(ring, model: ParetoLoadModel, gen: np.random.Generator) -> None:
    """One churn step: 1% membership turnover + drift at the join sites.

    Everything is drawn from ``gen``, so two structurally identical
    rings fed generators with the same seed receive identical event
    sequences — the property that keeps the two engines' digests
    comparable round for round.
    """
    alive = [n for n in ring.alive_nodes if n.virtual_servers]
    events = max(2, int(CHURN_FRACTION * len(alive)))
    joins = events // 2
    sites: list[int] = []
    for _ in range(joins):
        node = join_node(
            ring, capacity=10.0, vs_count=3, rng=int(gen.integers(1 << 30))
        )
        sites.extend(vs.vs_id for vs in node.virtual_servers)
    alive = [n for n in ring.alive_nodes if n.virtual_servers]
    picks = gen.choice(len(alive), size=events - joins, replace=False)
    for i in picks:
        leave_node(ring, alive[int(i)])
    apply_load_drift(
        ring,
        model,
        int(gen.integers(1 << 30)),
        sites[: max(3, len(sites) // 10)],
        fraction=0.01,
    )


def run_engine(
    engine: str, num_nodes: int, rounds: int
) -> tuple[list[str], list[dict[str, float]]]:
    """Run one engine over the deterministic schedule, from scratch.

    Returns per-round digests and phase timings.  Building the ring
    inside this function (rather than sharing replicas) keeps each
    engine's heap private — see the GC note in the module docstring.
    """
    model = ParetoLoadModel(mu=MU)
    ring = build_scenario(
        model, num_nodes=num_nodes, vs_per_node=VS_PER_NODE, rng=SCENARIO_SEED
    ).ring
    config = BalancerConfig(proximity_mode="ignorant", epsilon=0.05)
    cls = LoadBalancer if engine == "serial" else IncrementalLoadBalancer
    balancer = cls(ring, config, rng=BALANCER_SEED)
    gen = ensure_rng(CHURN_SEED)
    digests: list[str] = []
    timings: list[dict[str, float]] = []
    for rnd in range(rounds):
        report = balancer.run_round()
        digests.append(report.canonical_digest())
        timings.append(dict(report.phase_seconds))
        if rnd < rounds - 1:
            apply_churn(ring, model, gen)
    return digests, timings


def run_incremental_scaling(
    num_nodes: int, rounds: int
) -> dict[str, float]:
    """Both engines over the same schedule; digest check + speedup."""
    assert rounds > WARMUP_ROUNDS, "need post-warm-up rounds to measure"
    t0 = time.perf_counter()
    serial_digests, serial_times = run_engine("serial", num_nodes, rounds)
    serial_wall = time.perf_counter() - t0
    gc.collect()

    t0 = time.perf_counter()
    inc_digests, inc_times = run_engine("incremental", num_nodes, rounds)
    inc_wall = time.perf_counter() - t0

    assert serial_digests == inc_digests, (
        "engine divergence: first differing round "
        f"{next(i for i, (a, b) in enumerate(zip(serial_digests, inc_digests)) if a != b)}"
    )

    def steady(times: list[dict[str, float]], phase: str) -> float:
        return sum(t[phase] for t in times[WARMUP_ROUNDS:])

    serial_lbi = steady(serial_times, "lbi")
    serial_vsa = steady(serial_times, "vsa")
    inc_lbi = steady(inc_times, "lbi")
    inc_vsa = steady(inc_times, "vsa")
    denom = inc_lbi + inc_vsa
    summary = {
        "nodes": float(num_nodes),
        "rounds": float(rounds),
        "serial_lbi_seconds": serial_lbi,
        "serial_vsa_seconds": serial_vsa,
        "incremental_lbi_seconds": inc_lbi,
        "incremental_vsa_seconds": inc_vsa,
        "serial_wall_seconds": serial_wall,
        "incremental_wall_seconds": inc_wall,
        "lbi_speedup": serial_lbi / inc_lbi if inc_lbi > 0 else 0.0,
        "speedup": (serial_lbi + serial_vsa) / denom if denom > 0 else 0.0,
    }
    metrics = current_metrics()
    if metrics is not None:
        for name, value in summary.items():
            metrics.gauge(f"incremental.bench.{name}").set(value)
    return summary


def format_summary(summary: dict[str, float], target: float) -> str:
    """Human-readable timing table plus the gating verdict."""
    rounds = int(summary["rounds"])
    measured = rounds - WARMUP_ROUNDS
    return "\n".join(
        [
            (
                "Incremental engine scaling - "
                f"{int(summary['nodes'])} nodes, {rounds} rounds "
                f"({CHURN_FRACTION:.0%} churn/round, digests verified)"
            ),
            (
                f"  serial      lbi+vsa: {summary['serial_lbi_seconds']:>8.2f}s"
                f" + {summary['serial_vsa_seconds']:.2f}s over last {measured} rounds"
            ),
            (
                f"  incremental lbi+vsa: {summary['incremental_lbi_seconds']:>8.2f}s"
                f" + {summary['incremental_vsa_seconds']:.2f}s"
            ),
            f"  lbi speedup:         {summary['lbi_speedup']:>8.2f}x",
            f"  lbi+vsa speedup:     {summary['speedup']:>8.2f}x (floor {target}x)",
        ]
    )


def _scale_params(settings: ExperimentSettings) -> tuple[int, int, float]:
    """(nodes, rounds, speedup floor) for the ambient REPRO_SCALE."""
    if settings.num_nodes >= ExperimentSettings.paper().num_nodes:
        return PAPER_NODES, PAPER_ROUNDS, PAPER_TARGET_SPEEDUP
    return QUICK_NODES, QUICK_ROUNDS, QUICK_TARGET_SPEEDUP


def test_incremental_scaling(settings, report_lines):
    from benchmarks.conftest import emit

    nodes, rounds, target = _scale_params(settings)
    summary = run_incremental_scaling(nodes, rounds)
    emit(
        report_lines,
        "Incremental scaling (churn-localized drift)",
        format_summary(summary, target),
    )
    assert summary["speedup"] >= target, (
        f"steady-state lbi+vsa speedup {summary['speedup']:.2f}x below "
        f"floor {target}x at {nodes} nodes"
    )


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point: print the table, return 0 on pass."""
    parser = argparse.ArgumentParser(
        description="incremental vs serial engine scaling benchmark"
    )
    parser.add_argument(
        "--nodes", type=int, default=None,
        help="ring size (default: from REPRO_SCALE)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help=f"balancing rounds (> {WARMUP_ROUNDS}; default: from REPRO_SCALE)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny deterministic run (digest identity + plumbing only)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        nodes, rounds, target = 512, 4, 0.0
    else:
        nodes, rounds, target = _scale_params(ExperimentSettings.from_env())
    if args.nodes is not None:
        nodes, target = args.nodes, 0.0
    if args.rounds is not None:
        rounds = args.rounds
    summary = run_incremental_scaling(nodes, rounds)
    print(format_summary(summary, target))
    if args.smoke:
        print("smoke OK: digests identical on all rounds")
    return 0 if summary["speedup"] >= target else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
