"""Ablation: landmark measurement noise.

Real RTT measurements jitter; the paper assumes clean landmark vectors.
This bench perturbs every node's measured vector with Gaussian noise of
increasing magnitude (as a fraction of the vector range) and measures
how the transfer-distance concentration degrades — the proximity win
survives moderate noise because the grid quantisation absorbs it.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from benchmarks.conftest import emit
from repro.core import BalancerConfig, LoadBalancer
from repro.core.placement import ProximityPlacement
from repro.proximity import ProximityMapper
from repro.topology import TS5K_LARGE, landmark_vectors, select_landmarks
from repro.util.rng import ensure_rng
from repro.workloads import GaussianLoadModel, build_scenario

NOISE_LEVELS = (0.0, 0.05, 0.15, 0.40)


def run_with_noise(settings, noise_frac, rng_seed=99):
    scenario = build_scenario(
        GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
        num_nodes=settings.num_nodes,
        vs_per_node=settings.vs_per_node,
        topology_params=TS5K_LARGE,
        rng=settings.seed,
    )
    oracle = scenario.oracle
    landmarks = select_landmarks(oracle, 15, rng=settings.balancer_seed)
    nodes = scenario.ring.nodes
    sites = np.asarray([n.site for n in nodes])
    vectors = landmark_vectors(oracle, landmarks, sites)
    if noise_frac > 0:
        gen = ensure_rng(rng_seed)
        span = float(vectors.max() - vectors.min()) or 1.0
        vectors = vectors + gen.normal(0, noise_frac * span, size=vectors.shape)
    mapper = ProximityMapper.fit(vectors, grid_bits=settings.grid_bits)
    placement = ProximityPlacement(
        mapper,
        {n.index: vectors[i] for i, n in enumerate(nodes)},
        scenario.ring.space,
    )
    balancer = LoadBalancer(
        scenario.ring,
        BalancerConfig(proximity_mode="aware", epsilon=settings.epsilon,
                       grid_bits=settings.grid_bits),
        topology=scenario.topology,
        oracle=oracle,
        placement=placement,
        rng=settings.balancer_seed,
    )
    return balancer.run_round()


def test_ablation_measurement_noise(benchmark, settings, report_lines):
    s = replace(settings, num_nodes=max(settings.num_nodes, 1024))

    def run_all():
        return {nf: run_with_noise(s, nf) for nf in NOISE_LEVELS}

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"  {'noise (frac of range)':>22} {'within 10':>10} "
             f"{'mean distance':>14} {'heavy after':>12}"]
    for nf, r in reports.items():
        lines.append(
            f"  {nf:>22.2f} {100 * r.moved_load_within(10):>9.1f}% "
            f"{r.transfer_distances.mean():>14.2f} {r.heavy_after:>12}"
        )
    emit(report_lines, "Ablation: landmark measurement noise", "\n".join(lines))

    clean = reports[0.0]
    mild = reports[0.05]
    wrecked = reports[0.40]
    # Mild noise barely dents the concentration; heavy noise destroys it.
    assert mild.moved_load_within(10) > 0.7 * clean.moved_load_within(10)
    assert wrecked.moved_load_within(10) < clean.moved_load_within(10)
    # Balance quality is placement-independent.
    for r in reports.values():
        assert r.heavy_after <= r.heavy_before // 20
