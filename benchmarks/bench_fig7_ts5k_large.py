"""Benchmark regenerating Figure 7: transfer distances on ts5k-large.

Paper rows reproduced (shape):

* proximity-aware concentrates moved load at small distances (paper:
  ~67% within 2 latency units, ~86% within 10);
* proximity-ignorant spreads it (paper: only ~13% within 10).

Our generator matches the paper's published transit-stub parameters; see
EXPERIMENTS.md for the measured-vs-paper discussion (the within-10 gap
reproduces fully; the within-2 concentration is directionally strong but
smaller because sibling stub domains hanging off one transit node are
partially indistinguishable to landmark vectors).
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import emit
from repro.experiments import fig7


def test_fig7_ts5k_large(benchmark, settings, report_lines):
    # The transit-stub topology has a fixed ~5000 vertices (the paper's
    # published shape); the proximity effect needs the overlay to populate
    # it densely, so this bench floors the node count at 2048 even at
    # quick scale.
    s = replace(settings, num_nodes=max(settings.num_nodes, 2048))
    result = benchmark.pedantic(lambda: fig7.run(s), rounds=1, iterations=1)
    emit(report_lines, "Figure 7 (ts5k-large moved-load distances)", result.format_rows())

    d = result.data
    # Shape: aware dominates ignorant at every distance mark.
    for mark in (2, 4, 6, 10):
        assert d.aware_within[mark] >= d.ignorant_within[mark]
    # Headline gaps.
    assert d.aware_within[10] > 0.6
    assert d.ignorant_within[10] < 0.45
    assert d.aware_within[2] > 5 * max(d.ignorant_within[2], 1e-3)
    # Both systems fully balance.
    assert result.aware_report.heavy_after <= result.aware_report.heavy_before // 20
    assert (
        result.ignorant_report.heavy_after
        <= result.ignorant_report.heavy_before // 20
    )
