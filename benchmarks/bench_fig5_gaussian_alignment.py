"""Benchmark regenerating Figure 5: capacity alignment under Gaussian loads.

Paper row reproduced: after balancing, mean load per capacity category
increases with capacity — higher-capacity nodes carry more load.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.experiments import fig5


def test_fig5_gaussian_alignment(benchmark, settings, report_lines):
    result = benchmark.pedantic(
        lambda: fig5.run(settings), rounds=1, iterations=1
    )
    emit(report_lines, "Figure 5 (Gaussian capacity alignment)", result.format_rows())

    means_after = result.data.mean_loads_after()
    assert np.all(np.diff(means_after) >= -1e-9), "alignment must be monotone"
    # Before balancing, load placement is capacity-blind: the mean load of
    # the lowest and highest capacity categories are of the same order.
    means_before = result.data.mean_loads_before()
    assert means_before[-1] < 10 * means_before[0]
    # After, the top category carries orders of magnitude more than the bottom.
    assert means_after[-1] > 50 * max(means_after[0], 1e-12)
