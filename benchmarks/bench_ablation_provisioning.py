"""Ablation: CFS-style capacity-proportional VS provisioning.

CFS "accounts for node heterogeneity by having each node host some
number of virtual servers in proportion to its capacity" (Section 1.1).
This bench quantifies how far provisioning alone gets: it removes the
capacity-blindness of placement but leaves the O(log N) hashing
imbalance, so a substantial heavy population remains — the balancing
protocol still earns its keep, and when run on top of proportional
provisioning it needs to move far less load.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core import BalancerConfig, LoadBalancer
from repro.core.classification import classify_all
from repro.core.lbi import direct_system_lbi
from repro.workloads import GaussianLoadModel, build_scenario


def build(settings, allocation):
    return build_scenario(
        GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
        num_nodes=settings.num_nodes,
        vs_per_node=settings.vs_per_node,
        vs_allocation=allocation,
        rng=settings.seed,
    )


def test_ablation_provisioning(benchmark, settings, report_lines):
    def run_all():
        out = {}
        for allocation in ("uniform", "proportional"):
            sc = build(settings, allocation)
            lbi = direct_system_lbi(sc.ring.nodes)
            before = classify_all(sc.ring.alive_nodes, lbi, settings.epsilon)
            lb = LoadBalancer(
                sc.ring,
                BalancerConfig(proximity_mode="ignorant", epsilon=settings.epsilon),
                rng=settings.balancer_seed,
            )
            report = lb.run_round()
            out[allocation] = {
                "heavy_initial": len(before.heavy),
                "heavy_after": report.heavy_after,
                "moved": report.moved_load,
                "total": report.system_lbi.total_load,
                "num_vs": report.num_virtual_servers,
            }
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"  {'allocation':>13} {'#VS':>7} {'heavy initial':>14} "
             f"{'heavy after LB':>15} {'load moved':>12}"]
    for allocation, r in results.items():
        lines.append(
            f"  {allocation:>13} {r['num_vs']:>7} {r['heavy_initial']:>14} "
            f"{r['heavy_after']:>15} {r['moved']:>12.4g}"
        )
    emit(report_lines, "Ablation: CFS-style proportional provisioning", "\n".join(lines))

    uni, prop = results["uniform"], results["proportional"]
    # Proportional provisioning alone leaves many nodes heavy...
    assert prop["heavy_initial"] > 0
    # ...but reduces the imbalance the balancer must fix: less load moves.
    assert prop["moved"] < uni["moved"]
    # Balancing on top of either provisioning clears the heavy set.
    assert uni["heavy_after"] <= 3
    assert prop["heavy_after"] <= 3
