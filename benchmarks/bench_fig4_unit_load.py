"""Benchmark regenerating Figure 4: unit load before/after balancing.

Paper rows reproduced:

* ~75% of nodes heavy before balancing (Gaussian loads, Gnutella
  capacities, 4096 nodes x 5 virtual servers);
* all heavy nodes light after one balancing round.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import fig4


def test_fig4_unit_load(benchmark, settings, report_lines):
    result = benchmark.pedantic(
        lambda: fig4.run(settings), rounds=1, iterations=1
    )
    emit(report_lines, "Figure 4 (unit load before/after)", result.format_rows())

    # Shape assertions: the paper's two headline observations.
    assert 0.6 <= result.data.heavy_fraction_before <= 0.9
    assert result.data.heavy_after == 0
