"""Benchmark: multi-round convergence with virtual-server splitting.

Extension experiment (paper future work / Rao et al. remedy): under
Pareto loads a giant virtual server exceeds every light node's spare
capacity and whole-VS transfer strands it forever; splitting sized
against the spare-capacity distribution resolves it in one extra round.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import convergence


def test_convergence_with_splitting(benchmark, settings, report_lines):
    result = benchmark.pedantic(
        lambda: convergence.run(settings), rounds=1, iterations=1
    )
    emit(report_lines, "Extension: convergence with VS splitting", result.format_rows())

    plain_final = result.heavy_per_round_plain[-1]
    split_final = result.heavy_per_round_split[-1]
    # The plain protocol stalls on the giant; splitting converges fully.
    if plain_final > 0:  # a giant existed in this draw
        assert split_final == 0
        assert result.splits_performed > 0
        assert result.stranded_per_round_split[-1] == 0.0
    else:  # no giant in this draw; both converge, splitting is a no-op
        assert split_final == 0
