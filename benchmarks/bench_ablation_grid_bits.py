"""Ablation: Hilbert grid order (the paper's ``n`` knob).

The paper says a smaller grid increases the chance that physically
close nodes share a Hilbert number.  This bench sweeps the bits-per-
dimension and confirms the finding documented in
``docs/topology-calibration.md``: on a 32-bit ring with 15 landmarks the
DHT key keeps only ~2 bits per dimension regardless of the grid order,
so the locality outcome saturates once ``grid_bits >= 2`` — the knob's
useful range is tiny, which is itself worth knowing.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import emit
from repro.core import BalancerConfig, LoadBalancer
from repro.topology import TS5K_LARGE
from repro.workloads import GaussianLoadModel, build_scenario

GRID_BITS = (1, 2, 4, 6)


def run_for_bits(settings, gb):
    scenario = build_scenario(
        GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
        num_nodes=settings.num_nodes,
        vs_per_node=settings.vs_per_node,
        topology_params=TS5K_LARGE,
        rng=settings.seed,
    )
    lb = LoadBalancer(
        scenario.ring,
        BalancerConfig(proximity_mode="aware", epsilon=settings.epsilon, grid_bits=gb),
        topology=scenario.topology,
        oracle=scenario.oracle,
        rng=settings.balancer_seed,
    )
    return lb.run_round()


def test_ablation_grid_bits(benchmark, settings, report_lines):
    s = replace(settings, num_nodes=max(settings.num_nodes, 1024))

    def run_all():
        return {gb: run_for_bits(s, gb) for gb in GRID_BITS}

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"  {'grid bits/dim':>14} {'within 10':>10} {'mean distance':>14} "
             f"{'heavy after':>12}"]
    for gb, r in reports.items():
        lines.append(
            f"  {gb:>14} {100 * r.moved_load_within(10):>9.1f}% "
            f"{r.transfer_distances.mean():>14.2f} {r.heavy_after:>12}"
        )
    lines.append("  [key truncation caps effective resolution at ~2 bits/dim "
                 "on a 32-bit ring; see docs/topology-calibration.md]")
    emit(report_lines, "Ablation: Hilbert grid order", "\n".join(lines))

    # The outcome saturates: 4 and 6 bits/dim are indistinguishable.
    w4 = reports[4].moved_load_within(10)
    w6 = reports[6].moved_load_within(10)
    assert abs(w4 - w6) < 0.05
    # And every setting still balances.
    for r in reports.values():
        assert r.heavy_after <= r.heavy_before // 20
