"""Ablation: shed-subset selection policy (exact vs greedy).

The paper asks heavy nodes to choose the subset minimising total shed
load.  The exact policy solves that optimally; the greedy best-fit
heuristic is what a constrained implementation would ship.  This bench
quantifies how much extra load the heuristic moves.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core import BalancerConfig, LoadBalancer
from repro.workloads import GaussianLoadModel, ParetoLoadModel, build_scenario


def run_policy(settings, model, policy):
    scenario = build_scenario(
        model,
        num_nodes=settings.num_nodes,
        vs_per_node=settings.vs_per_node,
        rng=settings.seed,
    )
    lb = LoadBalancer(
        scenario.ring,
        BalancerConfig(
            proximity_mode="ignorant",
            epsilon=settings.epsilon,
            selection_policy=policy,
        ),
        rng=settings.balancer_seed,
    )
    return lb.run_round()


def test_ablation_selection_policy(benchmark, settings, report_lines):
    models = {
        "gaussian": GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
        "pareto": ParetoLoadModel(mu=settings.mu),
    }

    def run_all():
        return {
            (name, policy): run_policy(settings, model, policy)
            for name, model in models.items()
            for policy in ("exact", "greedy")
        }

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"  {'model':>9} {'policy':>7} {'moved load':>12} "
             f"{'transfers':>10} {'heavy after':>12}"]
    for (name, policy), r in reports.items():
        lines.append(
            f"  {name:>9} {policy:>7} {r.moved_load:>12.4g} "
            f"{len(r.transfers):>10} {r.heavy_after:>12}"
        )
    emit(report_lines, "Ablation: shed-subset selection policy", "\n".join(lines))

    for name in models:
        exact = reports[(name, "exact")]
        greedy = reports[(name, "greedy")]
        # Exact never sheds more load than greedy (same classification).
        assert exact.moved_load <= greedy.moved_load * 1.001
        # Both resolve (nearly) all heavy nodes.
        assert exact.heavy_after <= max(2, exact.heavy_before // 20)
        assert greedy.heavy_after <= max(2, greedy.heavy_before // 20)
