"""Benchmark: chaos sweep — fault rate vs achieved load movement.

Robustness experiment: one balancing round per injected drop rate (plus
a fixed mid-round crash and transfer-abort probability) against the
same scenario, measuring how gracefully the movement ratio degrades.
The retry machinery should fully absorb moderate drop rates; heavy drop
costs movement but never conservation, convergence-to-completion or
reproducibility.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import chaos


def test_chaos_fault_sweep(benchmark, settings, report_lines):
    result = benchmark.pedantic(
        lambda: chaos.run(settings, drop_rates=(0.0, 0.1, 0.4)),
        rounds=1,
        iterations=1,
    )
    emit(report_lines, "Robustness: chaos fault sweep", result.format_rows())

    assert result.baseline_moved > 0
    for row in result.rows:
        # Every degraded round completed, conserved and still moved load.
        assert row.movement_ratio > 0
        assert row.signature != ""
    # The retry machinery engages once drops are injected...
    assert result.rows[1].retries > 0
    # ...and heavy drop degrades movement, never below half the moderate
    # case (graceful, not a cliff).
    assert result.rows[2].moved_load >= 0.5 * result.rows[1].moved_load
