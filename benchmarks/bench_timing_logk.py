"""Benchmark regenerating the O(log_K N) phase-time claim (K = 2 and 8).

Paper rows reproduced: LBI aggregation, dissemination and VSA all
complete in rounds proportional to ``log_K`` of the system size, with
similar balance results for both degrees.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import timing


def test_timing_logk(benchmark, settings, report_lines):
    result = benchmark.pedantic(
        lambda: timing.run(settings), rounds=1, iterations=1
    )
    emit(report_lines, "Timing (O(log_K N) rounds)", result.format_rows())

    by_k: dict[int, list] = {}
    for t in result.timings:
        by_k.setdefault(t.tree_degree, []).append(t)
    for k, ts in by_k.items():
        # height / log_K(#VS) stays bounded across the sweep: O(log_K N).
        ratios = [t.height_per_log for t in ts]
        assert max(ratios) < 4.0
        # Rounds grow sub-linearly: 8x nodes < 2x rounds.
        assert ts[-1].vsa_rounds < 2 * ts[0].vsa_rounds
    # K=8 trees are shallower than K=2 at equal size.
    k2 = {t.num_nodes: t for t in by_k[2]}
    k8 = {t.num_nodes: t for t in by_k[8]}
    for n in k2:
        assert k8[n].tree_height < k2[n].tree_height
