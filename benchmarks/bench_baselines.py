"""Benchmark: the paper's scheme against Rao et al. and CFS baselines.

Positions the reproduction in the related-work landscape (Sections 1.1
and 6):

* many-to-many (Rao) balances about as well as the paper's tree-based
  VSA — same assignment policy, but centralised and proximity-blind;
* one-to-one / one-to-many are weaker matchers;
* CFS shedding exhibits the load-thrashing the paper criticises
  (removals push successors over their targets).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.baselines import (
    run_cfs_shedding,
    run_many_to_many,
    run_one_to_many,
    run_one_to_one,
)
from repro.core import BalancerConfig, LoadBalancer
from repro.workloads import GaussianLoadModel, build_scenario


def fresh_scenario(settings):
    return build_scenario(
        GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
        num_nodes=settings.num_nodes,
        vs_per_node=settings.vs_per_node,
        rng=settings.seed,
    )


def test_baseline_comparison(benchmark, settings, report_lines):
    def run_all():
        out = {}
        sc = fresh_scenario(settings)
        lb = LoadBalancer(
            sc.ring,
            BalancerConfig(proximity_mode="ignorant", epsilon=settings.epsilon),
            rng=settings.balancer_seed,
        )
        rep = lb.run_round()
        out["paper-vsa"] = (rep.heavy_before, rep.heavy_after, rep.moved_load, len(rep.transfers))

        r = run_many_to_many(fresh_scenario(settings).ring, epsilon=settings.epsilon)
        out["many-to-many"] = (r.heavy_before, r.heavy_after, r.moved_load, r.transfers)
        r = run_one_to_many(
            fresh_scenario(settings).ring, epsilon=settings.epsilon, rng=1
        )
        out["one-to-many"] = (r.heavy_before, r.heavy_after, r.moved_load, r.transfers)
        r = run_one_to_one(
            fresh_scenario(settings).ring, epsilon=settings.epsilon, rng=1
        )
        out["one-to-one"] = (r.heavy_before, r.heavy_after, r.moved_load, r.transfers)
        c = run_cfs_shedding(
            fresh_scenario(settings).ring, epsilon=settings.epsilon, max_rounds=5
        )
        out["cfs-shed"] = (c.heavy_before, c.heavy_after, c.shed_load, c.removals)
        out["cfs-thrash"] = c.total_thrash
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"  {'scheme':>13} {'heavy before':>13} {'heavy after':>12} "
             f"{'load moved':>12} {'ops':>6}"]
    for name in ("paper-vsa", "many-to-many", "one-to-many", "one-to-one", "cfs-shed"):
        hb, ha, moved, ops = results[name]
        lines.append(f"  {name:>13} {hb:>13} {ha:>12} {moved:>12.4g} {ops:>6}")
    lines.append(f"  CFS thrash (nodes pushed heavy by shedding): {results['cfs-thrash']}")
    emit(report_lines, "Baselines: paper VSA vs Rao et al. vs CFS", "\n".join(lines))

    paper_after = results["paper-vsa"][1]
    # The paper's scheme matches the strongest baseline...
    assert paper_after <= results["many-to-many"][1] + 3
    # ...and beats the weak randomised matchers.
    assert paper_after <= results["one-to-one"][1]
    # CFS thrashing is real.
    assert results["cfs-thrash"] > 0
