"""Shared benchmark configuration.

Benchmarks default to a reduced scale (512 nodes) so the suite runs in
about a minute; set ``REPRO_SCALE=paper`` to run everything at the
paper's 4096-node scale.  Every figure bench prints a paper-vs-measured
table through the ``figure_table`` helper so ``pytest benchmarks/
--benchmark-only -s`` regenerates the evaluation section.

Observability hook (opt-in): set ``REPRO_OBS_OUT=DIR`` and the session
installs a process-wide :class:`repro.obs.MetricsRegistry` that every
balancer built by a benchmark reports into; at session end the
accumulated snapshot is written to ``DIR/bench-metrics.json``.  Unset,
nothing is installed and benchmark timings are untouched.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentSettings


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings.from_env()


@pytest.fixture(scope="session", autouse=True)
def obs_metrics():
    """Install a session metrics registry when REPRO_OBS_OUT is set."""
    out_dir = os.environ.get("REPRO_OBS_OUT")
    if not out_dir:
        yield None
        return
    from repro.obs import MetricsRegistry, set_metrics

    registry = MetricsRegistry()
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
        target = Path(out_dir)
        target.mkdir(parents=True, exist_ok=True)
        path = registry.write_json(target / "bench-metrics.json")
        print(f"\n[obs] wrote {path}")


@pytest.fixture(scope="session")
def report_lines():
    """Collect result tables; print them once at session end."""
    lines: list[str] = []
    yield lines
    if lines:
        print("\n" + "\n".join(lines))


def emit(report_lines: list[str], title: str, body: str) -> None:
    report_lines.append("")
    report_lines.append("=" * 72)
    report_lines.append(title)
    report_lines.append("=" * 72)
    report_lines.append(body)
