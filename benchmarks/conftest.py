"""Shared benchmark configuration.

Benchmarks default to a reduced scale (512 nodes) so the suite runs in
about a minute; set ``REPRO_SCALE=paper`` to run everything at the
paper's 4096-node scale.  Every figure bench prints a paper-vs-measured
table through the ``figure_table`` helper so ``pytest benchmarks/
--benchmark-only -s`` regenerates the evaluation section.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentSettings


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings.from_env()


@pytest.fixture(scope="session")
def report_lines():
    """Collect result tables; print them once at session end."""
    lines: list[str] = []
    yield lines
    if lines:
        print("\n" + "\n".join(lines))


def emit(report_lines: list[str], title: str, body: str) -> None:
    report_lines.append("")
    report_lines.append("=" * 72)
    report_lines.append(title)
    report_lines.append("=" * 72)
    report_lines.append(body)
