#!/usr/bin/env bash
# Repository verify path: tier-1 tests, the observability suite, the
# repro.lint static-analysis gate, the mypy strict-typing gate (when
# mypy is installed) and the generated-API freshness check.  Run from
# the repository root:
#
#   bash scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full test suite =="
python -m pytest -x -q

echo "== observability suite (unit + integration + docstring lint) =="
python -m pytest -q tests/test_obs*.py

echo "== repro.lint: domain-aware static analysis =="
python -m repro.lint src/repro --baseline lint-baseline.json

echo "== mypy: strict typing gate =="
if python -c "import mypy" >/dev/null 2>&1; then
    # Config ([tool.mypy] in pyproject.toml) runs strict over the whole
    # package with ignore_errors overrides for not-yet-strict modules.
    python -m mypy
else
    echo "mypy not installed; skipping (pip install -e '.[dev]' to enable)"
fi

echo "== generated API docs freshness =="
python scripts/gen_api_docs.py --check

echo "verify: OK"
