#!/usr/bin/env bash
# Repository verify path: tier-1 tests, the observability suite (which
# includes the repro.obs docstring-coverage lint), and the generated-API
# freshness check.  Run from the repository root:
#
#   bash scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full test suite =="
python -m pytest -x -q

echo "== observability suite (unit + integration + docstring lint) =="
python -m pytest -q tests/test_obs*.py

echo "== generated API docs freshness =="
python scripts/gen_api_docs.py --check

echo "verify: OK"
