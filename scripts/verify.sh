#!/usr/bin/env bash
# Repository verify path: tier-1 tests, the observability suite, the
# repro.lint static-analysis gate, the mypy strict-typing gate (when
# mypy is installed), the generated-API freshness check and the chaos
# smoke (a degraded balancing round under injected faults).  Run from
# the repository root:
#
#   bash scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full test suite =="
python -m pytest -x -q

echo "== observability suite (unit + integration + docstring lint) =="
python -m pytest -q tests/test_obs*.py

echo "== repro.lint: domain-aware static analysis =="
python -m repro.lint src/repro --baseline lint-baseline.json

echo "== mypy: strict typing gate =="
if python -c "import mypy" >/dev/null 2>&1; then
    # Config ([tool.mypy] in pyproject.toml) runs strict over the whole
    # package with ignore_errors overrides for not-yet-strict modules.
    python -m mypy
else
    echo "mypy not installed; skipping (pip install -e '.[dev]' to enable)"
fi

echo "== generated API docs freshness =="
python scripts/gen_api_docs.py --check

echo "== bench trend: cost metrics vs checked-in baseline =="
# Regenerate the deterministic smoke-workload metrics dump and compare
# it against benchmarks/BENCH_BASELINE.json: any counter/gauge >20%
# above baseline (messages, Dijkstra runs, shard dispatches, ...) fails
# the build.  After an intentional cost change, regenerate with
#   python scripts/check_bench_trend.py gen
# and commit the new baseline.
BENCH_TMP="$(mktemp /tmp/bench_trend.XXXXXX.json)"
trap 'rm -f "$BENCH_TMP"' EXIT
python scripts/check_bench_trend.py gen --out "$BENCH_TMP" >/dev/null
python scripts/check_bench_trend.py check "$BENCH_TMP"

echo "== chaos smoke: degraded round survives, conserves, reproduces =="
# Small ring, fixed seed, 10% message drop + one mid-round crash; the
# module asserts conservation, convergence and byte-identical fault
# sequences across two runs.  (Invoked via -c rather than -m to avoid
# the runpy double-import warning: the experiments package __init__
# already imports chaos through the registry.)
python -c "import sys; from repro.experiments.chaos import main; sys.exit(main(['--smoke']))"

echo "verify: OK"
