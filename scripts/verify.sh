#!/usr/bin/env bash
# Repository verify path: tier-1 tests, the observability suite, the
# repro.lint static-analysis gate, the mypy strict-typing gate (when
# mypy is installed), the generated-API freshness check, the chaos
# smoke (a degraded balancing round under injected faults), the
# incremental smoke (persistent-tree digest identity under churn), the
# partition smoke (a network split healing under the conservation
# gate) and the recovery smokes (a monitored chaos soak with process
# crashes, and the durability-overhead bound).  Run from the
# repository root:
#
#   bash scripts/verify.sh
#
# REPRO_SOAK=1 additionally sweeps partition scenarios across seeds
# through the parallel trial engine (opt-in; adds a few seconds).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full test suite =="
python -m pytest -x -q

echo "== observability suite (unit + integration + docstring lint) =="
python -m pytest -q tests/test_obs*.py

echo "== repro.lint: static analysis + interprocedural effect gate =="
# The flow pass builds the project call graph, infers transitive
# effects, and fails on drift against the committed effects baseline.
# After an intentional effect change, regenerate and commit with
#   python -m repro.lint src/repro --baseline lint-baseline.json \
#       --effects-out effects-baseline.json
python -m repro.lint src/repro --baseline lint-baseline.json \
    --effects-check effects-baseline.json

echo "== repro.lint: scripts/ + benchmarks/ (relaxed profile) =="
# Determinism rules stay on for bench harnesses and tooling; only the
# documentation-hygiene rules are dropped.
python -m repro.lint scripts benchmarks --profile relaxed

echo "== mypy: strict typing gate =="
if python -c "import mypy" >/dev/null 2>&1; then
    # Config ([tool.mypy] in pyproject.toml) runs strict over the whole
    # package with ignore_errors overrides for not-yet-strict modules.
    python -m mypy
else
    echo "mypy not installed; skipping (pip install -e '.[dev]' to enable)"
fi

echo "== generated API docs freshness =="
python scripts/gen_api_docs.py --check

echo "== bench trend: cost metrics vs checked-in baseline =="
# Regenerate the deterministic smoke-workload metrics dump and compare
# it against benchmarks/BENCH_BASELINE.json: any counter/gauge >20%
# above baseline (messages, Dijkstra runs, shard dispatches, ...) fails
# the build.  After an intentional cost change, regenerate with
#   python scripts/check_bench_trend.py gen
# and commit the new baseline.
BENCH_TMP="$(mktemp /tmp/bench_trend.XXXXXX.json)"
trap 'rm -f "$BENCH_TMP"' EXIT
python scripts/check_bench_trend.py gen --out "$BENCH_TMP" >/dev/null
python scripts/check_bench_trend.py check "$BENCH_TMP"

echo "== chaos smoke: degraded round survives, conserves, reproduces =="
# Small ring, fixed seed, 10% message drop + one mid-round crash; the
# module asserts conservation, convergence and byte-identical fault
# sequences across two runs.  (Invoked via -c rather than -m to avoid
# the runpy double-import warning: the experiments package __init__
# already imports chaos through the registry.)
python -c "import sys; from repro.experiments.chaos import main; sys.exit(main(['--smoke']))"

echo "== incremental smoke: persistent-tree rounds match serial digests =="
# Tiny ring, four rounds with 1% churn + localized drift between them;
# asserts the incremental engine's canonical digests are byte-identical
# to the serial engine's on every round.
python -c "import sys; sys.path.insert(0, '.'); from benchmarks.bench_incremental_scaling import main; sys.exit(main(['--smoke']))"

echo "== million-steady smoke: batched descents + cache repair, zero stale misses =="
# The 10^6 steady-state configuration at reduced scale: batched engine
# only, four rounds with fractional churn; asserts the delta repair
# invariant (no corridor re-descents) on the same code path the
# full --million run gates by wall-clock.
python -c "import sys; sys.path.insert(0, '.'); from benchmarks.bench_incremental_scaling import main; sys.exit(main(['--million', '--smoke']))"

echo "== partition smoke: split, degraded rounds, conservation-checked heal =="
# Mid-round 2-way split held for two rounds, then healed; the module
# asserts epochs, suspended == commits + rollbacks, global conservation
# and byte-identical signatures/digests across two runs.
python -c "import sys; from repro.experiments.partition import main; sys.exit(main(['--smoke']))"

echo "== byzantine smoke: defended sweep point beats undefended, reproduces =="
# Small ring, fixed seed, 10% Byzantine attackers; the module asserts
# the defense strictly reduces honest damage, quarantines attackers,
# reproduces attack signatures/digests across two runs, and that an
# armed-but-empty adversary (f=0, defense on) stays digest-identical
# to a run with no adversary plan at all.
python -c "import sys; from repro.experiments.byzantine import main; sys.exit(main(['--smoke']))"

echo "== recovery smoke: chaos soak (churn x faults x crashes, monitored) =="
# Two seeded schedules composing churn, message faults, a partition and
# process crashes, run under the always-on soak monitors (conservation,
# region tiling, in-flight accounting, epoch monotonicity); any monitor
# violation would be ddmin-shrunk and printed as a paste-ready test.
python -c "import sys; from repro.recovery.soak import main; sys.exit(main(['--smoke']))"

echo "== recovery smoke: durability overhead bounded, digests identical =="
# The same seeded run plain vs through the RecoveryManager: the durable
# path (checkpoint + write-ahead journal) must not change any digest
# and must stay within a generous overhead ceiling.
python -c "import sys; sys.path.insert(0, '.'); from benchmarks.bench_recovery_overhead import main; sys.exit(main(['--smoke']))"

if [ "${REPRO_SOAK:-0}" = "1" ]; then
    echo "== soak: partition seed sweep through the trial engine (REPRO_SOAK=1) =="
    # Bounded sweep: four scenario seeds x two split shapes, fanned out
    # by TrialExecutor workers.  Every point must activate, degrade,
    # heal at epoch 2 and reconcile all suspended transfers.
    python - <<'PY'
from dataclasses import replace

from repro.experiments import ExperimentSettings
from repro.experiments import partition

base = ExperimentSettings(num_nodes=96, workers=2)
for seed in (7, 11, 23, 42):
    result = partition.run(replace(base, seed=seed), component_counts=(2, 3))
    for row in result.rows:
        assert row.final_epoch == 2, (seed, row)
        assert row.suspended == row.healed_commits + row.healed_rollbacks, (
            seed, row,
        )
    print(f"  seed {seed}: {len(result.rows)} split shapes healed, conserved")
print("soak OK: 4 seeds x 2 shapes through TrialExecutor")
PY
fi

echo "verify: OK"
