#!/usr/bin/env python
"""Benchmark-trend gate: compare a metrics dump against a baseline.

The repository records balancing-round cost metrics (message counts,
Dijkstra runs, dispatch counts, phase timings) through
:mod:`repro.obs`.  This script turns those dumps into a regression
gate:

``gen``
    Run the deterministic smoke workload — one serial balancing round,
    one sharded round (inline pool), one partition lifecycle (mid-round
    split, degraded rounds, conservation-checked heal), a
    distance-oracle probe that exercises the batched LRU path, and
    three crash-recovery rounds (checkpoint + write-ahead journal, one
    injected process crash) — and write the merged metrics
    snapshot as JSON (default: ``benchmarks/BENCH_BASELINE.json``).
    Every counter and gauge in the workload is a pure function of the
    fixed seeds, so regenerating the file on an unchanged tree
    reproduces it bit-for-bit (timing histograms excepted).

``check``
    Compare a current metrics dump (a ``gen`` output, or any
    ``REPRO_OBS_OUT`` / ``--metrics-out`` dump holding the same
    instruments) against the checked-in baseline.  A counter or gauge
    more than ``--tolerance`` (default 20%) above its baseline value is
    a regression; histogram counts get the same bound and wall-clock
    ``*.seconds`` sums a generous floor (baseline x (1+tol) + 1s) since
    machines differ.  Exit status: 0 clean, 1 regression(s), 2 usage
    error.

``scripts/verify.sh`` wires both together: regenerate into a temp file
and check it against the committed baseline, failing the build if any
cost metric drifted up.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_BASELINE.json"

#: Relative headroom allowed over the baseline before a metric fails.
DEFAULT_TOLERANCE = 0.20

#: Absolute slack (seconds) added on top of the relative headroom for
#: wall-clock histogram sums — CI machines are not benchmark machines.
SECONDS_FLOOR = 1.0


# ----------------------------------------------------------------------
# gen: the deterministic smoke workload
# ----------------------------------------------------------------------
def _smoke_snapshot() -> dict:
    """Run the smoke workload and return one merged metrics snapshot."""
    from repro.core.balancer import LoadBalancer
    from repro.core.config import BalancerConfig
    from repro.faults import FaultPlan, PartitionSpec
    from repro.obs import MetricsRegistry
    from repro.parallel import ShardedLoadBalancer, WorkerPool
    from repro.topology import DistanceOracle
    from repro.topology.transit_stub import TransitStubParams, generate_transit_stub
    from repro.workloads import GaussianLoadModel, build_scenario

    registry = MetricsRegistry()

    def scenario():
        return build_scenario(
            GaussianLoadModel(mu=1e6, sigma=2e3),
            num_nodes=256,
            vs_per_node=5,
            rng=42,
        )

    config = BalancerConfig(proximity_mode="ignorant", epsilon=0.05)

    # One serial round: LBI/VSA/VST message and transfer counters.
    serial = LoadBalancer(scenario().ring, config, rng=7, metrics=registry)
    serial.run_round()

    # One sharded round (inline pool): parallel dispatch counters must
    # not grow — more tasks per round means the shard split regressed.
    with WorkerPool(1, mode="inline") as pool:
        sharded = ShardedLoadBalancer(
            scenario().ring, config, rng=7, metrics=registry,
            num_shards=4, pool=pool,
        )
        sharded.run_round()

    # Three incremental rounds over localized churn: pins the persistent
    # K-nary tree's repair economy (ktree.materialized / replanted /
    # pruned / grown) and the shared message counters.  A regression in
    # dirty-span resolution — say, repairing whole levels instead of
    # overlapped subtrees — shows up here as materialized/grown growth
    # long before it costs wall-clock anywhere.
    from repro.core.incremental import IncrementalLoadBalancer
    from repro.dht import join_node, leave_node
    from repro.util.rng import ensure_rng
    from repro.workloads import apply_load_drift

    inc_scenario = scenario()
    incremental = IncrementalLoadBalancer(
        inc_scenario.ring, config, rng=7, metrics=registry
    )
    churn_gen = ensure_rng(11)
    for _ in range(3):
        incremental.run_round()
        ring = inc_scenario.ring
        sites = []
        for _ in range(2):
            joined = join_node(
                ring, capacity=10.0, vs_count=3,
                rng=int(churn_gen.integers(1 << 30)),
            )
            sites.extend(vs.vs_id for vs in joined.virtual_servers)
        alive = [n for n in ring.alive_nodes if n.virtual_servers]
        leave_node(ring, alive[int(churn_gen.integers(len(alive)))])
        apply_load_drift(
            ring, GaussianLoadModel(mu=1e6, sigma=2e3),
            int(churn_gen.integers(1 << 30)), sites[:3], fraction=0.05,
        )
    incremental.run_round()

    # A steady-state stretch shaped like the 10^6 configuration of
    # bench_incremental_scaling (--million) at smoke scale: batched
    # descents plus delta-driven cache repair over fractional churn.
    # Pins the miss-descent economy counters — incremental.miss_descents
    # (keys resolved by descending), incremental.cache_repairs (entries
    # remapped without a descent) and incremental.stale_cache_misses
    # (corridor re-descents, exactly zero while repair holds its
    # invariant) — so a repair regression surfaces as descent growth
    # here long before it costs wall-clock at a million nodes.
    steady_scenario = scenario()
    steady = IncrementalLoadBalancer(
        steady_scenario.ring, config, rng=7, metrics=registry
    )
    steady_gen = ensure_rng(19)
    for rnd in range(4):
        steady.run_round()
        if rnd == 3:
            break
        ring = steady_scenario.ring
        alive = [n for n in ring.alive_nodes if n.virtual_servers]
        joined = join_node(
            ring, capacity=10.0, vs_count=3,
            rng=int(steady_gen.integers(1 << 30)),
        )
        leave_node(ring, alive[int(steady_gen.integers(len(alive)))])
        apply_load_drift(
            ring, GaussianLoadModel(mu=1e6, sigma=2e3),
            int(steady_gen.integers(1 << 30)),
            [vs.vs_id for vs in joined.virtual_servers][:3],
            fraction=0.01,
        )

    # One partition lifecycle: a mid-round 2-way split, two degraded
    # per-component rounds and a conservation-checked heal.  Pins the
    # membership counters (partition/heal/regraft/quarantine) so a cost
    # regression in the degraded path — say, quarantining per phase
    # instead of per round — cannot land silently.
    plan = FaultPlan(
        seed=3,
        drop=0.05,
        corrupt=0.05,
        partitions=(
            PartitionSpec(
                at_round=1, duration=2, num_components=2, mid_round=True
            ),
        ),
    )
    partitioned = LoadBalancer(
        scenario().ring, config, rng=7, metrics=registry, faults=plan
    )
    for _ in range(4):
        partitioned.run_round()

    # Four defended rounds under an active Byzantine adversary: pins the
    # attack economy (adversary.actions and the per-behavior counters)
    # and the defense economy (trust.penalties / audit_failures /
    # envelope_breaches / quarantine / rejoin).  A cost regression here —
    # say, auditing every report instead of the seeded sample, or
    # re-quarantining an already-excluded node each round — shows up as
    # counter growth long before it distorts the byzantine sweep.
    from repro.adversary import AdversaryPlan

    adversary_plan = AdversaryPlan(seed=13, fraction=0.1, defense=True)
    defended = LoadBalancer(
        scenario().ring, config, rng=7, metrics=registry,
        adversary=adversary_plan,
    )
    for _ in range(4):
        defended.run_round()

    # Distance-oracle probe: a batched query larger than the LRU bound
    # plus a pair batch.  Guards the distances_from_many fix — the old
    # implementation thrashed its own cache here and ran extra
    # Dijkstras, which this gate would flag as a >20% regression.
    topology = generate_transit_stub(
        TransitStubParams(
            transit_domains=2,
            transit_nodes_per_domain=2,
            stub_domains_per_transit=2,
            stub_nodes_mean=6,
        ),
        rng=5,
    )
    oracle = DistanceOracle(topology, max_cached_rows=4)
    n = topology.num_vertices
    sources = [(3 * i) % n for i in range(12)]
    oracle.distances_from_many(sources)
    oracle.distances_between([(i, (i + 7) % n) for i in range(0, n, 5)])
    registry.gauge("routing.dijkstra_runs").set(oracle.dijkstra_runs)
    registry.gauge("routing.cached_sources").set(oracle.cached_sources)

    # Three recovery-managed rounds with one injected process crash:
    # pins the durability economy (checkpoints and write-ahead journal
    # records per round, restores per crash).  A regression here —
    # say, checkpointing per phase instead of per round, or journaling
    # records the replay matcher then double-writes — shows up as
    # recovery.checkpoints / recovery.journal_records growth.
    import shutil
    import tempfile

    from repro.faults import CrashPoint
    from repro.recovery import RecoveryManager

    recovery_plan = FaultPlan(
        seed=3,
        crash_points=(CrashPoint(at_round=1, site="mid-vst-batch"),),
    )

    def recovery_factory():
        return LoadBalancer(
            scenario().ring, config, rng=7, metrics=registry,
            faults=recovery_plan,
        )

    state_dir = tempfile.mkdtemp(prefix="repro-bench-trend-")
    try:
        manager = RecoveryManager(
            recovery_factory, state_dir=state_dir, metrics=registry
        )
        for _ in range(3):
            manager.run_round()
        manager.close()
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)

    return registry.snapshot()


def cmd_gen(args: argparse.Namespace) -> int:
    out = Path(args.out)
    snapshot = _smoke_snapshot()
    out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    counters = len(snapshot.get("counters", {}))
    gauges = len(snapshot.get("gauges", {}))
    print(f"wrote {out} ({counters} counters, {gauges} gauges)")
    return 0


# ----------------------------------------------------------------------
# check: baseline comparison
# ----------------------------------------------------------------------
def _load(path: Path, role: str) -> dict | None:
    if not path.is_file():
        print(f"error: {role} dump {path} does not exist", file=sys.stderr)
        return None
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"error: {role} dump {path} is not JSON: {exc}", file=sys.stderr)
        return None
    if not isinstance(data, dict):
        print(f"error: {role} dump {path} is not an object", file=sys.stderr)
        return None
    return data


def compare_snapshots(
    current: dict, baseline: dict, tolerance: float
) -> list[str]:
    """All regressions of ``current`` against ``baseline``, as messages.

    Counters, gauges and histogram counts fail when more than
    ``tolerance`` above baseline (with a +1 absolute grace so tiny
    integer counts don't trip on one extra unit); ``*.seconds``
    histogram sums additionally get :data:`SECONDS_FLOOR` of absolute
    slack.  Metrics present in the baseline but missing from the
    current dump fail too — silently dropping an instrument must not
    pass the gate.
    """
    problems: list[str] = []

    def check_value(kind: str, name: str, cur: float, base: float,
                    extra_slack: float = 1.0) -> None:
        allowed = base * (1.0 + tolerance) + extra_slack
        if cur > allowed:
            problems.append(
                f"{kind} {name}: {cur:.6g} exceeds baseline {base:.6g} "
                f"(+{tolerance:.0%} => allowed {allowed:.6g})"
            )

    for kind in ("counters", "gauges"):
        base_table = baseline.get(kind, {})
        cur_table = current.get(kind, {})
        for name, base_value in sorted(base_table.items()):
            if name not in cur_table:
                problems.append(f"{kind[:-1]} {name}: missing from current dump")
                continue
            check_value(kind[:-1], name, float(cur_table[name]),
                        float(base_value))

    base_hists = baseline.get("histograms", {})
    cur_hists = current.get("histograms", {})
    for name, base_summary in sorted(base_hists.items()):
        cur_summary = cur_hists.get(name)
        if cur_summary is None:
            problems.append(f"histogram {name}: missing from current dump")
            continue
        check_value(
            "histogram", f"{name}.count",
            float(cur_summary.get("count", 0)),
            float(base_summary.get("count", 0)),
        )
        if name.endswith(".seconds") or name.endswith("_seconds"):
            check_value(
                "histogram", f"{name}.sum",
                float(cur_summary.get("sum", 0.0)),
                float(base_summary.get("sum", 0.0)),
                extra_slack=SECONDS_FLOOR,
            )
    return problems


def cmd_check(args: argparse.Namespace) -> int:
    current = _load(Path(args.current), "current")
    baseline = _load(Path(args.baseline), "baseline")
    if current is None or baseline is None:
        return 2
    if args.tolerance < 0:
        print("error: tolerance must be >= 0", file=sys.stderr)
        return 2
    problems = compare_snapshots(current, baseline, args.tolerance)
    if problems:
        print(f"bench trend check FAILED ({len(problems)} regression(s)):")
        for p in problems:
            print(f"  {p}")
        return 1
    checked = sum(
        len(baseline.get(kind, {}))
        for kind in ("counters", "gauges", "histograms")
    )
    print(
        f"bench trend OK: {checked} instruments within "
        f"{args.tolerance:.0%} of {args.baseline}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="check_bench_trend.py",
        description="benchmark-trend regression gate over obs metrics dumps",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="run the smoke workload, write a dump")
    gen.add_argument("--out", default=str(DEFAULT_BASELINE),
                     help="output JSON path (default: the checked-in baseline)")
    gen.set_defaults(func=cmd_gen)

    check = sub.add_parser("check", help="compare a dump against the baseline")
    check.add_argument("current", help="metrics dump to check")
    check.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                       help="baseline JSON (default: benchmarks/BENCH_BASELINE.json)")
    check.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                       help="relative headroom before failing (default 0.20)")
    check.set_defaults(func=cmd_check)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())
