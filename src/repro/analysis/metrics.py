"""Scalar and distributional metrics over balance reports."""

from __future__ import annotations

import numpy as np

from repro.core.report import BalanceReport
from repro.util.stats import cdf_points, gini_coefficient, histogram_by_bins


def imbalance_metrics(report: BalanceReport) -> dict[str, float]:
    """Scalar before/after imbalance summary for one report.

    ``gini_*`` measures inequality of unit load (0 = perfectly aligned
    with capacity); ``max_unit_*`` is the worst node's load/capacity
    relative to the system ratio.
    """
    ratio = report.system_lbi.load_per_capacity
    before = report.unit_loads_before
    after = report.unit_loads_after
    return {
        "gini_before": gini_coefficient(before),
        "gini_after": gini_coefficient(after),
        "max_unit_before": float(before.max() / ratio) if ratio else float("nan"),
        "max_unit_after": float(after.max() / ratio) if ratio else float("nan"),
        "heavy_frac_before": report.heavy_fraction_before,
        "heavy_frac_after": report.heavy_after / report.num_nodes,
        "moved_load_frac": report.moved_load / report.system_lbi.total_load
        if report.system_lbi.total_load
        else 0.0,
    }


def capacity_category_breakdown(
    report: BalanceReport,
) -> dict[float, dict[str, float]]:
    """Per-capacity-category load statistics (figures 5 and 6).

    Returns ``capacity value -> {count, mean_load_before, mean_load_after,
    mean_unit_before, mean_unit_after, share_before, share_after}``.
    After balancing, load share per category should track capacity share
    — "have higher capacity nodes carry more loads".
    """
    caps = report.capacities
    out: dict[float, dict[str, float]] = {}
    total_before = report.loads_before.sum()
    total_after = report.loads_after.sum()
    for value in np.unique(caps):
        mask = caps == value
        lb = report.loads_before[mask]
        la = report.loads_after[mask]
        out[float(value)] = {
            "count": int(mask.sum()),
            "mean_load_before": float(lb.mean()),
            "mean_load_after": float(la.mean()),
            "mean_unit_before": float((lb / value).mean()),
            "mean_unit_after": float((la / value).mean()),
            "share_before": float(lb.sum() / total_before) if total_before else 0.0,
            "share_after": float(la.sum() / total_after) if total_after else 0.0,
        }
    return out


def moved_load_histogram(
    report: BalanceReport, bin_edges: list[float] | np.ndarray
) -> np.ndarray:
    """Fraction of moved load per transfer-distance bin (figure 7(a))."""
    return histogram_by_bins(
        report.transfer_distances, report.transfer_loads_with_distance, bin_edges
    )


def moved_load_cdf(report: BalanceReport) -> tuple[np.ndarray, np.ndarray]:
    """CDF of moved load over transfer distance (figure 7(b))."""
    return cdf_points(
        report.transfer_distances, report.transfer_loads_with_distance
    )
