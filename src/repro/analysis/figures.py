"""Typed data products for each figure of the paper's evaluation.

Each ``figureN_data`` function turns one or two
:class:`~repro.core.report.BalanceReport` objects into exactly the
series the corresponding figure plots, so benchmarks and examples can
print the paper's rows without re-deriving anything.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import capacity_category_breakdown
from repro.core.report import BalanceReport
from repro.util.stats import cdf_points, histogram_by_bins


@dataclass(frozen=True)
class Figure4Data:
    """Figure 4: scatter of unit load per node, before/after balancing."""

    node_ids: np.ndarray
    unit_before: np.ndarray  # (a)
    unit_after: np.ndarray  # (b)
    target_unit: float  # the system ratio L/C (the horizontal "fair" line)
    heavy_before: int
    heavy_after: int

    @property
    def heavy_fraction_before(self) -> float:
        return self.heavy_before / len(self.node_ids)


def figure4_data(report: BalanceReport) -> Figure4Data:
    return Figure4Data(
        node_ids=report.node_indices,
        unit_before=report.unit_loads_before,
        unit_after=report.unit_loads_after,
        target_unit=report.system_lbi.load_per_capacity,
        heavy_before=report.heavy_before,
        heavy_after=report.heavy_after,
    )


@dataclass(frozen=True)
class Figure56Data:
    """Figures 5/6: load vs. capacity category, before/after.

    ``loads_by_category`` maps capacity value to the per-node loads in
    that category; ``summary`` is the breakdown table.  After balancing,
    mean load must increase monotonically with capacity (the two skews
    aligned) — that is the property tests assert.
    """

    distribution: str  # "gaussian" | "pareto"
    categories: np.ndarray
    loads_before_by_category: dict[float, np.ndarray]
    loads_after_by_category: dict[float, np.ndarray]
    summary: dict[float, dict[str, float]]

    def mean_loads_after(self) -> np.ndarray:
        return np.asarray(
            [self.summary[c]["mean_load_after"] for c in self.categories]
        )

    def mean_loads_before(self) -> np.ndarray:
        return np.asarray(
            [self.summary[c]["mean_load_before"] for c in self.categories]
        )


def figure56_data(report: BalanceReport, distribution: str) -> Figure56Data:
    caps = report.capacities
    categories = np.unique(caps)
    before: dict[float, np.ndarray] = {}
    after: dict[float, np.ndarray] = {}
    for value in categories:
        mask = caps == value
        before[float(value)] = report.loads_before[mask]
        after[float(value)] = report.loads_after[mask]
    return Figure56Data(
        distribution=distribution,
        categories=categories.astype(np.float64),
        loads_before_by_category=before,
        loads_after_by_category=after,
        summary=capacity_category_breakdown(report),
    )


@dataclass(frozen=True)
class Figure78Data:
    """Figures 7/8: moved-load distribution over transfer distance.

    ``bin_edges`` bound the histogram buckets (latency units);
    ``aware_hist``/``ignorant_hist`` hold the fraction of total moved
    load per bucket; the CDF arrays are weighted empirical CDFs.
    """

    topology_name: str
    bin_edges: np.ndarray
    aware_hist: np.ndarray
    ignorant_hist: np.ndarray
    aware_cdf: tuple[np.ndarray, np.ndarray]
    ignorant_cdf: tuple[np.ndarray, np.ndarray]
    aware_within: dict[int, float]
    ignorant_within: dict[int, float]


DEFAULT_DISTANCE_BINS = np.asarray(
    [0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 25, 30, 40, 60], dtype=np.float64
)


def figure78_data(
    aware_report: BalanceReport,
    ignorant_report: BalanceReport,
    topology_name: str,
    bin_edges: np.ndarray | None = None,
    within_marks: tuple[int, ...] = (2, 4, 6, 10, 15, 20),
) -> Figure78Data:
    edges = DEFAULT_DISTANCE_BINS if bin_edges is None else np.asarray(bin_edges)
    return Figure78Data(
        topology_name=topology_name,
        bin_edges=edges,
        aware_hist=histogram_by_bins(
            aware_report.transfer_distances,
            aware_report.transfer_loads_with_distance,
            edges,
        ),
        ignorant_hist=histogram_by_bins(
            ignorant_report.transfer_distances,
            ignorant_report.transfer_loads_with_distance,
            edges,
        ),
        aware_cdf=cdf_points(
            aware_report.transfer_distances,
            aware_report.transfer_loads_with_distance,
        ),
        ignorant_cdf=cdf_points(
            ignorant_report.transfer_distances,
            ignorant_report.transfer_loads_with_distance,
        ),
        aware_within={m: aware_report.moved_load_within(m) for m in within_marks},
        ignorant_within={
            m: ignorant_report.moved_load_within(m) for m in within_marks
        },
    )
