"""Analysis layer: imbalance metrics and per-figure data products."""

from repro.analysis.metrics import (
    capacity_category_breakdown,
    imbalance_metrics,
    moved_load_histogram,
    moved_load_cdf,
)
from repro.analysis.figures import (
    Figure4Data,
    Figure56Data,
    Figure78Data,
    figure4_data,
    figure56_data,
    figure78_data,
)
from repro.analysis.replicate import ReplicatedMetric, replicate
from repro.analysis.text_plots import ascii_cdf, ascii_histogram, side_by_side

__all__ = [
    "ReplicatedMetric",
    "replicate",
    "ascii_cdf",
    "ascii_histogram",
    "side_by_side",
    "capacity_category_breakdown",
    "imbalance_metrics",
    "moved_load_histogram",
    "moved_load_cdf",
    "Figure4Data",
    "Figure56Data",
    "Figure78Data",
    "figure4_data",
    "figure56_data",
    "figure78_data",
]
