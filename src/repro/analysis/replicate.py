"""Replication across seeds: mean +/- std for any experiment metric.

Single-seed results can mislead (one topology draw, one capacity draw);
this module re-runs a metric-producing function across seeds and
summarises each metric.  Used by the variance experiment to put error
bars on the headline figure-7 numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np


@dataclass(frozen=True)
class ReplicatedMetric:
    """Mean/std/min/max of one metric across replications."""

    name: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def minimum(self) -> float:
        return float(np.min(self.values))

    @property
    def maximum(self) -> float:
        return float(np.max(self.values))

    def __str__(self) -> str:
        return f"{self.mean:.4g} +/- {self.std:.2g}"


def summarize_rows(rows: list[dict[str, float]]) -> dict[str, ReplicatedMetric]:
    """Summarise per-replication metric rows into per-metric statistics.

    Every row must carry the same metric keys; a mismatch raises
    ``KeyError`` so silent metric drift cannot occur.  Shared by
    :func:`replicate` and the parallel trial path in
    :mod:`repro.experiments.variance`, so both produce identical
    results from identical rows.
    """
    if not rows:
        raise ValueError("need at least one row")
    keys = list(rows[0].keys())
    for row in rows[1:]:
        missing = set(keys) ^ set(row.keys())
        if missing:
            raise KeyError(f"inconsistent metric keys across seeds: {missing}")
    return {
        key: ReplicatedMetric(name=key, values=tuple(float(r[key]) for r in rows))
        for key in keys
    }


def replicate(
    metric_fn: Callable[[int], dict[str, float]],
    seeds: Iterable[int],
) -> dict[str, ReplicatedMetric]:
    """Run ``metric_fn(seed)`` for every seed and summarise each metric.

    Every replication must return the same metric keys; a missing key
    raises ``KeyError`` so silent metric drift cannot occur.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    return summarize_rows([metric_fn(seed) for seed in seeds])
