"""Plain-text plots for terminal output (CLI and examples).

No plotting dependency is shipped; these helpers render the figures'
shapes directly in the terminal: horizontal bar histograms and CDF
staircases.  They are deliberately simple — for publication-grade plots
export the data (:mod:`repro.analysis.export`) into your plotting stack.
"""

from __future__ import annotations

import numpy as np


def ascii_histogram(
    labels: list[str],
    values: np.ndarray | list[float],
    width: int = 40,
    fill: str = "#",
) -> str:
    """Horizontal bar chart: one row per label, bars scaled to ``width``."""
    vals = np.asarray(values, dtype=np.float64)
    if len(labels) != len(vals):
        raise ValueError("labels and values must have equal length")
    if vals.size == 0:
        return "(empty histogram)"
    if np.any(vals < 0):
        raise ValueError("histogram values must be non-negative")
    peak = vals.max()
    label_w = max(len(l) for l in labels)
    lines: list[str] = []
    for label, v in zip(labels, vals):
        bar = fill * int(round(width * v / peak)) if peak > 0 else ""
        lines.append(f"{label:>{label_w}} | {bar} {v:.3g}")
    return "\n".join(lines)


def ascii_cdf(
    xs: np.ndarray | list[float],
    ps: np.ndarray | list[float],
    width: int = 50,
    height: int = 12,
    marker: str = "*",
) -> str:
    """A staircase CDF rendered on a character grid.

    ``ps`` must be non-decreasing in [0, 1] (an empirical CDF).
    """
    x = np.asarray(xs, dtype=np.float64)
    p = np.asarray(ps, dtype=np.float64)
    if x.size == 0:
        return "(empty cdf)"
    if x.shape != p.shape:
        raise ValueError("xs and ps must have equal length")
    if np.any(np.diff(p) < -1e-12) or p.min() < -1e-12 or p.max() > 1 + 1e-12:
        raise ValueError("ps must be a CDF (non-decreasing in [0, 1])")
    x_lo, x_hi = float(x.min()), float(x.max())
    span = max(x_hi - x_lo, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for xi, pi in zip(x, p):
        col = int(round((xi - x_lo) / span * (width - 1)))
        row = int(round((1.0 - pi) * (height - 1)))
        grid[row][col] = marker
    lines: list[str] = []
    for r, row in enumerate(grid):
        frac = 1.0 - r / (height - 1)
        lines.append(f"{frac:4.2f} |{''.join(row)}")
    lines.append("     +" + "-" * width)
    lines.append(f"      {x_lo:<10.3g}{'':^{max(width - 20, 0)}}{x_hi:>10.3g}")
    return "\n".join(lines)


def side_by_side(left: str, right: str, gap: int = 4) -> str:
    """Join two text blocks horizontally (for aware-vs-ignorant views)."""
    l_lines = left.splitlines()
    r_lines = right.splitlines()
    l_width = max((len(l) for l in l_lines), default=0)
    height = max(len(l_lines), len(r_lines))
    l_lines += [""] * (height - len(l_lines))
    r_lines += [""] * (height - len(r_lines))
    return "\n".join(
        f"{l:<{l_width}}{' ' * gap}{r}" for l, r in zip(l_lines, r_lines)
    )
