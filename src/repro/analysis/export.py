"""Exporting figure data to CSV/JSON for downstream plotting.

The library never plots (keeping dependencies minimal); instead every
figure's data product can be dumped to plain CSV/JSON and fed to any
plotting stack.  Formats are stable: one file per figure series, headers
included.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.analysis.figures import Figure4Data, Figure56Data, Figure78Data


def _ensure_dir(path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)


def export_figure4_csv(data: Figure4Data, path: str | Path) -> Path:
    """Write the per-node unit-load scatter (before/after) as CSV."""
    out = Path(path)
    _ensure_dir(out)
    with out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["node", "unit_load_before", "unit_load_after"])
        for node, before, after in zip(
            data.node_ids.tolist(),
            data.unit_before.tolist(),
            data.unit_after.tolist(),
        ):
            writer.writerow([node, f"{before:.6g}", f"{after:.6g}"])
    return out


def export_figure56_csv(data: Figure56Data, path: str | Path) -> Path:
    """Write the per-capacity-category summary as CSV."""
    out = Path(path)
    _ensure_dir(out)
    with out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "capacity",
                "count",
                "mean_load_before",
                "mean_load_after",
                "share_before",
                "share_after",
            ]
        )
        for cap in data.categories.tolist():
            row = data.summary[float(cap)]
            writer.writerow(
                [
                    f"{cap:g}",
                    row["count"],
                    f"{row['mean_load_before']:.6g}",
                    f"{row['mean_load_after']:.6g}",
                    f"{row['share_before']:.6g}",
                    f"{row['share_after']:.6g}",
                ]
            )
    return out


def export_figure78_csv(data: Figure78Data, path: str | Path) -> Path:
    """Write the moved-load histogram (aware vs ignorant) as CSV."""
    out = Path(path)
    _ensure_dir(out)
    edges = data.bin_edges
    with out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["bin_low", "bin_high", "aware_fraction", "ignorant_fraction"])
        for i in range(len(edges) - 1):
            writer.writerow(
                [
                    f"{edges[i]:g}",
                    f"{edges[i + 1]:g}",
                    f"{data.aware_hist[i]:.6g}",
                    f"{data.ignorant_hist[i]:.6g}",
                ]
            )
    return out


def export_figure78_json(data: Figure78Data, path: str | Path) -> Path:
    """Write the full figure-7/8 product (hists, CDFs, marks) as JSON."""
    out = Path(path)
    _ensure_dir(out)
    payload = {
        "topology": data.topology_name,
        "bin_edges": data.bin_edges.tolist(),
        "aware_hist": data.aware_hist.tolist(),
        "ignorant_hist": data.ignorant_hist.tolist(),
        "aware_cdf": {
            "x": np.asarray(data.aware_cdf[0]).tolist(),
            "p": np.asarray(data.aware_cdf[1]).tolist(),
        },
        "ignorant_cdf": {
            "x": np.asarray(data.ignorant_cdf[0]).tolist(),
            "p": np.asarray(data.ignorant_cdf[1]).tolist(),
        },
        "aware_within": {str(k): v for k, v in data.aware_within.items()},
        "ignorant_within": {str(k): v for k, v in data.ignorant_within.items()},
    }
    out.write_text(json.dumps(payload, indent=2))
    return out
