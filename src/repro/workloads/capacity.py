"""Node-capacity profiles (paper Section 5.1).

The paper uses a Gnutella-like profile derived from the Saroiu et al.
measurement study: capacities of 1, 10, 100, 1000 and 10000 with
probabilities 20%, 45%, 30%, 4.9% and 0.1%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import GNUTELLA_CAPACITY_PROFILE
from repro.exceptions import WorkloadError
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class GnutellaCapacityProfile:
    """A discrete capacity distribution ``value -> probability``."""

    table: dict[float, float] = field(
        default_factory=lambda: dict(GNUTELLA_CAPACITY_PROFILE)
    )

    def __post_init__(self) -> None:
        if not self.table:
            raise WorkloadError("capacity profile must not be empty")
        total = sum(self.table.values())
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"capacity probabilities sum to {total}, expected 1")
        if any(v <= 0 for v in self.table.keys()):
            raise WorkloadError("capacities must be positive")
        if any(p < 0 for p in self.table.values()):
            raise WorkloadError("probabilities must be non-negative")

    @property
    def values(self) -> np.ndarray:
        return np.asarray(sorted(self.table.keys()), dtype=np.float64)

    @property
    def probabilities(self) -> np.ndarray:
        return np.asarray([self.table[v] for v in sorted(self.table)], dtype=np.float64)

    @property
    def mean(self) -> float:
        return float(np.dot(self.values, self.probabilities))

    def sample(self, n: int, rng: int | None | np.random.Generator = None) -> np.ndarray:
        """Draw ``n`` capacities."""
        if n < 0:
            raise WorkloadError(f"cannot sample {n} capacities")
        gen = ensure_rng(rng)
        return gen.choice(self.values, size=n, p=self.probabilities)

    def category_of(self, capacity: float) -> int:
        """Index of the capacity category (0 = smallest) — figure 5/6 x-axis."""
        vals = self.values
        idx = int(np.searchsorted(vals, capacity))
        # Exact match intended: capacities are drawn verbatim from the
        # discrete profile table, never computed.
        if idx >= len(vals) or vals[idx] != capacity:  # lint: disable=no-float-equality
            raise WorkloadError(f"capacity {capacity} is not in the profile")
        return idx


def sample_capacities(
    n: int,
    rng: int | None | np.random.Generator = None,
    profile: GnutellaCapacityProfile | None = None,
) -> np.ndarray:
    """Convenience wrapper: draw ``n`` capacities from ``profile``."""
    prof = profile if profile is not None else GnutellaCapacityProfile()
    return prof.sample(n, rng)
