"""Scenario builder: one call from parameters to a ready-to-balance system.

A :class:`Scenario` bundles everything one experiment needs — the ring
with loads and capacities assigned, optionally a topology with node
sites and a shared distance oracle — built deterministically from a
single seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_NUM_NODES, DEFAULT_VS_PER_NODE, ID_BITS
from repro.dht.chord import ChordRing
from repro.exceptions import WorkloadError
from repro.idspace import IdentifierSpace
from repro.topology.graph import Topology
from repro.topology.routing import DistanceOracle
from repro.topology.transit_stub import TransitStubParams, generate_transit_stub
from repro.workloads.capacity import GnutellaCapacityProfile
from repro.workloads.loads import LoadModel, assign_loads
from repro.util.rng import ensure_rng, spawn_rngs


@dataclass
class Scenario:
    """A fully initialised experiment instance."""

    ring: ChordRing
    topology: Topology | None
    oracle: DistanceOracle | None
    capacities: np.ndarray
    loads: np.ndarray
    seed_description: str = ""

    @property
    def num_nodes(self) -> int:
        return len(self.ring.nodes)


def proportional_vs_counts(
    capacities: np.ndarray,
    mean_vs_per_node: int,
    max_vs_per_node: int = 512,
) -> list[int]:
    """CFS-style allocation: virtual servers proportional to capacity.

    The counts average ``mean_vs_per_node`` over the population, with a
    floor of 1 (every node keeps a ring presence) and a configurable cap
    (a capacity-10^4 node under the Gnutella profile would otherwise
    host hundreds of virtual servers).
    """
    caps = np.asarray(capacities, dtype=np.float64)
    if caps.size == 0 or np.any(caps <= 0):
        raise WorkloadError("capacities must be positive and non-empty")
    if mean_vs_per_node < 1 or max_vs_per_node < 1:
        raise WorkloadError("vs counts must be >= 1")
    raw = caps / caps.mean() * mean_vs_per_node
    counts = np.clip(np.round(raw), 1, max_vs_per_node).astype(int)
    return counts.tolist()


def build_scenario(
    load_model: LoadModel,
    num_nodes: int = DEFAULT_NUM_NODES,
    vs_per_node: int = DEFAULT_VS_PER_NODE,
    id_bits: int = ID_BITS,
    topology_params: TransitStubParams | None = None,
    topology: Topology | None = None,
    capacity_profile: GnutellaCapacityProfile | None = None,
    vs_allocation: str = "uniform",
    rng: int | None | np.random.Generator = None,
) -> Scenario:
    """Build a ring (and optionally a topology) ready for balancing.

    Parameters
    ----------
    load_model:
        The virtual-server load distribution.
    topology_params:
        Generate a fresh transit-stub topology with these parameters and
        attach every DHT node to a distinct random *stub* vertex.
        Mutually exclusive with ``topology`` (a pre-built one).
    vs_allocation:
        ``"uniform"`` (the paper's setup: every node starts with
        ``vs_per_node`` virtual servers) or ``"proportional"`` (CFS-style
        capacity-proportional counts averaging ``vs_per_node``).
    rng:
        Single seed from which all randomness (ring placement, capacity
        draw, load draw, topology, site assignment) derives.
    """
    if topology_params is not None and topology is not None:
        raise WorkloadError("pass either topology_params or topology, not both")
    if vs_allocation not in ("uniform", "proportional"):
        raise WorkloadError(f"unknown vs_allocation {vs_allocation!r}")
    root = ensure_rng(rng)
    ring_rng, cap_rng, load_rng, topo_rng, site_rng = spawn_rngs(root, 5)

    profile = capacity_profile if capacity_profile is not None else GnutellaCapacityProfile()
    capacities = profile.sample(num_nodes, cap_rng)

    oracle: DistanceOracle | None = None
    sites: np.ndarray | None = None
    if topology_params is not None:
        topology = generate_transit_stub(topology_params, topo_rng)
    if topology is not None:
        stubs = topology.stub_vertices
        if len(stubs) < num_nodes:
            raise WorkloadError(
                f"topology has {len(stubs)} stub vertices; cannot host "
                f"{num_nodes} DHT nodes one-per-vertex"
            )
        sites = site_rng.choice(stubs, size=num_nodes, replace=False)
        oracle = DistanceOracle(topology)

    counts: int | list[int]
    if vs_allocation == "proportional":
        counts = proportional_vs_counts(capacities, vs_per_node)
    else:
        counts = vs_per_node
    ring = ChordRing(IdentifierSpace(bits=id_bits))
    ring.populate(
        num_nodes,
        counts,
        capacities=capacities.tolist(),
        rng=ring_rng,
        sites=None if sites is None else sites.tolist(),
    )
    loads = assign_loads(ring, load_model, load_rng)

    return Scenario(
        ring=ring,
        topology=topology,
        oracle=oracle,
        capacities=capacities,
        loads=loads,
        seed_description=repr(rng),
    )
