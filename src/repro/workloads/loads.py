"""Virtual-server load models (paper Section 5.1).

Let ``f`` be the fraction of the identifier space a virtual server owns
(exponentially distributed under Chord's random placement — our ring
produces these fractions naturally).  With ``mu`` and ``sigma`` the mean
and standard deviation of the *total system load*:

* **Gaussian**: VS load ~ Normal(``mu * f``, ``sigma * sqrt(f)``),
  clipped at zero.  "Would result if the load of a virtual server is
  attributed to a large number of small objects ... independent."
* **Pareto**: VS load ~ Pareto with shape ``alpha = 1.5`` and mean
  ``mu * f`` (scale ``x_m = mu * f * (alpha - 1) / alpha``); infinite
  standard deviation — the heavy-tailed stress case.

Both models make the *expected total load* equal ``mu`` because the
fractions sum to one over the ring.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.constants import PARETO_SHAPE
from repro.dht.chord import ChordRing
from repro.exceptions import WorkloadError
from repro.util.rng import ensure_rng


class LoadModel(abc.ABC):
    """Base class: draws per-VS loads given identifier-space fractions."""

    def __init__(self, mu: float) -> None:
        if mu <= 0:
            raise WorkloadError(f"mu (total system load) must be positive, got {mu}")
        self.mu = float(mu)

    @abc.abstractmethod
    def sample(self, fractions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Per-VS loads for the given fractions (same shape)."""

    def _check_fractions(self, fractions: np.ndarray) -> np.ndarray:
        arr = np.asarray(fractions, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise WorkloadError("fractions must be a non-empty 1-D array")
        if np.any(arr < 0) or np.any(arr > 1):
            raise WorkloadError("fractions must lie in [0, 1]")
        return arr


class GaussianLoadModel(LoadModel):
    """Normal(``mu*f``, ``sigma*sqrt(f)``) loads, clipped at zero."""

    def __init__(self, mu: float, sigma: float) -> None:
        super().__init__(mu)
        if sigma < 0:
            raise WorkloadError(f"sigma must be non-negative, got {sigma}")
        self.sigma = float(sigma)

    def sample(self, fractions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        f = self._check_fractions(fractions)
        loads = rng.normal(self.mu * f, self.sigma * np.sqrt(f))
        return np.clip(loads, 0.0, None)


class ParetoLoadModel(LoadModel):
    """Pareto(shape ``alpha``) loads with mean ``mu*f`` (default alpha 1.5)."""

    def __init__(self, mu: float, alpha: float = PARETO_SHAPE) -> None:
        super().__init__(mu)
        if alpha <= 1.0:
            raise WorkloadError(
                f"alpha must exceed 1 for a finite mean, got {alpha}"
            )
        self.alpha = float(alpha)

    def sample(self, fractions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        f = self._check_fractions(fractions)
        # Classic Pareto: X = x_m * U^(-1/alpha), mean = alpha*x_m/(alpha-1).
        x_m = self.mu * f * (self.alpha - 1.0) / self.alpha
        u = rng.random(f.shape)
        return x_m * np.power(u, -1.0 / self.alpha)


def assign_loads(
    ring: ChordRing,
    model: LoadModel,
    rng: int | None | np.random.Generator = None,
) -> np.ndarray:
    """Draw and install loads for every virtual server of ``ring``.

    Fractions come from the ring's actual region sizes.  Returns the
    array of assigned loads (ring order) for convenience.
    """
    gen = ensure_rng(rng)
    fractions = ring.fractions()
    loads = model.sample(fractions, gen)
    for vs, load in zip(ring.virtual_servers, loads):
        vs.load = float(load)
    return loads
