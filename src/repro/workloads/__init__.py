"""Workload generation: virtual-server loads, node capacities, scenarios.

Mirrors the paper's experiment setup (Section 5.1): virtual-server loads
drawn from a Gaussian or Pareto distribution parameterised on the
identifier-space fraction each VS owns, and node capacities drawn from a
Gnutella-like profile.
"""

from repro.workloads.loads import (
    GaussianLoadModel,
    LoadModel,
    ParetoLoadModel,
    assign_loads,
)
from repro.workloads.capacity import GnutellaCapacityProfile, sample_capacities
from repro.workloads.drift import apply_load_drift, window_virtual_servers
from repro.workloads.queries import QueryTrace, QueryWorkload
from repro.workloads.scenario import (
    Scenario,
    build_scenario,
    proportional_vs_counts,
)

__all__ = [
    "proportional_vs_counts",
    "QueryTrace",
    "QueryWorkload",
    "LoadModel",
    "GaussianLoadModel",
    "ParetoLoadModel",
    "assign_loads",
    "apply_load_drift",
    "window_virtual_servers",
    "GnutellaCapacityProfile",
    "sample_capacities",
    "Scenario",
    "build_scenario",
]
