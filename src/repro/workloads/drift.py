"""Localized load drift: redraw loads inside identifier-space windows.

Real DHT load does not change uniformly: object popularity shifts in
hotspots, and churn concentrates re-hosted load around the identifiers
where membership changed.  This module models both as *windowed
redraws* — every virtual server whose identifier falls inside a wrapped
window around a drift center gets a fresh load from the configured
:class:`~repro.workloads.loads.LoadModel`, scaled by the virtual
server's actual region fraction exactly like the initial assignment.

The mutation touches only ``vs.load`` (never the ring structure), which
is the property the incremental balancer's benchmarks exploit: drift
invalidates no tree or cache state, so a drift-only round isolates the
cost of the load-dependent phases.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.dht.chord import ChordRing
from repro.dht.virtual_server import VirtualServer
from repro.exceptions import WorkloadError
from repro.util.rng import ensure_rng
from repro.workloads.loads import LoadModel


def window_virtual_servers(
    ring: ChordRing, center: int, fraction: float
) -> list[VirtualServer]:
    """Virtual servers whose id lies in the wrapped window at ``center``.

    The window covers ``fraction`` of the identifier space, centred on
    ``center`` (so it spans ``center ± fraction/2``, wrapping at zero).
    Returned in ring (clockwise identifier) order.
    """
    if not 0.0 < fraction <= 1.0:
        raise WorkloadError(f"fraction must be in (0, 1], got {fraction}")
    size = ring.space.size
    ring.space.validate(center)
    length = max(int(size * fraction), 1)
    start = ring.space.wrap(center - length // 2)
    ids = np.asarray(
        [vs.vs_id for vs in ring.virtual_servers], dtype=np.int64
    )
    inside = ((ids - start) % size) < length
    servers = ring.virtual_servers
    return [servers[int(i)] for i in np.nonzero(inside)[0]]


def apply_load_drift(
    ring: ChordRing,
    model: LoadModel,
    rng: int | None | np.random.Generator,
    centers: Sequence[int],
    fraction: float = 0.01,
) -> int:
    """Redraw loads inside the windows around ``centers``.

    Each affected virtual server receives a fresh draw from ``model``
    for its *current* region fraction (the same scaling rule as
    :func:`~repro.workloads.loads.assign_loads`), so repeated drift
    keeps the expected total system load at the model's ``mu``.  A
    virtual server covered by several windows is redrawn once.

    Returns the number of virtual servers whose load was redrawn.
    """
    gen = ensure_rng(rng)
    seen: set[int] = set()
    targets: list[VirtualServer] = []
    for center in centers:
        for vs in window_virtual_servers(ring, int(center), fraction):
            if vs.vs_id not in seen:
                seen.add(vs.vs_id)
                targets.append(vs)
    if not targets:
        return 0
    size = float(ring.space.size)
    fractions = np.asarray(
        [ring.region_of(vs).length / size for vs in targets],
        dtype=np.float64,
    )
    loads = model.sample(fractions, gen)
    for vs, load in zip(targets, loads):
        vs.load = float(load)
    return len(targets)
