"""Query workloads: bandwidth/CPU load from lookup traffic.

The paper's load abstraction covers "storage, bandwidth or CPU".  The
storage case is :mod:`repro.dht.storage`; this module supplies the
bandwidth/CPU case: a stream of object lookups with Zipf popularity.
Serving a query loads the *owner* of the object, and routing it loads
every overlay hop a little — so the induced per-virtual-server load has
both a popularity skew and a routing component, and the balancer can be
evaluated against it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dht.chord import ChordRing
from repro.dht.lookup import lookup_path
from repro.dht.storage import ObjectStore
from repro.exceptions import WorkloadError
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class QueryTrace:
    """Aggregate outcome of replaying a query stream."""

    queries: int
    total_service_load: float
    total_routing_load: float
    routing_hops: int
    hottest_vs_load: float

    @property
    def mean_hops(self) -> float:
        return self.routing_hops / self.queries if self.queries else 0.0


class QueryWorkload:
    """A Zipf-popularity lookup stream over stored objects.

    Parameters
    ----------
    store:
        The object store holding the queryable population.
    zipf_s:
        Popularity exponent (1.0 ~ classic web workloads).
    service_cost:
        Load added to the owning virtual server per query.
    routing_cost:
        Load added to every *intermediate* virtual server on the lookup
        path per query (0 disables routing accounting and the expensive
        path computation with it).
    """

    def __init__(
        self,
        store: ObjectStore,
        zipf_s: float = 1.0,
        service_cost: float = 1.0,
        routing_cost: float = 0.0,
        rng: int | None | np.random.Generator = None,
    ) -> None:
        if store.num_objects == 0:
            raise WorkloadError("query workload needs a populated store")
        if zipf_s <= 0:
            raise WorkloadError("zipf_s must be positive")
        if service_cost < 0 or routing_cost < 0:
            raise WorkloadError("costs must be non-negative")
        self.store = store
        self.ring: ChordRing = store.ring
        self.service_cost = service_cost
        self.routing_cost = routing_cost
        self.gen = ensure_rng(rng)
        # Popularity ranks over the (stable) sorted object names.
        self._names = sorted(
            name
            for vs in self.ring.virtual_servers
            for name in (o.name for o in store.objects_on(vs))
        )
        ranks = np.arange(1, len(self._names) + 1, dtype=np.float64)
        weights = ranks ** (-zipf_s)
        self._probs = weights / weights.sum()

    def run(self, num_queries: int, apply_loads: bool = True) -> QueryTrace:
        """Replay ``num_queries`` lookups; optionally install the loads.

        Service load accrues on the *objects* (via
        :meth:`~repro.dht.storage.ObjectStore.add_load`) so it survives
        re-homing and travels with virtual-server transfers; routing load
        is transient forwarding work and lands directly on the virtual
        servers along each lookup path.  With ``apply_loads=False`` the
        trace is computed without touching any state (dry run).
        """
        if num_queries < 0:
            raise WorkloadError("num_queries must be >= 0")
        picks = self.gen.choice(len(self._names), size=num_queries, p=self._probs)
        vss = self.ring.virtual_servers
        start_ids = self.gen.integers(0, len(vss), size=num_queries)
        total_service = 0.0
        total_routing = 0.0
        hops = 0
        per_vs_all: dict[int, float] = {}  # service + routing, for the trace
        per_object: dict[str, float] = {}
        per_vs_routing: dict[int, float] = {}
        for pick, start_idx in zip(picks.tolist(), start_ids.tolist()):
            name = self._names[pick]
            obj = self.store.get(name)
            owner = self.ring.successor(obj.key)
            per_object[name] = per_object.get(name, 0.0) + self.service_cost
            per_vs_all[owner.vs_id] = (
                per_vs_all.get(owner.vs_id, 0.0) + self.service_cost
            )
            total_service += self.service_cost
            if self.routing_cost > 0:
                path = lookup_path(self.ring, vss[start_idx], obj.key)
                hops += len(path) - 1
                for vs_id in path[:-1]:
                    per_vs_routing[vs_id] = (
                        per_vs_routing.get(vs_id, 0.0) + self.routing_cost
                    )
                    per_vs_all[vs_id] = per_vs_all.get(vs_id, 0.0) + self.routing_cost
                    total_routing += self.routing_cost
        if apply_loads:
            for name, load in per_object.items():
                self.store.add_load(name, load)
            for vs_id, load in per_vs_routing.items():
                self.ring.vs(vs_id).load += load
        return QueryTrace(
            queries=num_queries,
            total_service_load=total_service,
            total_routing_load=total_routing,
            routing_hops=hops,
            hottest_vs_load=max(per_vs_all.values(), default=0.0),
        )
