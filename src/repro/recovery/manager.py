""":class:`RecoveryManager`: checkpoint, catch the crash, restore, replay.

The manager wraps a balancer stack behind the smallest possible loop:

1. **Checkpoint** — before each round, capture a
   :class:`~repro.recovery.snapshot.SystemSnapshot`, write it with
   rename-on-commit atomicity, and journal a ``checkpoint`` marker
   carrying its digest.
2. **Run** — delegate to :meth:`~repro.core.balancer.LoadBalancer.run_round`,
   which write-aheads every transfer intent into the shared
   :class:`~repro.recovery.journal.TransferJournal`.
3. **Recover** — a plan-scheduled
   :class:`~repro.faults.CrashPoint` surfaces as
   :class:`~repro.exceptions.ProcessCrashError`; the manager journals a
   ``crash`` marker, rebuilds a *fresh* balancer from its factory
   (modelling a real process restart), restores the latest snapshot in
   place, disarms every crash site the journal tail proves already
   fired, arms the tail for replay validation, and re-runs the round.

Because restore reinstates every RNG stream and the fault-log
position, the re-executed round is byte-identical to the crashed one
up to the crash site and indistinguishable from an uncrashed run after
it: the :class:`~repro.core.report.BalanceReport` digests match — which
is the acceptance criterion the crash tests assert across the serial,
incremental and sharded engines.

A **true** restart (process killed before the crash marker could be
written) converges through the same loop: construction detects the
incomplete round in the journal tail, restores, and the re-run either
replays cleanly or re-fires the same seeded crash — this time writing
the marker — before recovering normally.  A double crash during
recovery likewise just adds one more marker and one more restore.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.core.balancer import LoadBalancer
from repro.core.report import BalanceReport
from repro.exceptions import ProcessCrashError, RecoveryError
from repro.faults.plan import CRASH_SITES
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import current_metrics, current_tracer
from repro.obs.trace import Tracer
from repro.recovery.durable import resolve_state_dir
from repro.recovery.journal import REPLAYABLE_KINDS, TransferJournal
from repro.recovery.snapshot import SystemSnapshot

#: File name of the latest checkpoint inside the state directory.
SNAPSHOT_NAME = "snapshot-latest.json"

#: File name of the write-ahead journal inside the state directory.
JOURNAL_NAME = "journal.jsonl"


class RecoveryManager:
    """Crash-recovery driver for one balancer stack.

    Parameters
    ----------
    factory:
        Zero-argument callable building a fresh, fully-configured
        balancer from scratch — same ring size, config, fault plan and
        seeds every call.  Determinism of recovery rests on the factory
        being a pure constructor: everything that varies at runtime is
        restored from the snapshot, everything else must come out of
        the factory identical.
    state_dir:
        Durable state directory; defaults to ``$REPRO_STATE_DIR`` or
        ``.repro-state`` (see :func:`repro.recovery.resolve_state_dir`).
    tracer / metrics:
        Observability taps for ``recovery.*`` events and counters;
        default to the process-wide ones.
    """

    def __init__(
        self,
        factory: Callable[[], LoadBalancer],
        state_dir: str | Path | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Open the journal, build the balancer, resume if mid-round."""
        self.tracer = tracer if tracer is not None else current_tracer()
        self.metrics = metrics if metrics is not None else current_metrics()
        self._factory = factory
        self.state_dir = resolve_state_dir(state_dir)
        self.journal = TransferJournal(
            self.state_dir / JOURNAL_NAME,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.balancer = factory()
        self.balancer.attach_journal(self.journal)
        self._in_recovery = False
        self.restores = 0
        self.checkpoints = 0
        self._maybe_resume()

    # ------------------------------------------------------------------
    # The round loop
    # ------------------------------------------------------------------
    def run_round(self) -> BalanceReport:
        """Run one round to completion, recovering through any crash.

        Loops internally: each injected
        :class:`~repro.exceptions.ProcessCrashError` is journaled,
        recovered from, and the round re-run — so the caller always
        gets the round's final report, crashes or not.  The loop is
        bounded: every crash site fires at most once per round (fired
        sites are disarmed from the journal's crash markers), so more
        re-runs than sites means recovery is not converging.
        """
        for _attempt in range(len(CRASH_SITES) + 1):
            if not self._in_recovery:
                self._checkpoint()
            try:
                report = self.balancer.run_round()
            except ProcessCrashError as crash:
                self.journal.record_crash(crash.round_index, crash.site)
                if self.metrics is not None:
                    self.metrics.counter("recovery.crashes_caught").inc()
                self._restart()
                continue
            self._in_recovery = False
            return report
        raise RecoveryError(
            "crash recovery did not converge: more restarts than crash "
            "sites in one round (journal or snapshot corruption?)"
        )

    def run_rounds(self, count: int) -> list[BalanceReport]:
        """Run ``count`` rounds, returning their reports in order."""
        return [self.run_round() for _ in range(count)]

    def close(self) -> None:
        """Close the journal file handle (the state dir stays on disk)."""
        self.journal.close()

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    @property
    def snapshot_path(self) -> Path:
        """Where the latest checkpoint lives inside the state directory."""
        return self.state_dir / SNAPSHOT_NAME

    def _checkpoint(self) -> None:
        """Snapshot the stack and journal the matching marker."""
        snapshot = SystemSnapshot.capture(self.balancer)
        snapshot.save(self.snapshot_path)
        self.journal.record(
            "checkpoint",
            round=snapshot.round_index,
            digest=snapshot.canonical_digest(),
        )
        self.checkpoints += 1
        if self.metrics is not None:
            self.metrics.counter("recovery.checkpoints").inc()
        if self.tracer.enabled:
            self.tracer.event(
                "recovery.checkpoint",
                round=snapshot.round_index,
                digest=snapshot.canonical_digest(),
            )

    def _restart(self) -> None:
        """Model a process restart: fresh balancer, restore, arm replay."""
        if not self.snapshot_path.exists():
            raise RecoveryError(
                f"journal at {self.journal.path} shows work in progress "
                f"but no snapshot exists at {self.snapshot_path}"
            )
        self.balancer = self._factory()
        self.balancer.attach_journal(self.journal)
        snapshot = SystemSnapshot.load(self.snapshot_path)
        snapshot.restore(self.balancer)
        tail = self.journal.tail_after_last_checkpoint()
        markers = self.journal.crash_markers(tail)
        injector = self.balancer.faults
        if markers and injector is None:
            raise RecoveryError(
                "journal records crash markers but the rebuilt balancer "
                "has no fault injector (factory drift?)"
            )
        for round_index, site in markers:
            assert injector is not None
            injector.disarm_crash(round_index, site)
        self.journal.begin_replay(tail)
        self._in_recovery = True
        self.restores += 1
        if self.metrics is not None:
            self.metrics.counter("recovery.restores").inc()
        if self.tracer.enabled:
            self.tracer.event(
                "recovery.restore",
                round=snapshot.round_index,
                replay_records=len(tail),
                disarmed=len(markers),
            )

    def _maybe_resume(self) -> None:
        """Detect (at construction) a round the previous process left open.

        A round in progress shows up as a journal tail whose protocol
        records do not close with ``round_end`` — the previous process
        died (or crashed without writing its marker) somewhere between
        the checkpoint and the round's last record.  In that case
        restore-and-replay before the first caller round; the re-run
        then either completes the round or re-fires the same seeded
        crash and converges through :meth:`run_round`'s loop.  A tail
        that *does* close with ``round_end`` is a clean shutdown: the
        next round simply checkpoints on top of it.
        """
        tail = self.journal.tail_after_last_checkpoint()
        protocol = [r for r in tail if r.kind in REPLAYABLE_KINDS]
        if protocol and protocol[-1].kind != "round_end":
            self._restart()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RecoveryManager(state_dir={str(self.state_dir)!r}, "
            f"checkpoints={self.checkpoints}, restores={self.restores})"
        )
