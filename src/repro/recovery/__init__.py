"""Crash recovery: durable journal, checkpoint/restore, chaos soak.

PRs 3 and 5 made the balancing protocol survive message faults and
network partitions; this package makes it survive a crash of the
balancing *process itself*.  The pieces compose into one guarantee —
a run that crashes at any :class:`~repro.faults.CrashPoint` site and
recovers from durable state produces a
:meth:`~repro.core.report.BalanceReport.canonical_digest` byte-identical
to the uncrashed run:

* :mod:`repro.recovery.durable` — the single sanctioned door to the
  filesystem: fsync'd appends and atomic rename-on-commit writes
  (enforced by the ``durable-write-discipline`` lint rule), plus
  ``REPRO_STATE_DIR`` resolution.
* :mod:`repro.recovery.journal` — the write-ahead transfer journal:
  append-only JSONL with record-level checksums, torn-tail truncation
  on open, and replay validation of a restored run against the
  journaled prefix.
* :mod:`repro.recovery.snapshot` — :class:`SystemSnapshot`
  checkpoint/restore of every byte of mutable protocol state (ring,
  loads, store, rng streams, fault log, membership epoch) with a
  ``canonical_digest()`` so restore-equivalence is assertable.
* :mod:`repro.recovery.manager` — :class:`RecoveryManager`, the
  crash-restart loop: checkpoint each round, catch the injected
  :class:`~repro.exceptions.ProcessCrashError`, restore, replay, go on.
* :mod:`repro.recovery.soak` — seeded multi-round chaos schedules
  (churn x faults x partitions x crashes) under always-on invariant
  monitors, with deterministic delta-debugging that shrinks a failing
  schedule to a minimal reproducing test case.
"""

from __future__ import annotations

from repro.recovery.durable import (
    DEFAULT_STATE_DIR,
    STATE_DIR_ENV,
    resolve_state_dir,
)
from repro.recovery.journal import JournalRecord, TransferJournal
from repro.recovery.manager import RecoveryManager
from repro.recovery.snapshot import SystemSnapshot

__all__ = [
    "DEFAULT_STATE_DIR",
    "STATE_DIR_ENV",
    "JournalRecord",
    "RecoveryManager",
    "SystemSnapshot",
    "TransferJournal",
    "resolve_state_dir",
]
