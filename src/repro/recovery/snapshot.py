""":class:`SystemSnapshot`: a complete durable image of protocol state.

A snapshot captures, at a round boundary, every byte of mutable state
the next round's outcome depends on — which is exactly what makes
crash-restart determinism provable rather than hoped for:

* ring membership and hosting: node order, capacities, sites,
  liveness, and each node's virtual servers in hosting order with
  exact (``float.hex``) loads;
* DHT store assignments: the object table and the per-VS name index
  (restored verbatim, never recomputed — ``rehome`` sums loads in an
  order-sensitive way);
* every named RNG stream's ``bit_generator.state`` — the balancer's
  four streams, the fault injector's eight, and any extra streams the
  embedding application registers (``P2PSystem`` passes its five);
* the fault-log position: the injector's ordered fault log, crash
  budget, partition component map and per-round crash bookkeeping;
* the membership epoch machine: epoch, active view, which plan
  partition is active, and each suspended in-flight transfer;
* the balancer's round cursor, stale-LBI cache and aggregate-sanity
  ledger;
* the Byzantine layer: the adversary engine's three decision streams,
  action log, drafted attacker set and round cursor, and — when the
  defense is armed — the trust layer's scores, EWMA envelopes,
  quarantine/probation sets and penalty bookkeeping, so a recovered
  run replays the identical attack *and* the identical defense.

All floats are encoded with ``float.hex`` (the
:meth:`~repro.core.report.BalanceReport.canonical_digest` idiom), so
:meth:`SystemSnapshot.canonical_digest` is byte-stable and
``capture(restore(s)) == s`` is assertable.  Restore is *in place*: it
overwrites the target balancer's ring/state through the same object
references its components already hold, then fires one ``bulk`` ring
notification so derived indices and incremental-engine caches rebuild.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.core.records import Assignment, ShedCandidate, SystemLBI
from repro.core.vst import TransferTransaction
from repro.dht.node import PhysicalNode
from repro.dht.virtual_server import VirtualServer
from repro.exceptions import RecoveryError
from repro.faults.injector import FaultKind, InjectedFault
from repro.membership.manager import MembershipView
from repro.recovery.durable import atomic_write_json, read_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.balancer import LoadBalancer
    from repro.dht.storage import ObjectStore

#: Current snapshot payload schema version (2 added the Byzantine
#: adversary/trust sections).
SNAPSHOT_VERSION = 2


def _hex(value: float) -> str:
    """Exact float encoding (no decimal rounding)."""
    return float(value).hex()


def _unhex(text: str) -> float:
    """Inverse of :func:`_hex`."""
    return float.fromhex(text)


def _rng_state(gen: np.random.Generator) -> dict[str, Any]:
    """The generator's JSON-serializable bit-generator state."""
    return dict(gen.bit_generator.state)


def _set_rng_state(gen: np.random.Generator, state: Mapping[str, Any]) -> None:
    """Restore a captured state onto an existing generator object.

    Mutating the generator in place (instead of swapping it) means
    every component holding a reference — placement strategies, the
    VSA sweep's retry stream — sees the restored stream automatically.
    """
    gen.bit_generator.state = dict(state)


class SystemSnapshot:
    """One captured checkpoint payload (see the module docstring).

    Construct via :meth:`capture` (from a live balancer stack) or
    :meth:`load` (from an atomic snapshot file); apply via
    :meth:`restore`.
    """

    __slots__ = ("payload",)

    def __init__(self, payload: dict[str, Any]) -> None:
        """Wrap an already-built payload (see :meth:`capture`)."""
        self.payload = payload

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def round_index(self) -> int:
        """The round this checkpoint precedes (the next round to run)."""
        return int(self.payload["round_index"])

    def canonical_digest(self) -> str:
        """SHA-256 over the canonical payload JSON (restore witness)."""
        canonical = json.dumps(
            self.payload, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Durable round trip
    # ------------------------------------------------------------------
    def save(self, path: Any) -> None:
        """Atomically write the snapshot (rename-on-commit, never partial)."""
        atomic_write_json(path, self.payload)

    @classmethod
    def load(cls, path: Any) -> "SystemSnapshot":
        """Read a snapshot previously written by :meth:`save`."""
        payload = read_json(path)
        if not isinstance(payload, dict):
            raise RecoveryError(f"snapshot {path} is not a JSON object")
        version = payload.get("version")
        if version != SNAPSHOT_VERSION:
            raise RecoveryError(
                f"snapshot {path} has version {version!r}, "
                f"expected {SNAPSHOT_VERSION}"
            )
        return cls(payload)

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        balancer: "LoadBalancer",
        store: "ObjectStore | None" = None,
        extra_rngs: Mapping[str, np.random.Generator] | None = None,
    ) -> "SystemSnapshot":
        """Snapshot a balancer stack at a round boundary.

        ``store`` adds the DHT object assignments (the
        :class:`~repro.app.P2PSystem` case); ``extra_rngs`` captures
        additional named streams owned by the embedding application.
        """
        ring = balancer.ring
        nodes: list[dict[str, Any]] = []
        for node in ring.nodes:
            nodes.append(
                {
                    "index": int(node.index),
                    "capacity": _hex(node.capacity),
                    "site": None if node.site is None else int(node.site),
                    "alive": bool(node.alive),
                    "vs": [
                        [int(vs.vs_id), _hex(vs.load)]
                        for vs in node.virtual_servers
                    ],
                }
            )

        payload: dict[str, Any] = {
            "version": SNAPSHOT_VERSION,
            "round_index": int(balancer._round_index),
            "space_bits": int(ring.space.bits),
            "nodes": nodes,
            "balancer": {
                "stale_lbi": (
                    None
                    if balancer._stale_lbi is None
                    else [
                        _hex(balancer._stale_lbi.total_load),
                        _hex(balancer._stale_lbi.total_capacity),
                        _hex(balancer._stale_lbi.min_vs_load),
                    ]
                ),
                "stale_lbi_age": int(balancer._stale_lbi_age),
                "rngs": {
                    "lbi": _rng_state(balancer._lbi_rng),
                    "placement": _rng_state(balancer._placement_rng),
                    "landmark": _rng_state(balancer._landmark_rng),
                    "retry": _rng_state(balancer._retry_rng),
                },
            },
            "sanity": cls._capture_sanity(balancer),
            "adversary": cls._capture_adversary(balancer),
            "trust": cls._capture_trust(balancer),
            "injector": cls._capture_injector(balancer),
            "membership": cls._capture_membership(balancer),
            "store": cls._capture_store(store),
            "extra_rngs": (
                {}
                if extra_rngs is None
                else {
                    name: _rng_state(extra_rngs[name])
                    for name in sorted(extra_rngs)
                }
            ),
        }
        return cls(payload)

    @staticmethod
    def _capture_sanity(balancer: "LoadBalancer") -> dict[str, Any] | None:
        sanity = balancer._sanity
        if sanity is None:
            return None
        return {
            "epoch": int(sanity._epoch),
            "last_good": [
                [
                    int(node_index),
                    [_hex(t[0]), _hex(t[1]), _hex(t[2]), int(t[3])],
                ]
                for node_index, t in sorted(sanity._last_good.items())
            ],
        }

    @staticmethod
    def _capture_adversary(balancer: "LoadBalancer") -> dict[str, Any] | None:
        engine = balancer.adversary
        if engine is None:
            return None
        return {
            "rngs": {
                "assign": _rng_state(engine._assign_rng),
                "accuse": _rng_state(engine._accuse_rng),
                "audit": _rng_state(engine._audit_rng),
            },
            # seq is implied by list position (as for the fault log).
            "log": [[a.behavior, int(a.node), a.subject] for a in engine.log],
            "behavior_of": (
                None
                if engine._behavior_of is None
                else [
                    [int(k), v]
                    for k, v in sorted(engine._behavior_of.items())
                ]
            ),
            "accused": [
                [int(victim), int(accuser)]
                for victim, accuser in sorted(engine._accused.items())
            ],
            "reneged": [
                [int(s), int(v)] for s, v in engine._reneged
            ],
            "current_round": int(engine._current_round),
        }

    @staticmethod
    def _capture_trust(balancer: "LoadBalancer") -> dict[str, Any] | None:
        from repro.adversary.trust import TrustedAggregation

        sanity = balancer._sanity
        if not isinstance(sanity, TrustedAggregation):
            return None
        # The audit rng is the engine's, captured in the adversary
        # section; only the ledger state lives here.
        return {
            "trust": [
                [int(k), _hex(v)] for k, v in sorted(sanity._trust.items())
            ],
            "ewma": [
                [int(k), [_hex(m), _hex(d)]]
                for k, (m, d) in sorted(sanity._ewma.items())
            ],
            "quarantined": sorted(int(i) for i in sanity._quarantined),
            "probation": [
                [int(k), int(v)] for k, v in sorted(sanity._probation.items())
            ],
            "penalized": sorted(int(i) for i in sanity._penalized),
        }

    @staticmethod
    def _capture_injector(balancer: "LoadBalancer") -> dict[str, Any] | None:
        injector = balancer.faults
        if injector is None:
            return None
        return {
            "rngs": {
                "drop": _rng_state(injector._drop_rng),
                "delay": _rng_state(injector._delay_rng),
                "dup": _rng_state(injector._dup_rng),
                "crash": _rng_state(injector._crash_rng),
                "abort": _rng_state(injector._abort_rng),
                "corrupt": _rng_state(injector._corrupt_rng),
                "partition": _rng_state(injector._partition_rng),
                "process_crash": _rng_state(injector._process_crash_rng),
            },
            "log": [
                [f.kind.value, f.phase, f.subject] for f in injector.log
            ],
            "crashes_left": int(injector._crashes_left),
            "component_of": (
                None
                if injector._component_of is None
                else [
                    [int(k), int(v)]
                    for k, v in sorted(injector._component_of.items())
                ]
            ),
            "current_round": int(injector._current_round),
            "claimed_vst_crash": sorted(injector._claimed_vst_crash),
        }

    @staticmethod
    def _capture_membership(balancer: "LoadBalancer") -> dict[str, Any] | None:
        membership = balancer.membership
        if membership is None:
            return None
        injector = balancer.faults
        assert injector is not None  # membership only exists with faults
        active_spec_index = None
        if membership._active_spec is not None:
            active_spec_index = injector.plan.partitions.index(
                membership._active_spec
            )
        return {
            "epoch": int(membership.epoch),
            "active": (
                None
                if membership.active is None
                else {
                    "epoch": int(membership.active.epoch),
                    "components": [
                        [int(i) for i in comp]
                        for comp in membership.active.components
                    ],
                }
            ),
            "active_spec_index": active_spec_index,
            "suspended": [
                {
                    "vs_id": int(txn.vs.vs_id),
                    "load": _hex(txn.vs.load),
                    "source": int(txn.source.index),
                    "target": int(txn.target.index),
                    "assignment": {
                        "load": _hex(a.candidate.load),
                        "vs_id": int(a.candidate.vs_id),
                        "node_index": int(a.candidate.node_index),
                        "target_node": int(a.target_node),
                        "level": int(a.level),
                    },
                }
                for txn, a in membership._suspended
            ],
        }

    @staticmethod
    def _capture_store(store: "ObjectStore | None") -> dict[str, Any] | None:
        if store is None:
            return None
        return {
            "objects": [
                [
                    name,
                    int(obj.key),
                    _hex(obj.load),
                    _hex(obj.size),
                ]
                for name, obj in sorted(store._objects.items())
            ],
            "by_vs": [
                [int(vs_id), sorted(names)]
                for vs_id, names in sorted(store._by_vs.items())
            ],
        }

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    def restore(
        self,
        balancer: "LoadBalancer",
        store: "ObjectStore | None" = None,
        extra_rngs: Mapping[str, np.random.Generator] | None = None,
    ) -> None:
        """Overwrite ``balancer`` (and optionally ``store``) in place.

        The target stack must be *shape-compatible*: built from the
        same constructor arguments (config, plan, seeds) as the one
        captured — which is exactly what the recovery manager's factory
        guarantees — so everything not captured (placement maps, oracle
        caches, config) is already identical by construction.
        """
        ring = balancer.ring
        if int(self.payload["space_bits"]) != int(ring.space.bits):
            raise RecoveryError(
                f"snapshot identifier space ({self.payload['space_bits']} "
                f"bits) does not match the ring ({ring.space.bits} bits)"
            )

        # Ring membership and hosting, in captured order.
        ring.nodes.clear()
        ring._vs_by_id.clear()
        for spec in self.payload["nodes"]:
            node = PhysicalNode(
                index=int(spec["index"]),
                capacity=_unhex(spec["capacity"]),
                site=spec["site"],
            )
            node.alive = bool(spec["alive"])
            for vs_id, load_hex in spec["vs"]:
                vs = VirtualServer(int(vs_id), node, _unhex(load_hex))
                node.virtual_servers.append(vs)
                ring._vs_by_id[vs.vs_id] = vs
            ring.nodes.append(node)

        self._restore_balancer(balancer)
        self._restore_sanity(balancer)
        self._restore_adversary(balancer)
        self._restore_trust(balancer)
        self._restore_injector(balancer)
        self._restore_membership(balancer)
        self._restore_store(store)
        captured_streams = self.payload["extra_rngs"]
        requested = {} if extra_rngs is None else dict(extra_rngs)
        if sorted(captured_streams) != sorted(requested):
            raise RecoveryError(
                "extra rng streams disagree: snapshot captured "
                f"{sorted(captured_streams)}, restore target provides "
                f"{sorted(requested)}"
            )
        for name in sorted(requested):
            _set_rng_state(requested[name], captured_streams[name])

        # One bulk notification re-derives every dependent index: the
        # ring's sorted-id index, the incremental engine's event log,
        # any registered listener.
        ring._invalidate()
        ring._notify("bulk", -1)

    def _restore_balancer(self, balancer: "LoadBalancer") -> None:
        spec = self.payload["balancer"]
        balancer._round_index = int(self.payload["round_index"])
        stale = spec["stale_lbi"]
        balancer._stale_lbi = (
            None
            if stale is None
            else SystemLBI(
                total_load=_unhex(stale[0]),
                total_capacity=_unhex(stale[1]),
                min_vs_load=_unhex(stale[2]),
            )
        )
        balancer._stale_lbi_age = int(spec["stale_lbi_age"])
        _set_rng_state(balancer._lbi_rng, spec["rngs"]["lbi"])
        _set_rng_state(balancer._placement_rng, spec["rngs"]["placement"])
        _set_rng_state(balancer._landmark_rng, spec["rngs"]["landmark"])
        _set_rng_state(balancer._retry_rng, spec["rngs"]["retry"])

    def _restore_sanity(self, balancer: "LoadBalancer") -> None:
        spec = self.payload["sanity"]
        sanity = balancer._sanity
        if spec is None or sanity is None:
            if (spec is None) != (sanity is None):
                raise RecoveryError(
                    "snapshot and target disagree on aggregate-sanity "
                    "presence (different fault plans?)"
                )
            return
        sanity._epoch = int(spec["epoch"])
        sanity._last_good = {
            int(node_index): (
                _unhex(t[0]),
                _unhex(t[1]),
                _unhex(t[2]),
                int(t[3]),
            )
            for node_index, t in spec["last_good"]
        }

    def _restore_adversary(self, balancer: "LoadBalancer") -> None:
        from repro.adversary.engine import AdversaryAction

        spec = self.payload["adversary"]
        engine = balancer.adversary
        if spec is None or engine is None:
            if (spec is None) != (engine is None):
                raise RecoveryError(
                    "snapshot and target disagree on adversary-engine "
                    "presence (different adversary plans?)"
                )
            return
        rngs = spec["rngs"]
        _set_rng_state(engine._assign_rng, rngs["assign"])
        _set_rng_state(engine._accuse_rng, rngs["accuse"])
        _set_rng_state(engine._audit_rng, rngs["audit"])
        engine.log = [
            AdversaryAction(
                seq=seq, behavior=behavior, node=int(node), subject=subject
            )
            for seq, (behavior, node, subject) in enumerate(spec["log"])
        ]
        engine._behavior_of = (
            None
            if spec["behavior_of"] is None
            else {int(k): str(v) for k, v in spec["behavior_of"]}
        )
        engine._accused = {
            int(victim): int(accuser) for victim, accuser in spec["accused"]
        }
        engine._reneged = [(int(s), int(v)) for s, v in spec["reneged"]]
        engine._current_round = int(spec["current_round"])

    def _restore_trust(self, balancer: "LoadBalancer") -> None:
        from repro.adversary.trust import TrustedAggregation

        spec = self.payload["trust"]
        sanity = balancer._sanity
        target = sanity if isinstance(sanity, TrustedAggregation) else None
        if spec is None or target is None:
            if (spec is None) != (target is None):
                raise RecoveryError(
                    "snapshot and target disagree on trust-layer presence "
                    "(different adversary plans or defense flags?)"
                )
            return
        target._trust = {int(k): _unhex(v) for k, v in spec["trust"]}
        target._ewma = {
            int(k): (_unhex(m), _unhex(d)) for k, (m, d) in spec["ewma"]
        }
        target._quarantined = {int(i) for i in spec["quarantined"]}
        target._probation = {int(k): int(v) for k, v in spec["probation"]}
        target._penalized = {int(i) for i in spec["penalized"]}

    def _restore_injector(self, balancer: "LoadBalancer") -> None:
        spec = self.payload["injector"]
        injector = balancer.faults
        if spec is None or injector is None:
            if (spec is None) != (injector is None):
                raise RecoveryError(
                    "snapshot and target disagree on fault-injector "
                    "presence (different fault plans?)"
                )
            return
        rngs = spec["rngs"]
        _set_rng_state(injector._drop_rng, rngs["drop"])
        _set_rng_state(injector._delay_rng, rngs["delay"])
        _set_rng_state(injector._dup_rng, rngs["dup"])
        _set_rng_state(injector._crash_rng, rngs["crash"])
        _set_rng_state(injector._abort_rng, rngs["abort"])
        _set_rng_state(injector._corrupt_rng, rngs["corrupt"])
        _set_rng_state(injector._partition_rng, rngs["partition"])
        _set_rng_state(injector._process_crash_rng, rngs["process_crash"])
        injector.log = [
            InjectedFault(
                seq=seq, kind=FaultKind(kind), phase=phase, subject=subject
            )
            for seq, (kind, phase, subject) in enumerate(spec["log"])
        ]
        injector._crashes_left = int(spec["crashes_left"])
        injector._component_of = (
            None
            if spec["component_of"] is None
            else {int(k): int(v) for k, v in spec["component_of"]}
        )
        injector._current_round = int(spec["current_round"])
        injector._claimed_vst_crash = {
            int(r) for r in spec["claimed_vst_crash"]
        }

    def _restore_membership(self, balancer: "LoadBalancer") -> None:
        spec = self.payload["membership"]
        membership = balancer.membership
        if spec is None or membership is None:
            if (spec is None) != (membership is None):
                raise RecoveryError(
                    "snapshot and target disagree on membership-manager "
                    "presence (different fault plans?)"
                )
            return
        injector = balancer.faults
        assert injector is not None
        ring = balancer.ring
        membership.epoch = int(spec["epoch"])
        membership.active = (
            None
            if spec["active"] is None
            else MembershipView(
                epoch=int(spec["active"]["epoch"]),
                components=tuple(
                    tuple(int(i) for i in comp)
                    for comp in spec["active"]["components"]
                ),
            )
        )
        membership._active_spec = (
            None
            if spec["active_spec_index"] is None
            else injector.plan.partitions[int(spec["active_spec_index"])]
        )
        node_by_index = {n.index: n for n in ring.nodes}
        membership._suspended = []
        for s in spec["suspended"]:
            source = node_by_index[int(s["source"])]
            target = node_by_index[int(s["target"])]
            # The suspended server is *in flight*: owned by its source
            # but hosted by no node, registered on the ring so staleness
            # checks still resolve it.
            vs = VirtualServer(int(s["vs_id"]), source, _unhex(s["load"]))
            ring._vs_by_id[vs.vs_id] = vs
            txn = TransferTransaction(
                ring, vs, source, target, journal=balancer.journal
            )
            txn.state = "prepared"
            a = s["assignment"]
            assignment = Assignment(
                candidate=ShedCandidate(
                    load=_unhex(a["load"]),
                    vs_id=int(a["vs_id"]),
                    node_index=int(a["node_index"]),
                ),
                target_node=int(a["target_node"]),
                level=int(a["level"]),
            )
            membership._suspended.append((txn, assignment))

    def _restore_store(self, store: "ObjectStore | None") -> None:
        spec = self.payload["store"]
        if spec is None or store is None:
            if (spec is None) != (store is None):
                raise RecoveryError(
                    "snapshot and target disagree on object-store presence"
                )
            return
        from repro.dht.storage import StoredObject

        store._objects = {
            name: StoredObject(
                key=int(key), name=name, load=_unhex(load), size=_unhex(size)
            )
            for name, key, load, size in spec["objects"]
        }
        store._by_vs = {
            int(vs_id): set(names) for vs_id, names in spec["by_vs"]
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SystemSnapshot(round={self.round_index}, "
            f"nodes={len(self.payload['nodes'])}, "
            f"digest={self.canonical_digest()[:12]})"
        )
