"""The write-ahead transfer journal: checksummed JSONL, replayable.

Record format (one ASCII JSON object per line, sorted keys)::

    {"check": "16-hex", "kind": "prepare", "seq": 12, ...fields...}

``check`` is the first 16 hex digits of SHA-256 over the record's
canonical JSON *without* the ``check`` field; ``seq`` is the record's
position in the file.  On open the journal validates every line in
order and durably truncates at the first unparsable, checksum-failing
or out-of-sequence line — the torn tail a crash mid-append leaves
behind — so the surviving prefix is always internally consistent.

Write-ahead discipline: the balancer journals each VST
prepare/commit/rollback *intent* before
:class:`~repro.core.vst.TransferTransaction` applies it, brackets each
round with ``round_begin``/``round_end`` (the latter carrying the
report's canonical digest), and the recovery manager interleaves
``checkpoint`` and ``crash`` markers.  The journal therefore serves
three roles at once:

* a durable record of what the crashed round already did;
* **replay validation** — after a restore, :meth:`TransferJournal.begin_replay`
  arms the journaled tail as the *expected* sequence: the re-executed
  round's ``record`` calls must match it one for one (a mismatch means
  the restore diverged and raises
  :class:`~repro.exceptions.RecoveryError`), matched records are not
  re-written, and once the tail is consumed new records append
  normally — which is exactly what makes a double crash during
  recovery safe: the second run's extra records extend the same valid
  prefix for the third;
* the carrier of ``crash`` markers, from which the recovery manager
  disarms already-fired :class:`~repro.faults.CrashPoint` sites.

The on-disk format is the same JSON-lines shape
:class:`repro.obs.sinks.JSONLSink` emits (see its ``append``/``sync``
modes), so journal files yield to the same ``jq``/pandas tooling as
trace streams.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import RecoveryError
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import current_metrics, current_tracer
from repro.obs.trace import Tracer
from repro.recovery.durable import DurableAppendFile

#: Every record kind the journal accepts, in no particular order.
JOURNAL_KINDS = frozenset(
    {
        "round_begin",
        "prepare",
        "commit",
        "rollback",
        "suspend",
        "round_end",
        "checkpoint",
        "crash",
    }
)

#: Kinds subject to replay validation: the deterministic re-execution
#: of a restored round must reproduce exactly these.  ``checkpoint``
#: and ``crash`` markers are written by the recovery layer itself and
#: bypass the matcher.
REPLAYABLE_KINDS = frozenset(
    {"round_begin", "prepare", "commit", "rollback", "suspend", "round_end"}
)


def _checksum(payload: Mapping[str, Any]) -> str:
    """First 16 hex digits of SHA-256 over the canonical payload JSON."""
    canonical = json.dumps(dict(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True, slots=True)
class JournalRecord:
    """One validated journal entry (``seq`` = position in the file)."""

    seq: int
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_line(self) -> str:
        """Serialize to one checksummed ASCII JSON line (no newline)."""
        payload: dict[str, Any] = {"seq": self.seq, "kind": self.kind}
        payload.update(self.fields)
        payload["check"] = _checksum(
            {k: v for k, v in payload.items() if k != "check"}
        )
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_line(cls, line: str, expected_seq: int) -> "JournalRecord | None":
        """Parse and validate one line; ``None`` if it is torn/corrupt."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(payload, dict):
            return None
        check = payload.pop("check", None)
        if check != _checksum(payload):
            return None
        seq = payload.pop("seq", None)
        kind = payload.pop("kind", None)
        if seq != expected_seq or not isinstance(kind, str):
            return None
        if kind not in JOURNAL_KINDS:
            return None
        return cls(seq=int(seq), kind=kind, fields=payload)

    def matches(self, kind: str, fields: Mapping[str, Any]) -> bool:
        """Whether a re-executed record is identical to this journaled one."""
        return self.kind == kind and self.fields == dict(fields)


class TransferJournal:
    """Append-only, checksummed, replay-validating JSONL journal.

    Parameters
    ----------
    path:
        The journal file; created if absent, validated and torn-tail
        truncated if present.
    tracer:
        Structured tracer for ``recovery.*`` events; defaults to the
        process-wide one.
    metrics:
        Registry for ``recovery.journal_*`` counters; defaults to the
        process-wide one (``None`` = off).
    """

    def __init__(
        self,
        path: str | Any,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Open ``path``, validate its content and repair any torn tail."""
        self.tracer = tracer if tracer is not None else current_tracer()
        self.metrics = metrics if metrics is not None else current_metrics()
        self._file = DurableAppendFile(path)
        self.path = self._file.path
        self.entries: list[JournalRecord] = []
        self.truncated_bytes = 0
        self._replay: deque[JournalRecord] = deque()
        self._load()

    # ------------------------------------------------------------------
    # Open-time validation
    # ------------------------------------------------------------------
    def _load(self) -> None:
        """Validate the file front to back; truncate at the first bad line."""
        raw = self._file.read_bytes()
        offset = 0
        good_end = 0
        for chunk in raw.split(b"\n"):
            line_end = offset + len(chunk) + 1  # +1 for the newline
            if not chunk:
                offset = line_end
                continue
            record = JournalRecord.from_line(
                chunk.decode("utf-8", errors="replace"), len(self.entries)
            )
            if record is None or line_end > len(raw):
                # Unparsable, checksum-failing, out-of-sequence, or a
                # final line with no terminating newline: the torn tail.
                break
            self.entries.append(record)
            offset = line_end
            good_end = line_end
        if good_end < len(raw):
            self.truncated_bytes = len(raw) - good_end
            self._file.truncate_to(good_end)
            if self.metrics is not None:
                self.metrics.counter("recovery.journal_truncated_bytes").inc(
                    self.truncated_bytes
                )
            if self.tracer.enabled:
                self.tracer.event(
                    "recovery.journal_truncate",
                    bytes=self.truncated_bytes,
                    kept_records=len(self.entries),
                )

    # ------------------------------------------------------------------
    # Writing (and replay matching)
    # ------------------------------------------------------------------
    def _append(self, kind: str, fields: dict[str, Any]) -> JournalRecord:
        record = JournalRecord(seq=len(self.entries), kind=kind, fields=fields)
        self._file.append_line(record.to_line())
        self.entries.append(record)
        if self.metrics is not None:
            self.metrics.counter("recovery.journal_records").inc()
        return record

    def record(self, kind: str, **fields: Any) -> JournalRecord:
        """Durably journal one record (or match it against the replay tail).

        Outside replay mode this is a plain write-ahead append.  In
        replay mode (armed by :meth:`begin_replay` after a restore) the
        call must reproduce the next expected record exactly — same
        kind, same fields — in which case nothing is re-written and the
        journaled record is returned; any divergence raises
        :class:`~repro.exceptions.RecoveryError`.
        """
        if kind not in JOURNAL_KINDS:
            raise RecoveryError(f"unknown journal record kind {kind!r}")
        if self._replay:
            expected = self._replay.popleft()
            if not expected.matches(kind, fields):
                raise RecoveryError(
                    "replay divergence: restored run produced "
                    f"{kind} {fields!r} where the journal expects "
                    f"{expected.kind} {expected.fields!r} (seq {expected.seq})"
                )
            return expected
        return self._append(kind, dict(fields))

    def record_crash(self, round_index: int, site: str) -> JournalRecord:
        """Durably mark a fired crash (bypasses replay matching).

        Crash markers are written by the recovery layer *after* catching
        the :class:`~repro.exceptions.ProcessCrashError`, possibly while
        a replay tail is still armed (a double crash during recovery);
        they must therefore never be matched against expected protocol
        records.
        """
        return self._append(
            "crash", {"round": round_index, "site": site}
        )

    def begin_replay(self, expected: list[JournalRecord]) -> None:
        """Arm replay validation with the journaled tail of a crashed round."""
        self._replay = deque(
            r for r in expected if r.kind in REPLAYABLE_KINDS
        )

    @property
    def replaying(self) -> bool:
        """Whether a replay tail is still armed (and not fully consumed)."""
        return bool(self._replay)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def tail_after_last_checkpoint(self) -> list[JournalRecord]:
        """Every record after the last ``checkpoint`` marker (exclusive).

        This is the journal's view of the crashed round in progress:
        what the recovery manager replays after restoring the snapshot
        that checkpoint marker refers to.  With no checkpoint on file
        the whole journal is the tail.
        """
        last = -1
        for i, record in enumerate(self.entries):
            if record.kind == "checkpoint":
                last = i
        return self.entries[last + 1 :]

    def crash_markers(self, records: list[JournalRecord]) -> list[tuple[int, str]]:
        """The ``(round, site)`` pairs of every crash marker in ``records``."""
        return [
            (int(r.fields["round"]), str(r.fields["site"]))
            for r in records
            if r.kind == "crash"
        ]

    def close(self) -> None:
        """Close the underlying append file."""
        self._file.close()

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransferJournal({str(self.path)!r}, records={len(self.entries)}, "
            f"replaying={self.replaying})"
        )
