"""Durable file primitives: the one sanctioned door to the filesystem.

Crash safety is a property of *how* bytes reach disk, not of what they
say, so every write the recovery subsystem performs flows through this
module — the ``durable-write-discipline`` lint rule flags any other
``open``/``os.replace``/``write_text`` call inside ``repro.recovery``.
Two disciplines cover everything:

* **fsync'd append** (:class:`DurableAppendFile`) — journal records are
  flushed and fsynced line by line, so a crash can lose at most the
  torn tail of the final record (which the journal truncates on open);
* **atomic rename-on-commit** (:func:`atomic_write_text`) — snapshots
  are written to a temp file, fsynced, then :func:`os.replace`'d over
  the destination and the directory entry fsynced, so a reader never
  observes a partial file no matter when the process dies.

State lives under a single directory resolved by
:func:`resolve_state_dir`: an explicit argument wins, then the
``REPRO_STATE_DIR`` environment variable (the CLI's ``--state-dir``
flag sets it), then ``.repro-state/`` in the working directory.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

#: Environment variable naming the state directory (set by the CLI's
#: ``--state-dir`` flag; see :func:`resolve_state_dir`).
STATE_DIR_ENV = "REPRO_STATE_DIR"

#: Fallback state directory when neither an explicit path nor the
#: environment variable is given.
DEFAULT_STATE_DIR = ".repro-state"


def resolve_state_dir(
    explicit: str | Path | None = None, create: bool = True
) -> Path:
    """Resolve the journal/snapshot directory from one setting.

    Precedence: ``explicit`` argument > ``$REPRO_STATE_DIR`` >
    :data:`DEFAULT_STATE_DIR`.  With ``create`` (the default) the
    directory is created on first use.
    """
    if explicit is not None:
        base = Path(explicit)
    else:
        env = os.environ.get(STATE_DIR_ENV)
        base = Path(env) if env else Path(DEFAULT_STATE_DIR)
    if create:
        base.mkdir(parents=True, exist_ok=True)
    return base


def _fsync_dir(path: Path) -> None:
    """fsync a directory entry so a rename/create survives a crash."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp + fsync + rename).

    The bytes land in ``path + ".tmp"`` first, are fsynced, and only
    then renamed over the destination via :func:`os.replace`; the
    parent directory entry is fsynced last.  A crash at any point
    leaves either the old file or the new one, never a mix.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)
    _fsync_dir(target.parent)


def atomic_write_json(path: str | Path, payload: Any) -> None:
    """Serialize ``payload`` canonically and atomically write it.

    Canonical means sorted keys and minimal separators, so a payload's
    on-disk bytes are a pure function of its value — the property the
    snapshot digest relies on.
    """
    atomic_write_text(
        path,
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
    )


def read_text(path: str | Path) -> str:
    """Read a whole text file (the sanctioned read-side helper)."""
    return Path(path).read_text(encoding="utf-8")


def read_json(path: str | Path) -> Any:
    """Read and parse one JSON document written by :func:`atomic_write_json`."""
    return json.loads(read_text(path))


class DurableAppendFile:
    """Append-only binary file with per-write fsync and tail truncation.

    The journal's storage layer: :meth:`append_line` flushes and fsyncs
    each record so committed lines survive a crash, :meth:`read_bytes`
    returns the whole current content for validation on open, and
    :meth:`truncate_to` discards a torn tail.  Offsets are byte
    offsets; the journal keeps its lines ASCII so they line up with
    character positions.
    """

    __slots__ = ("path", "_fh")

    def __init__(self, path: str | Path) -> None:
        """Open (creating if absent) the append file at ``path``."""
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a+b")

    def read_bytes(self) -> bytes:
        """The file's entire current content."""
        self._fh.seek(0)
        return self._fh.read()

    def append_line(self, line: str) -> None:
        """Append ``line`` plus a newline, flushed and fsynced."""
        self._fh.seek(0, os.SEEK_END)
        self._fh.write(line.encode("utf-8") + b"\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def truncate_to(self, size: int) -> None:
        """Durably cut the file back to ``size`` bytes (torn-tail repair)."""
        self._fh.truncate(size)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Close the underlying file handle."""
        self._fh.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DurableAppendFile({str(self.path)!r})"
