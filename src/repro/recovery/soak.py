"""Chaos soak: seeded fault schedules, always-on monitors, ddmin shrinking.

The soak harness answers the question the unit tests cannot: does the
whole stack — balancer, membership epochs, fault injection, crash
recovery — stay invariant-clean under *composed* adversity?  A
:class:`SoakSchedule` describes one seeded scenario: churn operations
(joins, leaves, load drift) interleaved with a :class:`~repro.faults.FaultPlan`
mixing message drops, report corruption, transfer aborts, network
partitions and whole-process :class:`~repro.faults.CrashPoint` crashes.
:func:`run_schedule` drives it through a
:class:`~repro.recovery.RecoveryManager` and checks four always-on
monitors after every round:

* **conservation** — ring load plus in-flight load is unchanged by the
  round (churn moves load *between* rounds, rounds must only re-home it);
* **region-tiling** — :meth:`~repro.dht.chord.ChordRing.check_invariants`
  whenever no transfer is suspended (mid-partition the ring is
  deliberately degraded);
* **in-flight** — suspended transfers exist only while a partition is
  active, and their aggregate load is non-negative;
* **epoch** — the membership epoch never decreases.

Everything is a pure function of the schedule, so a failure is a
*reproducible artifact*, and :func:`shrink` makes it a small one:
classic ddmin (delta debugging with granularity doubling) over the
schedule's removable elements — each partition, crash point, churn op
and nonzero fault knob — keeping any candidate that still fails the
*same* monitor, followed by round-count truncation.  The result is
1-minimal (no single element can be removed) and deterministic across
reruns; :func:`format_repro` renders it as a paste-ready test case.
"""

from __future__ import annotations

import argparse
import shutil
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.core.records import assert_loads_conserved
from repro.core.report import BalanceReport
from repro.dht.churn import join_node, leave_node
from repro.exceptions import ConservationError, DHTError, ReproError
from repro.faults import CRASH_SITES, CrashPoint, FaultPlan, PartitionSpec
from repro.recovery.manager import RecoveryManager
from repro.util.rng import ensure_rng
from repro.workloads import GaussianLoadModel, build_scenario

#: Churn operation kinds a schedule may contain.
CHURN_KINDS = ("join", "leave", "drift")

#: Scalar fault knobs the shrinker can zero out independently.
SHRINKABLE_KNOBS = (
    "drop",
    "delay",
    "duplicate",
    "transfer_abort",
    "corrupt",
    "crash_mid_round",
)


@dataclass(frozen=True, slots=True)
class ChurnOp:
    """One membership/load perturbation applied *before* ``at_round``."""

    at_round: int
    kind: str

    def __post_init__(self) -> None:
        """Validate the operation kind and round."""
        if self.kind not in CHURN_KINDS:
            raise ValueError(
                f"churn kind must be one of {CHURN_KINDS}, got {self.kind!r}"
            )
        if self.at_round < 0:
            raise ValueError(f"at_round must be >= 0, got {self.at_round}")


@dataclass(frozen=True, slots=True)
class SoakSchedule:
    """One fully seeded soak scenario (workload + faults + churn).

    The schedule is the *entire* input: two runs of the same schedule
    produce byte-identical round digests, which is what makes a soak
    failure shrinkable and a shrunk failure a durable regression test.
    """

    seed: int = 0
    rounds: int = 8
    num_nodes: int = 32
    vs_per_node: int = 4
    plan: FaultPlan = FaultPlan()
    churn: tuple[ChurnOp, ...] = ()

    def __post_init__(self) -> None:
        """Validate scenario dimensions."""
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.num_nodes < 4:
            raise ValueError(f"num_nodes must be >= 4, got {self.num_nodes}")
        if self.vs_per_node < 1:
            raise ValueError(
                f"vs_per_node must be >= 1, got {self.vs_per_node}"
            )


@dataclass(frozen=True, slots=True)
class SoakFailure:
    """One monitor violation: which monitor, which round, what it saw."""

    round_index: int
    monitor: str
    message: str


@dataclass(frozen=True, slots=True)
class SoakResult:
    """Outcome of one schedule run: per-round digests, first failure."""

    schedule: SoakSchedule
    digests: tuple[str, ...]
    failure: SoakFailure | None
    restores: int

    @property
    def ok(self) -> bool:
        """Whether every round completed with every monitor green."""
        return self.failure is None


@dataclass(frozen=True, slots=True)
class ShrinkResult:
    """A 1-minimal failing schedule and the work it took to find it."""

    schedule: SoakSchedule
    failure: SoakFailure
    runs: int


@dataclass(frozen=True, slots=True)
class SoakProbe:
    """What a monitor sees after one completed round."""

    round_index: int
    balancer: LoadBalancer
    report: BalanceReport
    total_before: float


class Monitor:
    """Base class: a named always-on invariant check."""

    name = "monitor"

    def check(self, probe: SoakProbe) -> str | None:
        """Return a violation message, or ``None`` when the invariant holds."""
        raise NotImplementedError


def _in_flight_load(balancer: LoadBalancer) -> float:
    """Aggregate load of suspended transfers (0.0 without membership)."""
    membership = balancer.membership
    return 0.0 if membership is None else membership.in_flight_load


class ConservationMonitor(Monitor):
    """Ring load + in-flight load must be unchanged by the round."""

    name = "conservation"

    def check(self, probe: SoakProbe) -> str | None:
        """Compare pre-round and post-round totals (shared tolerance)."""
        after = sum(n.load for n in probe.balancer.ring.nodes)
        after += _in_flight_load(probe.balancer)
        try:
            assert_loads_conserved(
                probe.total_before, after, context="soak.conservation"
            )
        except ConservationError as err:
            return str(err)
        return None


class RegionTilingMonitor(Monitor):
    """Ring cross-references and region tiling must validate when whole."""

    name = "region-tiling"

    def check(self, probe: SoakProbe) -> str | None:
        """Run the ring's invariant check unless transfers are suspended."""
        membership = probe.balancer.membership
        if membership is not None and membership.suspended_count > 0:
            return None
        try:
            probe.balancer.ring.check_invariants()
        except DHTError as err:
            return str(err)
        return None


class InFlightMonitor(Monitor):
    """Suspended transfers exist only while a partition is active."""

    name = "in-flight"

    def check(self, probe: SoakProbe) -> str | None:
        """Cross-check suspension state against the active view."""
        membership = probe.balancer.membership
        if membership is None:
            return None
        if membership.active is None and membership.suspended_count > 0:
            return (
                f"{membership.suspended_count} transfers suspended with no "
                "active partition"
            )
        if membership.in_flight_load < 0.0:
            return f"negative in-flight load {membership.in_flight_load}"
        return None


class EpochMonitor(Monitor):
    """The membership epoch must never decrease round over round."""

    name = "epoch"

    def __init__(self) -> None:
        """Start before any observed epoch."""
        self._last = -1

    def check(self, probe: SoakProbe) -> str | None:
        """Compare this round's epoch to the highest seen so far."""
        membership = probe.balancer.membership
        epoch = 0 if membership is None else membership.epoch
        if epoch < self._last:
            return f"epoch went backwards: {self._last} -> {epoch}"
        self._last = epoch
        return None


def default_monitors() -> list[Monitor]:
    """A fresh instance of every always-on monitor (order = check order)."""
    return [
        ConservationMonitor(),
        RegionTilingMonitor(),
        InFlightMonitor(),
        EpochMonitor(),
    ]


# ----------------------------------------------------------------------
# Running one schedule
# ----------------------------------------------------------------------
def _factory_for(schedule: SoakSchedule) -> Callable[[], LoadBalancer]:
    """The pure balancer constructor recovery restarts will re-invoke."""

    def factory() -> LoadBalancer:
        scenario = build_scenario(
            GaussianLoadModel(mu=1e6, sigma=2e3),
            num_nodes=schedule.num_nodes,
            vs_per_node=schedule.vs_per_node,
            rng=schedule.seed,
        )
        config = BalancerConfig(
            proximity_mode="ignorant", epsilon=0.05, tree_degree=2
        )
        return LoadBalancer(
            scenario.ring, config, rng=schedule.seed + 1, faults=schedule.plan
        )

    return factory


def run_schedule(
    schedule: SoakSchedule,
    state_dir: str | Path | None = None,
    monitor_factory: Callable[[], list[Monitor]] | None = None,
) -> SoakResult:
    """Run one schedule to completion or first failure.

    Recovery state lives in ``state_dir`` (a throwaway temp directory by
    default, removed afterwards).  Protocol exceptions escaping a round
    are reported as a failure with monitor ``"exception"`` rather than
    raised — an invariant gate tripping *is* the soak finding something.
    """
    own_dir = state_dir is None
    resolved = (
        Path(tempfile.mkdtemp(prefix="repro-soak-"))
        if state_dir is None
        else Path(state_dir)
    )
    monitors = (default_monitors if monitor_factory is None else monitor_factory)()
    churn_rng = ensure_rng(schedule.seed + 0x5A0A)
    digests: list[str] = []
    failure: SoakFailure | None = None
    manager = RecoveryManager(_factory_for(schedule), state_dir=resolved)
    try:
        for round_index in range(schedule.rounds):
            for op in schedule.churn:
                if op.at_round == round_index:
                    _churn(manager.balancer, schedule, op, churn_rng)
            total_before = sum(
                n.load for n in manager.balancer.ring.nodes
            ) + _in_flight_load(manager.balancer)
            try:
                report = manager.run_round()
            except ReproError as err:
                failure = SoakFailure(
                    round_index,
                    "exception",
                    f"{type(err).__name__}: {err}",
                )
                break
            digests.append(report.canonical_digest())
            probe = SoakProbe(
                round_index=round_index,
                balancer=manager.balancer,
                report=report,
                total_before=total_before,
            )
            for monitor in monitors:
                message = monitor.check(probe)
                if message is not None:
                    failure = SoakFailure(round_index, monitor.name, message)
                    break
            if failure is not None:
                break
        return SoakResult(
            schedule=schedule,
            digests=tuple(digests),
            failure=failure,
            restores=manager.restores,
        )
    finally:
        manager.close()
        if own_dir:
            shutil.rmtree(resolved, ignore_errors=True)


def _churn(
    balancer: LoadBalancer,
    schedule: SoakSchedule,
    op: ChurnOp,
    rng: np.random.Generator,
) -> None:
    """Apply one churn operation to the live ring (between rounds).

    Joins and leaves route through :mod:`repro.dht.churn` (which
    conserves load by handover); ``drift`` rescales a seeded eighth of
    the hosted virtual servers, modelling organic demand shift.
    """
    ring = balancer.ring
    if op.kind == "join":
        capacities = [n.capacity for n in ring.alive_nodes]
        capacity = sum(capacities) / len(capacities)
        join_node(
            ring, capacity, schedule.vs_per_node, rng=rng, site=None
        )
        return
    if op.kind == "leave":
        alive = ring.alive_nodes
        if len(alive) <= 4:
            return
        candidates = [
            n
            for n in alive
            if len(n.virtual_servers) < ring.num_virtual_servers
        ]
        if not candidates:
            return
        victim = candidates[int(rng.integers(len(candidates)))]
        leave_node(ring, victim)
        return
    servers = list(ring.virtual_servers)
    if not servers:
        return
    count = max(1, len(servers) // 8)
    picks = rng.choice(len(servers), size=count, replace=False)
    for i in sorted(int(p) for p in picks):
        factor = 0.5 + 1.5 * float(rng.random())
        servers[i].load *= factor


# ----------------------------------------------------------------------
# Shrinking (ddmin)
# ----------------------------------------------------------------------
def _elements(schedule: SoakSchedule) -> list[tuple[str, object]]:
    """The schedule's removable elements, in a stable order."""
    plan = schedule.plan
    elems: list[tuple[str, object]] = []
    elems.extend(("partition", i) for i in range(len(plan.partitions)))
    elems.extend(("crash_point", i) for i in range(len(plan.crash_points)))
    elems.extend(("churn", i) for i in range(len(schedule.churn)))
    elems.extend(
        ("knob", name) for name in SHRINKABLE_KNOBS if getattr(plan, name)
    )
    return elems


def _rebuild(
    schedule: SoakSchedule, kept: list[tuple[str, object]]
) -> SoakSchedule:
    """The sub-schedule containing exactly the ``kept`` elements."""
    kept_set = set(kept)
    plan = schedule.plan
    knob_values = {
        name: (getattr(plan, name) if ("knob", name) in kept_set else 0)
        for name in SHRINKABLE_KNOBS
    }
    new_plan = replace(
        plan,
        partitions=tuple(
            spec
            for i, spec in enumerate(plan.partitions)
            if ("partition", i) in kept_set
        ),
        crash_points=tuple(
            point
            for i, point in enumerate(plan.crash_points)
            if ("crash_point", i) in kept_set
        ),
        **knob_values,
    )
    return replace(
        schedule,
        plan=new_plan,
        churn=tuple(
            op
            for i, op in enumerate(schedule.churn)
            if ("churn", i) in kept_set
        ),
    )


def shrink(
    schedule: SoakSchedule,
    failure: SoakFailure,
    monitor_factory: Callable[[], list[Monitor]] | None = None,
    max_runs: int = 200,
) -> ShrinkResult:
    """ddmin the failing schedule to a 1-minimal reproduction.

    A candidate counts as failing only when it trips the *same* monitor
    as the original failure (any round, any message) — shrinking must
    not wander onto a different bug.  After element minimisation the
    round count is truncated as far as the failure allows.  The whole
    process is deterministic: same schedule + failure in, same minimal
    schedule out, bounded by ``max_runs`` soak executions.
    """
    runs = 0
    cache: dict[str, SoakFailure | None] = {}

    def fails(candidate: SoakSchedule) -> bool:
        nonlocal runs
        key = repr(candidate)
        if key not in cache:
            if runs >= max_runs:
                return False
            runs += 1
            result = run_schedule(candidate, monitor_factory=monitor_factory)
            cache[key] = result.failure
        observed = cache[key]
        return observed is not None and observed.monitor == failure.monitor

    elements = _elements(schedule)
    granularity = 2
    while len(elements) >= 2:
        chunk = max(1, (len(elements) + granularity - 1) // granularity)
        reduced = False
        for start in range(0, len(elements), chunk):
            complement = elements[:start] + elements[start + chunk :]
            if complement and not fails(_rebuild(schedule, complement)):
                continue
            if not complement:
                continue
            elements = complement
            granularity = max(granularity - 1, 2)
            reduced = True
            break
        if not reduced:
            if granularity >= len(elements):
                break
            granularity = min(granularity * 2, len(elements))

    minimal = _rebuild(schedule, elements)
    while minimal.rounds > 1:
        candidate = replace(minimal, rounds=minimal.rounds - 1)
        if not fails(candidate):
            break
        minimal = candidate
    final = run_schedule(minimal, monitor_factory=monitor_factory)
    runs += 1
    if final.failure is None or final.failure.monitor != failure.monitor:
        raise ReproError(
            "shrinker invariant violated: minimal schedule no longer fails "
            f"monitor {failure.monitor!r}"
        )
    return ShrinkResult(schedule=minimal, failure=final.failure, runs=runs)


def format_repro(result: ShrinkResult) -> str:
    """Render a shrunk failure as a paste-ready regression test."""
    schedule = result.schedule
    failure = result.failure
    return (
        f"# Minimal soak reproduction: monitor {failure.monitor!r} fails at "
        f"round {failure.round_index} after {result.runs} shrink runs.\n"
        f"# {failure.message}\n"
        "from repro.faults import CrashPoint, FaultPlan, PartitionSpec\n"
        "from repro.recovery.soak import ChurnOp, SoakSchedule, run_schedule\n"
        "\n"
        "\n"
        "def test_soak_regression():\n"
        f"    schedule = {schedule!r}\n"
        "    result = run_schedule(schedule)\n"
        "    assert result.failure is not None\n"
        f"    assert result.failure.monitor == {failure.monitor!r}\n"
    )


# ----------------------------------------------------------------------
# Seeded schedule generation and the CLI driver
# ----------------------------------------------------------------------
def build_schedule(
    seed: int,
    rounds: int = 8,
    num_nodes: int = 32,
    vs_per_node: int = 4,
) -> SoakSchedule:
    """Draw one seeded schedule composing churn, faults, partitions, crashes."""
    rng = ensure_rng(seed)
    drop = float(rng.choice([0.0, 0.02, 0.05]))
    corrupt = float(rng.choice([0.0, 0.03]))
    transfer_abort = float(rng.choice([0.0, 0.05]))
    crash_mid_round = int(rng.integers(0, 2))
    partitions: tuple[PartitionSpec, ...] = ()
    if rounds >= 4 and float(rng.random()) < 0.8:
        at_round = int(rng.integers(1, rounds - 2))
        partitions = (
            PartitionSpec(
                at_round=at_round,
                duration=int(rng.integers(1, 3)),
                num_components=2,
                mid_round=bool(rng.random() < 0.5),
            ),
        )
    crash_keys: set[tuple[int, str]] = set()
    for _ in range(int(rng.integers(1, 3))):
        key = (
            int(rng.integers(0, rounds)),
            str(rng.choice(list(CRASH_SITES))),
        )
        crash_keys.add(key)
    crash_points = tuple(
        CrashPoint(at_round=r, site=s) for r, s in sorted(crash_keys)
    )
    churn = tuple(
        ChurnOp(
            at_round=int(rng.integers(0, rounds)),
            kind=str(rng.choice(list(CHURN_KINDS))),
        )
        for _ in range(int(rng.integers(0, 4)))
    )
    plan = FaultPlan(
        seed=seed,
        drop=drop,
        corrupt=corrupt,
        transfer_abort=transfer_abort,
        crash_mid_round=crash_mid_round,
        partitions=partitions,
        crash_points=crash_points,
    )
    return SoakSchedule(
        seed=seed,
        rounds=rounds,
        num_nodes=num_nodes,
        vs_per_node=vs_per_node,
        plan=plan,
        churn=churn,
    )


def main(argv: list[str] | None = None) -> int:
    """Soak driver: run seeded schedules, shrink and print any failure.

    ``--smoke`` runs a small fixed sweep suitable for CI; the default
    sweep is larger.  Exit status 0 = every schedule clean, 1 = at
    least one monitor violation (its shrunk reproduction is printed).
    """
    parser = argparse.ArgumentParser(
        prog="repro.recovery.soak", description=main.__doc__
    )
    parser.add_argument("--smoke", action="store_true", help="small CI sweep")
    parser.add_argument("--seed", type=int, default=1, help="first seed")
    parser.add_argument(
        "--schedules", type=int, default=6, help="number of seeded schedules"
    )
    parser.add_argument("--rounds", type=int, default=10, help="rounds each")
    parser.add_argument(
        "--nodes", type=int, default=48, help="physical nodes per schedule"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.schedules = 2
        args.rounds = 6
        args.nodes = 24
    exit_code = 0
    for offset in range(args.schedules):
        schedule = build_schedule(
            args.seed + offset, rounds=args.rounds, num_nodes=args.nodes
        )
        result = run_schedule(schedule)
        if result.ok:
            print(
                f"seed {schedule.seed}: ok "
                f"({len(result.digests)} rounds, {result.restores} restores, "
                f"{len(schedule.plan.crash_points)} crash points)"
            )
            continue
        exit_code = 1
        assert result.failure is not None
        print(
            f"seed {schedule.seed}: FAIL monitor={result.failure.monitor} "
            f"round={result.failure.round_index}: {result.failure.message}"
        )
        shrunk = shrink(schedule, result.failure)
        print(format_repro(shrunk))
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via verify.sh
    raise SystemExit(main())
