"""Struct-of-arrays snapshots of per-node balancing state.

The serial balancer walks ``PhysicalNode`` objects and asks each one for
its load, capacity and lightest virtual server.  At 10^5-10^6 nodes the
attribute churn dominates the round, so the incremental engine snapshots
the same quantities once per round into contiguous NumPy arrays and runs
classification and the LBI fold over them.

Bit-exactness contract: every array is built from the *same* Python
expressions the serial path evaluates (``node.load`` sums
``vs.load`` left-to-right, ``node.min_vs_load`` is a ``min`` over the
same floats), so downstream float comparisons and folds see identical
IEEE-754 values in identical order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dht.node import PhysicalNode


@dataclass(frozen=True)
class NodeStateArrays:
    """One round's per-node state, column-major.

    Attributes
    ----------
    indices:
        ``node.index`` for each alive node, in alive order.
    capacities / loads:
        ``node.capacity`` / ``node.load`` as float64, alive order.
    min_vs:
        ``node.min_vs_load`` (``inf`` for a node with no virtual
        servers, matching the serial LBI report).
    vs_counts:
        ``len(node.virtual_servers)`` — drives the batched reporter and
        placement draws.
    """

    indices: np.ndarray
    capacities: np.ndarray
    loads: np.ndarray
    min_vs: np.ndarray
    vs_counts: np.ndarray

    @classmethod
    def snapshot(cls, alive: list[PhysicalNode]) -> "NodeStateArrays":
        """Snapshot ``alive`` (already filtered and ordered by the caller)."""
        indices = np.asarray([n.index for n in alive], dtype=np.int64)
        capacities = np.asarray([n.capacity for n in alive], dtype=np.float64)
        loads = np.asarray([n.load for n in alive], dtype=np.float64)
        min_vs = np.asarray(
            [n.min_vs_load if n.virtual_servers else np.inf for n in alive],
            dtype=np.float64,
        )
        vs_counts = np.asarray(
            [len(n.virtual_servers) for n in alive], dtype=np.int64
        )
        return cls(
            indices=indices,
            capacities=capacities,
            loads=loads,
            min_vs=min_vs,
            vs_counts=vs_counts,
        )

    def __len__(self) -> int:
        return int(self.indices.size)
