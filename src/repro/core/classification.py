"""Phase 2: node classification against capacity-proportional targets.

With the disseminated ``<L, C, L_min>`` every node computes its target
load ``T_i = (1 + epsilon) * (L / C) * C_i`` — load proportional to
capacity, relaxed by the slack parameter epsilon — and classifies itself:

* **heavy** if ``L_i > T_i``;
* **light** if ``T_i - L_i >= L_min`` (it can absorb at least the
  smallest virtual server in the system);
* **neutral** otherwise (``0 <= T_i - L_i < L_min``).

Note on the paper's formula: the printed equation ``L_i = (1/e + e)C_i``
is a typo; the consistent reading used throughout the text (and in the
follow-up work of the same authors) is the capacity-proportional target
above, which is what this module implements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.records import NodeClass, SystemLBI
from repro.dht.node import PhysicalNode
from repro.exceptions import ConfigError
from repro.obs.trace import Tracer


def target_load(capacity: float, lbi: SystemLBI, epsilon: float = 0.0) -> float:
    """Target load ``T_i`` for a node of ``capacity`` under ``lbi``."""
    if epsilon < 0:
        raise ConfigError(f"epsilon must be non-negative, got {epsilon}")
    return (1.0 + epsilon) * lbi.load_per_capacity * capacity


def classify_node(node: PhysicalNode, lbi: SystemLBI, epsilon: float = 0.0) -> NodeClass:
    """Classify a single node (Section 3.3 rules)."""
    t = target_load(node.capacity, lbi, epsilon)
    load = node.load
    if load > t:
        return NodeClass.HEAVY
    if (t - load) >= lbi.min_vs_load:
        return NodeClass.LIGHT
    return NodeClass.NEUTRAL


@dataclass(frozen=True, slots=True)
class ClassificationResult:
    """Classification of a whole node population."""

    classes: dict[int, NodeClass]  # node index -> class
    targets: dict[int, float]  # node index -> T_i

    @property
    def heavy(self) -> list[int]:
        return [i for i, c in self.classes.items() if c is NodeClass.HEAVY]

    @property
    def light(self) -> list[int]:
        return [i for i, c in self.classes.items() if c is NodeClass.LIGHT]

    @property
    def neutral(self) -> list[int]:
        return [i for i, c in self.classes.items() if c is NodeClass.NEUTRAL]

    def counts(self) -> dict[str, int]:
        return {
            "heavy": len(self.heavy),
            "light": len(self.light),
            "neutral": len(self.neutral),
        }


def classification_masks(
    capacities: np.ndarray,
    loads: np.ndarray,
    lbi: SystemLBI,
    epsilon: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised Section 3.3 rules over capacity/load columns.

    Returns ``(targets, heavy_mask, light_mask)``; neutral is the
    complement of the two masks.  Targets are evaluated before the
    epsilon guard fires, matching the historical scalar path (the
    product is cheap and the guard is a config error either way).
    """
    targets = (1.0 + epsilon) * lbi.load_per_capacity * capacities
    if epsilon < 0:
        raise ConfigError(f"epsilon must be non-negative, got {epsilon}")
    heavy_mask = loads > targets
    light_mask = (~heavy_mask) & ((targets - loads) >= lbi.min_vs_load)
    return targets, heavy_mask, light_mask


def classify_arrays(
    indices: np.ndarray,
    capacities: np.ndarray,
    loads: np.ndarray,
    lbi: SystemLBI,
    epsilon: float = 0.0,
    tracer: Tracer | None = None,
    stage: str = "",
) -> ClassificationResult:
    """Classify a population given as struct-of-arrays columns.

    ``indices`` carries ``node.index`` per row; rows must already be in
    alive order so the result dicts iterate identically to the
    object-walking path.
    """
    targets, heavy_mask, light_mask = classification_masks(
        capacities, loads, lbi, epsilon
    )
    classes: dict[int, NodeClass] = {}
    target_map: dict[int, float] = {}
    for index, is_heavy, is_light, target in zip(
        indices.tolist(), heavy_mask.tolist(), light_mask.tolist(), targets.tolist()
    ):
        if is_heavy:
            cls = NodeClass.HEAVY
        elif is_light:
            cls = NodeClass.LIGHT
        else:
            cls = NodeClass.NEUTRAL
        classes[index] = cls
        target_map[index] = target
    result = ClassificationResult(classes=classes, targets=target_map)
    if tracer is not None and tracer.enabled:
        tracer.event(
            "classification.counts",
            stage=stage,
            epsilon=epsilon,
            **result.counts(),
        )
    return result


def classify_all(
    nodes: list[PhysicalNode],
    lbi: SystemLBI,
    epsilon: float = 0.0,
    tracer: Tracer | None = None,
    stage: str = "",
) -> ClassificationResult:
    """Classify every alive node; vectorised over the population.

    With an enabled ``tracer``, emits one ``classification.counts``
    event carrying the heavy/light/neutral totals; ``stage`` labels the
    event (the balancer classifies twice per round, "before"/"after").
    """
    alive = [n for n in nodes if n.alive]
    indices = np.asarray([n.index for n in alive], dtype=np.int64)
    caps = np.asarray([n.capacity for n in alive], dtype=np.float64)
    loads = np.asarray([n.load for n in alive], dtype=np.float64)
    return classify_arrays(
        indices, caps, loads, lbi, epsilon, tracer=tracer, stage=stage
    )
