"""Protocol-wide message and byte cost accounting.

The paper argues efficiency on two axes: *control* cost (tree messages,
bounded by ``O(log_K N)`` rounds) and *data* cost (virtual-server
transfer bytes over network distance).  This module assembles both into
one cost sheet per balancing round, including the piece the round
accounting alone misses: publishing VSA information into the DHT is a
``put`` that costs ``O(log #VS)`` overlay hops per record in
proximity-aware mode (ignorant mode publishes at a node's own virtual
server, which is free).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.report import BalanceReport
from repro.dht.chord import ChordRing
from repro.dht.lookup import lookup_hops
from repro.dht.storage import ObjectStore
from repro.util.rng import ensure_rng


@dataclass(frozen=True, slots=True)
class CostSheet:
    """All costs of one balancing round, by protocol component."""

    # control plane (messages over the K-nary tree)
    lbi_messages: int
    lbi_rounds: int
    vsa_upward_messages: int
    vsa_rounds: int
    publication_messages: int  # overlay hops to publish VSA info (aware mode)
    # data plane
    transfers: int
    moved_load: float
    moved_bytes: float  # == moved_load unless an ObjectStore says otherwise
    load_weighted_distance: float  # sum(load * distance) over transfers
    bytes_distance_product: float  # the bandwidth-cost proxy the paper minimises

    @property
    def control_messages(self) -> int:
        return self.lbi_messages + self.vsa_upward_messages + self.publication_messages

    @property
    def mean_transfer_distance(self) -> float:
        return (
            self.load_weighted_distance / self.moved_load if self.moved_load else 0.0
        )


def estimate_publication_hops(
    ring: ChordRing,
    num_publications: int,
    rng: "int | None | np.random.Generator" = None,
    sample: int = 64,
) -> int:
    """Estimated overlay hops to publish ``num_publications`` VSA records.

    Samples real finger-table routes between random virtual servers and
    random keys, then scales by the publication count — exact routing of
    every record would be O(N log N) work for a number the experiments
    only report in aggregate.
    """
    if num_publications == 0:
        return 0
    gen = ensure_rng(rng)
    vss = ring.virtual_servers
    hops = 0
    trials = min(sample, num_publications)
    for _ in range(trials):
        start = vss[int(gen.integers(len(vss)))]
        key = int(gen.integers(0, ring.space.size))
        hops += lookup_hops(ring, start, key)
    return round(hops / trials * num_publications)


def cost_sheet(
    report: BalanceReport,
    ring: ChordRing,
    store: ObjectStore | None = None,
    rng: int | None = 0,
) -> CostSheet:
    """Assemble the full cost sheet for a completed round."""
    aware = report.config.proximity_mode == "aware"
    publication = (
        estimate_publication_hops(ring, report.vsa.entries_published, rng=rng)
        if aware
        else 0
    )
    moved_bytes = 0.0
    weighted = 0.0
    bytes_distance = 0.0
    for t in report.transfers:
        size = store.transfer_bytes(t.vs_id) if store is not None else t.load
        moved_bytes += size
        if t.has_distance:
            weighted += t.load * t.distance
            bytes_distance += size * t.distance
    return CostSheet(
        lbi_messages=report.aggregation.total_messages,
        lbi_rounds=report.aggregation.total_rounds,
        vsa_upward_messages=report.vsa.upward_messages,
        vsa_rounds=report.vsa.rounds,
        publication_messages=publication,
        transfers=len(report.transfers),
        moved_load=report.moved_load,
        moved_bytes=moved_bytes,
        load_weighted_distance=weighted,
        bytes_distance_product=bytes_distance,
    )
