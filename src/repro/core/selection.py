"""Shed-subset selection on heavy nodes (Section 3.4, first step).

A heavy node ``i`` must choose a subset of its virtual servers whose
removal makes it non-heavy, minimising the total load moved:

    minimise  sum(L_{i,k})   subject to   L_i - sum(L_{i,k}) <= T_i

i.e. choose the cheapest subset whose total is at least the node's
*excess* ``L_i - T_i``.  Two policies are provided:

* ``"exact"`` — optimal subset via meet-in-the-middle enumeration
  (exponential in half the VS count; nodes host only a handful of
  virtual servers, so this is cheap up to ~26 VSs, above which it
  falls back to greedy);
* ``"greedy"`` — best-fit-decreasing heuristic: repeatedly take the
  smallest single VS that covers the remaining excess, else the largest
  VS and recurse.

Both respect a ``keep_at_least`` floor (default 1): a node never sheds
its last virtual server, since that would eject it from the ring — a
constraint the paper leaves implicit.
"""

from __future__ import annotations

from bisect import bisect_left
from itertools import combinations

from repro.exceptions import BalancerError

#: Above this VS count the exact policy falls back to greedy.
EXACT_POLICY_LIMIT = 26


def select_shed_subset(
    loads: list[float],
    excess: float,
    policy: str = "exact",
    keep_at_least: int = 1,
) -> list[int]:
    """Indices (into ``loads``) of the virtual servers to shed.

    Returns the empty list when ``excess <= 0``.  When even shedding the
    maximum allowed set cannot cover the excess, the best-effort maximal
    shed (all but the ``keep_at_least`` smallest loads) is returned.
    """
    if policy not in ("exact", "greedy"):
        raise BalancerError(f"unknown selection policy {policy!r}")
    if keep_at_least < 0:
        raise BalancerError(f"keep_at_least must be >= 0, got {keep_at_least}")
    if any(l < 0 for l in loads):
        raise BalancerError("virtual server loads must be non-negative")
    n = len(loads)
    if excess <= 0 or n == 0:
        return []
    max_shed = n - keep_at_least
    if max_shed <= 0:
        return []

    order = sorted(range(n), key=lambda i: loads[i])
    sheddable_total = sum(loads[i] for i in order[-max_shed:]) if max_shed else 0.0
    if sheddable_total < excess:
        # Infeasible: shed the largest max_shed loads (maximal best effort).
        return sorted(order[-max_shed:])

    if policy == "exact" and n <= EXACT_POLICY_LIMIT:
        return _exact(loads, excess, max_shed)
    return _greedy(loads, excess, max_shed)


def _greedy(loads: list[float], excess: float, max_shed: int) -> list[int]:
    """Best-fit-decreasing: cover the remaining excess as tightly as possible."""
    remaining = excess
    available = sorted(range(len(loads)), key=lambda i: loads[i])
    chosen: list[int] = []
    while remaining > 0 and available and len(chosen) < max_shed:
        # Smallest VS that alone covers the remaining excess.
        keys = [loads[i] for i in available]
        pos = bisect_left(keys, remaining)
        if pos < len(available):
            chosen.append(available.pop(pos))
            return sorted(chosen)
        # None covers it: take the largest and continue.
        idx = available.pop()
        chosen.append(idx)
        remaining -= loads[idx]
    return sorted(chosen)


def _exact(loads: list[float], excess: float, max_shed: int) -> list[int]:
    """Optimal subset via meet-in-the-middle.

    Minimises (total shed, subset size) lexicographically among subsets
    with total >= excess and size <= max_shed.
    """
    n = len(loads)
    half = n // 2
    left = list(range(half))
    right = list(range(half, n))

    def enumerate_side(indices: list[int]) -> list[tuple[float, int, tuple[int, ...]]]:
        out = [(0.0, 0, ())]
        for r in range(1, len(indices) + 1):
            for combo in combinations(indices, r):
                out.append((sum(loads[i] for i in combo), r, combo))
        return out

    left_sets = enumerate_side(left)
    right_sets = enumerate_side(right)

    # Group right-side subsets by size; within each size group sort by sum
    # so "smallest sum >= need" is a binary search.
    by_size: dict[int, list[tuple[float, tuple[int, ...]]]] = {}
    for rsum, rsize, rcombo in right_sets:
        by_size.setdefault(rsize, []).append((rsum, rcombo))
    for group in by_size.values():
        group.sort(key=lambda t: t[0])
    sums_by_size = {s: [t[0] for t in g] for s, g in by_size.items()}

    best_total: tuple[float, int] | None = None
    best_combo: tuple[tuple[int, ...], tuple[int, ...]] | None = None
    for lsum, lsize, lcombo in left_sets:
        if lsize > max_shed:
            continue
        need = excess - lsum
        if need <= 0:
            cand_total = (lsum, lsize)
            if best_total is None or cand_total < best_total:
                best_total = cand_total
                best_combo = (lcombo, ())
            continue
        for rsize, sums in sums_by_size.items():
            if lsize + rsize > max_shed:
                continue
            pos = bisect_left(sums, need)
            if pos == len(sums):
                continue
            rsum, rcombo = by_size[rsize][pos]
            cand_total = (lsum + rsum, lsize + rsize)
            if best_total is None or cand_total < best_total:
                best_total = cand_total
                best_combo = (lcombo, rcombo)
    if best_combo is None:
        # No feasible subset within the size budget covers the excess;
        # fall back to greedy best effort.
        return _greedy(loads, excess, max_shed)
    return sorted(best_combo[0] + best_combo[1])
