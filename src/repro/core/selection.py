"""Shed-subset selection on heavy nodes (Section 3.4, first step).

A heavy node ``i`` must choose a subset of its virtual servers whose
removal makes it non-heavy, minimising the total load moved:

    minimise  sum(L_{i,k})   subject to   L_i - sum(L_{i,k}) <= T_i

i.e. choose the cheapest subset whose total is at least the node's
*excess* ``L_i - T_i``.  Two policies are provided:

* ``"exact"`` — optimal subset via meet-in-the-middle enumeration
  (exponential in half the VS count; nodes host only a handful of
  virtual servers, so this is cheap up to ~26 VSs, above which it
  falls back to greedy);
* ``"greedy"`` — best-fit-decreasing heuristic: repeatedly take the
  smallest single VS that covers the remaining excess, else the largest
  VS and recurse.

Both respect a ``keep_at_least`` floor (default 1): a node never sheds
its last virtual server, since that would eject it from the ring — a
constraint the paper leaves implicit.
"""

from __future__ import annotations

from bisect import bisect_left
from functools import lru_cache
from itertools import combinations

import numpy as np

from repro.exceptions import BalancerError

#: Above this VS count the exact policy falls back to greedy.
EXACT_POLICY_LIMIT = 26


def select_shed_subset(
    loads: list[float],
    excess: float,
    policy: str = "exact",
    keep_at_least: int = 1,
) -> list[int]:
    """Indices (into ``loads``) of the virtual servers to shed.

    Returns the empty list when ``excess <= 0``.  When even shedding the
    maximum allowed set cannot cover the excess, the best-effort maximal
    shed (all but the ``keep_at_least`` smallest loads) is returned.
    """
    if policy not in ("exact", "greedy"):
        raise BalancerError(f"unknown selection policy {policy!r}")
    if keep_at_least < 0:
        raise BalancerError(f"keep_at_least must be >= 0, got {keep_at_least}")
    if any(l < 0 for l in loads):
        raise BalancerError("virtual server loads must be non-negative")
    n = len(loads)
    if excess <= 0 or n == 0:
        return []
    max_shed = n - keep_at_least
    if max_shed <= 0:
        return []

    # Feasibility needs only the load *values*; the index order is
    # built lazily on the (rare) infeasible path.  Summing the sorted
    # values ascending reproduces the index-ordered sum bit for bit.
    sheddable_total = sum(sorted(loads)[-max_shed:])
    if sheddable_total < excess:
        # Infeasible: shed the largest max_shed loads (maximal best effort).
        order = sorted(range(n), key=loads.__getitem__)
        return sorted(order[-max_shed:])

    if policy == "exact" and n <= EXACT_POLICY_LIMIT:
        return _exact(loads, excess, max_shed)
    return _greedy(loads, excess, max_shed)


def _greedy(loads: list[float], excess: float, max_shed: int) -> list[int]:
    """Best-fit-decreasing: cover the remaining excess as tightly as possible."""
    remaining = excess
    available = sorted(range(len(loads)), key=lambda i: loads[i])
    chosen: list[int] = []
    while remaining > 0 and available and len(chosen) < max_shed:
        # Smallest VS that alone covers the remaining excess.
        keys = [loads[i] for i in available]
        pos = bisect_left(keys, remaining)
        if pos < len(available):
            chosen.append(available.pop(pos))
            return sorted(chosen)
        # None covers it: take the largest and continue.
        idx = available.pop()
        chosen.append(idx)
        remaining -= loads[idx]
    return sorted(chosen)


#: Side widths up to this use the cached-table fast path in ``_exact``;
#: wider sides (n > 2 * limit) take the tuple-enumeration path, whose
#: memory stays proportional to the combination count actually walked.
_TABLE_SIDE_LIMIT = 10


@lru_cache(maxsize=64)
def _side_table(side_len: int) -> tuple[tuple[int, int], ...]:
    """``(size, bitmask)`` per subset, in ``_exact`` enumeration order.

    Mirrors ``enumerate_side``: the empty set first, then sizes
    ascending with ``itertools.combinations`` lexicographic order
    within each size.  Depends only on the side width, so one table
    serves every call.
    """
    entries: list[tuple[int, int]] = [(0, 0)]
    for r in range(1, side_len + 1):
        for combo in combinations(range(side_len), r):
            mask = 0
            for i in combo:
                mask |= 1 << i
            entries.append((r, mask))
    return tuple(entries)


def _subset_sums(vals: list[float]) -> list[float]:
    """Sum per bitmask-subset of ``vals``, ascending-index fold order.

    ``sums[mask]`` strips the highest bit, so every total accumulates
    lowest index first — the same left fold (and therefore the same
    float rounding) as ``sum(vals[i] for i in combo)`` over an
    ascending combo.
    """
    sums = [0.0] * (1 << len(vals))
    for mask in range(1, len(sums)):
        high = 1 << (mask.bit_length() - 1)
        sums[mask] = sums[mask ^ high] + vals[high.bit_length() - 1]
    return sums


def _exact(loads: list[float], excess: float, max_shed: int) -> list[int]:
    """Optimal subset via meet-in-the-middle.

    Minimises (total shed, subset size) lexicographically among subsets
    with total >= excess and size <= max_shed.  Candidates are examined
    in a fixed enumeration order and only a strictly better
    ``(total, size)`` replaces the incumbent, so equal-sum ties resolve
    identically no matter which implementation path runs.
    """
    n = len(loads)
    half = n // 2
    if n - half <= _TABLE_SIDE_LIMIT:
        return _exact_tabled(loads, excess, max_shed)
    return _exact_vec(loads, excess, max_shed)


def _exact_tabled(loads: list[float], excess: float, max_shed: int) -> list[int]:
    """``_exact`` over cached per-side subset tables (small VS counts).

    Same enumeration order, same float folds, same tie-breaks as
    :func:`_exact_enum` — only the per-call tuple building is hoisted
    into :func:`_side_table` / :func:`_subset_sums`.
    """
    n = len(loads)
    half = n // 2
    left_table = _side_table(half)
    right_table = _side_table(n - half)
    lsums = _subset_sums(loads[:half])
    rsums = _subset_sums(loads[half:])

    # Size-grouped right subsets, stably sorted by sum so "smallest sum
    # >= need" is a binary search; stability keeps enumeration order
    # among equal sums, exactly like the list.sort in _exact_enum.
    by_size: dict[int, tuple[list[float], list[int]]] = {}
    for rsize, rmask in right_table:
        group = by_size.get(rsize)
        if group is None:
            group = ([], [])
            by_size[rsize] = group
        group[0].append(rsums[rmask])
        group[1].append(rmask)
    groups: list[tuple[int, list[float], list[int]]] = []
    for rsize, (vals, masks) in by_size.items():
        order = sorted(range(len(vals)), key=vals.__getitem__)
        groups.append(
            (rsize, [vals[j] for j in order], [masks[j] for j in order])
        )

    best_total: tuple[float, int] | None = None
    best_masks: tuple[int, int] | None = None
    for lsize, lmask in left_table:
        if lsize > max_shed:
            continue
        lsum = lsums[lmask]
        need = excess - lsum
        if need <= 0:
            cand_total = (lsum, lsize)
            if best_total is None or cand_total < best_total:
                best_total = cand_total
                best_masks = (lmask, 0)
            continue
        for rsize, sums, masks in groups:
            if lsize + rsize > max_shed:
                continue
            pos = bisect_left(sums, need)
            if pos == len(sums):
                continue
            cand_total = (lsum + sums[pos], lsize + rsize)
            if best_total is None or cand_total < best_total:
                best_total = cand_total
                best_masks = (lmask, masks[pos])
    if best_masks is None:
        # No feasible subset within the size budget covers the excess;
        # fall back to greedy best effort.
        return _greedy(loads, excess, max_shed)
    lmask, rmask = best_masks
    chosen = [i for i in range(half) if lmask >> i & 1]
    chosen.extend(half + i for i in range(n - half) if rmask >> i & 1)
    return chosen  # ascending bit order == sorted


@lru_cache(maxsize=64)
def _side_arrays(side_len: int) -> tuple[np.ndarray, np.ndarray]:
    """:func:`_side_table` as parallel ``(sizes, masks)`` int64 arrays."""
    table = _side_table(side_len)
    sizes = np.fromiter((s for s, _ in table), dtype=np.int64, count=len(table))
    masks = np.fromiter((m for _, m in table), dtype=np.int64, count=len(table))
    return sizes, masks


def _subset_sums_np(vals: list[float]) -> np.ndarray:
    """:func:`_subset_sums` as one float64 array, bit for bit.

    The level-``b`` slice assignment adds ``vals[b]`` to every sum whose
    mask gains bit ``b`` as its new highest bit — the same operand pairs
    as the scalar DP, and NumPy's elementwise float64 add rounds
    identically to Python's ``+``.
    """
    sums = np.zeros(1 << len(vals), dtype=np.float64)
    for b, v in enumerate(vals):
        sums[1 << b : 2 << b] = sums[: 1 << b] + v
    return sums


def _exact_vec(loads: list[float], excess: float, max_shed: int) -> list[int]:
    """``_exact`` with a vectorized candidate scan (wide VS counts).

    Row-major over a candidate matrix — rows are left subsets in
    enumeration order, columns are right-size groups ascending — is
    exactly the scan order of :func:`_exact_enum`, where only a strictly
    better ``(total, size)`` replaces the incumbent.  The matrix also
    fills the group cells of ``need <= 0`` rows (the serial scan skips
    them), which is safe: each such cell is dominated by the same row's
    empty-right cell (``total >= lsum`` with a strictly larger size on
    equality), so it can never become the row-major argmin.
    """
    n = len(loads)
    half = n // 2
    lsizes, lmasks = _side_arrays(half)
    rsizes_all, rmasks_all = _side_arrays(n - half)
    lsums = _subset_sums_np(loads[:half])[lmasks]
    rsums_all = _subset_sums_np(loads[half:])[rmasks_all]
    need = excess - lsums
    row_ok = lsizes <= max_shed

    # Per right-size group: sums stably sorted (ties keep enumeration
    # order, like the list.sort in _exact_enum) with their masks.
    group_sums: list[np.ndarray] = []
    group_masks: list[np.ndarray] = []
    for rsize in range(n - half + 1):
        sel = np.flatnonzero(rsizes_all == rsize)
        order = np.argsort(rsums_all[sel], kind="stable")
        group_sums.append(rsums_all[sel][order])
        group_masks.append(rmasks_all[sel][order])

    num_rows = lmasks.shape[0]
    num_groups = len(group_sums)
    totals = np.empty((num_rows, num_groups), dtype=np.float64)
    sizes = np.empty((num_rows, num_groups), dtype=np.int64)
    valid = np.zeros((num_rows, num_groups), dtype=bool)
    pos_by_group: list[np.ndarray] = []
    for g, gsums in enumerate(group_sums):
        pos = np.searchsorted(gsums, need, side="left")
        pos_by_group.append(pos)
        ok = row_ok & (lsizes + g <= max_shed) & (pos < gsums.shape[0])
        idx = np.flatnonzero(ok)
        totals[idx, g] = lsums[idx] + gsums[pos[idx]]
        sizes[idx, g] = lsizes[idx] + g
        valid[idx, g] = True

    cand = np.flatnonzero(valid.ravel())
    if cand.size == 0:
        # No feasible subset within the size budget covers the excess;
        # fall back to greedy best effort.
        return _greedy(loads, excess, max_shed)
    ctotals = totals.ravel()[cand]
    cand = cand[ctotals == ctotals.min()]
    csizes = sizes.ravel()[cand]
    winner = int(cand[csizes == csizes.min()][0])
    row, g = divmod(winner, num_groups)
    lmask = int(lmasks[row])
    rmask = int(group_masks[g][pos_by_group[g][row]])
    chosen = [i for i in range(half) if lmask >> i & 1]
    chosen.extend(half + i for i in range(n - half) if rmask >> i & 1)
    return chosen  # ascending bit order == sorted


def _exact_enum(loads: list[float], excess: float, max_shed: int) -> list[int]:
    """``_exact`` by direct tuple enumeration — the reference scan.

    No longer on the dispatch path (``_exact_tabled`` covers narrow
    sides, :func:`_exact_vec` wide ones) but kept as the executable
    specification both vectorized paths are property-tested against.
    """
    n = len(loads)
    half = n // 2
    left = list(range(half))
    right = list(range(half, n))

    def enumerate_side(indices: list[int]) -> list[tuple[float, int, tuple[int, ...]]]:
        out = [(0.0, 0, ())]
        for r in range(1, len(indices) + 1):
            for combo in combinations(indices, r):
                out.append((sum(loads[i] for i in combo), r, combo))
        return out

    left_sets = enumerate_side(left)
    right_sets = enumerate_side(right)

    # Group right-side subsets by size; within each size group sort by sum
    # so "smallest sum >= need" is a binary search.
    by_size: dict[int, list[tuple[float, tuple[int, ...]]]] = {}
    for rsum, rsize, rcombo in right_sets:
        by_size.setdefault(rsize, []).append((rsum, rcombo))
    for group in by_size.values():
        group.sort(key=lambda t: t[0])
    sums_by_size = {s: [t[0] for t in g] for s, g in by_size.items()}

    best_total: tuple[float, int] | None = None
    best_combo: tuple[tuple[int, ...], tuple[int, ...]] | None = None
    for lsum, lsize, lcombo in left_sets:
        if lsize > max_shed:
            continue
        need = excess - lsum
        if need <= 0:
            cand_total = (lsum, lsize)
            if best_total is None or cand_total < best_total:
                best_total = cand_total
                best_combo = (lcombo, ())
            continue
        for rsize, sums in sums_by_size.items():
            if lsize + rsize > max_shed:
                continue
            pos = bisect_left(sums, need)
            if pos == len(sums):
                continue
            rsum, rcombo = by_size[rsize][pos]
            cand_total = (lsum + rsum, lsize + rsize)
            if best_total is None or cand_total < best_total:
                best_total = cand_total
                best_combo = (lcombo, rcombo)
    if best_combo is None:
        # No feasible subset within the size budget covers the excess;
        # fall back to greedy best effort.
        return _greedy(loads, excess, max_shed)
    return sorted(best_combo[0] + best_combo[1])
