"""The result object produced by one load-balancing round.

Also home of :func:`check_conservation`, the round-level runtime guard
for the protocol's load-conservation invariant: a round may *move* load
between nodes but never create or destroy it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.classification import ClassificationResult
from repro.core.config import BalancerConfig
from repro.core.lbi import AggregationTrace
from repro.core.records import (
    CONSERVATION_RTOL,
    Assignment,
    SystemLBI,
    assert_loads_conserved,
)
from repro.core.vsa import VSAResult
from repro.core.vst import TransferRecord
from repro.faults.stats import FaultRoundStats
from repro.obs.profile import RoundProfile
from repro.util.stats import summary, weighted_fraction_within


@dataclass
class BalanceReport:
    """Everything measured during one load-balancing round.

    The per-figure analysis code consumes this object: figures 4-6 read
    the before/after load arrays, figures 7-8 read the transfer records.
    """

    config: BalancerConfig
    system_lbi: SystemLBI
    num_nodes: int
    num_virtual_servers: int
    node_indices: np.ndarray
    capacities: np.ndarray
    loads_before: np.ndarray
    loads_after: np.ndarray
    classification_before: ClassificationResult
    classification_after: ClassificationResult
    aggregation: AggregationTrace
    vsa: VSAResult
    transfers: list[TransferRecord] = field(default_factory=list)
    skipped_assignments: list[Assignment] = field(default_factory=list)
    #: Assignments whose transfer aborted mid-flight and was rolled back
    #: (injected ``transfer_abort`` faults or a ``DHTError`` mid-commit).
    #: Unlike skipped assignments these *started* executing; the rollback
    #: restored the pre-transfer hosting, so conservation still holds.
    failed_assignments: list[Assignment] = field(default_factory=list)
    #: Fault/recovery accounting for the round; all zeros when no fault
    #: plan was attached (natural-churn rollbacks still count here).
    fault_stats: FaultRoundStats = field(default_factory=FaultRoundStats)
    tree_height: int = 0
    tree_nodes_materialized: int = 0
    #: Wall-clock seconds per phase ("lbi", "classification", "vsa", "vst") —
    #: simulator execution time, not the protocol's simulated time.
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Per-phase cost profile (seconds, messages, phase detail); populated
    #: by the balancer for every round, tracing enabled or not.
    profile: RoundProfile | None = None

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def unit_loads_before(self) -> np.ndarray:
        """Load per capacity before balancing (figure 4(a) y-axis)."""
        return self.loads_before / self.capacities

    @property
    def unit_loads_after(self) -> np.ndarray:
        """Load per capacity after balancing (figure 4(b) y-axis)."""
        return self.loads_after / self.capacities

    @property
    def moved_load(self) -> float:
        """Total load moved by executed transfers."""
        return sum(t.load for t in self.transfers)

    @property
    def transfer_distances(self) -> np.ndarray:
        """Distances of transfers that have one (topology attached)."""
        return np.asarray(
            [t.distance for t in self.transfers if t.has_distance], dtype=np.float64
        )

    @property
    def transfer_loads_with_distance(self) -> np.ndarray:
        return np.asarray(
            [t.load for t in self.transfers if t.has_distance], dtype=np.float64
        )

    def moved_load_within(self, hops: float) -> float:
        """Fraction of total moved load transferred within ``hops`` units.

        The paper's headline metric: proximity-aware moves ~67% within 2
        hops on ts5k-large, proximity-ignorant ~13% within 10.
        """
        d = self.transfer_distances
        if d.size == 0:
            return 0.0
        return weighted_fraction_within(d, self.transfer_loads_with_distance, hops)

    @property
    def heavy_before(self) -> int:
        return len(self.classification_before.heavy)

    @property
    def heavy_after(self) -> int:
        return len(self.classification_after.heavy)

    @property
    def heavy_fraction_before(self) -> float:
        return self.heavy_before / self.num_nodes

    # ------------------------------------------------------------------
    def summary_text(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            f"nodes={self.num_nodes} vs={self.num_virtual_servers} "
            f"mode={self.config.proximity_mode} K={self.config.tree_degree}",
            f"L={self.system_lbi.total_load:.4g} C={self.system_lbi.total_capacity:.4g} "
            f"L/C={self.system_lbi.load_per_capacity:.4g} L_min={self.system_lbi.min_vs_load:.4g}",
            f"heavy: {self.heavy_before} -> {self.heavy_after} "
            f"(before {100 * self.heavy_fraction_before:.1f}%)",
            f"transfers={len(self.transfers)} moved_load={self.moved_load:.4g} "
            f"unassigned_heavy={len(self.vsa.unassigned_heavy)}",
            f"rounds: aggregation={self.aggregation.total_rounds} vsa={self.vsa.rounds} "
            f"tree_height={self.tree_height}",
        ]
        d = self.transfer_distances
        if d.size:
            s = summary(d)
            lines.append(
                f"transfer distance: mean={s.mean:.2f} median={s.median:.2f} "
                f"p95={s.p95:.2f} max={s.maximum:.0f}; "
                f"moved within 2 hops: {100 * self.moved_load_within(2):.1f}%, "
                f"within 10: {100 * self.moved_load_within(10):.1f}%"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly digest (scalars only; arrays summarised)."""
        return {
            "mode": self.config.proximity_mode,
            "tree_degree": self.config.tree_degree,
            "num_nodes": self.num_nodes,
            "num_virtual_servers": self.num_virtual_servers,
            "heavy_before": self.heavy_before,
            "heavy_after": self.heavy_after,
            "transfers": len(self.transfers),
            "failed_transfers": len(self.failed_assignments),
            "moved_load": self.moved_load,
            "unassigned_heavy": len(self.vsa.unassigned_heavy),
            "aggregation_rounds": self.aggregation.total_rounds,
            "vsa_rounds": self.vsa.rounds,
            "tree_height": self.tree_height,
            "moved_within_2": self.moved_load_within(2),
            "moved_within_10": self.moved_load_within(10),
            "phases": self.profile.to_dict() if self.profile is not None else None,
            "faults": self.fault_stats.to_dict(),
        }


def check_conservation(
    report: BalanceReport, *, rtol: float = CONSERVATION_RTOL
) -> None:
    """Verify the round described by ``report`` conserved total load.

    Sums the before/after load vectors in index order (both arrays are
    snapshots over the same alive-node list, so the orders match) and
    raises :class:`~repro.exceptions.ConservationError` if the totals
    drifted beyond ``rtol``.  Called by
    :meth:`repro.app.system.P2PSystem.rebalance` after every round; call
    it directly when driving :class:`~repro.core.balancer.LoadBalancer`
    by hand.
    """
    before = float(np.sum(report.loads_before))
    after = float(np.sum(report.loads_after))
    assert_loads_conserved(before, after, context="balance round", rtol=rtol)
