"""The result object produced by one load-balancing round.

Also home of :func:`check_conservation`, the round-level runtime guard
for the protocol's load-conservation invariant: a round may *move* load
between nodes but never create or destroy it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.adversary.stats import AdversaryRoundStats
from repro.core.classification import ClassificationResult
from repro.core.config import BalancerConfig
from repro.core.lbi import AggregationTrace
from repro.core.records import (
    CONSERVATION_RTOL,
    Assignment,
    SystemLBI,
    assert_loads_conserved,
)
from repro.core.vsa import VSAResult
from repro.core.vst import TransferRecord
from repro.faults.stats import FaultRoundStats
from repro.obs.profile import RoundProfile
from repro.util.stats import summary, weighted_fraction_within


@dataclass
class BalanceReport:
    """Everything measured during one load-balancing round.

    The per-figure analysis code consumes this object: figures 4-6 read
    the before/after load arrays, figures 7-8 read the transfer records.
    """

    config: BalancerConfig
    system_lbi: SystemLBI
    num_nodes: int
    num_virtual_servers: int
    node_indices: np.ndarray
    capacities: np.ndarray
    loads_before: np.ndarray
    loads_after: np.ndarray
    classification_before: ClassificationResult
    classification_after: ClassificationResult
    aggregation: AggregationTrace
    vsa: VSAResult
    transfers: list[TransferRecord] = field(default_factory=list)
    skipped_assignments: list[Assignment] = field(default_factory=list)
    #: Assignments whose transfer aborted mid-flight and was rolled back
    #: (injected ``transfer_abort`` faults or a ``DHTError`` mid-commit).
    #: Unlike skipped assignments these *started* executing; the rollback
    #: restored the pre-transfer hosting, so conservation still holds.
    failed_assignments: list[Assignment] = field(default_factory=list)
    #: Fault/recovery accounting for the round; all zeros when no fault
    #: plan was attached (natural-churn rollbacks still count here).
    fault_stats: FaultRoundStats = field(default_factory=FaultRoundStats)
    #: Byzantine-adversary accounting for the round; all defaults when
    #: no adversary plan was attached (or the plan is still dormant).
    adversary_stats: AdversaryRoundStats = field(
        default_factory=AdversaryRoundStats
    )
    tree_height: int = 0
    tree_nodes_materialized: int = 0
    #: Load held by transfers already in flight (suspended by a
    #: mid-round partition cut) when the round's before/after snapshots
    #: were taken; :func:`check_conservation` balances the books with
    #: these so a round that parks or re-homes in-flight load still
    #: verifies.  Both are 0.0 outside partition windows.
    in_flight_before: float = 0.0
    in_flight_after: float = 0.0
    #: Wall-clock seconds per phase ("lbi", "classification", "vsa", "vst") —
    #: simulator execution time, not the protocol's simulated time.
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Per-phase cost profile (seconds, messages, phase detail); populated
    #: by the balancer for every round, tracing enabled or not.
    profile: RoundProfile | None = None

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def unit_loads_before(self) -> np.ndarray:
        """Load per capacity before balancing (figure 4(a) y-axis)."""
        return self.loads_before / self.capacities

    @property
    def unit_loads_after(self) -> np.ndarray:
        """Load per capacity after balancing (figure 4(b) y-axis)."""
        return self.loads_after / self.capacities

    @property
    def moved_load(self) -> float:
        """Total load moved by executed transfers."""
        return sum(t.load for t in self.transfers)

    @property
    def transfer_distances(self) -> np.ndarray:
        """Distances of transfers that have one (topology attached)."""
        return np.asarray(
            [t.distance for t in self.transfers if t.has_distance], dtype=np.float64
        )

    @property
    def transfer_loads_with_distance(self) -> np.ndarray:
        return np.asarray(
            [t.load for t in self.transfers if t.has_distance], dtype=np.float64
        )

    def moved_load_within(self, hops: float) -> float:
        """Fraction of total moved load transferred within ``hops`` units.

        The paper's headline metric: proximity-aware moves ~67% within 2
        hops on ts5k-large, proximity-ignorant ~13% within 10.
        """
        d = self.transfer_distances
        if d.size == 0:
            return 0.0
        return weighted_fraction_within(d, self.transfer_loads_with_distance, hops)

    @property
    def heavy_before(self) -> int:
        return len(self.classification_before.heavy)

    @property
    def heavy_after(self) -> int:
        return len(self.classification_after.heavy)

    @property
    def heavy_fraction_before(self) -> float:
        return self.heavy_before / self.num_nodes

    # ------------------------------------------------------------------
    def summary_text(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            f"nodes={self.num_nodes} vs={self.num_virtual_servers} "
            f"mode={self.config.proximity_mode} K={self.config.tree_degree}",
            f"L={self.system_lbi.total_load:.4g} C={self.system_lbi.total_capacity:.4g} "
            f"L/C={self.system_lbi.load_per_capacity:.4g} L_min={self.system_lbi.min_vs_load:.4g}",
            f"heavy: {self.heavy_before} -> {self.heavy_after} "
            f"(before {100 * self.heavy_fraction_before:.1f}%)",
            f"transfers={len(self.transfers)} moved_load={self.moved_load:.4g} "
            f"unassigned_heavy={len(self.vsa.unassigned_heavy)}",
            f"rounds: aggregation={self.aggregation.total_rounds} vsa={self.vsa.rounds} "
            f"tree_height={self.tree_height}",
        ]
        d = self.transfer_distances
        if d.size:
            s = summary(d)
            lines.append(
                f"transfer distance: mean={s.mean:.2f} median={s.median:.2f} "
                f"p95={s.p95:.2f} max={s.maximum:.0f}; "
                f"moved within 2 hops: {100 * self.moved_load_within(2):.1f}%, "
                f"within 10: {100 * self.moved_load_within(10):.1f}%"
            )
        return "\n".join(lines)

    def canonical_digest(self) -> str:
        """SHA-256 over every *protocol* output of the round.

        The digest covers the full round outcome bit-for-bit — config,
        aggregate, load arrays, classifications, every assignment,
        transfer and fault statistic — but deliberately excludes the
        wall-clock measurements (``phase_seconds`` and ``profile``),
        which vary run to run without the protocol behaving differently.
        Two rounds are byte-identical iff their digests match; the
        parallel subsystem's determinism contract (serial == sharded ==
        multi-worker) is asserted in exactly these terms.
        """

        def floats(values: Any) -> list[str]:
            # float.hex() is exact: two floats share a hex form iff they
            # are the same double, so digests can never collide or split
            # on formatting.
            return [float(v).hex() for v in values]

        def assignment(a: Assignment) -> list[Any]:
            return [
                float(a.candidate.load).hex(),
                a.candidate.vs_id,
                a.candidate.node_index,
                a.target_node,
                a.level,
            ]

        def classification(c: ClassificationResult) -> dict[str, Any]:
            return {
                "classes": {
                    str(i): cls.value for i, cls in sorted(c.classes.items())
                },
                "targets": {
                    str(i): float(t).hex() for i, t in sorted(c.targets.items())
                },
            }

        payload: dict[str, Any] = {
            "config": {
                k: (v.hex() if isinstance(v, float) else v)
                for k, v in sorted(asdict(self.config).items())
            },
            "system_lbi": floats(
                (
                    self.system_lbi.total_load,
                    self.system_lbi.total_capacity,
                    self.system_lbi.min_vs_load,
                )
            ),
            "num_nodes": self.num_nodes,
            "num_virtual_servers": self.num_virtual_servers,
            "node_indices": hashlib.sha256(
                np.ascontiguousarray(self.node_indices).tobytes()
            ).hexdigest(),
            "capacities": hashlib.sha256(
                np.ascontiguousarray(self.capacities).tobytes()
            ).hexdigest(),
            "loads_before": hashlib.sha256(
                np.ascontiguousarray(self.loads_before).tobytes()
            ).hexdigest(),
            "loads_after": hashlib.sha256(
                np.ascontiguousarray(self.loads_after).tobytes()
            ).hexdigest(),
            "classification_before": classification(self.classification_before),
            "classification_after": classification(self.classification_after),
            "aggregation": [
                self.aggregation.tree_height,
                self.aggregation.upward_rounds,
                self.aggregation.downward_rounds,
                self.aggregation.upward_messages,
                self.aggregation.downward_messages,
                self.aggregation.reports,
            ],
            "vsa": {
                "assignments": [assignment(a) for a in self.vsa.assignments],
                "unassigned_heavy": [
                    [float(c.load).hex(), c.vs_id, c.node_index]
                    for c in self.vsa.unassigned_heavy
                ],
                "unassigned_light": [
                    [float(s.delta).hex(), s.node_index]
                    for s in self.vsa.unassigned_light
                ],
                "rounds": self.vsa.rounds,
                "upward_messages": self.vsa.upward_messages,
                "entries_published": self.vsa.entries_published,
                "entries_lost": self.vsa.entries_lost,
                "pairings_by_level": sorted(self.vsa.pairings_by_level.items()),
            },
            "transfers": [
                [
                    t.vs_id,
                    float(t.load).hex(),
                    t.source_node,
                    t.target_node,
                    float(t.distance).hex(),
                    t.level,
                ]
                for t in self.transfers
            ],
            "skipped_assignments": [
                assignment(a) for a in self.skipped_assignments
            ],
            "failed_assignments": [assignment(a) for a in self.failed_assignments],
            "fault_stats": {
                k: (v.hex() if isinstance(v, float) else v)
                for k, v in sorted(self.fault_stats.to_dict().items())
            },
            # Only the adversary's *protocol outcomes* are pinned; the
            # observational counters (audits sampled, envelope notes)
            # are excluded so an armed-but-dormant defense digests
            # identically to a run with no adversary plan at all.
            "adversary_stats": {
                k: (v.hex() if isinstance(v, float) else v)
                for k, v in sorted(self.adversary_stats.digest_fields().items())
            },
            "tree_height": self.tree_height,
            "tree_nodes_materialized": self.tree_nodes_materialized,
            "in_flight_before": float(self.in_flight_before).hex(),
            "in_flight_after": float(self.in_flight_after).hex(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly digest (scalars only; arrays summarised)."""
        return {
            "mode": self.config.proximity_mode,
            "tree_degree": self.config.tree_degree,
            "num_nodes": self.num_nodes,
            "num_virtual_servers": self.num_virtual_servers,
            "heavy_before": self.heavy_before,
            "heavy_after": self.heavy_after,
            "transfers": len(self.transfers),
            "failed_transfers": len(self.failed_assignments),
            "moved_load": self.moved_load,
            "unassigned_heavy": len(self.vsa.unassigned_heavy),
            "aggregation_rounds": self.aggregation.total_rounds,
            "vsa_rounds": self.vsa.rounds,
            "tree_height": self.tree_height,
            "moved_within_2": self.moved_load_within(2),
            "moved_within_10": self.moved_load_within(10),
            "phases": self.profile.to_dict() if self.profile is not None else None,
            "faults": self.fault_stats.to_dict(),
            "adversary": self.adversary_stats.to_dict(),
        }


def check_conservation(
    report: BalanceReport, *, rtol: float = CONSERVATION_RTOL
) -> None:
    """Verify the round described by ``report`` conserved total load.

    Sums the before/after load vectors in index order (both arrays are
    snapshots over the same alive-node list, so the orders match) and
    raises :class:`~repro.exceptions.ConservationError` if the totals
    drifted beyond ``rtol``.  Load parked in flight by a mid-round
    partition cut is accounted on both sides
    (``in_flight_before``/``in_flight_after``), so a round that
    suspends or re-homes transfers still balances.  Called by
    :meth:`repro.app.system.P2PSystem.rebalance` after every round; call
    it directly when driving :class:`~repro.core.balancer.LoadBalancer`
    by hand.
    """
    before = float(np.sum(report.loads_before)) + report.in_flight_before
    after = float(np.sum(report.loads_after)) + report.in_flight_after
    assert_loads_conserved(before, after, context="balance round", rtol=rtol)
