"""Phase 1: LBI aggregation and dissemination over the K-nary tree.

Every DHT node chooses one of its virtual servers (uniformly at random —
the paper's rule for avoiding redundant reports) and reports
``<L_i, C_i, L_{i,min}>`` through the KT leaf hosted by that virtual
server.  KT nodes merge the reports of their children bottom-up; the
root's aggregate ``<L, C, L_min>`` is then disseminated top-down.

Both sweeps take one round per tree level, which is how the paper's
``O(log_K N)`` bound is accounted; the trace records rounds and message
counts so experiments can verify the bound empirically.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.records import LBIRecord, SystemLBI
from repro.dht.chord import ChordRing
from repro.dht.node import PhysicalNode
from repro.exceptions import BalancerError
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryBudget, RetryPolicy, deliver_with_retry
from repro.faults.stats import FaultRoundStats
from repro.idspace.hashing import hash_to_id
from repro.ktree.node import KTNode
from repro.ktree.tree import KnaryTree
from repro.obs.trace import Tracer
from repro.util.rng import ensure_rng


@dataclass
class AggregationTrace:
    """Cost accounting for one aggregation + dissemination cycle."""

    tree_height: int = 0
    upward_rounds: int = 0
    downward_rounds: int = 0
    upward_messages: int = 0
    downward_messages: int = 0
    reports: int = 0

    @property
    def total_rounds(self) -> int:
        return self.upward_rounds + self.downward_rounds

    @property
    def total_messages(self) -> int:
        return self.upward_messages + self.downward_messages


def collect_lbi_reports(
    ring: ChordRing,
    tree: KnaryTree,
    rng: int | None | np.random.Generator = None,
    tracer: Tracer | None = None,
    faults: FaultInjector | None = None,
    retry: RetryPolicy | None = None,
    fault_stats: FaultRoundStats | None = None,
) -> dict[int, tuple[KTNode, list[LBIRecord]]]:
    """Leaf-indexed LBI reports for every alive node of ``ring``.

    Each node reports through the KT leaf of one uniformly chosen hosted
    virtual server.  Keys of the returned mapping are ``id(leaf)`` (KT
    nodes are unhashable by content on purpose); values carry the leaf
    itself plus its reports.

    With a ``faults`` injector attached, each report is one *message*:
    it may be delayed, duplicated (the duplicate is suppressed at the
    leaf by the reporter's sequence number and only costs a message) or
    dropped — dropped reports are resent under ``retry`` (bounded
    attempts, seeded backoff, phase timeout budget) and count as lost
    once the bounds bite, leaving the aggregate approximate rather than
    the phase failed.  Recovery accounting lands in ``fault_stats``.

    With an enabled ``tracer``, one ``lbi.collect`` event summarises the
    collection (reports filed, distinct leaves, nodes with no virtual
    servers reporting through their notional position, reports lost).
    """
    gen = ensure_rng(rng)
    policy = retry if retry is not None else RetryPolicy()
    budget = RetryBudget(policy.phase_budget)
    by_leaf: dict[int, tuple[KTNode, list[LBIRecord]]] = {}
    reports = 0
    vsless = 0
    lost = 0
    for node in ring.alive_nodes:
        if node.virtual_servers:
            reporter = node.virtual_servers[int(gen.integers(len(node.virtual_servers)))]
            # Report through the leaf at the *center* of the reporter's
            # region: any leaf hosted by the reporter works (the paper only
            # requires "one of its KT leaf nodes"), and the center leaf has
            # depth O(log #VS) whereas the leaf hugging the region's
            # boundary identifier can be as deep as the full bit width.
            key = ring.region_of(reporter).center
            min_vs = node.min_vs_load
        else:
            # A node that shed all its virtual servers still has capacity
            # the system should count; it reports through its notional ring
            # position and contributes no minimum-VS-load.
            key = hash_to_id(f"node-{node.index}", ring.space)
            min_vs = math.inf
            vsless += 1
        if faults is not None:
            subject = f"report:{node.index}"
            outcome = deliver_with_retry(
                policy,
                lambda attempt: faults.drop("lbi", f"{subject}#{attempt}"),
                gen,
                budget,
                extra_delay=faults.delay("lbi", subject),
            )
            if fault_stats is not None:
                fault_stats.lbi_retries += outcome.attempts - 1
                fault_stats.lbi_delay += outcome.simulated_delay
            if not outcome.delivered:
                lost += 1
                if fault_stats is not None:
                    fault_stats.lbi_reports_lost += 1
                continue
            if faults.duplicate("lbi", subject) and fault_stats is not None:
                # The duplicate arrives at the same leaf carrying the same
                # reporter sequence number; the leaf suppresses it, so it
                # costs a message but never double-counts the load.
                fault_stats.lbi_duplicates += 1
        leaf = tree.ensure_leaf_for_key(key)
        record = LBIRecord(load=node.load, capacity=node.capacity, min_vs_load=min_vs)
        by_leaf.setdefault(id(leaf), (leaf, []))[1].append(record)
        reports += 1
    if tracer is not None and tracer.enabled:
        tracer.event(
            "lbi.collect",
            reports=reports,
            leaves=len(by_leaf),
            vsless_nodes=vsless,
            reports_lost=lost,
        )
    return by_leaf


def aggregate_lbi(
    tree: KnaryTree,
    reports_by_leaf: dict[int, tuple[KTNode, list[LBIRecord]]],
    tracer: Tracer | None = None,
) -> tuple[SystemLBI, AggregationTrace]:
    """Run the bottom-up aggregation sweep and the top-down dissemination.

    Returns the root aggregate and the cost trace.  Raises
    :class:`BalancerError` when no reports were supplied (an empty system
    has no meaningful ``<L, C, L_min>``).

    With an enabled ``tracer``, one ``lbi.level`` event is emitted per
    tree level of the upward sweep (child-to-parent messages entering
    that level) plus one ``lbi.aggregate`` summary whose counts equal
    the returned :class:`AggregationTrace` exactly.
    """
    trace = AggregationTrace()
    if not reports_by_leaf:
        raise BalancerError("no LBI reports to aggregate")
    tracing = tracer is not None and tracer.enabled
    messages_at_level: Counter[int] | None = Counter() if tracing else None

    # Bottom-up merge over the materialised tree.
    partial: dict[int, LBIRecord] = {}
    nodes = tree.nodes_by_level_desc()
    trace.tree_height = nodes[0].level if nodes else 0
    for node in nodes:
        acc: LBIRecord | None = None
        if id(node) in reports_by_leaf:
            leaf, records = reports_by_leaf[id(node)]
            assert leaf is node
            trace.reports += len(records)
            for rec in records:
                acc = rec if acc is None else acc.merge(rec)
        for child in node.materialized_children():
            child_val = partial.pop(id(child), None)
            if child_val is not None:
                acc = child_val if acc is None else acc.merge(child_val)
                trace.upward_messages += 1
                if messages_at_level is not None:
                    messages_at_level[node.level] += 1
        if acc is not None:
            partial[id(node)] = acc

    root_val = partial.get(id(tree.root))
    if root_val is None:
        raise BalancerError("aggregation produced no value at the root")
    system = SystemLBI.from_record(root_val)

    # Round accounting: one round per level for each sweep; dissemination
    # fans the aggregate back down the same paths (same message count).
    trace.upward_rounds = trace.tree_height
    trace.downward_rounds = trace.tree_height
    trace.downward_messages = trace.upward_messages

    if tracing:
        assert tracer is not None and messages_at_level is not None
        for level in sorted(messages_at_level, reverse=True):
            tracer.event(
                "lbi.level", level=level, messages_up=messages_at_level[level]
            )
        tracer.event(
            "lbi.aggregate",
            reports=trace.reports,
            messages_up=trace.upward_messages,
            messages_down=trace.downward_messages,
            rounds=trace.total_rounds,
            tree_height=trace.tree_height,
            total_load=system.total_load,
            total_capacity=system.total_capacity,
            min_vs_load=system.min_vs_load,
        )
    return system, trace


def direct_system_lbi(nodes: list[PhysicalNode]) -> SystemLBI:
    """Ground-truth ``<L, C, L_min>`` computed centrally (for testing).

    The tree-based aggregation must produce exactly this value; tests
    compare both paths.
    """
    alive = [n for n in nodes if n.alive]
    with_vs = [n for n in alive if n.virtual_servers]
    if not with_vs:
        raise BalancerError("no alive nodes with virtual servers")
    return SystemLBI(
        total_load=sum(n.load for n in alive),
        total_capacity=sum(n.capacity for n in alive),
        min_vs_load=min(n.min_vs_load for n in with_vs),
    )
