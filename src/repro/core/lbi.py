"""Phase 1: LBI aggregation and dissemination over the K-nary tree.

Every DHT node chooses one of its virtual servers (uniformly at random —
the paper's rule for avoiding redundant reports) and reports
``<L_i, C_i, L_{i,min}>`` through the KT leaf hosted by that virtual
server.  KT nodes merge the reports of their children bottom-up; the
root's aggregate ``<L, C, L_min>`` is then disseminated top-down.

Both sweeps take one round per tree level, which is how the paper's
``O(log_K N)`` bound is accounted; the trace records rounds and message
counts so experiments can verify the bound empirically.

The aggregate sanity defense (:class:`AggregateSanity`) guards the
aggregation against misreporting nodes, in the spirit of Roussopoulos &
Baker's argument that practical balancers must reject stale or
implausible state: every report carries the membership epoch it was
produced under, and a report that is cross-epoch, stale beyond
``lbi_staleness_rounds``, or fails plausibility bounds (non-negative
``L``, positive ``C``, ``L_min <= L``, per-node load delta bounded by
advertised capacity) quarantines the reporting node — the defense falls
back to the node's last-good report when one is fresh enough, and drops
the report entirely otherwise.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.records import LBIRecord, SystemLBI
from repro.dht.ringlike import RingLike
from repro.dht.node import PhysicalNode
from repro.exceptions import BalancerError
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryBudget, RetryPolicy, deliver_with_retry
from repro.faults.stats import FaultRoundStats
from repro.idspace.hashing import hash_to_id
from repro.ktree.node import KTNode
from repro.ktree.tree import KnaryTree
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.util.rng import ensure_rng

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import
    # cycle: repro.adversary.trust subclasses AggregateSanity from here)
    from repro.adversary.engine import AdversaryEngine
    from repro.adversary.stats import AdversaryRoundStats


@dataclass
class AggregationTrace:
    """Cost accounting for one aggregation + dissemination cycle."""

    tree_height: int = 0
    upward_rounds: int = 0
    downward_rounds: int = 0
    upward_messages: int = 0
    downward_messages: int = 0
    reports: int = 0

    @property
    def total_rounds(self) -> int:
        return self.upward_rounds + self.downward_rounds

    @property
    def total_messages(self) -> int:
        return self.upward_messages + self.downward_messages


def _apply_corruption(
    mode: int,
    load: float,
    capacity: float,
    min_vs: float,
    epoch: int,
    staleness: int,
) -> tuple[float, float, float, int]:
    """Turn one honest ``<L, C, L_min>`` report into a seeded-mode lie.

    The modes mirror the failure classes :class:`AggregateSanity`
    defends against: 0 = negative load, 1 = implausibly inflated load
    (caught by the delta bound once a last-good report exists),
    2 = zero capacity, 3 = ``L_min > L``, 4 = stale epoch tag.
    """
    if mode == 0:
        return (-abs(load) - 1.0, capacity, min_vs, epoch)
    if mode == 1:
        inflated = load + 2.0 * AggregateSanity.DELTA_FACTOR * (capacity + load) + 1.0
        return (inflated, capacity, min_vs, epoch)
    if mode == 2:
        return (load, 0.0, min_vs, epoch)
    if mode == 3:
        return (load, capacity, load + abs(load) + 1.0, epoch)
    return (load, capacity, min_vs, epoch - (staleness + 1))


class AggregateSanity:
    """Per-node plausibility gate in front of the LBI aggregation.

    Keeps the last admitted ``<L, C, L_min>`` per reporting node.  A
    report failing any rule *quarantines* the node for the round: the
    defense substitutes the node's last-good report when that report's
    epoch is still within the staleness bound, and drops the report
    outright otherwise (the aggregate degrades gracefully instead of
    being poisoned).

    Rules, in check order:

    1. ``L`` and ``C`` finite, ``L_min`` not NaN;
    2. ``L >= 0``, ``C > 0``, ``L_min >= 0``;
    3. ``L_min <= L`` (``L_min = inf`` marks a node with no virtual
       servers and is exempt);
    4. the report's epoch tag is neither from the future nor older than
       ``staleness`` epochs;
    5. the per-node load delta obeys
       ``|L - L_last| <= DELTA_FACTOR * (C + L_last)`` — a node can
       shed at most what it last held and absorb at most a
       capacity-proportional amount between consecutive reports.

    Parameters
    ----------
    staleness:
        Maximum admissible epoch age (mirrors the retry policy's
        ``lbi_staleness_rounds``).
    tracer:
        Structured tracer for ``lbi.quarantine`` events.
    metrics:
        Registry for the ``lbi.quarantine`` counter (``None`` = off).
    """

    #: Bound on the admissible per-node load swing between consecutive
    #: reports, as a multiple of ``capacity + last_load``.
    DELTA_FACTOR = 8.0

    def __init__(
        self,
        staleness: int,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Create an empty gate; see the class docstring."""
        self.staleness = staleness
        self.tracer = tracer
        self.metrics = metrics
        self._last_good: dict[int, tuple[float, float, float, int]] = {}
        self._epoch = 0
        self._stats: FaultRoundStats | None = None

    def begin_round(
        self,
        epoch: int,
        stats: FaultRoundStats | None = None,
        alive_indices: Sequence[int] | None = None,
    ) -> None:
        """Arm the gate for one round under membership view ``epoch``.

        ``alive_indices`` is the current alive node set; when provided,
        last-good entries for departed nodes are evicted so the gate's
        memory stays bounded under sustained churn (departed nodes never
        report again, so eviction cannot change any admit decision).
        """
        self._epoch = epoch
        self._stats = stats
        if alive_indices is not None:
            still_here = frozenset(int(i) for i in alive_indices)
            departed = [k for k in self._last_good if k not in still_here]
            for k in departed:
                del self._last_good[k]

    def witness_check(
        self,
        node_index: int,
        claimed: tuple[float, float, float],
        truth: tuple[float, float, float],
    ) -> tuple[float, float, float]:
        """Hook for parent-side witness audits; the base gate trusts claims.

        Called by :func:`collect_lbi_reports` with the node's claimed
        ``<L, C, L_min>`` and the ground truth a witness probe would
        observe.  The base defense performs no audits (it only checks
        plausibility), so the claim passes through unchanged;
        :class:`repro.adversary.trust.TrustedAggregation` overrides this
        with seeded spot-checks.
        """
        return claimed

    def refute_accusation(self, accuser: int) -> None:
        """Hook for liveness cross-checks of false accusations; a no-op here.

        Called when an accused node's own report arrives (proof of
        life).  The base defense has no trust accounting to charge the
        accuser against; the trusted subclass penalizes it.
        """

    def _reason(
        self, load: float, capacity: float, min_vs: float, epoch: int
    ) -> str | None:
        """The first violated rule's name, or ``None`` when plausible."""
        if not (math.isfinite(load) and math.isfinite(capacity)):
            return "non_finite"
        if math.isnan(min_vs):
            return "non_finite"
        if load < 0:
            return "negative_load"
        if capacity <= 0:
            return "non_positive_capacity"
        if min_vs < 0:
            return "negative_min_vs"
        if not math.isinf(min_vs) and min_vs > load:
            return "min_vs_exceeds_load"
        if epoch > self._epoch or self._epoch - epoch > self.staleness:
            return "stale_epoch"
        return None

    def admit(
        self,
        node_index: int,
        load: float,
        capacity: float,
        min_vs: float,
        epoch: int,
    ) -> tuple[float, float, float] | None:
        """Gate one report; the admitted ``<L, C, L_min>`` or ``None``.

        ``None`` means the report was quarantined with no usable
        last-good fallback — the caller must drop it (the node counts
        as lost for this round's aggregate).
        """
        reason = self._reason(load, capacity, min_vs, epoch)
        if reason is None and self._delta_implausible(
            node_index, load, capacity
        ):
            reason = "implausible_delta"
        if reason is None:
            self._last_good[node_index] = (load, capacity, min_vs, epoch)
            return (load, capacity, min_vs)
        self._quarantine(node_index, reason)
        last = self._last_good.get(node_index)
        if last is not None and self._epoch - last[3] <= self.staleness:
            return (last[0], last[1], last[2])
        return None

    def _delta_implausible(
        self, node_index: int, load: float, capacity: float
    ) -> bool:
        """Rule 5: the per-report load-swing heuristic (see class docs).

        A blind bound — it knows nothing about what actually moved, so
        a node that legitimately absorbed far more than
        ``DELTA_FACTOR`` times its capacity in one heavy rebalancing
        round is rejected too.  Overridable:
        :class:`repro.adversary.trust.TrustedAggregation` replaces it
        with transfer-accounted EWMA envelopes once it has one for the
        node.
        """
        last = self._last_good.get(node_index)
        if last is None:
            return False
        last_load = last[0]
        return abs(load - last_load) > self.DELTA_FACTOR * (
            capacity + last_load
        )

    def _quarantine(self, node_index: int, reason: str) -> None:
        """Record one quarantine decision (stats, counter, event)."""
        if self._stats is not None:
            self._stats.quarantined_nodes.append(node_index)
        if self.metrics is not None:
            self.metrics.counter("lbi.quarantine").inc()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event(
                "lbi.quarantine", node=node_index, reason=reason
            )


def collect_lbi_reports(
    ring: RingLike,
    tree: KnaryTree,
    rng: int | None | np.random.Generator = None,
    tracer: Tracer | None = None,
    faults: FaultInjector | None = None,
    retry: RetryPolicy | None = None,
    fault_stats: FaultRoundStats | None = None,
    sanity: AggregateSanity | None = None,
    epoch: int = 0,
    adversary: "AdversaryEngine | None" = None,
    adversary_stats: "AdversaryRoundStats | None" = None,
) -> dict[int, tuple[KTNode, list[LBIRecord]]]:
    """Leaf-indexed LBI reports for every alive node of ``ring``.

    Each node reports through the KT leaf of one uniformly chosen hosted
    virtual server.  Keys of the returned mapping are ``id(leaf)`` (KT
    nodes are unhashable by content on purpose); values carry the leaf
    itself plus its reports.

    With a ``faults`` injector attached, each report is one *message*:
    it may be delayed, duplicated (the duplicate is suppressed at the
    leaf by the reporter's sequence number and only costs a message) or
    dropped — dropped reports are resent under ``retry`` (bounded
    attempts, seeded backoff, phase timeout budget) and count as lost
    once the bounds bite, leaving the aggregate approximate rather than
    the phase failed.  Recovery accounting lands in ``fault_stats``.

    With an enabled ``tracer``, one ``lbi.collect`` event summarises the
    collection (reports filed, distinct leaves, nodes with no virtual
    servers reporting through their notional position, reports lost).

    With a ``sanity`` gate attached, every delivered report passes the
    plausibility defense before an :class:`~repro.core.records.LBIRecord`
    is built: the plan's ``corrupt`` channel may first rewrite the raw
    values into a seeded lie, and the gate then either admits the
    values, substitutes the node's last-good report, or quarantines the
    node and drops the report.  ``epoch`` tags each report with the
    membership view it was produced under.

    With an ``adversary`` engine attached, Byzantine behavior strikes
    the report channel before the sanity gate sees it: an active false
    accuser suppresses its victim's report outright when the plan's
    defense is off (and is refuted via
    :meth:`AggregateSanity.refute_accusation` when it is on, since the
    victim's own report proves liveness), and lying attackers
    substitute their claimed ``<L, C, L_min>`` triple via
    :meth:`~repro.adversary.engine.AdversaryEngine.lie`.  The gate's
    :meth:`AggregateSanity.witness_check` hook then sees both the claim
    and the ground truth, which is what lets the trusted defense run
    seeded spot-check audits.  Accounting lands in ``adversary_stats``.
    """
    gen = ensure_rng(rng)
    policy = retry if retry is not None else RetryPolicy()
    budget = RetryBudget(policy.phase_budget)
    by_leaf: dict[int, tuple[KTNode, list[LBIRecord]]] = {}
    reports = 0
    vsless = 0
    lost = 0
    for node in ring.alive_nodes:
        if node.virtual_servers:
            reporter = node.virtual_servers[int(gen.integers(len(node.virtual_servers)))]
            # Report through the leaf at the *center* of the reporter's
            # region: any leaf hosted by the reporter works (the paper only
            # requires "one of its KT leaf nodes"), and the center leaf has
            # depth O(log #VS) whereas the leaf hugging the region's
            # boundary identifier can be as deep as the full bit width.
            key = ring.region_of(reporter).center
            min_vs = node.min_vs_load
        else:
            # A node that shed all its virtual servers still has capacity
            # the system should count; it reports through its notional ring
            # position and contributes no minimum-VS-load.
            key = hash_to_id(f"node-{node.index}", ring.space)
            min_vs = math.inf
            vsless += 1
        if faults is not None:
            subject = f"report:{node.index}"
            outcome = deliver_with_retry(
                policy,
                lambda attempt: faults.drop("lbi", f"{subject}#{attempt}"),
                gen,
                budget,
                extra_delay=faults.delay("lbi", subject),
            )
            if fault_stats is not None:
                fault_stats.lbi_retries += outcome.attempts - 1
                fault_stats.lbi_delay += outcome.simulated_delay
            if not outcome.delivered:
                lost += 1
                if fault_stats is not None:
                    fault_stats.lbi_reports_lost += 1
                continue
            if faults.duplicate("lbi", subject) and fault_stats is not None:
                # The duplicate arrives at the same leaf carrying the same
                # reporter sequence number; the leaf suppresses it, so it
                # costs a message but never double-counts the load.
                fault_stats.lbi_duplicates += 1
        load, capacity, report_epoch = node.load, node.capacity, epoch
        truth = (load, capacity, min_vs)
        if adversary is not None:
            accuser = adversary.accuser_of(node.index)
            if accuser is not None:
                if not adversary.plan.defense:
                    # The accusation lands unchecked: the "dead" node's
                    # report is suppressed for the round.
                    lost += 1
                    if adversary_stats is not None:
                        adversary_stats.reports_suppressed += 1
                    continue
                if sanity is not None:
                    # The victim's own report proves liveness; the
                    # defense refutes the accusation and charges the
                    # accuser's trust score.
                    sanity.refute_accusation(accuser)
            load, capacity, min_vs = adversary.lie(
                node.index, load, capacity, min_vs, stats=adversary_stats
            )
        if faults is not None and sanity is not None:
            mode = faults.corrupt_report("lbi", f"report:{node.index}")
            if mode is not None:
                load, capacity, min_vs, report_epoch = _apply_corruption(
                    mode, load, capacity, min_vs, report_epoch, sanity.staleness
                )
        if sanity is not None:
            load, capacity, min_vs = sanity.witness_check(
                node.index, (load, capacity, min_vs), truth
            )
            admitted = sanity.admit(
                node.index, load, capacity, min_vs, report_epoch
            )
            if admitted is None:
                lost += 1
                if fault_stats is not None:
                    fault_stats.lbi_reports_lost += 1
                continue
            load, capacity, min_vs = admitted
        leaf = tree.ensure_leaf_for_key(key)
        record = LBIRecord(load=load, capacity=capacity, min_vs_load=min_vs)
        by_leaf.setdefault(id(leaf), (leaf, []))[1].append(record)
        reports += 1
    if tracer is not None and tracer.enabled:
        tracer.event(
            "lbi.collect",
            reports=reports,
            leaves=len(by_leaf),
            vsless_nodes=vsless,
            reports_lost=lost,
        )
    return by_leaf


def aggregate_lbi(
    tree: KnaryTree,
    reports_by_leaf: dict[int, tuple[KTNode, list[LBIRecord]]],
    tracer: Tracer | None = None,
) -> tuple[SystemLBI, AggregationTrace]:
    """Run the bottom-up aggregation sweep and the top-down dissemination.

    Returns the root aggregate and the cost trace.  Raises
    :class:`BalancerError` when no reports were supplied (an empty system
    has no meaningful ``<L, C, L_min>``).

    With an enabled ``tracer``, one ``lbi.level`` event is emitted per
    tree level of the upward sweep (child-to-parent messages entering
    that level) plus one ``lbi.aggregate`` summary whose counts equal
    the returned :class:`AggregationTrace` exactly.
    """
    trace = AggregationTrace()
    if not reports_by_leaf:
        raise BalancerError("no LBI reports to aggregate")
    tracing = tracer is not None and tracer.enabled
    messages_at_level: Counter[int] | None = Counter() if tracing else None

    # Bottom-up merge over the materialised tree.
    partial: dict[int, LBIRecord] = {}
    nodes = tree.nodes_by_level_desc()
    trace.tree_height = nodes[0].level if nodes else 0
    for node in nodes:
        acc: LBIRecord | None = None
        if id(node) in reports_by_leaf:
            leaf, records = reports_by_leaf[id(node)]
            assert leaf is node
            trace.reports += len(records)
            for rec in records:
                acc = rec if acc is None else acc.merge(rec)
        for child in node.materialized_children():
            child_val = partial.pop(id(child), None)
            if child_val is not None:
                acc = child_val if acc is None else acc.merge(child_val)
                trace.upward_messages += 1
                if messages_at_level is not None:
                    messages_at_level[node.level] += 1
        if acc is not None:
            partial[id(node)] = acc

    root_val = partial.get(id(tree.root))
    if root_val is None:
        raise BalancerError("aggregation produced no value at the root")
    system = SystemLBI.from_record(root_val)

    # Round accounting: one round per level for each sweep; dissemination
    # fans the aggregate back down the same paths (same message count).
    trace.upward_rounds = trace.tree_height
    trace.downward_rounds = trace.tree_height
    trace.downward_messages = trace.upward_messages

    if tracing:
        assert tracer is not None and messages_at_level is not None
        for level in sorted(messages_at_level, reverse=True):
            tracer.event(
                "lbi.level", level=level, messages_up=messages_at_level[level]
            )
        tracer.event(
            "lbi.aggregate",
            reports=trace.reports,
            messages_up=trace.upward_messages,
            messages_down=trace.downward_messages,
            rounds=trace.total_rounds,
            tree_height=trace.tree_height,
            total_load=system.total_load,
            total_capacity=system.total_capacity,
            min_vs_load=system.min_vs_load,
        )
    return system, trace


def direct_system_lbi(nodes: list[PhysicalNode]) -> SystemLBI:
    """Ground-truth ``<L, C, L_min>`` computed centrally (for testing).

    The tree-based aggregation must produce exactly this value; tests
    compare both paths.
    """
    alive = [n for n in nodes if n.alive]
    with_vs = [n for n in alive if n.virtual_servers]
    if not with_vs:
        raise BalancerError("no alive nodes with virtual servers")
    return SystemLBI(
        total_load=sum(n.load for n in alive),
        total_capacity=sum(n.capacity for n in alive),
        min_vs_load=min(n.min_vs_load for n in with_vs),
    )
