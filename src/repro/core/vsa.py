"""Phase 3: the bottom-up virtual-server-assignment sweep.

VSA information enters the tree at the KT leaf owning the identifier
under which it was *published* — the node's Hilbert key in
proximity-aware mode, the position of one of its own virtual servers in
proximity-ignorant mode.  The sweep then walks the materialised tree
deepest-level first: every KT node merges what its children could not
pair with what entered at itself; once the combined list length reaches
the rendezvous threshold (or unconditionally at the root) the node runs
the pairing loop and sends pair decisions out, propagating only leftover
entries upward.

Because each KT subtree covers a contiguous identifier-space interval,
entries published under nearby keys meet at deep rendezvous points —
with proximity-aware placement, "nearby key" means "physically close",
which is the whole trick.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.records import Assignment, ShedCandidate, SpareCapacity
from repro.core.rendezvous import pair_rendezvous
from repro.exceptions import BalancerError
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryBudget, RetryPolicy, deliver_with_retry
from repro.faults.stats import FaultRoundStats
from repro.ktree.tree import KnaryTree
from repro.obs.trace import Tracer
from repro.util.rng import ensure_rng


@dataclass
class VSAResult:
    """Outcome and cost accounting of one VSA sweep."""

    assignments: list[Assignment] = field(default_factory=list)
    unassigned_heavy: list[ShedCandidate] = field(default_factory=list)
    unassigned_light: list[SpareCapacity] = field(default_factory=list)
    rounds: int = 0
    upward_messages: int = 0
    entries_published: int = 0
    #: Publications lost to injected faults after every retry (their
    #: shed/spare entries simply sit out the round — safe degradation).
    entries_lost: int = 0
    pairings_by_level: Counter[int] = field(default_factory=Counter)

    @property
    def assigned_load(self) -> float:
        return sum(a.candidate.load for a in self.assignments)

    @property
    def unassigned_load(self) -> float:
        return sum(c.load for c in self.unassigned_heavy)


class VSASweep:
    """Executes the bottom-up VSA over a (lazily materialised) K-nary tree.

    Parameters
    ----------
    tree:
        The K-nary tree; leaves for published keys are materialised on
        demand.
    threshold:
        Rendezvous threshold: a non-root KT node only pairs once its
        combined heavy+light list length reaches this value (paper
        default 30).
    min_vs_load:
        System-wide ``L_min`` from the LBI phase (remainder rule).
    strict_heaviest_first:
        See :func:`repro.core.rendezvous.pair_rendezvous`.
    tracer:
        Optional structured tracer; with an enabled one the sweep emits
        a ``vsa.publish`` event per delivered entry batch, one
        ``vsa.rendezvous`` event per pairing attempt (KT level, pairs
        made, leftovers) and a ``vsa.sweep`` summary matching the
        returned :class:`VSAResult`.
    faults:
        Optional fault injector: each publication is a message that may
        be delayed, duplicated (suppressed at the leaf) or dropped —
        drops are retried under ``retry`` and count as
        ``entries_lost`` once the bounds bite.
    retry:
        Recovery policy for dropped publications (defaults apply when
        ``faults`` is set without one).
    rng:
        Seed/generator for the retry backoff jitter (only consumed when
        faults are injected, so fault-free sweeps stay byte-identical
        to the pre-fault implementation).
    fault_stats:
        Per-round accumulator for retry/loss accounting.
    """

    def __init__(
        self,
        tree: KnaryTree,
        threshold: int,
        min_vs_load: float,
        strict_heaviest_first: bool = False,
        tracer: Tracer | None = None,
        faults: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        rng: int | None | np.random.Generator = None,
        fault_stats: FaultRoundStats | None = None,
    ):
        if threshold < 0:
            raise BalancerError(f"threshold must be >= 0, got {threshold}")
        self.tree = tree
        self.threshold = threshold
        self.min_vs_load = min_vs_load
        self.strict_heaviest_first = strict_heaviest_first
        self.tracer = tracer
        self.faults = faults
        self.retry = retry if retry is not None else RetryPolicy()
        self.rng = ensure_rng(rng)
        self.fault_stats = fault_stats

    def run(
        self,
        published: list[tuple[int, ShedCandidate | SpareCapacity]],
    ) -> VSAResult:
        """Run the sweep over ``(key, entry)`` publications.

        Delivery (faults/rng) and the pure bottom-up sweep run in
        sequence; with an enabled tracer a final ``vsa.sweep`` summary
        event matching the returned result is emitted.
        """
        tracer = self.tracer
        result = VSAResult(entries_published=len(published))
        pending = self.deliver(published, result)
        self.sweep(pending, result)
        if tracer is not None and tracer.enabled:
            tracer.event(
                "vsa.sweep",
                entries_published=result.entries_published,
                entries_lost=result.entries_lost,
                pairings=len(result.assignments),
                messages_up=result.upward_messages,
                rounds=result.rounds,
                unassigned_heavy=len(result.unassigned_heavy),
                unassigned_light=len(result.unassigned_light),
            )
        return result

    def deliver(
        self,
        published: list[tuple[int, ShedCandidate | SpareCapacity]],
        result: VSAResult,
    ) -> dict[int, tuple[list[ShedCandidate], list[SpareCapacity]]]:
        """Deliver ``(key, entry)`` publications to their KT leaves.

        Materialises leaf paths as needed, applies injected faults with
        bounded retries and returns the per-leaf pending buckets (keyed
        by ``id(leaf)``).  Loss accounting lands on ``result``.  Split
        out of :meth:`run` so shard-parallel engines can reuse the
        fault/rng-consuming delivery verbatim and parallelise only the
        pure bottom-up sweep.
        """
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        pending: dict[int, tuple[list[ShedCandidate], list[SpareCapacity]]] = {}

        def bucket(node_id: int) -> tuple[list[ShedCandidate], list[SpareCapacity]]:
            buck = pending.get(node_id)
            if buck is None:
                buck = ([], [])
                pending[node_id] = buck
            return buck

        faults = self.faults
        budget = RetryBudget(self.retry.phase_budget)
        stats = self.fault_stats
        for key, entry in published:
            if faults is not None:
                subject = f"entry:{entry.node_index}:{key}"
                outcome = deliver_with_retry(
                    self.retry,
                    lambda attempt: faults.drop("vsa", f"{subject}#{attempt}"),
                    self.rng,
                    budget,
                    extra_delay=faults.delay("vsa", subject),
                )
                if stats is not None:
                    stats.vsa_retries += outcome.attempts - 1
                    stats.vsa_delay += outcome.simulated_delay
                if not outcome.delivered:
                    result.entries_lost += 1
                    if stats is not None:
                        stats.vsa_entries_lost += 1
                    continue
                if faults.duplicate("vsa", subject) and stats is not None:
                    # Publications are idempotent per (node, key): the leaf
                    # keeps the first copy and drops the echo, so a
                    # duplicate costs one message and nothing else.
                    stats.vsa_duplicates += 1
            leaf = self.tree.ensure_leaf_for_key(key)
            heavy, light = bucket(id(leaf))
            if isinstance(entry, ShedCandidate):
                heavy.append(entry)
            elif isinstance(entry, SpareCapacity):
                light.append(entry)
            else:
                raise BalancerError(f"unknown VSA entry type {type(entry)!r}")
            if tracing:
                assert tracer is not None
                tracer.event(
                    "vsa.publish",
                    key=key,
                    leaf_level=leaf.level,
                    entry_kind=(
                        "shed" if isinstance(entry, ShedCandidate) else "spare"
                    ),
                    node=entry.node_index,
                    load=(
                        entry.load
                        if isinstance(entry, ShedCandidate)
                        else entry.delta
                    ),
                )
        return pending

    def sweep(
        self,
        pending: dict[int, tuple[list[ShedCandidate], list[SpareCapacity]]],
        result: VSAResult,
    ) -> None:
        """Run the bottom-up rendezvous sweep over delivered buckets.

        ``pending`` maps ``id(leaf)`` to the leaf's delivered
        (heavy, light) entry lists, as produced by :meth:`deliver`;
        assignments, leftovers and cost accounting accumulate on
        ``result``.
        """
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled

        def bucket(node_id: int) -> tuple[list[ShedCandidate], list[SpareCapacity]]:
            buck = pending.get(node_id)
            if buck is None:
                buck = ([], [])
                pending[node_id] = buck
            return buck

        # Bottom-up sweep over every materialised node.  Materialisation
        # is frozen now: iterate a snapshot sorted deepest-first.
        nodes = self.tree.nodes_by_level_desc()
        result.rounds = nodes[0].level if nodes else 0
        root = self.tree.root
        for node in nodes:
            buck = pending.pop(id(node), None)
            if buck is None:
                continue
            heavy, light = buck
            is_root = node is root
            if is_root or (len(heavy) + len(light)) >= self.threshold:
                outcome = pair_rendezvous(
                    heavy,
                    light,
                    min_vs_load=self.min_vs_load,
                    level=node.level,
                    strict_heaviest_first=self.strict_heaviest_first,
                )
                result.assignments.extend(outcome.assignments)
                result.pairings_by_level[node.level] += len(outcome.assignments)
                up_heavy, up_light = outcome.leftover_heavy, outcome.leftover_light
                if tracing:
                    assert tracer is not None
                    tracer.event(
                        "vsa.rendezvous",
                        level=node.level,
                        is_root=is_root,
                        heavy_in=len(heavy),
                        light_in=len(light),
                        paired=len(outcome.assignments),
                        leftover_heavy=len(up_heavy),
                        leftover_light=len(up_light),
                    )
            else:
                up_heavy, up_light = heavy, light

            if is_root:
                result.unassigned_heavy.extend(up_heavy)
                result.unassigned_light.extend(up_light)
            elif up_heavy or up_light:
                parent_heavy, parent_light = bucket(id(node.parent))
                parent_heavy.extend(up_heavy)
                parent_light.extend(up_light)
                result.upward_messages += 1

        if pending:  # pragma: no cover - sweep covers all materialised nodes
            raise BalancerError("VSA sweep left undelivered entries")
