"""When to balance: periodic vs imbalance-triggered policies.

The paper runs its phases "periodically at an interval T" but leaves the
policy open.  In a live system, running the full four-phase protocol
when nothing is wrong wastes control traffic; this module adds the
natural policy layer:

* :class:`PeriodicPolicy` — balance every epoch (the paper's implicit
  behaviour);
* :class:`ImbalanceTriggeredPolicy` — run the cheap LBI aggregation
  every epoch (it is O(log N) messages anyway) but run VSA/VST only
  when the measured heavy fraction exceeds a threshold.

:func:`run_with_policy` drives either policy against a
:class:`~repro.sim.dynamics.LoadDynamics` process and accounts what each
epoch actually cost, so the policies can be compared head to head.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.core.balancer import LoadBalancer
from repro.core.classification import classify_all
from repro.core.lbi import aggregate_lbi, collect_lbi_reports
from repro.core.records import NodeClass
from repro.exceptions import ConfigError
from repro.ktree.tree import KnaryTree
from repro.sim.dynamics import LoadDynamics


@dataclass
class PolicyEpoch:
    """What one epoch under a balancing policy did and cost."""

    epoch: int
    heavy_fraction: float
    balanced: bool
    moved_load: float = 0.0
    transfers: int = 0
    control_messages: int = 0


@dataclass
class PolicyTrace:
    epochs: list[PolicyEpoch] = field(default_factory=list)

    @property
    def rounds_run(self) -> int:
        return sum(1 for e in self.epochs if e.balanced)

    @property
    def total_moved(self) -> float:
        return sum(e.moved_load for e in self.epochs)

    @property
    def total_control_messages(self) -> int:
        return sum(e.control_messages for e in self.epochs)

    @property
    def max_heavy_fraction(self) -> float:
        return max((e.heavy_fraction for e in self.epochs), default=0.0)


class BalancingPolicy(Protocol):
    """Anything that can decide whether an epoch should run VSA/VST."""

    def should_balance(self, heavy_fraction: float) -> bool:
        """Whether the full balancing machinery should run this epoch."""
        ...


class PeriodicPolicy:
    """Balance unconditionally every epoch."""

    def should_balance(self, heavy_fraction: float) -> bool:
        return True


class ImbalanceTriggeredPolicy:
    """Balance only when the heavy fraction exceeds ``threshold``."""

    def __init__(self, threshold: float = 0.1) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ConfigError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold

    def should_balance(self, heavy_fraction: float) -> bool:
        return heavy_fraction > self.threshold


def run_with_policy(
    balancer: LoadBalancer,
    dynamics: LoadDynamics,
    policy: BalancingPolicy,
    epochs: int,
) -> PolicyTrace:
    """Drive load dynamics under a balancing policy.

    Every epoch: loads evolve, then the (cheap) LBI measurement runs; the
    full VSA/VST machinery runs only when the policy says so.  The
    measurement cost is charged every epoch, the balancing cost only on
    triggered epochs.
    """
    if epochs < 1:
        raise ConfigError(f"epochs must be >= 1, got {epochs}")
    trace = PolicyTrace()
    ring = balancer.ring
    cfg = balancer.config
    for epoch in range(epochs):
        dynamics.step(ring)

        # Cheap measurement pass: LBI + classification only.
        tree = KnaryTree(ring, cfg.tree_degree)
        reports = collect_lbi_reports(ring, tree, rng=epoch)
        system, agg_trace = aggregate_lbi(tree, reports)
        classification = classify_all(ring.alive_nodes, system, cfg.epsilon)
        alive = len(ring.alive_nodes)
        heavy_fraction = (
            sum(1 for c in classification.classes.values() if c is NodeClass.HEAVY)
            / alive
        )

        if policy.should_balance(heavy_fraction):
            report = balancer.run_round()
            trace.epochs.append(
                PolicyEpoch(
                    epoch=epoch,
                    heavy_fraction=heavy_fraction,
                    balanced=True,
                    moved_load=report.moved_load,
                    transfers=len(report.transfers),
                    control_messages=(
                        agg_trace.total_messages
                        + report.aggregation.total_messages
                        + report.vsa.upward_messages
                    ),
                )
            )
        else:
            trace.epochs.append(
                PolicyEpoch(
                    epoch=epoch,
                    heavy_fraction=heavy_fraction,
                    balanced=False,
                    control_messages=agg_trace.total_messages,
                )
            )
    return trace
