"""Phase 4: virtual-server transferring (VST) with cost accounting.

Executing an :class:`~repro.core.records.Assignment` moves the chosen
virtual server from its heavy owner to the assigned light node — on the
ring this is a leave + join with an unchanged identifier, so only the
hosting changes.  When a topology is attached, the transfer cost is the
weighted shortest-path distance between the two nodes' sites, which is
exactly the x-axis of the paper's figures 7 and 8.

Each move runs as a **two-phase commit**
(:class:`TransferTransaction`): ``prepare`` detaches the virtual server
from its source (the in-flight state), ``commit`` attaches it to the
target, and ``rollback`` returns it to the source — or, if the source
died while the server was in flight, to the owner of its ring
successor, mirroring how a storage DHT re-materialises orphaned state.
A transfer aborted by an injected fault, or a ``DHTError`` surfacing
mid-batch, therefore never strands the ring half-mutated: the failing
assignment is rolled back, recorded as failed, and the batch continues.
``assert_loads_conserved`` holds at the end of every batch regardless
of how many transfers aborted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.records import Assignment, assert_loads_conserved
from repro.dht.ringlike import RingLike
from repro.dht.churn import crash_node
from repro.dht.node import PhysicalNode
from repro.dht.virtual_server import VirtualServer
from repro.exceptions import BalancerError, DHTError
from repro.faults.injector import FaultInjector
from repro.faults.stats import FaultRoundStats
from repro.obs.trace import Tracer
from repro.topology.routing import DistanceOracle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (recovery -> core)
    from repro.adversary.engine import AdversaryEngine
    from repro.recovery.journal import TransferJournal


@dataclass(frozen=True, slots=True)
class TransferRecord:
    """One executed virtual-server transfer."""

    vs_id: int
    load: float
    source_node: int
    target_node: int
    distance: float  # latency units; NaN when no topology is attached
    level: int  # KT level of the rendezvous that paired it

    @property
    def has_distance(self) -> bool:
        return not math.isnan(self.distance)


class TransferTransaction:
    """Two-phase commit for one virtual-server move.

    States: ``pending`` -> ``prepared`` (server detached, in flight) ->
    ``committed`` | ``rolled_back``.  The protocol invariant is that
    whichever terminal state is reached, the server is hosted by exactly
    one alive node and its load is untouched.
    """

    __slots__ = ("ring", "vs", "source", "target", "state", "journal")

    def __init__(
        self,
        ring: RingLike,
        vs: VirtualServer,
        source: PhysicalNode,
        target: PhysicalNode,
        journal: "TransferJournal | None" = None,
    ) -> None:
        self.ring = ring
        self.vs = vs
        self.source = source
        self.target = target
        self.state = "pending"
        self.journal = journal

    def _journal_intent(self, kind: str) -> None:
        """Write-ahead the intent record *before* the state mutates."""
        if self.journal is not None:
            self.journal.record(
                kind,
                vs=self.vs.vs_id,
                load=float(self.vs.load).hex(),
                source=self.source.index,
                target=self.target.index,
            )

    def prepare(self) -> None:
        """Detach the server from its source (the in-flight state)."""
        if self.state != "pending":
            raise BalancerError(f"cannot prepare a {self.state} transaction")
        if self.vs.owner is not self.source:
            raise DHTError(
                f"vs {self.vs.vs_id} owned by {self.vs.owner.index}, "
                f"expected {self.source.index}"
            )
        self._journal_intent("prepare")
        self.source.unhost(self.vs)
        self.state = "prepared"

    def commit(self) -> None:
        """Attach the in-flight server to the target node."""
        if self.state != "prepared":
            raise BalancerError(f"cannot commit a {self.state} transaction")
        if not self.target.alive:
            raise DHTError(
                f"target node {self.target.index} died while vs "
                f"{self.vs.vs_id} was in flight"
            )
        self._journal_intent("commit")
        self.target.host(self.vs)
        self.state = "committed"

    def rollback(self) -> None:
        """Return the in-flight server to its source (or rescue it).

        With the source gone mid-flight, the server is adopted by the
        owner of its ring successor — the same peer that would absorb
        its region on a leave — so no load is ever orphaned.
        """
        if self.state != "prepared":
            raise BalancerError(f"cannot roll back a {self.state} transaction")
        self._journal_intent("rollback")
        if self.source.alive:
            self.source.host(self.vs)
        else:
            rescue = self.ring.successor(self.ring.space.wrap(self.vs.vs_id + 1))
            if rescue is self.vs or not rescue.owner.alive:
                raise DHTError(
                    f"no alive node can adopt in-flight vs {self.vs.vs_id}"
                )
            rescue.owner.host(self.vs)
        self.state = "rolled_back"


def _crash_candidates(ring: RingLike) -> list[int]:
    """Node indices eligible for an injected crash (never the last node)."""
    return [
        n.index
        for n in ring.alive_nodes
        if len(n.virtual_servers) < ring.num_virtual_servers
    ]


def execute_transfers(
    ring: RingLike,
    assignments: list[Assignment],
    oracle: DistanceOracle | None = None,
    skipped: list[Assignment] | None = None,
    tracer: Tracer | None = None,
    faults: FaultInjector | None = None,
    failed: list[Assignment] | None = None,
    fault_stats: FaultRoundStats | None = None,
    journal: "TransferJournal | None" = None,
    adversary: "AdversaryEngine | None" = None,
) -> list[TransferRecord]:
    """Apply ``assignments`` to the ring and account their costs.

    Distances are resolved in one batch against the oracle (one Dijkstra
    per distinct source site).  Nodes are looked up by index on the
    ring; a dangling index means the assignment pipeline is corrupt and
    raises :class:`BalancerError`.

    Churn tolerance: an assignment whose endpoints changed *between VSA
    and VST* — the source crashed (its virtual servers moved on), the
    target departed, or the virtual server left the ring — is not an
    error but a casualty of asynchrony; pass a ``skipped`` list to
    collect such assignments instead of raising, mirroring how a real
    deployment simply drops stale pair decisions.

    Atomicity: each assignment runs as a :class:`TransferTransaction`.
    A transfer that aborts — an injected ``transfer_abort`` fault, or a
    :class:`~repro.exceptions.DHTError` surfacing mid-commit (e.g. the
    target died while the server was in flight) — is rolled back and
    appended to ``failed`` (raised when no list was passed), and the
    batch continues with the next assignment instead of stranding the
    ring partially mutated.

    Crash injection: with a ``faults`` injector whose plan budgets
    mid-round crashes, seeded victims are crashed *between* transfers
    of this batch (slot ``k`` = after the ``k``-th transfer); their
    load hands over to ring successors, so conservation still holds.

    Conservation: transfers re-home virtual servers without touching
    their loads, so the ring's total load must be identical before and
    after; the totals are checked via
    :func:`~repro.core.records.assert_loads_conserved` and a violation
    raises :class:`~repro.exceptions.ConservationError`.

    Durability: with a ``journal`` attached, every transaction
    write-aheads its prepare/commit/rollback intent before applying it
    (see :mod:`repro.recovery.journal`); and a plan-scheduled
    ``mid-vst-batch`` :class:`~repro.faults.CrashPoint` kills the whole
    process at a seeded batch position via
    :class:`~repro.exceptions.ProcessCrashError` — recovery is the
    recovery manager's job, nothing here catches it.

    Byzantine reneging: with an ``adversary`` engine attached, a source
    node running the ``renege`` behavior model *prepares* each of its
    transfers and never delivers — the transaction is rolled back
    exactly like an injected abort (counted in ``fault_stats`` as a
    rollback, remembered by the engine for the defense's
    transfer-outcome accounting).  The fault injector's abort stream is
    drawn regardless, so fault decision sequences are unaffected by the
    adversary's presence.
    """
    total_before = sum(n.load for n in ring.nodes)
    node_by_index = {n.index: n for n in ring.nodes}
    records: list[TransferRecord] = []
    pairs: list[tuple[int, int]] = []
    pending: list[tuple[Assignment, int, int]] = []
    tracing = tracer is not None and tracer.enabled
    crash_slots = (
        faults.plan_crash_slots(len(assignments)) if faults is not None else []
    )
    process_crash_slot = (
        faults.process_crash_slot(len(assignments)) if faults is not None else None
    )
    next_slot = 0

    def crash_due(position: int) -> None:
        """Fire every crash whose slot is ``position`` (mid-batch churn)."""
        nonlocal next_slot
        if process_crash_slot is not None and position >= process_crash_slot:
            assert faults is not None
            faults.fire_crash("mid-vst-batch")
        assert faults is not None or next_slot >= len(crash_slots)
        while next_slot < len(crash_slots) and crash_slots[next_slot] <= position:
            next_slot += 1
            assert faults is not None
            victim_index = faults.pick_victim(_crash_candidates(ring))
            if victim_index is None:
                continue
            crash_node(ring, node_by_index[victim_index])
            if fault_stats is not None:
                fault_stats.crashed_nodes.append(victim_index)
            if tracing:
                assert tracer is not None
                tracer.event("vst.crash", node=victim_index, slot=position)

    for position, a in enumerate(assignments):
        crash_due(position)
        source = node_by_index.get(a.candidate.node_index)
        target = node_by_index.get(a.target_node)
        if source is None or target is None:
            raise BalancerError(
                f"assignment references unknown node "
                f"({a.candidate.node_index} -> {a.target_node})"
            )
        try:
            vs = ring.vs(a.candidate.vs_id)
        except DHTError:
            if skipped is not None:
                skipped.append(a)
                if tracing:
                    assert tracer is not None
                    tracer.event(
                        "vst.skip",
                        reason="vs_gone",
                        vs_id=a.candidate.vs_id,
                        source=a.candidate.node_index,
                        target=a.target_node,
                    )
                continue
            raise
        stale = vs.owner is not source or not target.alive or not source.alive
        if stale:
            if skipped is not None:
                skipped.append(a)
                if tracing:
                    assert tracer is not None
                    tracer.event(
                        "vst.skip",
                        reason="stale",
                        vs_id=a.candidate.vs_id,
                        source=a.candidate.node_index,
                        target=a.target_node,
                    )
                continue
            raise BalancerError(
                f"assignment is stale: virtual server {a.candidate.vs_id} owned "
                f"by node {vs.owner.index} (expected {source.index}), "
                f"source alive={source.alive}, target alive={target.alive}"
            )

        txn = TransferTransaction(ring, vs, source, target, journal=journal)
        txn.prepare()
        aborted = faults is not None and faults.abort_transfer(a.candidate.vs_id)
        if adversary is not None and adversary.renege(
            source.index, a.candidate.vs_id
        ):
            aborted = True
        if not aborted:
            try:
                txn.commit()
            except DHTError:
                aborted = True
        if aborted:
            txn.rollback()
            if fault_stats is not None:
                fault_stats.vst_rollbacks += 1
                fault_stats.vst_failed += 1
            if tracing:
                assert tracer is not None
                tracer.event(
                    "vst.rollback",
                    vs_id=a.candidate.vs_id,
                    source=a.candidate.node_index,
                    target=a.target_node,
                )
            if failed is not None:
                failed.append(a)
                continue
            raise BalancerError(
                f"transfer of vs {a.candidate.vs_id} aborted mid-flight "
                f"({a.candidate.node_index} -> {a.target_node}) and no "
                "failed-assignment collector was supplied"
            )
        if oracle is not None and source.site is not None and target.site is not None:
            pairs.append((source.site, target.site))
            pending.append((a, source.index, target.index))
        else:
            records.append(
                TransferRecord(
                    vs_id=a.candidate.vs_id,
                    load=a.candidate.load,
                    source_node=source.index,
                    target_node=target.index,
                    distance=float("nan"),
                    level=a.level,
                )
            )
    crash_due(len(assignments))

    if pending:
        assert oracle is not None
        distances = oracle.distances_between(pairs)
        for (a, src_idx, dst_idx), dist in zip(pending, distances):
            records.append(
                TransferRecord(
                    vs_id=a.candidate.vs_id,
                    load=a.candidate.load,
                    source_node=src_idx,
                    target_node=dst_idx,
                    distance=float(dist),
                    level=a.level,
                )
            )
    if tracing:
        assert tracer is not None
        for r in records:
            tracer.event(
                "vst.transfer",
                vs_id=r.vs_id,
                load=r.load,
                source=r.source_node,
                target=r.target_node,
                distance=r.distance,
                level=r.level,
            )
    total_after = sum(n.load for n in ring.nodes)
    assert_loads_conserved(
        total_before, total_after, context="vst.execute_transfers"
    )
    return records
