"""Phase 4: virtual-server transferring (VST) with cost accounting.

Executing an :class:`~repro.core.records.Assignment` moves the chosen
virtual server from its heavy owner to the assigned light node — on the
ring this is a leave + join with an unchanged identifier, so only the
hosting changes.  When a topology is attached, the transfer cost is the
weighted shortest-path distance between the two nodes' sites, which is
exactly the x-axis of the paper's figures 7 and 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.records import Assignment, assert_loads_conserved
from repro.dht.chord import ChordRing
from repro.exceptions import BalancerError, DHTError
from repro.obs.trace import Tracer
from repro.topology.routing import DistanceOracle


@dataclass(frozen=True, slots=True)
class TransferRecord:
    """One executed virtual-server transfer."""

    vs_id: int
    load: float
    source_node: int
    target_node: int
    distance: float  # latency units; NaN when no topology is attached
    level: int  # KT level of the rendezvous that paired it

    @property
    def has_distance(self) -> bool:
        return not math.isnan(self.distance)


def execute_transfers(
    ring: ChordRing,
    assignments: list[Assignment],
    oracle: DistanceOracle | None = None,
    skipped: list[Assignment] | None = None,
    tracer: Tracer | None = None,
) -> list[TransferRecord]:
    """Apply ``assignments`` to the ring and account their costs.

    Distances are resolved in one batch against the oracle (one Dijkstra
    per distinct source site).  Nodes are looked up by index on the
    ring; a dangling index means the assignment pipeline is corrupt and
    raises :class:`BalancerError`.

    Churn tolerance: an assignment whose endpoints changed *between VSA
    and VST* — the source crashed (its virtual servers moved on), the
    target departed, or the virtual server left the ring — is not an
    error but a casualty of asynchrony; pass a ``skipped`` list to
    collect such assignments instead of raising, mirroring how a real
    deployment simply drops stale pair decisions.

    Conservation: transfers re-home virtual servers without touching
    their loads, so the ring's total load must be identical before and
    after; the totals are checked via
    :func:`~repro.core.records.assert_loads_conserved` and a violation
    raises :class:`~repro.exceptions.ConservationError`.
    """
    total_before = sum(n.load for n in ring.nodes)
    node_by_index = {n.index: n for n in ring.nodes}
    records: list[TransferRecord] = []
    pairs: list[tuple[int, int]] = []
    pending: list[tuple[Assignment, int, int]] = []
    tracing = tracer is not None and tracer.enabled

    for a in assignments:
        source = node_by_index.get(a.candidate.node_index)
        target = node_by_index.get(a.target_node)
        if source is None or target is None:
            raise BalancerError(
                f"assignment references unknown node "
                f"({a.candidate.node_index} -> {a.target_node})"
            )
        try:
            vs = ring.vs(a.candidate.vs_id)
        except DHTError:
            if skipped is not None:
                skipped.append(a)
                if tracing:
                    assert tracer is not None
                    tracer.event(
                        "vst.skip",
                        reason="vs_gone",
                        vs_id=a.candidate.vs_id,
                        source=a.candidate.node_index,
                        target=a.target_node,
                    )
                continue
            raise
        stale = vs.owner is not source or not target.alive or not source.alive
        if stale:
            if skipped is not None:
                skipped.append(a)
                if tracing:
                    assert tracer is not None
                    tracer.event(
                        "vst.skip",
                        reason="stale",
                        vs_id=a.candidate.vs_id,
                        source=a.candidate.node_index,
                        target=a.target_node,
                    )
                continue
            raise BalancerError(
                f"assignment is stale: virtual server {a.candidate.vs_id} owned "
                f"by node {vs.owner.index} (expected {source.index}), "
                f"source alive={source.alive}, target alive={target.alive}"
            )
        ring.transfer_virtual_server(vs, target)
        if oracle is not None and source.site is not None and target.site is not None:
            pairs.append((source.site, target.site))
            pending.append((a, source.index, target.index))
        else:
            records.append(
                TransferRecord(
                    vs_id=a.candidate.vs_id,
                    load=a.candidate.load,
                    source_node=source.index,
                    target_node=target.index,
                    distance=float("nan"),
                    level=a.level,
                )
            )

    if pending:
        assert oracle is not None
        distances = oracle.distances_between(pairs)
        for (a, src_idx, dst_idx), dist in zip(pending, distances):
            records.append(
                TransferRecord(
                    vs_id=a.candidate.vs_id,
                    load=a.candidate.load,
                    source_node=src_idx,
                    target_node=dst_idx,
                    distance=float(dist),
                    level=a.level,
                )
            )
    if tracing:
        assert tracer is not None
        for r in records:
            tracer.event(
                "vst.transfer",
                vs_id=r.vs_id,
                load=r.load,
                source=r.source_node,
                target=r.target_node,
                distance=r.distance,
                level=r.level,
            )
    total_after = sum(n.load for n in ring.nodes)
    assert_loads_conserved(
        total_before, total_after, context="vst.execute_transfers"
    )
    return records
