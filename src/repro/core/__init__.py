"""The paper's primary contribution: proximity-aware load balancing.

The four phases (Section 1.2):

1. :mod:`repro.core.lbi` — load-balancing-information aggregation over
   the K-nary tree (and top-down dissemination);
2. :mod:`repro.core.classification` — heavy / light / neutral node
   classification against capacity-proportional target loads;
3. :mod:`repro.core.vsa` — the bottom-up virtual-server-assignment sweep
   with rendezvous pairing (:mod:`repro.core.rendezvous`) fed by the
   shed-subset selection of :mod:`repro.core.selection` and the
   placement strategies of :mod:`repro.core.placement`;
4. :mod:`repro.core.vst` — virtual-server transfers with topology-aware
   cost accounting.

:class:`repro.core.balancer.LoadBalancer` orchestrates all phases.
"""

from repro.core.records import (
    CONSERVATION_RTOL,
    Assignment,
    LBIRecord,
    NodeClass,
    ShedCandidate,
    SpareCapacity,
    SystemLBI,
    assert_loads_conserved,
)
from repro.core.classification import (
    classification_masks,
    classify_arrays,
    classify_node,
    classify_all,
    target_load,
)
from repro.core.config import BalancerConfig
from repro.core.selection import select_shed_subset
from repro.core.rendezvous import PairingOutcome, pair_rendezvous
from repro.core.vsa import VSAResult, VSASweep
from repro.core.vst import TransferRecord, execute_transfers
from repro.core.placement import ProximityPlacement, RandomVSPlacement
from repro.core.balancer import LoadBalancer
from repro.core.incremental import IncrementalLoadBalancer
from repro.core.soa import NodeStateArrays
from repro.core.costs import CostSheet, cost_sheet, estimate_publication_hops
from repro.core.report import BalanceReport, check_conservation

__all__ = [
    "CONSERVATION_RTOL",
    "Assignment",
    "assert_loads_conserved",
    "check_conservation",
    "LBIRecord",
    "NodeClass",
    "ShedCandidate",
    "SpareCapacity",
    "SystemLBI",
    "classification_masks",
    "classify_arrays",
    "classify_node",
    "classify_all",
    "target_load",
    "BalancerConfig",
    "select_shed_subset",
    "PairingOutcome",
    "pair_rendezvous",
    "VSAResult",
    "VSASweep",
    "TransferRecord",
    "execute_transfers",
    "ProximityPlacement",
    "RandomVSPlacement",
    "LoadBalancer",
    "IncrementalLoadBalancer",
    "NodeStateArrays",
    "BalanceReport",
    "CostSheet",
    "cost_sheet",
    "estimate_publication_hops",
]
