"""Incremental round engine: dirty-subtree repair + vectorized hot paths.

:class:`IncrementalLoadBalancer` produces **byte-identical**
:meth:`~repro.core.report.BalanceReport.canonical_digest` output to the
serial :class:`~repro.core.balancer.LoadBalancer` while replacing its
per-round O(N) object churn with work proportional to what actually
changed:

* The K-nary tree persists across rounds.  A :class:`RingEventLog`
  records ring membership events; at round start
  :meth:`KnaryTree.refresh_dirty` repairs only the subtrees overlapping
  the dirty identifier spans those events imply, and the
  :class:`TreeIndex` slot arrays absorb the structural delta.
* Key-to-leaf resolutions (reporter centers, notional hash positions,
  VSA placement keys) are cached and kept valid *by construction*:
  after each ``refresh_dirty`` the structural delta drives a surgical
  cache repair (:meth:`IncrementalLoadBalancer._repair_cache`) that
  remaps only the entries whose leaves were pruned or flipped —
  surviving entries are rebound through one batched directory lookup
  and only genuinely re-tiled keys descend.  Keys with no usable cache
  entry resolve through :meth:`TreeIndex.resolve_leaves` and the
  remaining misses descend the tree **together** via
  :meth:`KnaryTree.descend_batch`, one level at a time over the whole
  miss set, instead of N independent Python walks.
* The LBI fold, classification and the node-state snapshot run as NumPy
  array programs over struct-of-arrays columns
  (:class:`~repro.core.soa.NodeStateArrays`); the VSA sweep visits only
  bucket-holding slots through a heap ordered exactly like the serial
  deepest-first walk.

Bit-exactness rests on three identities, each exercised by the digest
property tests: ``0.0 + x == x`` and ``min(inf, x) == x`` make the
zero/inf-initialised scatter-fold reproduce the serial left-fold; an
``np.add.at``/``np.minimum.at`` call applies its updates sequentially in
index order, so ordering the per-level merge by ``(parent, child_rank)``
reproduces the serial ascending-child merge; and batched
``Generator.integers(0, counts)`` draws are stream-identical to the
serial per-node scalar draws.

Anything the fast path cannot reproduce exactly — fault injection,
partitions, enabled tracing — falls back to the inherited serial round
wholesale, so digest identity under those regimes holds by construction.
"""

from __future__ import annotations


import numpy as np

from repro.core.balancer import LoadBalancer
from repro.core.classification import (
    ClassificationResult,
    classify_arrays,
)
from repro.core.lbi import AggregationTrace
from repro.core.records import (
    Assignment,
    NodeClass,
    ShedCandidate,
    SpareCapacity,
    SystemLBI,
)
from repro.core.rendezvous import pair_rendezvous
from repro.core.selection import select_shed_subset
from repro.core.report import BalanceReport
from repro.core.soa import NodeStateArrays
from repro.core.vsa import VSAResult
from repro.core.vst import execute_transfers
from repro.dht.events import RingEventLog
from repro.dht.node import PhysicalNode
from repro.exceptions import BalancerError
from repro.faults.stats import FaultRoundStats
from repro.idspace.hashing import hash_to_id
from repro.ktree.index import TreeIndex
from repro.ktree.tree import KnaryTree
from repro.obs.profile import PhaseClock, profile_from_report


class IncrementalLoadBalancer(LoadBalancer):
    """Drop-in :class:`LoadBalancer` with incremental, vectorized rounds.

    Accepts the same constructor arguments plus ``descent_mode``;
    selection between the fast path and the serial fallback happens per
    round (see the module docstring).  The config is untouched — engine
    choice is not part of the digested experiment identity.

    Parameters
    ----------
    descent_mode:
        ``"batched"`` (default) resolves cache misses through the
        level-synchronous :meth:`KnaryTree.descend_batch` and repairs
        key-to-leaf cache entries from each ``refresh_dirty`` delta.
        ``"legacy"`` reproduces the PR 6 behaviour — per-key
        :meth:`KnaryTree.ensure_leaf_for_key` descents and per-use cache
        validation with no delta repair — and exists for honest A/B
        timing of the miss-descent phase; both modes are byte-identical
        in digest.
    """

    #: Above this many logged ring events per round (relative floor 64,
    #: else 1/8 of the virtual-server population) the span machinery
    #: costs more than a from-scratch rebuild; the engine rebuilds.
    REBUILD_EVENT_FLOOR = 64

    def __init__(self, *args: object, **kwargs: object) -> None:
        mode = kwargs.pop("descent_mode", "batched")
        if mode not in ("batched", "legacy"):
            raise BalancerError(
                f"descent_mode must be 'batched' or 'legacy', got {mode!r}"
            )
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self._descent_mode: str = str(mode)
        self._events = RingEventLog(self.ring)
        self._tree: KnaryTree | None = None
        self._index: TreeIndex | None = None
        #: vs_id -> region center key for reporter resolution; the leaf
        #: slot itself lives in ``_key_leaf`` (single source of truth,
        #: so delta repair has exactly one map to fix).
        self._center_cache: dict[int, int] = {}
        #: node index -> notional hash position (pure, survives rebuilds).
        self._hash_keys: dict[int, int] = {}
        #: identifier key -> leaf slot.  In batched mode every entry
        #: names a live leaf containing its key (maintained by
        #: ``_repair_cache``); in legacy mode entries are validated on
        #: use instead.
        self._key_leaf: dict[int, int] = {}
        #: leaf slot -> keys cached there (reverse of ``_key_leaf``,
        #: batched mode only; drives delta-driven repair).  Entries may
        #: be stale after a key is remapped — repair re-checks against
        #: ``_key_leaf`` before trusting one.
        self._slot_keys: dict[int, list[int]] = {}
        #: Cumulative resolution economy: keys resolved via batch
        #: descent, cache entries surgically remapped without a descent,
        #: and cached slots found invalid at use time (the PR 6 corridor
        #: re-descents — zero in batched mode, by the repair invariant).
        self.descent_stats: dict[str, int] = {
            "miss_descents": 0,
            "cache_repairs": 0,
            "stale_cache_misses": 0,
        }
        self._needs_reset = True
        self._acc_load: np.ndarray | None = None
        self._acc_cap: np.ndarray | None = None
        self._acc_min: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Round dispatch
    # ------------------------------------------------------------------
    def run_round(self) -> BalanceReport:
        """One round: fast path when exactness allows, else serial.

        Fault injection, an active Byzantine adversary, partitions, an
        attached write-ahead journal and enabled tracing run through the
        inherited serial implementation (their rng/event interleavings
        are inherently per-object); the persistent tree is invalidated
        so the next fast round rebuilds from the current ring.
        """
        if (
            self.faults is not None
            or self.adversary is not None
            or self.membership is not None
            or self.journal is not None
            or self.tracer.enabled
            or self.ring.num_virtual_servers == 0
            or not self.ring.alive_nodes
        ):
            self._needs_reset = True
            self._events.drain(resolve=False)
            return super().run_round()
        stats = FaultRoundStats()
        self._round_index += 1
        return self._run_incremental_round(stats)

    # ------------------------------------------------------------------
    # World synchronisation
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        self._tree = KnaryTree(
            self.ring, self.config.tree_degree, metrics=self.metrics
        )
        self._index = TreeIndex(self._tree)
        self._center_cache.clear()
        self._key_leaf.clear()
        self._slot_keys.clear()
        self._needs_reset = False

    def _sync_world(self, clock: PhaseClock) -> None:
        """Bring the persistent tree and caches up to the current ring."""
        log = self._events
        if self._needs_reset or self._tree is None or self._index is None:
            log.drain(resolve=False)
            self._rebuild()
            return
        limit = max(
            self.REBUILD_EVENT_FLOOR, self.ring.num_virtual_servers // 8
        )
        if log.pending_events > limit:
            log.drain(resolve=False)
            self._rebuild()
            return
        delta = log.drain()
        if delta.full_reset:
            self._rebuild()
            return
        if delta.empty:
            return
        assert delta.dirty is not None
        refresh = self._tree.refresh_dirty(delta.dirty)
        index = self._index
        slot_keys = self._slot_keys
        # Slots whose cached key->leaf entries the delta invalidated:
        # pruned leaves and leaves that flipped internal.  (Nodes that
        # *became* leaves were internal before, so nothing was cached
        # there; their keys sit on the pruned descendants.)
        doomed: list[int] = []
        for node in refresh.pruned_nodes:
            slot = index.slot_if_registered(node)
            index.drop(node)
            if slot is not None and slot in slot_keys:
                doomed.append(slot)
        for node in refresh.became_leaf:
            index.set_leaf(node, True)
        for node in refresh.became_internal:
            slot = index.slot_if_registered(node)
            index.set_leaf(node, False)
            if slot is not None and slot in slot_keys:
                doomed.append(slot)
        for vs_id in delta.affected_vs_ids:
            self._center_cache.pop(vs_id, None)
        if doomed and self._descent_mode == "batched":
            self._repair_cache(doomed, clock)

    def _count(self, name: str, amount: int) -> None:
        """Bump a resolution-economy stat (and its metrics counter).

        The counter is touched even at zero so a snapshot always carries
        it — the bench-trend baseline pins ``stale_cache_misses`` at 0,
        which only works if the instrument exists in every dump.
        """
        if self.metrics is not None:
            counter = self.metrics.counter(f"incremental.{name}")
            if amount:
                counter.inc(amount)
        self.descent_stats[name] += amount

    # ------------------------------------------------------------------
    # Batched key-to-leaf resolution + delta-driven cache repair
    # ------------------------------------------------------------------
    def _descend_slots(self, keys: np.ndarray) -> np.ndarray:
        """Leaf slots for ``keys`` via one level-synchronous batch descent."""
        index = self._index
        tree = self._tree
        assert index is not None and tree is not None
        leaves, ordinals = tree.descend_batch(keys)
        slots = np.fromiter(
            (index.slot(leaf) for leaf in leaves),
            dtype=np.int64,
            count=len(leaves),
        )
        self._count("miss_descents", int(keys.size))
        return slots[ordinals]

    def _resolve_and_cache(self, keys: np.ndarray) -> np.ndarray:
        """Resolve uncached ``keys`` to leaf slots and register them.

        Directory hits resolve without touching the tree; the remaining
        misses descend together.  Every key is recorded in ``_key_leaf``
        (and the reverse map) so the next delta repair can find it.
        """
        index = self._index
        assert index is not None
        slots = index.resolve_leaves(keys)
        miss = np.flatnonzero(slots < 0)
        if miss.size:
            slots[miss] = self._descend_slots(keys[miss])
        key_leaf = self._key_leaf
        slot_keys = self._slot_keys
        for key, slot in zip(keys.tolist(), slots.tolist()):
            if key_leaf.get(key) != slot:
                key_leaf[key] = slot
                slot_keys.setdefault(slot, []).append(key)
        return slots

    def _repair_cache(self, doomed: list[int], clock: PhaseClock) -> None:
        """Remap the cache entries stranded on ``doomed`` slots.

        The delta names exactly the slots that stopped being live
        leaves, so the affected keys are read off the reverse map
        instead of scanning the cache.  Survivors whose key now lands in
        an already-materialised leaf are rebound by one batched
        directory lookup (*repairs* — no descent); only keys whose
        corridor was genuinely re-tiled descend, batched.  Afterwards
        every cache entry again names a live leaf containing its key,
        which is what lets the fold skip per-use validation misses.
        """
        key_leaf = self._key_leaf
        slot_keys = self._slot_keys
        affected: list[int] = []
        for slot in doomed:
            for key in slot_keys.pop(slot, ()):
                # Reverse entries can be stale (key since remapped);
                # only keys still bound to the doomed slot move.
                if key_leaf.get(key) == slot:
                    affected.append(key)
        if not affected:
            return
        with clock.phase("miss_descent"):
            before = self.descent_stats["miss_descents"]
            self._resolve_and_cache(np.asarray(affected, dtype=np.int64))
            descended = self.descent_stats["miss_descents"] - before
        self._count("cache_repairs", len(affected) - descended)

    # ------------------------------------------------------------------
    # Per-key key-to-leaf resolution (legacy descent mode)
    # ------------------------------------------------------------------
    def _leaf_slot_for_key(self, key: int) -> int:
        """Leaf slot owning ``key``, via the per-use-validated cache.

        A cached slot is reusable iff it still names a live leaf: leaf
        regions are immutable and tree shape is a pure function of the
        ring, so a live leaf containing ``key`` is always the node a
        fresh root-to-leaf descent would end at.  This is the PR 6
        resolution path, kept for ``descent_mode="legacy"``; the batched
        mode resolves through :meth:`_resolve_and_cache` instead.
        """
        index = self._index
        tree = self._tree
        assert index is not None and tree is not None
        slot = self._key_leaf.get(key)
        if slot is not None and index.valid_leaf(slot):
            return slot
        leaf = tree.ensure_leaf_for_key(key)
        slot = index.slot(leaf)
        self._key_leaf[key] = slot
        self._count("miss_descents", 1)
        return slot

    # ------------------------------------------------------------------
    # The incremental round
    # ------------------------------------------------------------------
    def _run_incremental_round(self, stats: FaultRoundStats) -> BalanceReport:
        """Mirror of ``LoadBalancer._run_plain_round`` over slot arrays."""
        cfg = self.config
        ring = self.ring
        tracer = self.tracer
        alive = ring.alive_nodes
        arrays = NodeStateArrays.snapshot(alive)
        clock = PhaseClock()
        round_span = tracer.span(
            "round",
            mode=cfg.proximity_mode,
            nodes=len(alive),
            virtual_servers=ring.num_virtual_servers,
            tree_degree=cfg.tree_degree,
        )

        # Phase 1: dirty-subtree repair + vectorized LBI fold.  The
        # ``miss_descent`` entry in ``phase_seconds`` is a *sub*-phase:
        # descent/repair segments inside lbi and vsa also accumulate
        # there, so its total is the round's key-resolution-beyond-cache
        # cost (phase_seconds is excluded from the digest).
        with clock.phase("lbi"), tracer.span("lbi"):
            self._sync_world(clock)
            system, agg_trace, lbi_count, lbi_height = self._fold_lbi(
                alive, arrays, clock
            )
            self._stale_lbi = system
            self._stale_lbi_age = 0

        # Phase 2: classification over the state columns.
        with clock.phase("classification"), tracer.span("classification"):
            classification_before = classify_arrays(
                arrays.indices,
                arrays.capacities,
                arrays.loads,
                system,
                cfg.epsilon,
                tracer=tracer,
                stage="before",
            )

        with clock.phase("vsa"):
            # Phase 3a: publication, with the placement draws batched
            # into one stream-identical ``integers(0, counts)`` call.
            vsa_span = tracer.span("vsa")
            published = self._publish_vsa_entries(alive, classification_before)
            # Phase 3b: sparse bottom-up sweep over bucket-holding slots.
            vsa_result, vsa_count, vsa_height = self._sweep_sparse(
                published, system.min_vs_load, clock
            )
            tree_height = max(lbi_height, vsa_height)
            tree_nodes = lbi_count + vsa_count
            vsa_result.rounds = tree_height
            vsa_span.end()

        # Phase 4: transfers, identical to the serial batch (no faults
        # on this path by construction).
        skipped: list[Assignment] = []
        failed: list[Assignment] = []
        with clock.phase("vst"), tracer.span("vst"):
            transfers = execute_transfers(
                ring,
                vsa_result.assignments,
                self.oracle,
                skipped=skipped,
                tracer=tracer,
                faults=None,
                failed=failed,
                fault_stats=stats,
            )

        loads_after = np.asarray([n.load for n in alive], dtype=np.float64)
        classification_after = classify_arrays(
            arrays.indices,
            arrays.capacities,
            loads_after,
            system,
            cfg.epsilon,
            tracer=tracer,
            stage="after",
        )
        round_span.end(
            transfers=len(transfers),
            moved_load=float(sum(t.load for t in transfers)),
            heavy_after=len(classification_after.heavy),
            failed_transfers=len(failed),
            faults_injected=stats.injected_total,
        )

        report = BalanceReport(
            config=cfg,
            system_lbi=system,
            num_nodes=len(alive),
            num_virtual_servers=ring.num_virtual_servers,
            node_indices=arrays.indices,
            capacities=arrays.capacities,
            loads_before=arrays.loads,
            loads_after=loads_after,
            classification_before=classification_before,
            classification_after=classification_after,
            aggregation=agg_trace,
            vsa=vsa_result,
            transfers=transfers,
            skipped_assignments=skipped,
            failed_assignments=failed,
            fault_stats=stats,
            tree_height=tree_height,
            tree_nodes_materialized=tree_nodes,
            in_flight_after=0.0,
            phase_seconds=clock.seconds,
        )
        report.profile = profile_from_report(report)
        if self.metrics is not None:
            self._record_metrics(report)
        return report

    # ------------------------------------------------------------------
    def _publish_vsa_entries(
        self,
        nodes: list[PhysicalNode],
        classification: ClassificationResult,
    ) -> list[tuple[int, ShedCandidate | SpareCapacity]]:
        """Serial publication with the placement draws batched.

        The shed-subset selection consumes no rng and the placement key
        draw depends only on the generator state and the publisher's VS
        count, so deciding every publisher first and then drawing all
        keys in one :meth:`RandomVSPlacement.keys_for` call leaves the
        rng stream — and hence the published list — byte-identical to
        the inherited per-node loop.
        """
        cfg = self.config
        placement = self._placement
        assert placement is not None
        keys_for = getattr(placement, "keys_for", None)
        if keys_for is None:
            return super()._publish_vsa_entries(nodes, classification)
        publishers: list[PhysicalNode] = []
        payloads: list[list[ShedCandidate] | SpareCapacity] = []
        for node in nodes:
            cls = classification.classes[node.index]
            if cls is NodeClass.HEAVY:
                target = classification.targets[node.index]
                vs_list = node.virtual_servers
                loads = [vs.load for vs in vs_list]
                shed = select_shed_subset(
                    loads,
                    excess=node.load - target,
                    policy=cfg.selection_policy,
                    keep_at_least=cfg.keep_at_least,
                )
                if not shed:
                    continue
                publishers.append(node)
                payloads.append(
                    [
                        ShedCandidate(
                            load=vs_list[idx].load,
                            vs_id=vs_list[idx].vs_id,
                            node_index=node.index,
                        )
                        for idx in shed
                    ]
                )
            elif cls is NodeClass.LIGHT:
                delta = classification.targets[node.index] - node.load
                if delta <= 0:
                    continue
                publishers.append(node)
                payloads.append(SpareCapacity(delta=delta, node_index=node.index))
        published: list[tuple[int, ShedCandidate | SpareCapacity]] = []
        for key, payload in zip(keys_for(publishers), payloads):
            if isinstance(payload, SpareCapacity):
                published.append((key, payload))
            else:
                for entry in payload:
                    published.append((key, entry))
        return published

    # ------------------------------------------------------------------
    # Phase 1: vectorized LBI aggregation
    # ------------------------------------------------------------------
    def _ensure_accumulators(self, needed: int) -> None:
        if self._acc_load is None or self._acc_load.size < needed:
            size = max(needed, 1024)
            if self._acc_load is not None:
                size = max(size, self._acc_load.size * 2)
            # No copy: accumulator cells are reset per round at exactly
            # the slots the round touches; stale cells are never read.
            self._acc_load = np.empty(size, dtype=np.float64)
            self._acc_cap = np.empty(size, dtype=np.float64)
            self._acc_min = np.empty(size, dtype=np.float64)

    def _fold_lbi(
        self,
        alive: list[PhysicalNode],
        arrays: NodeStateArrays,
        clock: PhaseClock,
    ) -> tuple[SystemLBI, AggregationTrace, int, int]:
        """Reporter draws, cached leaf resolution, scatter + level fold.

        Reporter keys resolve through the repaired ``_key_leaf`` cache;
        the misses (fresh joins, first sightings, post-rebuild rounds)
        are collected and resolved in one batch at the end of the
        collection loop — directory lookups first, one level-synchronous
        descent for the rest.  With delta repair active, a cached slot
        can only be invalid if repair missed it, so per-use invalidity
        feeds the ``stale_cache_misses`` counter (pinned to zero by the
        regression tests).

        Returns ``(system, trace, path_nodes, path_height)`` where the
        last two describe the union of report root-to-leaf paths — the
        node set a fresh serial tree would have materialised.
        """
        index = self._index
        assert index is not None
        ring = self.ring
        # Batched reporter draws: stream-identical to the serial
        # per-node ``integers(len(vs))`` scalar draws, in alive order
        # (nodes without virtual servers draw nothing, as in serial).
        has_vs = arrays.vs_counts > 0
        counts = arrays.vs_counts[has_vs]
        if counts.size:
            draws = self._lbi_rng.integers(0, counts).tolist()
        else:
            draws = []
        leaf_slots = np.empty(len(alive), dtype=np.int64)
        center_cache = self._center_cache
        hash_keys = self._hash_keys
        key_leaf = self._key_leaf
        alive_arr = index.alive
        leaf_arr = index.is_leaf
        miss_pos: list[int] = []
        miss_keys: list[int] = []
        stale = 0
        draw_pos = 0
        for i, node in enumerate(alive):
            vs_list = node.virtual_servers
            if vs_list:
                vs = vs_list[draws[draw_pos]]
                draw_pos += 1
                key = center_cache.get(vs.vs_id)
                if key is None:
                    key = ring.region_of(vs).center
                    center_cache[vs.vs_id] = key
            else:
                key = hash_keys.get(node.index)
                if key is None:
                    key = hash_to_id(f"node-{node.index}", ring.space)
                    hash_keys[node.index] = key
            slot = key_leaf.get(key)
            if slot is not None and alive_arr[slot] and leaf_arr[slot]:
                leaf_slots[i] = slot
                continue
            if slot is not None:
                stale += 1
            miss_pos.append(i)
            miss_keys.append(key)
        self._count("stale_cache_misses", stale)
        if miss_keys:
            with clock.phase("miss_descent"):
                batch = np.asarray(miss_keys, dtype=np.int64)
                if self._descent_mode == "batched":
                    resolved = self._resolve_and_cache(batch)
                else:
                    resolved = np.fromiter(
                        (self._leaf_slot_for_key(int(k)) for k in batch),
                        dtype=np.int64,
                        count=batch.size,
                    )
                leaf_slots[np.asarray(miss_pos, dtype=np.int64)] = resolved

        index.new_stamp()
        fresh, count, height = index.stamp_paths(leaf_slots)
        self._ensure_accumulators(len(index))
        acc_load = self._acc_load
        acc_cap = self._acc_cap
        acc_min = self._acc_min
        assert acc_load is not None and acc_cap is not None and acc_min is not None
        acc_load[fresh] = 0.0
        acc_cap[fresh] = 0.0
        acc_min[fresh] = np.inf
        # Record scatter in alive order == the serial per-leaf append
        # order (ufunc .at applies updates sequentially in index order).
        np.add.at(acc_load, leaf_slots, arrays.loads)
        np.add.at(acc_cap, leaf_slots, arrays.capacities)
        np.minimum.at(acc_min, leaf_slots, arrays.min_vs)

        # Child-to-parent merges, one level at a time from the deepest:
        # a child's accumulator is final before its level is gathered,
        # and (parent, rank) ordering inside a level reproduces the
        # serial ascending-child left-fold after the record fold.
        levels = index.level[fresh]
        parents = index.parent[fresh]
        ranks = index.child_rank[fresh]
        order = np.lexsort((ranks, parents, -levels))
        s_slots = fresh[order]
        s_levels = levels[order]
        s_parents = parents[order]
        cuts = np.nonzero(np.diff(s_levels))[0] + 1
        starts = np.concatenate([[0], cuts])
        ends = np.concatenate([cuts, [s_levels.size]])
        for a, b in zip(starts.tolist(), ends.tolist()):
            if s_levels[a] == 0:
                continue
            children = s_slots[a:b]
            merge_parents = s_parents[a:b]
            np.add.at(acc_load, merge_parents, acc_load[children])
            np.add.at(acc_cap, merge_parents, acc_cap[children])
            np.minimum.at(acc_min, merge_parents, acc_min[children])

        if not count:  # pragma: no cover - alive is non-empty here
            raise BalancerError("no LBI reports to aggregate")
        system = SystemLBI(
            total_load=float(acc_load[0]),
            total_capacity=float(acc_cap[0]),
            min_vs_load=float(acc_min[0]),
        )
        trace = AggregationTrace(
            tree_height=height,
            upward_rounds=height,
            downward_rounds=height,
            upward_messages=count - 1,
            downward_messages=count - 1,
            reports=len(alive),
        )
        return system, trace, count, height

    # ------------------------------------------------------------------
    # Phase 3b: sparse bottom-up sweep
    # ------------------------------------------------------------------
    def _sweep_sparse(
        self,
        published: list[tuple[int, ShedCandidate | SpareCapacity]],
        min_vs_load: float,
        clock: PhaseClock,
    ) -> tuple[VSAResult, int, int]:
        """Deliver publications and sweep only the pairing frontier.

        Pairing fires only where a bucket reaches the rendezvous
        threshold, and a bucket never holds more entries than were
        delivered into the slot's subtree — a count that is monotone up
        the tree.  The slots whose subtree count reaches the threshold
        therefore form an upward-closed *frontier* subtree (plus the
        root), and everything below it is pure ordered concatenation:
        no pairing, one relayed upward message per visited slot.  Below
        the frontier the serial merge order is a DFS — own deliveries
        first, then children by descending region start — which for
        leaf-delivered entries equals a stable sort by ``(-region end,
        level, publication index)``, because tree regions never wrap
        and children tile their parent in rank order.  So the
        sub-frontier cascade collapses to one ``np.lexsort`` and the
        Python loop runs only over frontier slots, in the serial
        snapshot's ``(-level, -start)`` pop order.  Returns the result
        plus the count/height of delivery path nodes *newly* stamped
        beyond the LBI walk (same stamp generation).
        """
        index = self._index
        tree = self._tree
        assert index is not None and tree is not None
        result = VSAResult(entries_published=len(published))
        if not published:
            return result, 0, 0
        # Batch-resolve the placement keys against the sorted leaf
        # directory; only keys landing in never-materialised gaps (-1)
        # descend the tree.
        keys = np.fromiter(
            (key for key, _ in published),
            dtype=np.int64,
            count=len(published),
        )
        slots_e = index.resolve_leaves(keys)
        miss = np.flatnonzero(slots_e < 0)
        if miss.size:
            # Placement keys are fresh draws each round, so they are
            # not worth a cache entry — but their descents batch just
            # the same (legacy mode keeps the per-key PR 6 walks).
            with clock.phase("miss_descent"):
                if self._descent_mode == "batched":
                    slots_e[miss] = self._descend_slots(keys[miss])
                else:
                    for i in miss:
                        slots_e[i] = index.slot(
                            tree.ensure_leaf_for_key(int(keys[i]))
                        )
                    self._count("miss_descents", int(miss.size))
        _, count, height = index.stamp_paths(slots_e)

        threshold = self.config.rendezvous_threshold
        strict = self.config.strict_heaviest_first
        level_arr = index.level
        parent_arr = index.parent
        start_arr = index.start
        length_arr = index.length

        # Per-slot subtree delivery counts: chase every delivery path to
        # the root, merging duplicate parents per step so each slot is
        # touched once per distinct depth it is reached from.
        counts = np.zeros(parent_arr.shape[0], dtype=np.int64)
        cur, weight = np.unique(slots_e, return_counts=True)
        while cur.size:
            counts[cur] += weight
            parents = parent_arr[cur]
            keep = parents >= 0
            parents, weight = parents[keep], weight[keep]
            if parents.size:
                cur, inverse = np.unique(parents, return_inverse=True)
                weight = np.bincount(
                    inverse, weights=weight, minlength=cur.size
                ).astype(np.int64)
            else:
                cur = parents
        in_frontier = counts >= threshold
        in_frontier[0] = True  # the root pairs unconditionally

        # Every sub-frontier slot on a delivery path holds a non-empty
        # bucket when popped (nothing below it can pair) and relays it
        # in exactly one upward message.
        result.upward_messages += int(
            np.count_nonzero((counts > 0) & ~in_frontier)
        )

        # Per entry: the deepest frontier ancestor (its pairing anchor)
        # and the topmost sub-frontier slot under it (the child position
        # its clean-merged group occupies in the anchor's bucket).
        anchor = slots_e.copy()
        attach = np.full(anchor.shape, -1, dtype=np.int64)
        active = np.flatnonzero(~in_frontier[anchor])
        while active.size:
            attach[active] = anchor[active]
            anchor[active] = parent_arr[anchor[active]]
            active = active[~in_frontier[anchor[active]]]

        # Assemble the clean groups in serial merge order.  The level
        # key only breaks end-ties between nested slots; deliveries all
        # land on (disjoint) leaves, so it is inert armour in case
        # interior delivery ever appears.
        entries = [entry for _, entry in published]
        end_e = start_arr[slots_e] + length_arr[slots_e]
        grouped = np.flatnonzero(attach >= 0)
        order = grouped[
            np.lexsort((grouped, level_arr[slots_e[grouped]], -end_e[grouped]))
        ]
        groups: dict[int, tuple[list[ShedCandidate], list[SpareCapacity]]] = {}
        for i in order.tolist():
            buck = groups.get(int(attach[i]))
            if buck is None:
                buck = ([], [])
                groups[int(attach[i])] = buck
            entry = entries[i]
            if isinstance(entry, ShedCandidate):
                buck[0].append(entry)
            elif isinstance(entry, SpareCapacity):
                buck[1].append(entry)
            else:
                raise BalancerError(f"unknown VSA entry type {type(entry)!r}")
        direct: dict[int, tuple[list[ShedCandidate], list[SpareCapacity]]] = {}
        for i in np.flatnonzero(attach < 0).tolist():
            buck = direct.get(int(anchor[i]))
            if buck is None:
                buck = ([], [])
                direct[int(anchor[i])] = buck
            entry = entries[i]
            if isinstance(entry, ShedCandidate):
                buck[0].append(entry)
            elif isinstance(entry, SpareCapacity):
                buck[1].append(entry)
            else:
                raise BalancerError(f"unknown VSA entry type {type(entry)!r}")

        # Contributions pending at each frontier slot, keyed by the
        # feeding child's region start; children of one parent share a
        # level, so the serial pop order extends them into the parent
        # bucket in descending start order.
        feeders: dict[
            int, list[tuple[int, list[ShedCandidate], list[SpareCapacity]]]
        ] = {}
        for child, buck in groups.items():
            feeders.setdefault(int(parent_arr[child]), []).append(
                (int(start_arr[child]), buck[0], buck[1])
            )

        frontier = np.flatnonzero(in_frontier & (counts > 0))
        pop_order = frontier[
            np.lexsort((-start_arr[frontier], -level_arr[frontier]))
        ]
        for slot in pop_order.tolist():
            base = direct.get(slot)
            heavy = list(base[0]) if base else []
            light = list(base[1]) if base else []
            feed = feeders.pop(slot, None)
            if feed is not None:
                feed.sort(key=lambda item: -item[0])
                for _, add_heavy, add_light in feed:
                    heavy.extend(add_heavy)
                    light.extend(add_light)
            if not heavy and not light:
                continue
            level = int(level_arr[slot])
            is_root = slot == 0
            if is_root or (len(heavy) + len(light)) >= threshold:
                outcome = pair_rendezvous(
                    heavy,
                    light,
                    min_vs_load=min_vs_load,
                    level=level,
                    strict_heaviest_first=strict,
                )
                result.assignments.extend(outcome.assignments)
                result.pairings_by_level[level] += len(outcome.assignments)
                up_heavy, up_light = (
                    outcome.leftover_heavy,
                    outcome.leftover_light,
                )
            else:
                up_heavy, up_light = heavy, light
            if is_root:
                result.unassigned_heavy.extend(up_heavy)
                result.unassigned_light.extend(up_light)
            elif up_heavy or up_light:
                feeders.setdefault(int(parent_arr[slot]), []).append(
                    (int(start_arr[slot]), up_heavy, up_light)
                )
                result.upward_messages += 1
        return result, count, height
