"""Configuration of the load balancer."""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Any

from repro.constants import (
    DEFAULT_EPSILON,
    DEFAULT_NUM_LANDMARKS,
    DEFAULT_RENDEZVOUS_THRESHOLD,
    DEFAULT_TREE_DEGREE,
)
from repro.exceptions import ConfigError

#: Valid proximity modes.
MODES = ("aware", "ignorant")

#: Valid shed-subset selection policies.
POLICIES = ("exact", "greedy")


@dataclass(frozen=True, slots=True)
class BalancerConfig:
    """All tunables of the load balancer, with the paper's defaults.

    Attributes
    ----------
    epsilon:
        Slack in the target load ``T_i = (1+epsilon)(L/C)C_i``; 0 is the
        paper's ideal.
    tree_degree:
        Degree K of the aggregation tree (paper: 2, checked against 8).
    rendezvous_threshold:
        Combined list length at which a non-root KT node starts pairing
        (paper example: 30).
    proximity_mode:
        ``"aware"`` (Hilbert placement) or ``"ignorant"`` (random ring
        placement) — the paper's two compared systems.
    selection_policy:
        ``"exact"`` or ``"greedy"`` shed-subset selection.
    strict_heaviest_first:
        Literal stop-at-first-unmatchable pairing (see
        :mod:`repro.core.rendezvous`).
    grid_bits:
        Hilbert grid order (bits per landmark dimension).
    num_landmarks:
        Landmark count ``m`` (paper: 15).
    landmark_strategy:
        ``"spread"`` or ``"random"`` landmark selection.
    keep_at_least:
        Minimum number of virtual servers a heavy node retains.  The
        paper's scheme has no such floor (a very low-capacity node must
        be able to shed *all* of its virtual servers to get below its
        target), so the default is 0; set to 1 to model deployments
        where every node must keep a ring presence.
    """

    epsilon: float = DEFAULT_EPSILON
    tree_degree: int = DEFAULT_TREE_DEGREE
    rendezvous_threshold: int = DEFAULT_RENDEZVOUS_THRESHOLD
    proximity_mode: str = "aware"
    selection_policy: str = "exact"
    strict_heaviest_first: bool = False
    grid_bits: int = 2
    num_landmarks: int = DEFAULT_NUM_LANDMARKS
    landmark_strategy: str = "spread"
    keep_at_least: int = 0

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ConfigError(f"epsilon must be >= 0, got {self.epsilon}")
        if not isinstance(self.tree_degree, int) or self.tree_degree < 2:
            raise ConfigError(f"tree_degree must be an int >= 2, got {self.tree_degree!r}")
        if self.rendezvous_threshold < 0:
            raise ConfigError("rendezvous_threshold must be >= 0")
        if self.proximity_mode not in MODES:
            raise ConfigError(
                f"proximity_mode must be one of {MODES}, got {self.proximity_mode!r}"
            )
        if self.selection_policy not in POLICIES:
            raise ConfigError(
                f"selection_policy must be one of {POLICIES}, got {self.selection_policy!r}"
            )
        if not isinstance(self.grid_bits, int) or self.grid_bits < 1:
            raise ConfigError(f"grid_bits must be an int >= 1, got {self.grid_bits!r}")
        if not isinstance(self.num_landmarks, int) or self.num_landmarks < 1:
            raise ConfigError(f"num_landmarks must be an int >= 1, got {self.num_landmarks!r}")
        if self.landmark_strategy not in ("spread", "random"):
            raise ConfigError(f"unknown landmark strategy {self.landmark_strategy!r}")
        if self.keep_at_least < 0:
            raise ConfigError("keep_at_least must be >= 0")

    def as_dict(self) -> dict[str, Any]:
        """The config as a plain dict (JSON-friendly; dataclass order)."""
        return asdict(self)
