"""Record types exchanged by the load-balancing protocol.

These model the wire-level tuples of the paper:

* ``LBIRecord`` — the per-node report ``<L_i, C_i, L_{i,min}>``;
* ``SystemLBI`` — the root aggregate ``<L, C, L_min>``;
* ``ShedCandidate`` — a heavy node's ``<L_{i,k}, v_{i,k}, ip_addr(i)>``;
* ``SpareCapacity`` — a light node's ``<delta_L_j, ip_addr(j)>``;
* ``Assignment`` — a paired VSA decision sent to both endpoints.

The scalar conservation guard :func:`assert_loads_conserved` lives here
too: it is the leaf-level check behind the protocol invariant that
VSA/VST *move* load without creating or destroying it, and ``records``
is the one core module with no intra-core imports, so every phase can
use it without cycles.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from repro.exceptions import ConservationError

#: Default relative tolerance for load-conservation checks.  Transfers
#: subtract and re-add the same float quantities along different orders,
#: so totals agree only to rounding; 1e-9 relative is ~1e6 ULPs of
#: headroom at double precision while still catching any real leak
#: (the smallest object load is ~1e-5 of a typical system load).
CONSERVATION_RTOL = 1e-9


def assert_loads_conserved(
    before: float,
    after: float,
    *,
    context: str,
    rtol: float = CONSERVATION_RTOL,
) -> None:
    """Raise :class:`ConservationError` unless ``after`` ≈ ``before``.

    ``context`` names the operation being checked (it prefixes the error
    message, e.g. ``"vst.execute_transfers"``).  The comparison is
    ``math.isclose`` with relative tolerance ``rtol`` and an absolute
    floor of the same magnitude, so exact-zero totals compare clean.
    """
    if math.isclose(before, after, rel_tol=rtol, abs_tol=rtol):
        return
    raise ConservationError(
        f"{context}: load not conserved: total was {before!r} before and "
        f"{after!r} after (drift {after - before:+.6g}, rtol {rtol:g})"
    )


class NodeClass(enum.Enum):
    """Classification of a DHT node (Section 3.3)."""

    HEAVY = "heavy"
    LIGHT = "light"
    NEUTRAL = "neutral"


@dataclass(frozen=True, slots=True)
class LBIRecord:
    """Per-node load-balancing information ``<L_i, C_i, L_{i,min}>``."""

    load: float
    capacity: float
    min_vs_load: float

    def __post_init__(self) -> None:
        if self.load < 0 or self.capacity <= 0 or self.min_vs_load < 0:
            raise ValueError(f"invalid LBI record {self!r}")

    def merge(self, other: "LBIRecord") -> "LBIRecord":
        """Aggregate two reports: sum loads and capacities, min of minima."""
        return LBIRecord(
            load=self.load + other.load,
            capacity=self.capacity + other.capacity,
            min_vs_load=min(self.min_vs_load, other.min_vs_load),
        )


@dataclass(frozen=True, slots=True)
class SystemLBI:
    """The root aggregate ``<L, C, L_min>`` disseminated to every node."""

    total_load: float
    total_capacity: float
    min_vs_load: float

    def __post_init__(self) -> None:
        if self.total_capacity <= 0:
            raise ValueError("system capacity must be positive")
        if self.total_load < 0 or self.min_vs_load < 0:
            raise ValueError("loads must be non-negative")

    @property
    def load_per_capacity(self) -> float:
        """System-wide load/capacity ratio ``L / C``."""
        return self.total_load / self.total_capacity

    @classmethod
    def from_record(cls, record: LBIRecord) -> "SystemLBI":
        return cls(
            total_load=record.load,
            total_capacity=record.capacity,
            min_vs_load=record.min_vs_load,
        )


@dataclass(frozen=True, slots=True)
class ShedCandidate:
    """A virtual server a heavy node wants to shed.

    ``load`` is the virtual server's load ``L_{i,k}``, ``vs_id`` its ring
    identifier and ``node_index`` the (simulated IP address of the)
    shedding physical node.
    """

    load: float
    vs_id: int
    node_index: int

    def __post_init__(self) -> None:
        if self.load < 0:
            raise ValueError("shed candidate load must be non-negative")


@dataclass(frozen=True, slots=True)
class SpareCapacity:
    """A light node's advertised spare capacity ``delta_L_j = T_j - L_j``."""

    delta: float
    node_index: int

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise ValueError("spare capacity must be non-negative")

    def reduced_by(self, amount: float) -> "SpareCapacity":
        """The advertisement left after accepting ``amount`` of load."""
        return replace(self, delta=self.delta - amount)


@dataclass(frozen=True, slots=True)
class Assignment:
    """A paired VSA decision: move ``candidate``'s VS to ``target_node``.

    ``level`` records the K-nary tree level of the rendezvous point that
    made the pairing (root = 0); proximity-aware placement should pair
    most assignments deep in the tree (large ``level``), which the
    analysis layer correlates with transfer distance.
    """

    candidate: ShedCandidate
    target_node: int
    level: int
