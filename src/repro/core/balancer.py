"""The orchestrating :class:`LoadBalancer` — all four phases end to end.

Typical use::

    from repro.core import LoadBalancer, BalancerConfig

    balancer = LoadBalancer(ring, BalancerConfig(proximity_mode="ignorant"), rng=7)
    report = balancer.run_round()
    print(report.summary_text())

With a topology attached and ``proximity_mode="aware"``, the balancer
selects landmarks, measures per-node landmark vectors, fits the Hilbert
grid and publishes VSA information under Hilbert keys; transfer records
then carry real topology distances.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.classification import classify_all
from repro.core.config import BalancerConfig
from repro.core.lbi import aggregate_lbi, collect_lbi_reports
from repro.core.placement import (
    PlacementStrategy,
    ProximityPlacement,
    RandomVSPlacement,
)
from repro.core.records import NodeClass, ShedCandidate, SpareCapacity
from repro.core.report import BalanceReport
from repro.core.selection import select_shed_subset
from repro.core.vsa import VSASweep
from repro.core.vst import execute_transfers
from repro.dht.chord import ChordRing
from repro.exceptions import ConfigError
from repro.ktree.tree import KnaryTree
from repro.proximity.mapping import ProximityMapper
from repro.topology.graph import Topology
from repro.topology.landmarks import landmark_vectors, select_landmarks
from repro.topology.routing import DistanceOracle
from repro.util.rng import ensure_rng, spawn_rngs


class LoadBalancer:
    """Runs the four-phase load-balancing protocol over a Chord ring.

    Parameters
    ----------
    ring:
        The DHT to balance.
    config:
        Tunables; defaults are the paper's experiment settings.
    topology:
        Underlying Internet topology.  Required for
        ``proximity_mode="aware"`` and for distance-annotated transfers.
    oracle:
        Optional pre-built distance oracle over ``topology`` (shared
        across balancers to reuse Dijkstra caches).
    landmarks:
        Optional pre-selected landmark vertex ids.
    placement:
        Optional explicit placement strategy; overrides the one derived
        from ``config.proximity_mode`` (used by ablations that perturb
        landmark vectors or plug in custom key schemes).
    rng:
        Seed or generator; all internal randomness (report VS choice,
        random placement, landmark choice) derives from it.
    """

    def __init__(
        self,
        ring: ChordRing,
        config: BalancerConfig | None = None,
        topology: Topology | None = None,
        oracle: DistanceOracle | None = None,
        landmarks: np.ndarray | None = None,
        placement: PlacementStrategy | None = None,
        rng: int | None | np.random.Generator = None,
    ):
        self.ring = ring
        self.config = config if config is not None else BalancerConfig()
        self.topology = topology
        if topology is not None and oracle is None:
            oracle = DistanceOracle(topology)
        self.oracle = oracle
        (
            self._lbi_rng,
            self._placement_rng,
            self._landmark_rng,
        ) = spawn_rngs(ensure_rng(rng), 3)

        self._placement: PlacementStrategy | None = placement
        self._landmarks = landmarks
        if self._placement is None:
            if self.config.proximity_mode == "aware":
                if self.topology is None or self.oracle is None:
                    raise ConfigError(
                        "proximity_mode='aware' requires a topology (landmark "
                        "vectors are topology distances); use mode='ignorant' "
                        "for pure identifier-space experiments"
                    )
                self._placement = self._build_proximity_placement()
            else:
                self._placement = RandomVSPlacement(self.ring, self._placement_rng)

    # ------------------------------------------------------------------
    def _build_proximity_placement(self) -> ProximityPlacement:
        assert self.oracle is not None and self.topology is not None
        if self._landmarks is None:
            self._landmarks = select_landmarks(
                self.oracle,
                self.config.num_landmarks,
                rng=self._landmark_rng,
                strategy=self.config.landmark_strategy,
            )
        nodes = [n for n in self.ring.nodes if n.site is not None]
        if len(nodes) != len(self.ring.nodes):
            raise ConfigError(
                "all nodes need a topology site for proximity-aware balancing"
            )
        sites = np.asarray([n.site for n in nodes], dtype=np.int64)
        vectors = landmark_vectors(self.oracle, self._landmarks, sites)
        mapper = ProximityMapper.fit(vectors, grid_bits=self.config.grid_bits)
        vec_by_node = {n.index: vectors[i] for i, n in enumerate(nodes)}
        return ProximityPlacement(mapper, vec_by_node, self.ring.space)

    @property
    def landmarks(self) -> np.ndarray | None:
        """Landmark vertex ids in use (``None`` in ignorant mode)."""
        return self._landmarks

    # ------------------------------------------------------------------
    def run_round(self) -> BalanceReport:
        """Execute one full LBI -> classify -> VSA -> VST cycle."""
        cfg = self.config
        ring = self.ring
        alive = ring.alive_nodes
        node_indices = np.asarray([n.index for n in alive], dtype=np.int64)
        capacities = np.asarray([n.capacity for n in alive], dtype=np.float64)
        loads_before = np.asarray([n.load for n in alive], dtype=np.float64)
        phase_seconds: dict[str, float] = {}
        t0 = time.perf_counter()

        # Phase 1: tree + LBI aggregation/dissemination.
        tree = KnaryTree(ring, cfg.tree_degree)
        reports = collect_lbi_reports(ring, tree, rng=self._lbi_rng)
        system, agg_trace = aggregate_lbi(tree, reports)
        phase_seconds["lbi"] = time.perf_counter() - t0
        t0 = time.perf_counter()

        # Phase 2: classification.
        classification_before = classify_all(alive, system, cfg.epsilon)
        phase_seconds["classification"] = time.perf_counter() - t0
        t0 = time.perf_counter()

        # Phase 3a: build VSA entries.
        published: list[tuple[int, ShedCandidate | SpareCapacity]] = []
        assert self._placement is not None
        for node in alive:
            cls = classification_before.classes[node.index]
            if cls is NodeClass.HEAVY:
                target = classification_before.targets[node.index]
                vs_list = node.virtual_servers
                loads = [vs.load for vs in vs_list]
                shed = select_shed_subset(
                    loads,
                    excess=node.load - target,
                    policy=cfg.selection_policy,
                    keep_at_least=cfg.keep_at_least,
                )
                if not shed:
                    continue
                key = self._placement.key_for(node)
                for idx in shed:
                    published.append(
                        (
                            key,
                            ShedCandidate(
                                load=vs_list[idx].load,
                                vs_id=vs_list[idx].vs_id,
                                node_index=node.index,
                            ),
                        )
                    )
            elif cls is NodeClass.LIGHT:
                delta = classification_before.targets[node.index] - node.load
                if delta <= 0:
                    continue
                key = self._placement.key_for(node)
                published.append(
                    (key, SpareCapacity(delta=delta, node_index=node.index))
                )

        # Phase 3b: bottom-up VSA sweep.
        sweep = VSASweep(
            tree,
            threshold=cfg.rendezvous_threshold,
            min_vs_load=system.min_vs_load,
            strict_heaviest_first=cfg.strict_heaviest_first,
        )
        vsa_result = sweep.run(published)
        phase_seconds["vsa"] = time.perf_counter() - t0
        t0 = time.perf_counter()

        # Phase 4: execute transfers.  Assignments that went stale because
        # churn interleaved between VSA and VST are dropped, not fatal.
        skipped: list = []
        transfers = execute_transfers(
            ring, vsa_result.assignments, self.oracle, skipped=skipped
        )
        phase_seconds["vst"] = time.perf_counter() - t0

        loads_after = np.asarray([n.load for n in alive], dtype=np.float64)
        classification_after = classify_all(alive, system, cfg.epsilon)

        return BalanceReport(
            config=cfg,
            system_lbi=system,
            num_nodes=len(alive),
            num_virtual_servers=ring.num_virtual_servers,
            node_indices=node_indices,
            capacities=capacities,
            loads_before=loads_before,
            loads_after=loads_after,
            classification_before=classification_before,
            classification_after=classification_after,
            aggregation=agg_trace,
            vsa=vsa_result,
            transfers=transfers,
            skipped_assignments=skipped,
            tree_height=tree.height(),
            tree_nodes_materialized=tree.node_count,
            phase_seconds=phase_seconds,
        )

    def run(self, max_rounds: int = 1, stop_when_balanced: bool = True) -> list[BalanceReport]:
        """Run up to ``max_rounds`` rounds, stopping once no node is heavy."""
        if max_rounds < 1:
            raise ConfigError(f"max_rounds must be >= 1, got {max_rounds}")
        out: list[BalanceReport] = []
        for _ in range(max_rounds):
            report = self.run_round()
            out.append(report)
            if stop_when_balanced and report.heavy_after == 0:
                break
        return out
