"""The orchestrating :class:`LoadBalancer` — all four phases end to end.

Typical use::

    from repro.core import LoadBalancer, BalancerConfig

    balancer = LoadBalancer(ring, BalancerConfig(proximity_mode="ignorant"), rng=7)
    report = balancer.run_round()
    print(report.summary_text())

With a topology attached and ``proximity_mode="aware"``, the balancer
selects landmarks, measures per-node landmark vectors, fits the Hilbert
grid and publishes VSA information under Hilbert keys; transfer records
then carry real topology distances.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.adversary.engine import AdversaryEngine, ensure_engine
from repro.adversary.plan import AdversaryPlan
from repro.adversary.stats import AdversaryRoundStats
from repro.adversary.trust import TrustedAggregation
from repro.core.classification import ClassificationResult, classify_all
from repro.core.config import BalancerConfig
from repro.core.lbi import (
    AggregateSanity,
    AggregationTrace,
    aggregate_lbi,
    collect_lbi_reports,
)
from repro.core.placement import (
    PlacementStrategy,
    ProximityPlacement,
    RandomVSPlacement,
)
from repro.core.records import (
    Assignment,
    LBIRecord,
    NodeClass,
    ShedCandidate,
    SpareCapacity,
    SystemLBI,
)
from repro.core.report import BalanceReport
from repro.core.selection import select_shed_subset
from repro.core.vsa import VSAResult, VSASweep
from repro.core.vst import TransferRecord, execute_transfers
from repro.dht.chord import ChordRing
from repro.dht.node import PhysicalNode
from repro.exceptions import ConfigError
from repro.faults.injector import FaultInjector, ensure_injector
from repro.faults.plan import FaultPlan, PartitionSpec
from repro.faults.retry import RetryPolicy
from repro.faults.stats import FaultRoundStats
from repro.ktree.node import KTNode
from repro.ktree.tree import KnaryTree
from repro.membership import MembershipManager, MembershipView
from repro.membership.views import ComponentRingView
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseClock, profile_from_report
from repro.obs.runtime import current_metrics, current_tracer
from repro.obs.trace import Tracer
from repro.proximity.mapping import ProximityMapper
from repro.topology.graph import Topology
from repro.topology.landmarks import landmark_vectors, select_landmarks
from repro.topology.routing import DistanceOracle
from repro.util.rng import ensure_rng, spawn_rngs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (recovery -> core)
    from repro.recovery.journal import TransferJournal


class LoadBalancer:
    """Runs the four-phase load-balancing protocol over a Chord ring.

    Parameters
    ----------
    ring:
        The DHT to balance.
    config:
        Tunables; defaults are the paper's experiment settings.
    topology:
        Underlying Internet topology.  Required for
        ``proximity_mode="aware"`` and for distance-annotated transfers.
    oracle:
        Optional pre-built distance oracle over ``topology`` (shared
        across balancers to reuse Dijkstra caches).
    landmarks:
        Optional pre-selected landmark vertex ids.
    placement:
        Optional explicit placement strategy; overrides the one derived
        from ``config.proximity_mode`` (used by ablations that perturb
        landmark vectors or plug in custom key schemes).
    rng:
        Seed or generator; all internal randomness (report VS choice,
        random placement, landmark choice) derives from it.
    tracer:
        Structured tracer for per-phase spans and events.  Defaults to
        the process-wide tracer from :mod:`repro.obs.runtime`, which is
        the disabled :data:`~repro.obs.trace.NULL_TRACER` unless the
        CLI's ``--trace`` flag (or :func:`repro.obs.observe`) installed
        one — so tracing costs nothing until switched on.
    metrics:
        Metrics registry accumulating cross-round counters/histograms.
        Defaults to the process-wide registry (``None`` = off).
    faults:
        Optional :class:`~repro.faults.FaultPlan` (or a pre-built
        :class:`~repro.faults.FaultInjector` to share one fault history
        across components).  With one attached, every phase runs its
        degraded-mode machinery: LBI reports and VSA publications are
        retried under ``retry`` and may end up lost, transfers may abort
        and roll back, and seeded victims may crash mid-round.  ``None``
        or a null plan keeps every fast path byte-identical to the
        fault-free implementation.
    retry:
        Recovery bounds (attempts, backoff, phase budgets, LBI staleness)
        used when ``faults`` is active; defaults to
        :class:`~repro.faults.RetryPolicy`'s defaults.
    adversary:
        Optional :class:`~repro.adversary.AdversaryPlan` (or a pre-built
        :class:`~repro.adversary.AdversaryEngine` to share one attack
        history across components).  With one attached, drafted nodes
        lie in their LBI reports, renege on prepared transfers or mount
        false dead-node accusations; with ``plan.defense`` on, the
        aggregate gate is upgraded to
        :class:`~repro.adversary.TrustedAggregation` (witness audits,
        EWMA envelopes, trust-scored quarantine) and quarantined nodes
        are excluded from the round by re-tiling the ring without them.
        ``None`` or a null plan keeps every fast path byte-identical to
        the adversary-free implementation.
    """

    def __init__(
        self,
        ring: ChordRing,
        config: BalancerConfig | None = None,
        topology: Topology | None = None,
        oracle: DistanceOracle | None = None,
        landmarks: np.ndarray | None = None,
        placement: PlacementStrategy | None = None,
        rng: int | None | np.random.Generator = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        faults: FaultPlan | FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        adversary: AdversaryPlan | AdversaryEngine | None = None,
    ):
        self.ring = ring
        self.config = config if config is not None else BalancerConfig()
        self.tracer = tracer if tracer is not None else current_tracer()
        self.metrics = metrics if metrics is not None else current_metrics()
        self.faults = ensure_injector(
            faults, tracer=self.tracer, metrics=self.metrics
        )
        self.adversary = ensure_engine(
            adversary, tracer=self.tracer, metrics=self.metrics
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.topology = topology
        if topology is not None and oracle is None:
            oracle = DistanceOracle(topology)
        self.oracle = oracle
        #: Last successfully aggregated LBI, kept for degraded-mode reuse
        #: when a later round loses every report (bounded by
        #: ``retry.lbi_staleness_rounds``).
        self._stale_lbi: SystemLBI | None = None
        self._stale_lbi_age = 0
        self._round_index = 0
        #: Write-ahead transfer journal; attached by the recovery layer
        #: via :meth:`attach_journal` (``None`` = no durability, the
        #: default, with zero overhead on every path).
        self.journal: TransferJournal | None = None
        #: Epoch/partition state machine; only materialised when the
        #: fault plan actually schedules partitions, so every other run
        #: keeps the exact pre-membership code paths.
        self.membership: MembershipManager | None = None
        if self.faults is not None and self.faults.plan.partitions:
            self.membership = MembershipManager(
                ring, self.faults, tracer=self.tracer, metrics=self.metrics
            )
        #: Aggregate plausibility gate; armed whenever faults are in
        #: play (honest reports always pass, so fault runs without
        #: corruption keep their exact behaviour).  With an adversary
        #: plan whose defense is on, the gate is the trust-scored
        #: :class:`~repro.adversary.TrustedAggregation` instead — a
        #: strict extension, so composed fault+adversary runs keep the
        #: base plausibility rules.
        self._sanity: AggregateSanity | None = None
        if self.adversary is not None and self.adversary.plan.defense:
            self._sanity = TrustedAggregation(
                self.retry.lbi_staleness_rounds,
                rng=self.adversary.audit_rng,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        elif self.faults is not None:
            self._sanity = AggregateSanity(
                self.retry.lbi_staleness_rounds,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        (
            self._lbi_rng,
            self._placement_rng,
            self._landmark_rng,
            self._retry_rng,
        ) = spawn_rngs(ensure_rng(rng), 4)

        self._placement: PlacementStrategy | None = placement
        self._landmarks = landmarks
        if self._placement is None:
            if self.config.proximity_mode == "aware":
                if self.topology is None or self.oracle is None:
                    raise ConfigError(
                        "proximity_mode='aware' requires a topology (landmark "
                        "vectors are topology distances); use mode='ignorant' "
                        "for pure identifier-space experiments"
                    )
                self._placement = self._build_proximity_placement()
            else:
                self._placement = RandomVSPlacement(self.ring, self._placement_rng)

    # ------------------------------------------------------------------
    def _build_proximity_placement(self) -> ProximityPlacement:
        assert self.oracle is not None and self.topology is not None
        if self._landmarks is None:
            self._landmarks = select_landmarks(
                self.oracle,
                self.config.num_landmarks,
                rng=self._landmark_rng,
                strategy=self.config.landmark_strategy,
            )
        nodes = [n for n in self.ring.nodes if n.site is not None]
        if len(nodes) != len(self.ring.nodes):
            raise ConfigError(
                "all nodes need a topology site for proximity-aware balancing"
            )
        sites = np.asarray([n.site for n in nodes], dtype=np.int64)
        vectors = landmark_vectors(self.oracle, self._landmarks, sites)
        mapper = ProximityMapper.fit(vectors, grid_bits=self.config.grid_bits)
        vec_by_node = {n.index: vectors[i] for i, n in enumerate(nodes)}
        return ProximityPlacement(mapper, vec_by_node, self.ring.space)

    @property
    def landmarks(self) -> np.ndarray | None:
        """Landmark vertex ids in use (``None`` in ignorant mode)."""
        return self._landmarks

    # ------------------------------------------------------------------
    # Durability hooks (driven by repro.recovery)
    # ------------------------------------------------------------------
    def attach_journal(self, journal: "TransferJournal | None") -> None:
        """Route write-ahead journaling through ``journal`` (``None`` = off).

        Wires the journal into every component that mutates hosting
        state: the VST executor's transactions and — when a membership
        manager exists — its suspension/heal transactions too.
        """
        self.journal = journal
        if self.membership is not None:
            self.membership.journal = journal

    def _crash_point(self, site: str) -> None:
        """Fire a plan-scheduled process crash if one is armed at ``site``."""
        faults = self.faults
        if faults is not None and faults.crash_due(site):
            faults.fire_crash(site)

    # ------------------------------------------------------------------
    def run_round(self) -> BalanceReport:
        """Execute one full LBI -> classify -> VSA -> VST cycle.

        With a membership manager attached (the fault plan schedules
        partitions), the round first advances the epoch state machine:
        an expired partition heals (in-flight transfers reconciled,
        conservation asserted), a due boundary partition activates, and
        the round then runs either as a normal whole-ring round, a
        whole-ring round with a mid-round cut inside the VST batch, or
        one internally consistent degraded sub-round per component.
        """
        stats = FaultRoundStats()
        adv_stats = AdversaryRoundStats()
        faults = self.faults
        round_index = self._round_index
        self._round_index += 1
        if self.journal is not None:
            self.journal.record("round_begin", round=round_index)
        if faults is not None:
            faults.reset_round(round_index)
        view: MembershipView | None = None
        pending: PartitionSpec | None = None
        if self.membership is not None:
            view, pending = self.membership.begin_round(round_index, stats)
        alive_indices = [n.index for n in self.ring.alive_nodes]
        if self.adversary is not None:
            self.adversary.begin_round(round_index, alive_indices)
        if isinstance(self._sanity, TrustedAggregation):
            self._sanity.begin_round(
                stats.epoch,
                stats,
                alive_indices=alive_indices,
                adversary_stats=adv_stats,
            )
        elif self._sanity is not None:
            self._sanity.begin_round(
                stats.epoch, stats, alive_indices=alive_indices
            )
        if view is not None:
            if self.tracer.enabled:
                self.tracer.event(
                    "round.degraded",
                    epoch=view.epoch,
                    components=len(view.components),
                )
            report = self._run_partitioned_round(stats, view, adv_stats)
        else:
            report = self._run_plain_round(stats, pending, adv_stats)
        if self.journal is not None:
            self.journal.record(
                "round_end", round=round_index, digest=report.canonical_digest()
            )
        return report

    def _run_plain_round(
        self,
        stats: FaultRoundStats,
        pending: PartitionSpec | None = None,
        adv_stats: AdversaryRoundStats | None = None,
    ) -> BalanceReport:
        """One whole-ring round (optionally cut mid-VST by ``pending``)."""
        cfg = self.config
        ring = self.ring
        tracer = self.tracer
        faults = self.faults
        if adv_stats is None:
            adv_stats = AdversaryRoundStats()
        alive = ring.alive_nodes
        node_indices = np.asarray([n.index for n in alive], dtype=np.int64)
        capacities = np.asarray([n.capacity for n in alive], dtype=np.float64)
        loads_before = np.asarray([n.load for n in alive], dtype=np.float64)
        # Quarantine re-tiling: when the trust layer has excluded nodes,
        # the whole protocol pipeline runs over a ComponentRingView of
        # the trusted survivors — the same machinery partitions use — so
        # excluded regions are re-tiled and quarantined nodes neither
        # report nor receive transfers.  Their loads still appear in the
        # conservation arrays above; they classify neutral below.
        work: ChordRing | ComponentRingView = ring
        work_alive = alive
        trust = (
            self._sanity
            if isinstance(self._sanity, TrustedAggregation)
            else None
        )
        if trust is not None and trust.excluded:
            trusted = tuple(
                n.index for n in alive if n.index not in trust.excluded
            )
            if trusted and len(trusted) < len(alive):
                view = ComponentRingView(ring, trusted)
                if any(n.virtual_servers for n in view.alive_nodes):
                    work = view
                    work_alive = view.alive_nodes
        clock = PhaseClock()
        round_span = tracer.span(
            "round",
            mode=cfg.proximity_mode,
            nodes=len(alive),
            virtual_servers=ring.num_virtual_servers,
            tree_degree=cfg.tree_degree,
        )

        # Phase 1: tree + LBI aggregation/dissemination.
        with clock.phase("lbi"), tracer.span("lbi"):
            tree = KnaryTree(work, cfg.tree_degree, metrics=self.metrics)
            reports = collect_lbi_reports(
                work,
                tree,
                rng=self._lbi_rng,
                tracer=tracer,
                faults=faults,
                retry=self.retry,
                fault_stats=stats,
                sanity=self._sanity,
                epoch=stats.epoch,
                adversary=self.adversary,
                adversary_stats=adv_stats,
            )
            if reports or self._stale_lbi is None:
                # aggregate_lbi raises BalancerError on an empty report
                # set with nothing cached — total aggregation failure in
                # the very first round is unrecoverable by design.
                system, agg_trace = self._aggregate_lbi(tree, reports)
                self._stale_lbi = system
                self._stale_lbi_age = 0
            elif self._stale_lbi_age < self.retry.lbi_staleness_rounds:
                # Degraded mode: every report was lost this round, but a
                # previous aggregate is still within its staleness bound —
                # reuse it rather than failing the round.  The loads it
                # describes are approximate, which the paper's protocol
                # tolerates (classification thresholds carry slack).
                self._stale_lbi_age += 1
                system = self._stale_lbi
                agg_trace = AggregationTrace(tree_height=tree.height())
                stats.stale_lbi_reused = True
                if tracer.enabled:
                    tracer.event(
                        "lbi.stale_reuse",
                        age=self._stale_lbi_age,
                        bound=self.retry.lbi_staleness_rounds,
                    )
            else:
                # The cached aggregate aged out: surface the failure.
                system, agg_trace = self._aggregate_lbi(tree, reports)
        self._crash_point("post-lbi-fold")

        # Phase 2: classification.  Quarantined nodes sit the round out
        # as neutral — they are outside the trusted aggregate, so no
        # target can be computed for them.
        with clock.phase("classification"), tracer.span("classification"):
            classification_before = classify_all(
                work_alive, system, cfg.epsilon, tracer=tracer, stage="before"
            )
            self._classify_excluded_neutral(
                alive, work_alive, classification_before
            )

        with clock.phase("vsa"):
            # Phase 3a: build VSA entries.
            vsa_span = tracer.span("vsa")
            published = self._publish_vsa_entries(
                work_alive, classification_before
            )

            # Phase 3b: bottom-up VSA sweep.
            vsa_result = self._run_vsa_sweep(
                tree, published, system.min_vs_load, stats
            )
            vsa_span.end()

        # Phase 4: execute transfers.  Assignments that went stale because
        # churn interleaved between VSA and VST are dropped, not fatal;
        # transfers that abort mid-flight roll back and land in ``failed``.
        skipped: list[Assignment] = []
        failed: list[Assignment] = []
        with clock.phase("vst"), tracer.span("vst"):
            if pending is not None and self.membership is not None:
                transfers = self._execute_transfers_with_partition(
                    vsa_result.assignments, pending, skipped, failed, stats
                )
            else:
                transfers = execute_transfers(
                    work, vsa_result.assignments, self.oracle, skipped=skipped,
                    tracer=tracer, faults=faults, failed=failed, fault_stats=stats,
                    journal=self.journal, adversary=self.adversary,
                )

        loads_after = np.asarray([n.load for n in alive], dtype=np.float64)
        classification_after = classify_all(
            work_alive, system, cfg.epsilon, tracer=tracer, stage="after"
        )
        self._classify_excluded_neutral(alive, work_alive, classification_after)
        if faults is not None:
            stats.injected_total = faults.injected
            stats.signature = faults.signature()
        self._finalize_adversary_stats(adv_stats, transfers)
        round_span.end(
            transfers=len(transfers),
            moved_load=float(sum(t.load for t in transfers)),
            heavy_after=len(classification_after.heavy),
            failed_transfers=len(failed),
            faults_injected=stats.injected_total,
        )

        report = BalanceReport(
            config=cfg,
            system_lbi=system,
            num_nodes=len(alive),
            num_virtual_servers=ring.num_virtual_servers,
            node_indices=node_indices,
            capacities=capacities,
            loads_before=loads_before,
            loads_after=loads_after,
            classification_before=classification_before,
            classification_after=classification_after,
            aggregation=agg_trace,
            vsa=vsa_result,
            transfers=transfers,
            skipped_assignments=skipped,
            failed_assignments=failed,
            fault_stats=stats,
            adversary_stats=adv_stats,
            tree_height=tree.height(),
            tree_nodes_materialized=tree.node_count,
            in_flight_after=(
                self.membership.in_flight_load
                if self.membership is not None
                else 0.0
            ),
            phase_seconds=clock.seconds,
        )
        report.profile = profile_from_report(report)
        if self.metrics is not None:
            self._record_metrics(report)
        return report

    # ------------------------------------------------------------------
    def _publish_vsa_entries(
        self,
        nodes: list[PhysicalNode],
        classification: ClassificationResult,
    ) -> list[tuple[int, ShedCandidate | SpareCapacity]]:
        """Phase 3a: heavy nodes publish shed candidates, light ones spare
        capacity, each under its placement key, in node order."""
        cfg = self.config
        assert self._placement is not None
        published: list[tuple[int, ShedCandidate | SpareCapacity]] = []
        for node in nodes:
            cls = classification.classes[node.index]
            if cls is NodeClass.HEAVY:
                target = classification.targets[node.index]
                vs_list = node.virtual_servers
                loads = [vs.load for vs in vs_list]
                shed = select_shed_subset(
                    loads,
                    excess=node.load - target,
                    policy=cfg.selection_policy,
                    keep_at_least=cfg.keep_at_least,
                )
                if not shed:
                    continue
                key = self._placement.key_for(node)
                for idx in shed:
                    published.append(
                        (
                            key,
                            ShedCandidate(
                                load=vs_list[idx].load,
                                vs_id=vs_list[idx].vs_id,
                                node_index=node.index,
                            ),
                        )
                    )
            elif cls is NodeClass.LIGHT:
                delta = classification.targets[node.index] - node.load
                if delta <= 0:
                    continue
                key = self._placement.key_for(node)
                published.append(
                    (key, SpareCapacity(delta=delta, node_index=node.index))
                )
        return published

    # ------------------------------------------------------------------
    # Adversary machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _classify_excluded_neutral(
        alive: list[PhysicalNode],
        work_alive: list[PhysicalNode],
        classification: ClassificationResult,
    ) -> None:
        """Classify quarantine-excluded nodes neutral (no movement).

        Mirrors the degraded-component handling in partitioned rounds:
        a node outside the trusted work ring has no admissible aggregate
        to classify against, so it keeps its load for the round.
        """
        if len(work_alive) == len(alive):
            return
        covered = classification.classes
        for node in alive:
            if node.index not in covered:
                classification.classes[node.index] = NodeClass.NEUTRAL
                classification.targets[node.index] = node.load

    def _finalize_adversary_stats(
        self,
        adv_stats: AdversaryRoundStats,
        transfers: list[TransferRecord],
    ) -> None:
        """Close the round's Byzantine accounting after the VST batch.

        Feeds the defense's transfer-outcome channel (reneging sources
        charged once per round, EWMA envelopes shifted by every executed
        transfer) and attributes executed movement touching an attacker.
        """
        engine = self.adversary
        if engine is None:
            return
        trust = (
            self._sanity
            if isinstance(self._sanity, TrustedAggregation)
            else None
        )
        reneged = engine.reneged
        adv_stats.reneged_transfers = len(reneged)
        if trust is not None:
            for source in sorted({source for source, _ in reneged}):
                trust.note_renege(source)
        for t in transfers:
            if trust is not None:
                trust.note_transfer(t.source_node, t.target_node, t.load)
            if engine.is_attacker(t.source_node) or engine.is_attacker(
                t.target_node
            ):
                adv_stats.attacker_transfers += 1
                adv_stats.attacker_moved_load += float(t.load)
        adv_stats.attackers = engine.active_attackers
        adv_stats.accusations = engine.accusations
        adv_stats.signature = engine.signature()
        adv_stats.actions_total = engine.acted

    # ------------------------------------------------------------------
    # Partition machinery
    # ------------------------------------------------------------------
    def _execute_transfers_with_partition(
        self,
        assignments: list[Assignment],
        spec: PartitionSpec,
        skipped: list[Assignment],
        failed: list[Assignment],
        stats: FaultRoundStats,
    ) -> list[TransferRecord]:
        """Run the VST batch with a partition striking at a seeded slot.

        Transfers before the cut execute normally; the partition then
        activates, every remaining cross-component assignment is
        suspended in flight (its server detached until the heal), and
        the same-component remainder executes against the whole ring —
        all parent-side and in serial order, so sharded engines inherit
        the identical behaviour.
        """
        membership = self.membership
        faults = self.faults
        assert membership is not None and faults is not None
        ring = self.ring
        tracer = self.tracer
        slot = faults.partition_slot(len(assignments))
        transfers = execute_transfers(
            ring, assignments[:slot], self.oracle, skipped=skipped,
            tracer=tracer, faults=faults, failed=failed, fault_stats=stats,
            journal=self.journal, adversary=self.adversary,
        )
        remainder = assignments[slot:]
        view = membership.activate(spec, stats)
        if view is not None:
            same_component: list[Assignment] = []
            for a in remainder:
                if view.component_of(a.candidate.node_index) == view.component_of(
                    a.target_node
                ):
                    same_component.append(a)
                else:
                    membership.suspend_assignment(ring, a, skipped, stats)
            remainder = same_component
        transfers += execute_transfers(
            ring, remainder, self.oracle, skipped=skipped,
            tracer=tracer, faults=faults, failed=failed, fault_stats=stats,
            journal=self.journal, adversary=self.adversary,
        )
        return transfers

    def _run_partitioned_round(
        self,
        stats: FaultRoundStats,
        view: MembershipView,
        adv_stats: AdversaryRoundStats | None = None,
    ) -> BalanceReport:
        """One degraded round: an independent sub-round per component.

        Each component sees only its own nodes through a
        :class:`~repro.membership.views.ComponentRingView`, builds an
        epoch-tagged tree over it and runs the identical
        LBI/classify/VSA/VST pipeline (through the same phase hooks the
        sharded engine overrides, so serial/sharded byte-identity is
        inherited).  Components run in deterministic order; their
        results merge into one report whose aggregate is the sum of the
        component aggregates.  A component left without LBI reports (or
        without virtual servers) classifies its nodes neutral and moves
        nothing.  The cached whole-ring aggregate is invalidated — an
        epoch change makes cross-epoch state inadmissible by definition.
        """
        cfg = self.config
        ring = self.ring
        tracer = self.tracer
        faults = self.faults
        membership = self.membership
        assert membership is not None
        if adv_stats is None:
            adv_stats = AdversaryRoundStats()
        self._stale_lbi = None
        self._stale_lbi_age = 0
        alive = ring.alive_nodes
        node_indices = np.asarray([n.index for n in alive], dtype=np.int64)
        capacities = np.asarray([n.capacity for n in alive], dtype=np.float64)
        loads_before = np.asarray([n.load for n in alive], dtype=np.float64)
        in_flight = membership.in_flight_load
        clock = PhaseClock()
        round_span = tracer.span(
            "round",
            mode=cfg.proximity_mode,
            nodes=len(alive),
            virtual_servers=ring.num_virtual_servers,
            tree_degree=cfg.tree_degree,
            epoch=view.epoch,
            components=len(view.components),
        )

        total_load = 0.0
        total_capacity = 0.0
        min_vs_load = float("inf")
        agg_trace = AggregationTrace()
        vsa_result = VSAResult()
        classes_before: dict[int, NodeClass] = {}
        targets_before: dict[int, float] = {}
        classes_after: dict[int, NodeClass] = {}
        targets_after: dict[int, float] = {}
        transfers: list[TransferRecord] = []
        skipped: list[Assignment] = []
        failed: list[Assignment] = []
        tree_height = 0
        tree_nodes = 0

        def neutral(nodes: list[PhysicalNode]) -> None:
            """Classify a degraded component's nodes neutral (no movement)."""
            for node in nodes:
                classes_before[node.index] = NodeClass.NEUTRAL
                targets_before[node.index] = node.load
                classes_after[node.index] = NodeClass.NEUTRAL
                targets_after[node.index] = node.load

        for members in view.components:
            comp = ComponentRingView(ring, members)
            comp_alive = comp.alive_nodes
            if not comp_alive:
                continue
            if not any(n.virtual_servers for n in comp_alive):
                neutral(comp_alive)
                continue
            with clock.phase("lbi"), tracer.span("lbi", component=members[0]):
                tree = KnaryTree(
                    comp, cfg.tree_degree, metrics=self.metrics,
                    epoch=view.epoch,
                )
                # Under an active adversary, lies and accusations flow
                # into each component's collection unchanged; quarantined
                # nodes are not re-tiled out here (the components already
                # re-tile the ring) — their reports are rejected at the
                # trust gate instead.
                reports = collect_lbi_reports(
                    comp,
                    tree,
                    rng=self._lbi_rng,
                    tracer=tracer,
                    faults=faults,
                    retry=self.retry,
                    fault_stats=stats,
                    sanity=self._sanity,
                    epoch=view.epoch,
                    adversary=self.adversary,
                    adversary_stats=adv_stats,
                )
                if not reports:
                    neutral(comp_alive)
                    continue
                system_c, agg_c = self._aggregate_lbi(tree, reports)
            self._crash_point("post-lbi-fold")
            with clock.phase("classification"), tracer.span("classification"):
                before_c = classify_all(
                    comp_alive, system_c, cfg.epsilon, tracer=tracer,
                    stage="before",
                )
            with clock.phase("vsa"):
                vsa_span = tracer.span("vsa")
                published = self._publish_vsa_entries(comp_alive, before_c)
                vsa_c = self._run_vsa_sweep(
                    tree, published, system_c.min_vs_load, stats
                )
                vsa_span.end()
            with clock.phase("vst"), tracer.span("vst"):
                transfers_c = execute_transfers(
                    comp, vsa_c.assignments, self.oracle, skipped=skipped,
                    tracer=tracer, faults=faults, failed=failed,
                    fault_stats=stats, journal=self.journal,
                    adversary=self.adversary,
                )
            after_c = classify_all(
                comp_alive, system_c, cfg.epsilon, tracer=tracer, stage="after"
            )
            total_load += system_c.total_load
            total_capacity += system_c.total_capacity
            min_vs_load = min(min_vs_load, system_c.min_vs_load)
            agg_trace.tree_height = max(agg_trace.tree_height, agg_c.tree_height)
            agg_trace.upward_rounds = max(agg_trace.upward_rounds, agg_c.upward_rounds)
            agg_trace.downward_rounds = max(
                agg_trace.downward_rounds, agg_c.downward_rounds
            )
            agg_trace.upward_messages += agg_c.upward_messages
            agg_trace.downward_messages += agg_c.downward_messages
            agg_trace.reports += agg_c.reports
            vsa_result.assignments.extend(vsa_c.assignments)
            vsa_result.unassigned_heavy.extend(vsa_c.unassigned_heavy)
            vsa_result.unassigned_light.extend(vsa_c.unassigned_light)
            vsa_result.rounds = max(vsa_result.rounds, vsa_c.rounds)
            vsa_result.upward_messages += vsa_c.upward_messages
            vsa_result.entries_published += vsa_c.entries_published
            vsa_result.entries_lost += vsa_c.entries_lost
            vsa_result.pairings_by_level.update(vsa_c.pairings_by_level)
            classes_before.update(before_c.classes)
            targets_before.update(before_c.targets)
            classes_after.update(after_c.classes)
            targets_after.update(after_c.targets)
            transfers.extend(transfers_c)
            tree_height = max(tree_height, tree.height())
            tree_nodes += tree.node_count

        if total_capacity <= 0:
            # Every component lost every report: degrade to the sum of
            # the advertised node capacities so the round still reports
            # a well-formed (if uninformative) aggregate.
            total_capacity = sum(n.capacity for n in alive)
            total_load = float(np.sum(loads_before))
        system = SystemLBI(
            total_load=total_load,
            total_capacity=total_capacity,
            min_vs_load=min_vs_load,
        )
        loads_after = np.asarray([n.load for n in alive], dtype=np.float64)
        classification_before = ClassificationResult(
            classes=classes_before, targets=targets_before
        )
        classification_after = ClassificationResult(
            classes=classes_after, targets=targets_after
        )
        if faults is not None:
            stats.injected_total = faults.injected
            stats.signature = faults.signature()
        self._finalize_adversary_stats(adv_stats, transfers)
        round_span.end(
            transfers=len(transfers),
            moved_load=float(sum(t.load for t in transfers)),
            heavy_after=len(classification_after.heavy),
            failed_transfers=len(failed),
            faults_injected=stats.injected_total,
        )
        report = BalanceReport(
            config=cfg,
            system_lbi=system,
            num_nodes=len(alive),
            num_virtual_servers=ring.num_virtual_servers,
            node_indices=node_indices,
            capacities=capacities,
            loads_before=loads_before,
            loads_after=loads_after,
            classification_before=classification_before,
            classification_after=classification_after,
            aggregation=agg_trace,
            vsa=vsa_result,
            transfers=transfers,
            skipped_assignments=skipped,
            failed_assignments=failed,
            fault_stats=stats,
            adversary_stats=adv_stats,
            tree_height=tree_height,
            tree_nodes_materialized=tree_nodes,
            in_flight_before=in_flight,
            in_flight_after=membership.in_flight_load,
            phase_seconds=clock.seconds,
        )
        report.profile = profile_from_report(report)
        if self.metrics is not None:
            self._record_metrics(report)
        return report

    # ------------------------------------------------------------------
    # Phase hooks (overridden by shard-parallel engines)
    # ------------------------------------------------------------------
    def _aggregate_lbi(
        self,
        tree: KnaryTree,
        reports: dict[int, tuple[KTNode, list[LBIRecord]]],
    ) -> tuple[SystemLBI, AggregationTrace]:
        """Run the bottom-up LBI aggregation over collected reports.

        Extracted as a hook so :class:`repro.parallel.ShardedLoadBalancer`
        can fan the per-subtree folds out to worker processes while this
        default stays the serial reference implementation.
        """
        return aggregate_lbi(tree, reports, tracer=self.tracer)

    def _build_vsa_sweep(
        self,
        tree: KnaryTree,
        min_vs_load: float,
        stats: FaultRoundStats,
    ) -> VSASweep:
        """Construct the configured :class:`VSASweep` for this round."""
        return VSASweep(
            tree,
            threshold=self.config.rendezvous_threshold,
            min_vs_load=min_vs_load,
            strict_heaviest_first=self.config.strict_heaviest_first,
            tracer=self.tracer,
            faults=self.faults,
            retry=self.retry,
            rng=self._retry_rng,
            fault_stats=stats,
        )

    def _run_vsa_sweep(
        self,
        tree: KnaryTree,
        published: list[tuple[int, ShedCandidate | SpareCapacity]],
        min_vs_load: float,
        stats: FaultRoundStats,
    ) -> VSAResult:
        """Run phase 3b (delivery + bottom-up rendezvous sweep).

        Hook point for shard-parallel engines: delivery (which consumes
        the retry rng and fault streams) always runs here, in publication
        order; only the pure sweep may be decomposed.
        """
        return self._build_vsa_sweep(tree, min_vs_load, stats).run(published)

    def _record_metrics(self, report: BalanceReport) -> None:
        """Fold one round's profile into the attached registry."""
        m = self.metrics
        assert m is not None
        m.counter("balancer.rounds").inc()
        assert report.profile is not None
        for phase in report.profile.phases:
            m.counter(f"{phase.name}.messages").inc(phase.messages)
            m.histogram(f"{phase.name}.seconds").observe(phase.seconds)
        m.counter("lbi.reports").inc(report.aggregation.reports)
        m.counter("vsa.entries_published").inc(report.vsa.entries_published)
        m.counter("vsa.pairings").inc(len(report.vsa.assignments))
        m.counter("vst.transfers").inc(len(report.transfers))
        m.counter("vst.skipped").inc(len(report.skipped_assignments))
        m.counter("vst.failed").inc(len(report.failed_assignments))
        m.counter("vst.moved_load").inc(report.moved_load)
        fs = report.fault_stats
        if self.faults is not None or fs.vst_rollbacks or fs.vst_failed:
            # Recovery counters only materialise once faults are in play,
            # keeping fault-free metrics dumps identical to before.
            m.counter("lbi.retries").inc(fs.lbi_retries)
            m.counter("lbi.reports_lost").inc(fs.lbi_reports_lost)
            m.counter("vsa.retries").inc(fs.vsa_retries)
            m.counter("vsa.entries_lost").inc(fs.vsa_entries_lost)
            m.counter("vst.rollbacks").inc(fs.vst_rollbacks)
            if fs.stale_lbi_reused:
                m.counter("lbi.stale_reuse").inc()
            if fs.crashed_nodes:
                m.counter("faults.crash_victims").inc(len(fs.crashed_nodes))
        m.gauge("balancer.heavy_after").set(report.heavy_after)
        m.gauge("ktree.height").set(report.tree_height)
        for t in report.transfers:
            if t.has_distance:
                m.histogram("vst.distance").observe(t.distance)

    def run(self, max_rounds: int = 1, stop_when_balanced: bool = True) -> list[BalanceReport]:
        """Run up to ``max_rounds`` rounds, stopping once no node is heavy."""
        if max_rounds < 1:
            raise ConfigError(f"max_rounds must be >= 1, got {max_rounds}")
        out: list[BalanceReport] = []
        for _ in range(max_rounds):
            report = self.run_round()
            out.append(report)
            if stop_when_balanced and report.heavy_after == 0:
                break
        return out
