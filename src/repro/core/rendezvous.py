"""Rendezvous pairing at a KT node (Section 3.4, core loop).

A KT node acting as rendezvous point holds two sorted lists:

* shed candidates ``<L_{i,k}, v_{i,k}, ip_addr(i)>`` sorted by load;
* light advertisements ``<delta_L_j, ip_addr(j)>`` sorted by delta.

The pairing loop repeatedly takes the virtual server with the *heaviest*
load and matches it to the light node minimising ``delta_L_j`` subject
to ``delta_L_j >= L_{i,k}`` (best fit).  Both entries leave their lists;
if the light node's remainder ``delta_L_j - L_{i,k}`` is still at least
``L_min`` it is reinserted.

When the heaviest candidate has no feasible light node, "no more
appropriate VSA can be achieved" for it.  Two behaviours are provided:

* default (``strict_heaviest_first=False``): the unmatchable candidate
  is set aside and pairing continues with the next-heaviest — lighter
  virtual servers may still fit, and pairing them *here* (deep in the
  tree) is exactly the proximity win the paper wants;
* ``strict_heaviest_first=True``: the literal reading — the loop stops
  at the first unmatchable heaviest and everything left propagates
  upward.  An ablation benchmark compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.records import Assignment, ShedCandidate, SpareCapacity
from repro.util.sortedlist import SortedKeyList


@dataclass
class PairingOutcome:
    """Result of running the pairing loop at one rendezvous point."""

    assignments: list[Assignment] = field(default_factory=list)
    leftover_heavy: list[ShedCandidate] = field(default_factory=list)
    leftover_light: list[SpareCapacity] = field(default_factory=list)

    @property
    def paired_load(self) -> float:
        return sum(a.candidate.load for a in self.assignments)


def pair_rendezvous(
    heavy: list[ShedCandidate],
    light: list[SpareCapacity],
    min_vs_load: float,
    level: int,
    strict_heaviest_first: bool = False,
) -> PairingOutcome:
    """Run the VSA pairing loop over the given entries.

    ``level`` is recorded on each produced :class:`Assignment` (the KT
    level of this rendezvous point).  ``min_vs_load`` is the system-wide
    ``L_min`` used for the remainder-reinsertion rule.
    """
    heavy_list: SortedKeyList[ShedCandidate] = SortedKeyList(heavy, key=lambda c: c.load)
    light_list: SortedKeyList[SpareCapacity] = SortedKeyList(light, key=lambda s: s.delta)
    outcome = PairingOutcome()

    while heavy_list and light_list:
        candidate = heavy_list.peek_max()
        idx = light_list.index_first_at_least(candidate.load)
        if idx is None:
            heavy_list.pop_max()
            outcome.leftover_heavy.append(candidate)
            if strict_heaviest_first:
                break
            continue
        heavy_list.pop_max()
        spare = light_list.pop_at(idx)
        outcome.assignments.append(
            Assignment(candidate=candidate, target_node=spare.node_index, level=level)
        )
        remainder = spare.delta - candidate.load
        if remainder >= min_vs_load and remainder > 0:
            light_list.add(spare.reduced_by(candidate.load))

    outcome.leftover_heavy.extend(heavy_list)
    outcome.leftover_light.extend(light_list)
    return outcome
