"""Placement strategies: where VSA information is published in the DHT.

The *only* difference between the paper's proximity-aware and
proximity-ignorant load balancers is the key under which a heavy/light
node publishes its VSA information:

* :class:`ProximityPlacement` — the node's Hilbert number derived from
  its landmark vector (Section 4.3), so physically close nodes publish
  under nearby keys;
* :class:`RandomVSPlacement` — the identifier of one of the node's own
  (randomly chosen) virtual servers, i.e. an effectively random ring
  position (Section 3.4's footnote: "the location of a DHT node in the
  identifier space is represented by its randomly chosen virtual
  server").
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.dht.chord import ChordRing
from repro.dht.node import PhysicalNode
from repro.exceptions import BalancerError
from repro.idspace import IdentifierSpace
from repro.idspace.hashing import hash_to_id
from repro.proximity.mapping import ProximityMapper
from repro.util.rng import ensure_rng


class PlacementStrategy(Protocol):
    """Maps a node to the DHT key under which its VSA info is published."""

    def key_for(self, node: PhysicalNode) -> int:  # pragma: no cover - protocol
        ...


class ProximityPlacement:
    """Hilbert-number placement from per-node landmark vectors.

    Parameters
    ----------
    mapper:
        Fitted :class:`~repro.proximity.mapping.ProximityMapper`.
    vectors_by_node:
        ``node.index -> landmark vector`` for every node that may publish.
    space:
        The DHT identifier space keys must land on.
    """

    def __init__(
        self,
        mapper: ProximityMapper,
        vectors_by_node: dict[int, np.ndarray],
        space: IdentifierSpace,
    ) -> None:
        self.mapper = mapper
        self.space = space
        self._keys: dict[int, int] = {}
        if vectors_by_node:
            indices = list(vectors_by_node.keys())
            matrix = np.vstack([vectors_by_node[i] for i in indices])
            keys = mapper.dht_keys(matrix, space)
            self._keys = {i: int(k) for i, k in zip(indices, keys)}

    def key_for(self, node: PhysicalNode) -> int:
        try:
            return self._keys[node.index]
        except KeyError:
            raise BalancerError(
                f"no landmark vector registered for node {node.index}"
            ) from None

    def keys_for(self, nodes: list[PhysicalNode]) -> list[int]:
        """Batched :meth:`key_for` over ``nodes``, in order.

        Hilbert keys are precomputed per node at construction, so the
        batch is a pure lookup — it exists so the incremental engine's
        batched publication path (and the batched miss descent it feeds)
        applies under proximity-aware placement too.
        """
        return [self.key_for(node) for node in nodes]


class RandomVSPlacement:
    """Publish at the ring position of one randomly chosen own VS.

    The published key is the *center* of the chosen virtual server's
    region: semantically the same random ring location, but the KT leaf
    covering a region's center has depth ``O(log #VS)``, whereas the
    leaf covering the region's boundary identifier can be as deep as the
    ring's full bit width (a 1-identifier dyadic interval).
    """

    def __init__(
        self, ring: "ChordRing", rng: int | None | np.random.Generator = None
    ) -> None:
        self._ring = ring
        self._gen = ensure_rng(rng)

    def key_for(self, node: PhysicalNode) -> int:
        if not node.virtual_servers:
            # A node that shed everything still advertises spare capacity;
            # publish at its notional (hashed) ring position.
            return hash_to_id(f"node-{node.index}", self._ring.space)
        vs = node.virtual_servers[int(self._gen.integers(len(node.virtual_servers)))]
        return self._ring.region_of(vs).center

    def keys_for(self, nodes: list[PhysicalNode]) -> list[int]:
        """Batched :meth:`key_for` over ``nodes``, in order.

        Stream-identical to sequential :meth:`key_for` calls: nodes with
        virtual servers consume exactly one generator draw each (one
        batched ``integers(0, counts)`` call emits the same variates),
        vs-less nodes consume none, and region centers come from the
        ring's vectorized predecessor lookup.
        """
        counts = np.array(
            [len(n.virtual_servers) for n in nodes if n.virtual_servers],
            dtype=np.int64,
        )
        draws = (
            self._gen.integers(0, counts)
            if counts.size
            else np.empty(0, dtype=np.int64)
        )
        chosen: list[int] = []
        pos = 0
        for node in nodes:
            if node.virtual_servers:
                chosen.append(node.virtual_servers[int(draws[pos])].vs_id)
                pos += 1
        centers = (
            self._ring.centers_of(np.asarray(chosen, dtype=np.int64))
            if chosen
            else np.empty(0, dtype=np.int64)
        )
        keys: list[int] = []
        pos = 0
        for node in nodes:
            if node.virtual_servers:
                keys.append(int(centers[pos]))
                pos += 1
            else:
                keys.append(hash_to_id(f"node-{node.index}", self._ring.space))
        return keys
