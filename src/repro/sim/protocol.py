"""Event-driven execution of the protocol with real message latencies.

The round-level accounting (`repro.core.lbi`, `repro.core.vsa`) verifies
the O(log_K N) *round* bounds; this module goes one level deeper and
executes the phases as timed events over the topology, which lets us
measure the claim the round model cannot: **"our approach allows VSA
and VST to partly overlap for fast load balancing"** (Section 1.2).

Model:

* every KT parent-child control message takes the topology latency
  between the hosts' sites (or 1 unit without a topology);
* a rendezvous pairing at simulated time ``t`` dispatches its transfers
  immediately; a transfer occupies the link for
  ``transfer_cost_per_load x load x distance`` time units;
* in **overlapped** mode the sweep continues while transfers fly; in
  **sequential** mode all transfers wait for the sweep to reach the
  root (the strawman the paper's remark improves on).

The completion time of the *last transfer* is the figure of merit;
overlap wins whenever deep rendezvous points pair early.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.balancer import LoadBalancer
from repro.core.report import BalanceReport
from repro.exceptions import SimulationError
from repro.topology.routing import DistanceOracle


@dataclass(frozen=True)
class TimedProtocolResult:
    """Simulated-time breakdown of one balancing round."""

    vsa_completion_time: float  # sweep reaches & finishes at the root
    last_transfer_overlapped: float  # last VST completion, overlapped mode
    last_transfer_sequential: float  # last VST completion, sequential mode
    transfers: int

    @property
    def overlap_speedup(self) -> float:
        """Sequential / overlapped completion time (>= 1)."""
        if self.last_transfer_overlapped <= 0:
            return 1.0
        return self.last_transfer_sequential / self.last_transfer_overlapped


def simulate_timed_round(
    balancer: LoadBalancer,
    level_latency: float = 1.0,
    transfer_cost_per_load: float = 0.001,
) -> tuple[BalanceReport, TimedProtocolResult]:
    """Run one balancing round and replay its events on a simulated clock.

    The round executes normally (so the outcome is identical to
    ``run_round``); the replay assigns times:

    * a pairing made at KT level ``l`` of a height-``h`` tree happens at
      ``(h - l) * level_latency`` — the sweep needs one upward step per
      level below it (level 0 = root pairs last);
    * each resulting transfer then takes
      ``transfer_cost_per_load * load * distance`` (distance 1 when no
      topology is attached), starting at the pairing time in overlapped
      mode or at the root time in sequential mode.
    """
    if level_latency <= 0 or transfer_cost_per_load < 0:
        raise SimulationError("invalid timing parameters")
    report = balancer.run_round()
    height = report.tree_height

    vsa_done = height * level_latency
    last_overlapped = 0.0
    last_sequential = 0.0
    for t in report.transfers:
        pair_time = (height - t.level) * level_latency
        distance = t.distance if t.has_distance else 1.0
        duration = transfer_cost_per_load * t.load * distance
        last_overlapped = max(last_overlapped, pair_time + duration)
        last_sequential = max(last_sequential, vsa_done + duration)
    return report, TimedProtocolResult(
        vsa_completion_time=vsa_done,
        last_transfer_overlapped=last_overlapped,
        last_transfer_sequential=last_sequential,
        transfers=len(report.transfers),
    )
