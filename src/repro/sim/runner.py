"""Round-complexity measurements for the ``O(log_K N)`` claims.

The paper bounds three phases by the K-nary tree height: LBI
aggregation, dissemination, and the VSA sweep.  These helpers run the
full protocol across a sweep of system sizes and report the measured
rounds next to ``log_K`` of the virtual-server population, which is what
the timing benchmark prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.obs.trace import Tracer
from repro.workloads.loads import GaussianLoadModel
from repro.workloads.scenario import build_scenario


@dataclass(frozen=True, slots=True)
class PhaseTimings:
    """Measured rounds for one system size."""

    num_nodes: int
    num_virtual_servers: int
    tree_degree: int
    tree_height: int
    aggregation_rounds: int
    dissemination_rounds: int
    vsa_rounds: int

    @property
    def log_k_vs(self) -> float:
        """``log_K`` of the virtual-server count (the theoretical scale)."""
        return math.log(self.num_virtual_servers, self.tree_degree)

    @property
    def height_per_log(self) -> float:
        """Tree height divided by ``log_K(#VS)`` — should be O(1)."""
        return self.tree_height / self.log_k_vs


def measure_phase_rounds(
    num_nodes: int,
    tree_degree: int = 2,
    vs_per_node: int = 5,
    epsilon: float = 0.05,
    rng: int = 0,
    tracer: Tracer | None = None,
) -> PhaseTimings:
    """Run one balancing round and extract the phase round counts.

    ``tracer`` is forwarded to the balancer, so a timing sweep can dump
    a structured trace of every measured round.
    """
    scenario = build_scenario(
        GaussianLoadModel(mu=1e6, sigma=2e3),
        num_nodes=num_nodes,
        vs_per_node=vs_per_node,
        rng=rng,
    )
    balancer = LoadBalancer(
        scenario.ring,
        BalancerConfig(
            proximity_mode="ignorant", epsilon=epsilon, tree_degree=tree_degree
        ),
        rng=rng + 1,
        tracer=tracer,
    )
    report = balancer.run_round()
    return PhaseTimings(
        num_nodes=num_nodes,
        num_virtual_servers=report.num_virtual_servers,
        tree_degree=tree_degree,
        tree_height=report.tree_height,
        aggregation_rounds=report.aggregation.upward_rounds,
        dissemination_rounds=report.aggregation.downward_rounds,
        vsa_rounds=report.vsa.rounds,
    )


def sweep_phase_rounds(
    sizes: Sequence[int],
    tree_degrees: Sequence[int] = (2, 8),
    vs_per_node: int = 5,
    rng: int = 0,
    tracer: Tracer | None = None,
) -> list[PhaseTimings]:
    """Measure phase rounds across system sizes and tree degrees."""
    out: list[PhaseTimings] = []
    for k in tree_degrees:
        for n in sizes:
            out.append(
                measure_phase_rounds(
                    n, tree_degree=k, vs_per_node=vs_per_node, rng=rng,
                    tracer=tracer,
                )
            )
    return out
